//! The method of moments.
//!
//! §3.1: "The method of moments proceeds by replacing `E[X]` by its
//! empirical counterpart X̄ₙ and solving for θ … More generally, the
//! procedure centers on a vector of observed statistics Y and solves the
//! system Ȳₙ − m(θ) = 0, where m(θ) = E[Y|θ]."
//!
//! For one parameter, [`solve_univariate`] solves by bisection on a
//! bracketing interval; the multivariate system is solved by minimizing
//! `‖Ȳ − m(θ)‖²` with Nelder–Mead (exact zero when the system is
//! solvable), which also covers the over-identified case.

use mde_numeric::optim::{nelder_mead, NelderMeadConfig, OptimResult};
use mde_numeric::NumericError;

/// Empirical moment vector: `(mean, variance)` of a sample — the
/// statistics the paper's normal example matches.
pub fn sample_moments(data: &[f64]) -> mde_numeric::Result<(f64, f64)> {
    if data.len() < 2 {
        return Err(NumericError::EmptyInput {
            context: "sample_moments (need >= 2)",
        });
    }
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    Ok((mean, var))
}

/// Solve the scalar moment equation `m(θ) = target` by bisection on
/// `[lo, hi]`; `m` must be continuous and the bracket must straddle the
/// target.
pub fn solve_univariate(
    m: impl Fn(f64) -> f64,
    target: f64,
    lo: f64,
    hi: f64,
) -> mde_numeric::Result<f64> {
    // `Less` required explicitly so a NaN endpoint is rejected too.
    if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
        return Err(NumericError::invalid(
            "bracket",
            format!("need lo < hi, got [{lo}, {hi}]"),
        ));
    }
    let (flo, fhi) = (m(lo) - target, m(hi) - target);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo * fhi > 0.0 {
        return Err(NumericError::invalid(
            "bracket",
            format!("m(lo)-target = {flo} and m(hi)-target = {fhi} have the same sign"),
        ));
    }
    let (mut a, mut b) = (lo, hi);
    let mut fa = flo;
    for _ in 0..200 {
        let mid = 0.5 * (a + b);
        let fm = m(mid) - target;
        if fm == 0.0 || (b - a) < 1e-14 * (1.0 + mid.abs()) {
            return Ok(mid);
        }
        if fa * fm < 0.0 {
            b = mid;
        } else {
            a = mid;
            fa = fm;
        }
    }
    Ok(0.5 * (a + b))
}

/// Solve the multivariate moment system `m(θ) = targets` by least squares
/// (Nelder–Mead on `‖m(θ) − targets‖²`).
pub fn solve_multivariate(
    m: impl Fn(&[f64]) -> Vec<f64>,
    targets: &[f64],
    theta0: &[f64],
    max_evals: usize,
) -> mde_numeric::Result<OptimResult> {
    if targets.is_empty() {
        return Err(NumericError::EmptyInput {
            context: "solve_multivariate",
        });
    }
    nelder_mead(
        |theta| {
            m(theta)
                .iter()
                .zip(targets)
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        },
        theta0,
        &NelderMeadConfig {
            max_evals,
            ..NelderMeadConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mde_numeric::dist::{Distribution, Exponential, Gamma, Normal};
    use mde_numeric::rng::rng_from_seed;

    #[test]
    fn exponential_mm_equals_mle() {
        // The paper's observation: for the exponential, MM gives the MLE
        // estimator 1/X̄.
        let d = Exponential::new(0.8).unwrap();
        let mut rng = rng_from_seed(1);
        let data = d.sample_n(&mut rng, 10_000);
        let (mean, _) = sample_moments(&data).unwrap();
        // E[X] = 1/θ: solve 1/θ = mean.
        let theta = solve_univariate(|t| 1.0 / t, mean, 1e-3, 100.0).unwrap();
        let mle = crate::mle::exponential_mle(&data).unwrap();
        assert!((theta - mle).abs() < 1e-9, "MM {theta} vs MLE {mle}");
    }

    #[test]
    fn normal_mm_two_equations() {
        // "For a normal distribution, two equations in two unknowns."
        let d = Normal::new(4.0, 1.5).unwrap();
        let mut rng = rng_from_seed(2);
        let data = d.sample_n(&mut rng, 20_000);
        let (mean, var) = sample_moments(&data).unwrap();
        let res = solve_multivariate(
            |t| vec![t[0], t[1] * t[1]], // m(μ, σ) = (μ, σ²)
            &[mean, var],
            &[0.0, 1.0],
            3000,
        )
        .unwrap();
        assert!((res.x[0] - 4.0).abs() < 0.05);
        assert!((res.x[1].abs() - 1.5).abs() < 0.05);
        assert!(res.fx < 1e-10, "system should be solvable exactly");
    }

    #[test]
    fn gamma_mm() {
        // Gamma(k, θ): mean kθ, variance kθ².
        let d = Gamma::new(3.0, 2.0).unwrap();
        let mut rng = rng_from_seed(3);
        let data = d.sample_n(&mut rng, 40_000);
        let (mean, var) = sample_moments(&data).unwrap();
        let res = solve_multivariate(
            |t| vec![t[0] * t[1], t[0] * t[1] * t[1]],
            &[mean, var],
            &[1.0, 1.0],
            4000,
        )
        .unwrap();
        assert!((res.x[0] - 3.0).abs() < 0.2, "k̂ = {}", res.x[0]);
        assert!((res.x[1] - 2.0).abs() < 0.15, "θ̂ = {}", res.x[1]);
    }

    #[test]
    fn bisection_properties() {
        // Exact root.
        let r = solve_univariate(|t| t * t, 9.0, 0.0, 10.0).unwrap();
        assert!((r - 3.0).abs() < 1e-10);
        // Endpoint root.
        let r = solve_univariate(|t| t, 0.0, 0.0, 1.0).unwrap();
        assert_eq!(r, 0.0);
        // Bad brackets error.
        assert!(solve_univariate(|t| t, 5.0, 0.0, 1.0).is_err());
        assert!(solve_univariate(|t| t, 0.5, 1.0, 0.0).is_err());
    }

    #[test]
    fn sample_moments_errors() {
        assert!(sample_moments(&[1.0]).is_err());
        let (m, v) = sample_moments(&[1.0, 3.0]).unwrap();
        assert_eq!(m, 2.0);
        assert_eq!(v, 2.0);
    }
}
