//! The method of simulated moments (MSM) — McFadden (1989), as presented
//! in §3.1.
//!
//! "m(θ), which is usually too complex to be calculated analytically, is
//! approximated by a simulation-based estimate m̂(θ), typically obtained by
//! averaging i.i.d. samples of Y from simulation runs having parameter
//! values equal to θ. Finally, the problem of solving Gₙ = Ȳₙ − m̂(θ) = 0
//! is usually relaxed to the problem of minimizing the generalized
//! distance J(θ) = GₙᵀWGₙ, where W is chosen to boost statistical
//! efficiency … typically an estimate of the inverse of the
//! variance-covariance matrix of Gₙ."
//!
//! The paper also notes that "regularization terms can potentially be
//! incorporated into the objective function J to avoid overfitting" —
//! implemented as an optional ridge penalty toward a prior θ.

use mde_numeric::linalg::{Cholesky, Matrix};
use mde_numeric::optim::{nelder_mead, NelderMeadConfig, OptimResult};
use mde_numeric::rng::StreamFactory;
use mde_numeric::NumericError;
use std::cell::Cell;

/// The weighting matrix `W` of the generalized distance.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightMatrix {
    /// `W = I` — ordinary least squares on the moment gaps.
    Identity,
    /// Diagonal weights (e.g. inverse moment variances).
    Diagonal(Vec<f64>),
    /// A full positive-definite matrix (e.g. the inverse var-cov of `Gₙ`).
    Full(Matrix),
}

impl WeightMatrix {
    /// The quadratic form `gᵀWg`.
    pub fn quadratic(&self, g: &[f64]) -> f64 {
        match self {
            WeightMatrix::Identity => g.iter().map(|v| v * v).sum(),
            WeightMatrix::Diagonal(d) => {
                assert_eq!(d.len(), g.len(), "weight dimension mismatch");
                g.iter().zip(d).map(|(v, w)| w * v * v).sum()
            }
            WeightMatrix::Full(m) => {
                let wg = m.mul_vec(g).expect("weight dimension mismatch");
                g.iter().zip(&wg).map(|(a, b)| a * b).sum()
            }
        }
    }
}

/// A simulator oracle: given θ and a seed, produce one simulation run's
/// statistic vector `Y`.
pub type Simulator<'a> = dyn Fn(&[f64], u64) -> Vec<f64> + 'a;

/// An MSM calibration problem.
pub struct MsmProblem<'a> {
    observed: Vec<f64>,
    simulator: &'a Simulator<'a>,
    /// Replications averaged into `m̂(θ)`.
    pub sim_reps: usize,
    /// The weighting matrix.
    pub weight: WeightMatrix,
    /// Ridge strength λ for the penalty `λ‖θ − θ_prior‖²` (0 = none).
    pub ridge: f64,
    /// Ridge center.
    pub prior: Option<Vec<f64>>,
    /// Master seed; m̂ uses *common random numbers* across θ so the
    /// objective surface is smooth enough for Nelder–Mead.
    pub seed: u64,
    evals: Cell<usize>,
}

impl<'a> MsmProblem<'a> {
    /// Create a problem from observed statistics and a simulator.
    pub fn new(
        observed: Vec<f64>,
        simulator: &'a Simulator<'a>,
        sim_reps: usize,
        seed: u64,
    ) -> Self {
        assert!(sim_reps >= 1, "need at least one simulation replication");
        MsmProblem {
            observed,
            simulator,
            sim_reps,
            weight: WeightMatrix::Identity,
            ridge: 0.0,
            prior: None,
            seed,
            evals: Cell::new(0),
        }
    }

    /// Number of simulator invocations so far (the cost metric of the
    /// §3.1 discussion: "m̂(θ) is usually expensive to compute").
    pub fn simulator_evals(&self) -> usize {
        self.evals.get()
    }

    /// The simulated moment estimate `m̂(θ)` (average of `sim_reps` runs
    /// with common random numbers).
    pub fn m_hat(&self, theta: &[f64]) -> Vec<f64> {
        let factory = StreamFactory::new(self.seed);
        let mut acc: Option<Vec<f64>> = None;
        for r in 0..self.sim_reps {
            self.evals.set(self.evals.get() + 1);
            let y = (self.simulator)(theta, factory.seed_of(r as u64));
            acc = Some(match acc {
                None => y,
                Some(mut a) => {
                    assert_eq!(a.len(), y.len(), "simulator statistic arity changed");
                    for (ai, yi) in a.iter_mut().zip(y) {
                        *ai += yi;
                    }
                    a
                }
            });
        }
        let mut m = acc.expect("sim_reps >= 1");
        for v in m.iter_mut() {
            *v /= self.sim_reps as f64;
        }
        m
    }

    /// The objective `J(θ) = GᵀWG (+ λ‖θ − θ_prior‖²)`.
    pub fn objective(&self, theta: &[f64]) -> f64 {
        let m = self.m_hat(theta);
        assert_eq!(
            m.len(),
            self.observed.len(),
            "simulator returned {} statistics, observed {}",
            m.len(),
            self.observed.len()
        );
        let g: Vec<f64> = self.observed.iter().zip(&m).map(|(o, s)| o - s).collect();
        let mut j = self.weight.quadratic(&g);
        if self.ridge > 0.0 {
            if let Some(prior) = &self.prior {
                j += self.ridge
                    * theta
                        .iter()
                        .zip(prior)
                        .map(|(t, p)| (t - p) * (t - p))
                        .sum::<f64>();
            }
        }
        j
    }

    /// Estimate the efficient weight matrix at a pilot θ: simulate `reps`
    /// independent statistic vectors, estimate their var-cov matrix, and
    /// invert it (with a small diagonal ridge for stability). This is the
    /// "estimate of the inverse of the variance-covariance matrix of Gₙ"
    /// the paper describes.
    pub fn estimate_weight(&self, theta: &[f64], reps: usize) -> mde_numeric::Result<WeightMatrix> {
        if reps < 3 {
            return Err(NumericError::EmptyInput {
                context: "estimate_weight (need >= 3 replications)",
            });
        }
        let factory = StreamFactory::new(self.seed ^ 0x5ca1ab1e);
        let mut samples: Vec<Vec<f64>> = Vec::with_capacity(reps);
        for r in 0..reps {
            self.evals.set(self.evals.get() + 1);
            samples.push((self.simulator)(theta, factory.seed_of(r as u64)));
        }
        let k = samples[0].len();
        let n = reps as f64;
        let mean: Vec<f64> = (0..k)
            .map(|j| samples.iter().map(|s| s[j]).sum::<f64>() / n)
            .collect();
        let mut cov = Matrix::zeros(k, k);
        for s in &samples {
            for i in 0..k {
                for j in 0..k {
                    cov[(i, j)] += (s[i] - mean[i]) * (s[j] - mean[j]) / (n - 1.0);
                }
            }
        }
        // Stabilizing ridge relative to the diagonal scale.
        let scale = (0..k)
            .map(|i| cov[(i, i)])
            .fold(0.0f64, f64::max)
            .max(1e-12);
        for i in 0..k {
            cov[(i, i)] += 1e-6 * scale;
        }
        Ok(WeightMatrix::Full(Cholesky::new(&cov)?.inverse()?))
    }

    /// Minimize `J` with Nelder–Mead from `theta0` under an
    /// objective-evaluation budget.
    pub fn calibrate(
        &self,
        theta0: &[f64],
        max_obj_evals: usize,
    ) -> mde_numeric::Result<OptimResult> {
        nelder_mead(
            |theta| self.objective(theta),
            theta0,
            &NelderMeadConfig {
                max_evals: max_obj_evals,
                f_tol: 1e-12,
                ..NelderMeadConfig::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mde_numeric::dist::{Distribution, Exponential, Normal};
    use mde_numeric::rng::rng_from_seed;

    /// Simulator for the paper's exponential example: n draws of Exp(θ),
    /// statistic = sample mean.
    fn exp_simulator(theta: &[f64], seed: u64) -> Vec<f64> {
        let rate = theta[0].max(1e-6);
        let d = Exponential::new(rate).expect("positive rate");
        let mut rng = mde_numeric::rng::rng_from_seed(seed);
        let n = 200;
        vec![d.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64]
    }

    #[test]
    fn msm_recovers_exponential_rate() {
        // "Observed" data from θ* = 2.
        let truth = Exponential::new(2.0).unwrap();
        let mut rng = rng_from_seed(1);
        let data = truth.sample_n(&mut rng, 5_000);
        let observed = vec![data.iter().sum::<f64>() / data.len() as f64];

        let sim: &Simulator = &exp_simulator;
        let problem = MsmProblem::new(observed, sim, 10, 7);
        let res = problem.calibrate(&[0.5], 300).unwrap();
        assert!((res.x[0] - 2.0).abs() < 0.1, "θ̂ = {}", res.x[0]);
        assert!(problem.simulator_evals() > 0);
    }

    #[test]
    fn common_random_numbers_make_objective_deterministic() {
        let sim: &Simulator = &exp_simulator;
        let problem = MsmProblem::new(vec![0.5], sim, 5, 3);
        let a = problem.objective(&[1.0]);
        let b = problem.objective(&[1.0]);
        assert_eq!(a, b, "objective must be deterministic in θ");
    }

    #[test]
    fn weight_matrix_quadratic_forms() {
        let g = [1.0, 2.0];
        assert_eq!(WeightMatrix::Identity.quadratic(&g), 5.0);
        assert_eq!(WeightMatrix::Diagonal(vec![2.0, 0.5]).quadratic(&g), 4.0);
        let w = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(WeightMatrix::Full(w).quadratic(&g), 6.0);
    }

    #[test]
    fn estimated_weight_downweights_noisy_moments() {
        // Two statistics: one precise (variance ~1e-4), one noisy
        // (variance ~1). The estimated W must weight the precise one more.
        let sim: &Simulator = &|theta: &[f64], seed: u64| {
            let mut rng = mde_numeric::rng::rng_from_seed(seed);
            let precise = theta[0] + 0.01 * Normal::sample_standard(&mut rng);
            let noisy = theta[0] + 1.0 * Normal::sample_standard(&mut rng);
            vec![precise, noisy]
        };
        let problem = MsmProblem::new(vec![1.0, 1.0], sim, 3, 11);
        let w = problem.estimate_weight(&[1.0], 200).unwrap();
        let WeightMatrix::Full(m) = &w else {
            panic!("expected full matrix")
        };
        assert!(
            m[(0, 0)] > 100.0 * m[(1, 1)],
            "weights {:?} vs {:?}",
            m[(0, 0)],
            m[(1, 1)]
        );
        assert!(problem.estimate_weight(&[1.0], 2).is_err());
    }

    #[test]
    fn full_weight_beats_identity_on_heteroscedastic_moments() {
        // Moment 1 identifies θ precisely; moment 2 is mostly noise *and
        // biased* (misspecified). Identity weighting lets the noisy moment
        // drag the estimate; efficient weighting shields it.
        type SimFn = Box<dyn Fn(&[f64], u64) -> Vec<f64>>;
        let make_sim = || -> SimFn {
            Box::new(|theta: &[f64], seed: u64| {
                let mut rng = mde_numeric::rng::rng_from_seed(seed);
                vec![
                    theta[0] + 0.01 * Normal::sample_standard(&mut rng),
                    theta[0] + 2.0 * Normal::sample_standard(&mut rng),
                ]
            })
        };
        let sim = make_sim();
        // Observed: moment 1 says θ = 1.0; moment 2 is off at 3.0.
        let observed = vec![1.0, 3.0];
        let mut id_problem = MsmProblem::new(observed.clone(), &*sim, 8, 5);
        id_problem.weight = WeightMatrix::Identity;
        let id_est = id_problem.calibrate(&[0.0], 200).unwrap().x[0];

        let mut w_problem = MsmProblem::new(observed, &*sim, 8, 5);
        w_problem.weight = w_problem.estimate_weight(&[1.0], 100).unwrap();
        let w_est = w_problem.calibrate(&[0.0], 200).unwrap().x[0];

        assert!(
            (w_est - 1.0).abs() < (id_est - 1.0).abs(),
            "weighted {w_est} should beat identity {id_est}"
        );
        assert!((w_est - 1.0).abs() < 0.1);
    }

    #[test]
    fn ridge_pulls_toward_prior() {
        // Flat, uninformative objective; ridge decides.
        let sim: &Simulator = &|_theta: &[f64], _seed: u64| vec![0.0];
        let mut problem = MsmProblem::new(vec![0.0], sim, 1, 1);
        problem.ridge = 1.0;
        problem.prior = Some(vec![2.5]);
        let res = problem.calibrate(&[10.0], 500).unwrap();
        assert!((res.x[0] - 2.5).abs() < 1e-3, "θ̂ = {}", res.x[0]);
    }
}
