//! Calibrating simulation models against data — §3.1 of Haas, *Model-Data
//! Ecosystems* (PODS 2014).
//!
//! "The key is then to *calibrate* the model using statistical and machine
//! learning techniques in order to approximately match existing datasets."
//!
//! | module | paper concept |
//! |---|---|
//! | [`mle`] | maximum likelihood (the exponential worked example, generic numeric MLE) |
//! | [`mm`] | the method of moments |
//! | [`msm`] | McFadden's method of simulated moments: `J(θ) = GᵀWG`, estimated `W`, ridge regularization |
//! | [`optim`] | simulation-budgeted optimizers: Nelder–Mead, genetic algorithm (Fabretti), random search |
//! | [`kriging_cal`] | DOE + kriging surrogate minimization (Salle & Yildizoglu) |
//! | [`range`] | the acceptable-set / prediction-range diagnostic (Shi & Brooks \[51\]) |
//!
//! # Example: the paper's worked MLE, plus MSM on a simulator
//!
//! ```
//! use mde_calibrate::mle::exponential_mle;
//! use mde_calibrate::msm::{MsmProblem, Simulator};
//! use mde_numeric::dist::{Distribution, Exponential};
//! use mde_numeric::rng::rng_from_seed;
//!
//! // θ̂ = 1/X̄, exactly as §3.1 derives.
//! assert!((exponential_mle(&[1.0, 2.0, 3.0]).unwrap() - 0.5).abs() < 1e-12);
//!
//! // The same estimation when only a simulator is available (MSM).
//! let sim: &Simulator = &|theta: &[f64], seed: u64| {
//!     let d = Exponential::new(theta[0].max(1e-6)).unwrap();
//!     let mut rng = rng_from_seed(seed);
//!     vec![d.sample_n(&mut rng, 400).iter().sum::<f64>() / 400.0]
//! };
//! let problem = MsmProblem::new(vec![0.5 /* observed mean */], sim, 8, 3);
//! let theta_hat = problem.calibrate(&[1.0], 200).unwrap().x[0];
//! assert!((theta_hat - 2.0).abs() < 0.1);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod kriging_cal;
pub mod mle;
pub mod mm;
pub mod msm;
pub mod optim;
pub mod range;
pub mod sched;

pub use error::CalibrateError;
pub use sched::SearchCampaign;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CalibrateError>;
