//! Maximum likelihood estimation.
//!
//! §3.1's worked example: "consider data X = (X₁, …, Xₙ) representing i.i.d.
//! draws from the exponential density f(x; θ) = θe^{−θx} … The likelihood
//! is L(θ; X) = θⁿ e^{−θ ΣXᵢ} … A simple calculation yields θ̂ₙ = 1/X̄ₙ."
//! For models whose likelihood is available but not analytically
//! maximizable, [`mle_numeric`] maximizes the log-likelihood with
//! Nelder–Mead; "the output of an ABS is usually highly nonlinear and
//! complex, so that the likelihood can only be obtained in rare cases" —
//! which is why §3.1 then moves to moment methods ([`crate::mm`],
//! [`crate::msm`]).

use mde_numeric::optim::{nelder_mead, NelderMeadConfig, OptimResult};
use mde_numeric::NumericError;

/// The closed-form exponential MLE `θ̂ = 1/X̄` from the paper.
pub fn exponential_mle(data: &[f64]) -> mde_numeric::Result<f64> {
    if data.is_empty() {
        return Err(NumericError::EmptyInput {
            context: "exponential_mle",
        });
    }
    if data.iter().any(|x| *x < 0.0 || !x.is_finite()) {
        return Err(NumericError::invalid(
            "data",
            "exponential data must be finite and non-negative".to_string(),
        ));
    }
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    if mean <= 0.0 {
        return Err(NumericError::invalid(
            "data",
            "sample mean must be positive".to_string(),
        ));
    }
    Ok(1.0 / mean)
}

/// The closed-form normal MLE `(μ̂, σ̂)` (population σ, per ML).
pub fn normal_mle(data: &[f64]) -> mde_numeric::Result<(f64, f64)> {
    if data.len() < 2 {
        return Err(NumericError::EmptyInput {
            context: "normal_mle (need >= 2 observations)",
        });
    }
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    Ok((mean, var.sqrt()))
}

/// Numeric MLE: maximize `Σᵢ ln f(xᵢ; θ)` over θ with Nelder–Mead.
///
/// `ln_pdf(θ, x)` must return the log-density; `-inf` outside the support
/// is handled (mapped away by the optimizer's NaN/∞ guard).
pub fn mle_numeric(
    data: &[f64],
    ln_pdf: impl Fn(&[f64], f64) -> f64,
    theta0: &[f64],
    max_evals: usize,
) -> mde_numeric::Result<OptimResult> {
    if data.is_empty() {
        return Err(NumericError::EmptyInput {
            context: "mle_numeric",
        });
    }
    nelder_mead(
        |theta| -data.iter().map(|&x| ln_pdf(theta, x)).sum::<f64>(),
        theta0,
        &NelderMeadConfig {
            max_evals,
            ..NelderMeadConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mde_numeric::dist::{Continuous, Distribution, Exponential, Normal};
    use mde_numeric::rng::rng_from_seed;

    #[test]
    fn exponential_mle_closed_form() {
        // θ̂ = 1/X̄ exactly.
        let data = [1.0, 2.0, 3.0];
        assert!((exponential_mle(&data).unwrap() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn exponential_mle_recovers_rate() {
        let d = Exponential::new(2.5).unwrap();
        let mut rng = rng_from_seed(1);
        let data = d.sample_n(&mut rng, 20_000);
        let theta = exponential_mle(&data).unwrap();
        assert!((theta - 2.5).abs() < 0.1, "θ̂ = {theta}");
    }

    #[test]
    fn exponential_mle_errors() {
        assert!(exponential_mle(&[]).is_err());
        assert!(exponential_mle(&[-1.0]).is_err());
        assert!(exponential_mle(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn normal_mle_recovers_parameters() {
        let d = Normal::new(7.0, 2.0).unwrap();
        let mut rng = rng_from_seed(2);
        let data = d.sample_n(&mut rng, 20_000);
        let (mu, sigma) = normal_mle(&data).unwrap();
        assert!((mu - 7.0).abs() < 0.1);
        assert!((sigma - 2.0).abs() < 0.1);
        assert!(normal_mle(&[1.0]).is_err());
    }

    #[test]
    fn numeric_mle_matches_closed_form_exponential() {
        let d = Exponential::new(1.8).unwrap();
        let mut rng = rng_from_seed(3);
        let data = d.sample_n(&mut rng, 5_000);
        let closed = exponential_mle(&data).unwrap();
        let numeric = mle_numeric(
            &data,
            |theta, x| match Exponential::new(theta[0]) {
                Ok(dist) => dist.ln_pdf(x),
                Err(_) => f64::NEG_INFINITY,
            },
            &[1.0],
            2000,
        )
        .unwrap();
        assert!(
            (numeric.x[0] - closed).abs() < 1e-3,
            "numeric {} vs closed {closed}",
            numeric.x[0]
        );
    }

    #[test]
    fn numeric_mle_two_parameter_normal() {
        let d = Normal::new(-2.0, 0.7).unwrap();
        let mut rng = rng_from_seed(4);
        let data = d.sample_n(&mut rng, 5_000);
        let res = mle_numeric(
            &data,
            |theta, x| match Normal::new(theta[0], theta[1]) {
                Ok(dist) => dist.ln_pdf(x),
                Err(_) => f64::NEG_INFINITY,
            },
            &[0.0, 1.0],
            4000,
        )
        .unwrap();
        assert!((res.x[0] + 2.0).abs() < 0.05, "μ̂ = {}", res.x[0]);
        assert!((res.x[1] - 0.7).abs() < 0.05, "σ̂ = {}", res.x[1]);
    }
}
