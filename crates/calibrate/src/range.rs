//! The range of predictions for calibrated models — Shi & Brooks \[51\], the
//! open problem §3.1 highlights.
//!
//! "Another interesting question is how to extend existing approaches,
//! which calibrate against a small number of population summary
//! statistics, to calibrate at a finer granularity. Such fine-grained
//! calibration might have the potential for avoiding situations where
//! multiple calibrations are all deemed acceptable but lead to very
//! different predictions."
//!
//! This module operationalizes that diagnosis: [`acceptable_set`] collects
//! *every* θ whose calibration objective clears an acceptance tolerance
//! (LH-sampled, then polished), and [`prediction_range`] pushes the whole
//! set through a downstream prediction — if the range is wide, the
//! calibration is under-identified and more (or finer-grained) moments are
//! needed. The E17 experiment shows exactly the \[51\] phenomenon and its
//! repair.

use crate::optim::Bounds;
use mde_metamodel::design::nolh;
use mde_numeric::optim::{nelder_mead, NelderMeadConfig};
use mde_numeric::rng::Rng;

/// All parameter vectors deemed acceptable by the calibration criterion.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceptableSet {
    /// `(θ, J(θ))` pairs with `J ≤ tolerance`, deduplicated, sorted by J.
    pub members: Vec<(Vec<f64>, f64)>,
    /// The acceptance tolerance used.
    pub tolerance: f64,
    /// Total objective evaluations spent.
    pub evals: usize,
}

/// Collect the acceptable set: LH-sample `design_runs` candidate θ over the
/// bounds, polish each candidate below `polish_factor × tolerance` with a
/// short Nelder–Mead, and keep everything that ends at `J ≤ tolerance`.
/// Near-duplicate members (within `dedup_radius` in ∞-norm) are merged,
/// keeping the better one.
pub fn acceptable_set(
    mut objective: impl FnMut(&[f64]) -> f64,
    bounds: &Bounds,
    tolerance: f64,
    design_runs: usize,
    rng: &mut Rng,
) -> mde_numeric::Result<AcceptableSet> {
    assert!(tolerance > 0.0, "tolerance must be positive");
    assert!(design_runs >= 2, "need at least two candidates");
    let mut evals = 0usize;
    let design = nolh(bounds.dim(), design_runs, 50, rng);
    let candidates = design.scale_to(&bounds.ranges);

    let mut members: Vec<(Vec<f64>, f64)> = Vec::new();
    let dedup_radius: Vec<f64> = bounds
        .ranges
        .iter()
        .map(|(lo, hi)| (hi - lo) * 0.05)
        .collect();
    // Rank candidates by their raw objective and polish from most to
    // least promising — every candidate gets a short local search, since a
    // fixed objective-scale cutoff would misjudge problems whose J values
    // are large everywhere.
    let mut ranked: Vec<(Vec<f64>, f64)> = candidates
        .into_iter()
        .map(|c| {
            evals += 1;
            let j0 = objective(&c);
            (c, j0)
        })
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objectives"));
    for (start, _) in ranked {
        let result = nelder_mead(
            |x| {
                let mut xx = x.to_vec();
                bounds.clamp(&mut xx);
                evals += 1;
                objective(&xx)
            },
            &start,
            &NelderMeadConfig {
                max_evals: 60,
                ..NelderMeadConfig::default()
            },
        )?;
        if result.fx <= tolerance {
            let mut x = result.x;
            bounds.clamp(&mut x);
            // Dedup against existing members.
            match members.iter_mut().find(|(m, _)| {
                m.iter()
                    .zip(&x)
                    .zip(&dedup_radius)
                    .all(|((a, b), r)| (a - b).abs() <= *r)
            }) {
                Some(existing) => {
                    if result.fx < existing.1 {
                        *existing = (x, result.fx);
                    }
                }
                None => members.push((x, result.fx)),
            }
        }
    }
    members.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objectives"));
    Ok(AcceptableSet {
        members,
        tolerance,
        evals,
    })
}

/// The range of a downstream prediction over an acceptable set: the \[51\]
/// diagnostic. Returns `(min, max)`; an empty set yields `None`.
pub fn prediction_range(
    set: &AcceptableSet,
    mut predict: impl FnMut(&[f64]) -> f64,
) -> Option<(f64, f64)> {
    let preds: Vec<f64> = set.members.iter().map(|(x, _)| predict(x)).collect();
    if preds.is_empty() {
        return None;
    }
    let min = preds.iter().copied().fold(f64::INFINITY, f64::min);
    let max = preds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mde_numeric::rng::rng_from_seed;

    /// Under-identified calibration: only θ₀+θ₁ is pinned by the data, so
    /// a whole ridge of (θ₀, θ₁) is acceptable.
    fn ridge_objective(theta: &[f64]) -> f64 {
        ((theta[0] + theta[1]) - 1.0).powi(2)
    }

    fn bounds() -> Bounds {
        Bounds::new(vec![(0.0, 1.0), (0.0, 1.0)]).expect("valid bounds")
    }

    #[test]
    fn finds_multiple_acceptable_calibrations_on_a_ridge() {
        let mut rng = rng_from_seed(1);
        let set = acceptable_set(ridge_objective, &bounds(), 1e-4, 33, &mut rng).unwrap();
        assert!(
            set.members.len() >= 3,
            "found {} members",
            set.members.len()
        );
        for (x, j) in &set.members {
            assert!(*j <= 1e-4);
            assert!((x[0] + x[1] - 1.0).abs() < 0.02, "member off ridge: {x:?}");
        }
        assert!(set.evals > 0);
    }

    #[test]
    fn divergent_predictions_detected_then_repaired_by_finer_moments() {
        // The [51] phenomenon: acceptable calibrations agree on θ₀+θ₁ but a
        // downstream prediction depends on θ₀−θ₁ and diverges wildly.
        let mut rng = rng_from_seed(2);
        let set = acceptable_set(ridge_objective, &bounds(), 1e-4, 33, &mut rng).unwrap();
        let (lo, hi) = prediction_range(&set, |x| x[0] - x[1]).unwrap();
        assert!(hi - lo > 0.5, "range [{lo}, {hi}] should be wide");

        // Repair: add a second (finer-grained) moment pinning θ₀−θ₁ = 0.2.
        let finer = |theta: &[f64]| ridge_objective(theta) + ((theta[0] - theta[1]) - 0.2).powi(2);
        let mut rng = rng_from_seed(3);
        let set2 = acceptable_set(finer, &bounds(), 1e-4, 33, &mut rng).unwrap();
        assert!(!set2.members.is_empty());
        let (lo2, hi2) = prediction_range(&set2, |x| x[0] - x[1]).unwrap();
        assert!(
            hi2 - lo2 < (hi - lo) * 0.2,
            "finer calibration should collapse the range: [{lo2}, {hi2}] vs [{lo}, {hi}]"
        );
        assert!((lo2 - 0.2).abs() < 0.05 && (hi2 - 0.2).abs() < 0.05);
    }

    #[test]
    fn well_identified_problem_yields_tight_set() {
        let mut rng = rng_from_seed(4);
        let set = acceptable_set(
            |t: &[f64]| (t[0] - 0.3).powi(2) + (t[1] - 0.7).powi(2),
            &bounds(),
            1e-4,
            33,
            &mut rng,
        )
        .unwrap();
        assert!(!set.members.is_empty());
        let (lo, hi) = prediction_range(&set, |x| x[0]).unwrap();
        assert!(
            hi - lo < 0.1,
            "identified problem should be tight: [{lo}, {hi}]"
        );
    }

    #[test]
    fn hopeless_tolerance_yields_empty_set() {
        let mut rng = rng_from_seed(5);
        let set = acceptable_set(|_t: &[f64]| 100.0, &bounds(), 1e-6, 17, &mut rng).unwrap();
        assert!(set.members.is_empty());
        assert!(prediction_range(&set, |x| x[0]).is_none());
    }
}
