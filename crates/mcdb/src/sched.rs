//! Scheduler adapter: runs a [`MonteCarloQuery`] as a schedulable
//! [`Campaign`].
//!
//! The adapter owns everything the query needs (catalog, replicate count,
//! seed, run options) plus the in-memory [`CampaignState`] that survives
//! preemption: when the scheduler stops a slice at a replicate boundary,
//! the checkpoint is kept and the next slice resumes from its cursor, so
//! a preempted campaign is bit-identical to an uninterrupted one.
//!
//! Shedding is absorbed, not fatal, for best-effort work: a
//! [`StopCause::Shed`] stop under [`RunPolicy::BestEffort`] finishes the
//! campaign with the partial estimate, counts the unexecuted replicates
//! in the ledger's `sched.shed` counter, and widens the confidence
//! interval. Any other policy treats shedding like preemption — the
//! checkpoint is kept and the campaign reports a resumable boundary.

use crate::mc::{McRun, MonteCarloQuery};
use crate::query::Catalog;
use mde_numeric::resilience::{RunOptions, RunPolicy, StopCause};
use mde_numeric::{
    Campaign, CampaignCtl, CampaignError, CampaignOutput, CampaignState, CampaignStep, ErrorClass,
};

/// A Monte Carlo estimation query packaged as a schedulable campaign.
///
/// Each [`Campaign::run`] slice executes replicates from the saved cursor
/// until completion or until the scheduler's control block stops it at a
/// replicate boundary. `threads > 1` uses the parallel execution path;
/// results are bit-identical at any thread count.
pub struct McCampaign {
    query: MonteCarloQuery,
    catalog: Catalog,
    n: usize,
    seed: u64,
    opts: RunOptions,
    threads: usize,
    state: Option<CampaignState>,
}

impl McCampaign {
    /// Package a query as a campaign over `n` replicates.
    pub fn new(
        query: MonteCarloQuery,
        catalog: Catalog,
        n: usize,
        seed: u64,
        opts: RunOptions,
    ) -> Self {
        McCampaign {
            query,
            catalog,
            n,
            seed,
            opts,
            threads: 1,
            state: None,
        }
    }

    /// Use `threads` worker threads per slice (deterministic: the result
    /// is bit-identical to the sequential path).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Seed the campaign with a previously persisted [`CampaignState`]
    /// (e.g. loaded from a checkpoint file written by an interrupted
    /// run): the first slice resumes from the state's cursor instead of
    /// replicate zero. The state is validated against this campaign's
    /// fingerprint when the slice runs — a mismatched query, seed, or
    /// replicate count surfaces as a typed checkpoint error, not a wrong
    /// answer.
    pub fn with_state(mut self, state: CampaignState) -> Self {
        self.state = Some(state);
        self
    }

    /// Whether a shed stop finishes with a partial estimate (best-effort
    /// policy) instead of re-queueing.
    fn absorbs_shedding(&self) -> bool {
        matches!(self.opts.policy, RunPolicy::BestEffort { .. })
    }

    fn run_slice(&mut self, ctl: &CampaignCtl) -> crate::Result<McRun> {
        let mut opts = self.opts.clone();
        // Observe both the scheduler's control token and any cancel
        // handle the submitter attached (a session disconnect signal, a
        // client abort): whichever fires first stops the slice.
        opts.cancel = Some(match &self.opts.cancel {
            Some(own) => mde_numeric::resilience::CancelToken::child_of_all(&[
                ctl.cancel.clone(),
                own.clone(),
            ]),
            None => ctl.cancel.clone(),
        });
        if ctl.deadline.is_some() {
            opts.deadline = ctl.deadline;
        }
        match self.state.take() {
            Some(state) if self.threads > 1 => self.query.resume_parallel_with_options(
                &self.catalog,
                self.n,
                self.seed,
                self.threads,
                &opts,
                state,
            ),
            Some(state) => {
                self.query
                    .resume_with_options(&self.catalog, self.n, self.seed, &opts, state)
            }
            None if self.threads > 1 => self.query.run_parallel_with_options(
                &self.catalog,
                self.n,
                self.seed,
                self.threads,
                &opts,
            ),
            None => self
                .query
                .run_with_options(&self.catalog, self.n, self.seed, &opts),
        }
    }
}

impl Campaign for McCampaign {
    fn run(&mut self, ctl: &CampaignCtl) -> Result<CampaignStep, CampaignError> {
        let run = self.run_slice(ctl).map_err(|e| CampaignError {
            message: e.to_string(),
            severity: e.severity(),
        })?;
        let output = |run: McRun| {
            let value = (run.result.n() > 0).then(|| run.result.mean());
            CampaignOutput {
                value,
                report: run.report,
            }
        };
        match run.stopped {
            None => Ok(CampaignStep::Done(output(run))),
            Some(StopCause::Shed) if self.absorbs_shedding() => {
                // Count the replicates that never ran as shed, not failed:
                // they are excluded from the estimate but visible in the
                // deterministic ledger, and the CI is flagged as widened.
                let mut run = run;
                let cursor = run
                    .checkpoint
                    .as_ref()
                    .map(|s| s.cursor)
                    .unwrap_or(self.n as u64);
                run.report
                    .record_shed((self.n as u64).saturating_sub(cursor));
                Ok(CampaignStep::Done(output(run)))
            }
            Some(StopCause::Cancelled) => {
                // A user/session cancel (the scheduler itself only ever
                // signals shed or preempt) is terminal: re-queueing would
                // spin against the still-cancelled external token. The
                // partial estimate is returned and any configured
                // checkpoint was already persisted for a later resume.
                Ok(CampaignStep::Done(output(run)))
            }
            Some(_) => {
                // Preempted / shed under a strict policy / deadline: keep
                // the checkpoint so the next slice resumes at the cursor.
                let resumable = run.checkpoint.is_some();
                self.state = run.checkpoint;
                Ok(CampaignStep::Boundary { resumable })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::{AggSpec, Plan};
    use crate::random_table::RandomTableSpec;
    use crate::schema::DataType;
    use crate::table::Table;
    use crate::value::Value;
    use crate::vg::NormalVg;
    use mde_numeric::resilience::CancelReason;
    use std::sync::Arc;

    fn demand_campaign(n: usize, policy: RunPolicy) -> McCampaign {
        let mut db = Catalog::new();
        db.insert(
            Table::build("ITEMS", &[("IID", DataType::Int)])
                .rows((0..8).map(|i| vec![Value::from(i)]))
                .finish()
                .unwrap(),
        );
        db.insert(
            Table::build(
                "PARAMS",
                &[("MEAN", DataType::Float), ("STD", DataType::Float)],
            )
            .row(vec![Value::from(10.0), Value::from(2.0)])
            .finish()
            .unwrap(),
        );
        let spec = RandomTableSpec::builder("SALES")
            .for_each(Plan::scan("ITEMS"))
            .with_vg(Arc::new(NormalVg))
            .vg_params_query(Plan::scan("PARAMS"))
            .select(&[("IID", Expr::col("IID")), ("AMT", Expr::col("VALUE"))])
            .build()
            .unwrap();
        let plan = Plan::scan("SALES").aggregate(
            &[],
            vec![AggSpec::new(
                "TOTAL",
                crate::query::AggFunc::Sum,
                Expr::col("AMT"),
            )],
        );
        McCampaign::new(
            MonteCarloQuery::new(vec![spec], plan),
            db,
            n,
            7,
            RunOptions::policy(policy),
        )
    }

    #[test]
    fn completes_in_one_slice() {
        let mut c = demand_campaign(16, RunPolicy::FailFast);
        let step = c.run(&CampaignCtl::new()).expect("campaign runs");
        match step {
            CampaignStep::Done(out) => {
                assert_eq!(out.report.succeeded, 16);
                let v = out.value.expect("estimate present");
                assert!(v.is_finite() && v > 0.0);
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn preempt_then_resume_matches_uninterrupted() {
        // Uninterrupted baseline.
        let mut base = demand_campaign(24, RunPolicy::FailFast);
        let baseline = match base.run(&CampaignCtl::new()).expect("baseline") {
            CampaignStep::Done(out) => out,
            other => panic!("expected Done, got {other:?}"),
        };

        // Preempt immediately: the first slice stops at replicate 0 and
        // reports a resumable boundary.
        let mut c = demand_campaign(24, RunPolicy::FailFast);
        let ctl = CampaignCtl::new();
        ctl.cancel.cancel_for(CancelReason::Preempt);
        match c.run(&ctl).expect("preempted slice") {
            CampaignStep::Boundary { resumable } => assert!(resumable),
            other => panic!("expected Boundary, got {other:?}"),
        }

        // Second slice with a fresh token finishes and matches bit-for-bit.
        let resumed = match c.run(&CampaignCtl::new()).expect("resumed slice") {
            CampaignStep::Done(out) => out,
            other => panic!("expected Done, got {other:?}"),
        };
        assert_eq!(resumed.value, baseline.value);
        assert_eq!(resumed.report.succeeded, baseline.report.succeeded);
    }

    #[test]
    fn best_effort_absorbs_shedding_with_partial_estimate() {
        let mut c = demand_campaign(12, RunPolicy::BestEffort { min_fraction: 0.0 });
        // Run a prefix, preempt, then shed the rest.
        let ctl = CampaignCtl::new();
        ctl.cancel.cancel_for(CancelReason::Preempt);
        match c.run(&ctl).expect("preempted slice") {
            CampaignStep::Boundary { resumable } => assert!(resumable),
            other => panic!("expected Boundary, got {other:?}"),
        }
        let ctl = CampaignCtl::new();
        ctl.cancel.cancel_for(CancelReason::Shed);
        match c.run(&ctl).expect("shed slice") {
            CampaignStep::Done(out) => {
                assert_eq!(out.report.shed, 12, "all replicates shed before running");
                assert!(out.report.ci_widened, "shedding widens the CI");
                assert_eq!(out.value, None, "no replicates ran, no estimate");
                assert_eq!(out.report.metrics.counter("sched.shed"), 12);
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn strict_policy_treats_shed_as_resumable_boundary() {
        let mut c = demand_campaign(12, RunPolicy::FailFast);
        let ctl = CampaignCtl::new();
        ctl.cancel.cancel_for(CancelReason::Shed);
        match c.run(&ctl).expect("shed slice") {
            CampaignStep::Boundary { resumable } => assert!(resumable),
            other => panic!("expected Boundary, got {other:?}"),
        }
        let resumed = c.run(&CampaignCtl::new()).expect("resumed");
        match resumed {
            CampaignStep::Done(out) => assert_eq!(out.report.succeeded, 12),
            other => panic!("expected Done, got {other:?}"),
        }
    }
}
