//! The query executor: pull-based, materializing each operator's output.
//!
//! Joins are hash joins; aggregation is hash-grouped with streaming
//! accumulators; sorting precomputes key values so the comparator never
//! fails mid-sort. All expressions are bound once per operator.

use super::{AggFunc, Catalog, Plan, SortKey};
use crate::expr::BoundExpr;
use crate::table::{Row, Table};
use crate::value::{GroupKey, Value};
use crate::McdbError;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Execute a plan against a catalog, materializing the result table.
pub fn execute(plan: &Plan, catalog: &Catalog) -> crate::Result<Table> {
    match plan {
        Plan::Scan { table } => Ok(catalog.get(table)?.clone()),
        Plan::Values { table } => Ok(table.clone()),
        Plan::Filter { input, predicate } => {
            let t = execute(input, catalog)?;
            let bound = predicate.bind(t.schema())?;
            let mut out = Table::new("filter", t.schema().clone());
            for row in t.into_rows() {
                if bound.eval_predicate(&row)? {
                    out.push_row_unchecked(row);
                }
            }
            Ok(out)
        }
        Plan::Project { input, exprs } => {
            let t = execute(input, catalog)?;
            let out_schema = plan.output_schema(catalog)?;
            let bound: Vec<BoundExpr> = exprs
                .iter()
                .map(|(_, e)| e.bind(t.schema()))
                .collect::<crate::Result<_>>()?;
            let mut out = Table::new("project", out_schema.clone());
            for row in t.rows() {
                let mut new_row = Vec::with_capacity(bound.len());
                for (b, col) in bound.iter().zip(out_schema.columns()) {
                    let v = b.eval(row)?;
                    // Reconcile inferred static type with the runtime value:
                    // Int literals flowing into Float columns are coerced.
                    let v = coerce(v, col.dtype);
                    new_row.push(v);
                }
                out.push_row(new_row)?;
            }
            Ok(out)
        }
        Plan::Join {
            left,
            right,
            on,
            right_prefix,
        } => {
            let lt = execute(left, catalog)?;
            let rt = execute(right, catalog)?;
            if on.is_empty() {
                return Err(McdbError::invalid_plan(
                    "join requires at least one key pair (cross joins unsupported)",
                ));
            }
            let l_idx: Vec<usize> = on
                .iter()
                .map(|(l, _)| lt.schema().index_of(l))
                .collect::<crate::Result<_>>()?;
            let r_idx: Vec<usize> = on
                .iter()
                .map(|(_, r)| rt.schema().index_of(r))
                .collect::<crate::Result<_>>()?;

            let out_schema = lt.schema().concat(rt.schema(), right_prefix)?;

            // Build the hash index on the smaller input (classical
            // build-side selection) and probe with the larger one. Output
            // order is left-major either way: probing the left visits it in
            // row order; probing the right collects (left, right) pairs
            // that are restored to left-major order before emitting.
            let key_of = |row: &Row, idx: &[usize]| -> Option<Vec<GroupKey>> {
                // SQL inner-join semantics: Null keys never match.
                if idx.iter().any(|&j| row[j].is_null()) {
                    return None;
                }
                Some(idx.iter().map(|&j| row[j].group_key()).collect())
            };
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            if rt.len() <= lt.len() {
                let mut index: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
                for (i, row) in rt.rows().iter().enumerate() {
                    if let Some(key) = key_of(row, &r_idx) {
                        index.entry(key).or_default().push(i);
                    }
                }
                for (i, lrow) in lt.rows().iter().enumerate() {
                    if let Some(matches) = key_of(lrow, &l_idx).and_then(|k| index.get(&k)) {
                        for &ri in matches {
                            pairs.push((i, ri));
                        }
                    }
                }
            } else {
                let mut index: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
                for (i, row) in lt.rows().iter().enumerate() {
                    if let Some(key) = key_of(row, &l_idx) {
                        index.entry(key).or_default().push(i);
                    }
                }
                for (i, rrow) in rt.rows().iter().enumerate() {
                    if let Some(matches) = key_of(rrow, &r_idx).and_then(|k| index.get(&k)) {
                        for &li in matches {
                            pairs.push((li, i));
                        }
                    }
                }
                pairs.sort_unstable();
            }

            let mut out = Table::new("join", out_schema);
            let lrows = lt.into_rows();
            for (li, ri) in pairs {
                let mut row = lrows[li].clone();
                row.extend(rt.rows()[ri].iter().cloned());
                out.push_row_unchecked(row);
            }
            Ok(out)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let t = execute(input, catalog)?;
            let out_schema = plan.output_schema(catalog)?;
            let group_idx: Vec<usize> = group_by
                .iter()
                .map(|g| t.schema().index_of(g))
                .collect::<crate::Result<_>>()?;
            let bound_args: Vec<Option<BoundExpr>> = aggs
                .iter()
                .map(|a| a.arg.as_ref().map(|e| e.bind(t.schema())).transpose())
                .collect::<crate::Result<_>>()?;

            // Group rows, remembering first-seen group key values and order.
            let mut states: HashMap<Vec<GroupKey>, (Row, Vec<AggState>)> = HashMap::new();
            let mut order: Vec<Vec<GroupKey>> = Vec::new();
            for row in t.rows() {
                let key: Vec<GroupKey> = group_idx.iter().map(|&j| row[j].group_key()).collect();
                let entry = states.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    (
                        group_idx.iter().map(|&j| row[j].clone()).collect(),
                        aggs.iter().map(|a| AggState::new(a.func)).collect(),
                    )
                });
                for (state, bound) in entry.1.iter_mut().zip(&bound_args) {
                    let v = match bound {
                        Some(b) => Some(b.eval(row)?),
                        None => None,
                    };
                    state.update(v)?;
                }
            }

            let mut out = Table::new("aggregate", out_schema.clone());
            if states.is_empty() && group_by.is_empty() {
                // Global aggregate over empty input: one row of identities.
                let mut row: Row = Vec::new();
                for a in aggs {
                    row.push(AggState::new(a.func).finish());
                }
                // Coerce to declared output types (e.g. SUM over empty -> NULL).
                let row = row
                    .into_iter()
                    .zip(out_schema.columns())
                    .map(|(v, c)| coerce(v, c.dtype))
                    .collect();
                out.push_row(row)?;
                return Ok(out);
            }
            for key in order {
                let (group_vals, sts) = states.remove(&key).expect("key recorded in order");
                let mut row = group_vals;
                for (st, col) in sts
                    .into_iter()
                    .zip(out_schema.columns().iter().skip(group_by.len()))
                {
                    row.push(coerce(st.finish(), col.dtype));
                }
                out.push_row(row)?;
            }
            Ok(out)
        }
        Plan::Sort { input, keys } => {
            let t = execute(input, catalog)?;
            let bound: Vec<(BoundExpr, bool)> = keys
                .iter()
                .map(|SortKey { expr, ascending }| Ok((expr.bind(t.schema())?, *ascending)))
                .collect::<crate::Result<_>>()?;
            let schema = t.schema().clone();
            // Precompute sort keys so the comparator is infallible.
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(t.len());
            for row in t.into_rows() {
                let ks: Vec<Value> = bound
                    .iter()
                    .map(|(b, _)| b.eval(&row))
                    .collect::<crate::Result<_>>()?;
                keyed.push((ks, row));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for ((a, b), (_, asc)) in ka.iter().zip(kb).zip(&bound) {
                    let ord = sql_sort_cmp(a, b);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            let mut out = Table::new("sort", schema);
            for (_, row) in keyed {
                out.push_row_unchecked(row);
            }
            Ok(out)
        }
        Plan::Limit { input, n } => {
            let t = execute(input, catalog)?;
            let mut out = Table::new("limit", t.schema().clone());
            for row in t.into_rows().into_iter().take(*n) {
                out.push_row_unchecked(row);
            }
            Ok(out)
        }
    }
}

/// Total order for sorting: Nulls first, then SQL comparison; incomparable
/// values (mixed types that slipped past typing) tie. Shared with the
/// vectorized engine so both sort identically.
pub(crate) fn sql_sort_cmp(a: &Value, b: &Value) -> Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.sql_cmp(b).unwrap_or(Ordering::Equal),
    }
}

/// Runtime coercion to the statically inferred column type (only numeric
/// widening; anything else passes through and is caught by validation).
pub(crate) fn coerce(v: Value, dtype: crate::schema::DataType) -> Value {
    match (&v, dtype) {
        (Value::Int(i), crate::schema::DataType::Float) => Value::Float(*i as f64),
        _ => v,
    }
}

/// Streaming aggregate accumulator. Shared with the vectorized engine so
/// both produce identical aggregate values (including the Int collapse of
/// integral sums).
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Count(i64),
    Sum { acc: f64, any: bool, int: bool },
    Avg { acc: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                acc: 0.0,
                any: false,
                int: true,
            },
            AggFunc::Avg => AggState::Avg { acc: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    pub(crate) fn update(&mut self, v: Option<Value>) -> crate::Result<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) counts rows; COUNT(expr) counts non-nulls.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::Sum { acc, any, int } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        if !matches!(val, Value::Int(_)) {
                            *int = false;
                        }
                        *acc += val.as_f64()?;
                        *any = true;
                    }
                }
            }
            AggState::Avg { acc, n } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *acc += val.as_f64()?;
                        *n += 1;
                    }
                }
            }
            AggState::Min(best) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match best {
                            None => true,
                            Some(b) => val.sql_cmp(b) == Some(Ordering::Less),
                        };
                        if replace {
                            *best = Some(val);
                        }
                    }
                }
            }
            AggState::Max(best) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match best {
                            None => true,
                            Some(b) => val.sql_cmp(b) == Some(Ordering::Greater),
                        };
                        if replace {
                            *best = Some(val);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum { acc, any, int } => {
                if !any {
                    Value::Null
                } else if int && acc.fract() == 0.0 && acc.abs() < 9e15 {
                    Value::Int(acc as i64)
                } else {
                    Value::Float(acc)
                }
            }
            AggState::Avg { acc, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(acc / n as f64)
                }
            }
            AggState::Min(v) => v.unwrap_or(Value::Null),
            AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::AggSpec;
    use crate::schema::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            Table::build(
                "sales",
                &[
                    ("id", DataType::Int),
                    ("region", DataType::Str),
                    ("amount", DataType::Float),
                ],
            )
            .row(vec![Value::from(1), Value::from("east"), Value::from(10.0)])
            .row(vec![Value::from(2), Value::from("west"), Value::from(20.0)])
            .row(vec![Value::from(3), Value::from("east"), Value::from(30.0)])
            .row(vec![Value::from(4), Value::from("east"), Value::Null])
            .finish()
            .unwrap(),
        );
        c.insert(
            Table::build(
                "regions",
                &[("name", DataType::Str), ("tax", DataType::Float)],
            )
            .row(vec![Value::from("east"), Value::from(0.1)])
            .row(vec![Value::from("west"), Value::from(0.2)])
            .finish()
            .unwrap(),
        );
        c
    }

    #[test]
    fn scan_and_filter() {
        let c = catalog();
        let t = c
            .query(&Plan::scan("sales").filter(Expr::col("amount").gt(Expr::lit(15.0))))
            .unwrap();
        assert_eq!(t.len(), 2);
        // Null amount row dropped (NULL predicate is false).
        let ids = t.column("id").unwrap();
        assert_eq!(ids, vec![Value::from(2), Value::from(3)]);
    }

    #[test]
    fn projection_computes_and_coerces() {
        let c = catalog();
        let t = c
            .query(&Plan::scan("sales").project(&[
                ("id", Expr::col("id")),
                ("with_tax", Expr::col("amount").mul(Expr::lit(1.1))),
            ]))
            .unwrap();
        assert_eq!(t.schema().names(), vec!["id", "with_tax"]);
        assert_eq!(t.rows()[0][1], Value::from(11.0));
        // Null propagates.
        assert!(t.rows()[3][1].is_null());
    }

    #[test]
    fn hash_join_inner_semantics() {
        let c = catalog();
        let t = c
            .query(&Plan::scan("sales").join(Plan::scan("regions"), &[("region", "name")]))
            .unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(
            t.schema().names(),
            vec!["id", "region", "amount", "name", "tax"]
        );
        // Row order preserved from left side.
        assert_eq!(t.rows()[0][4], Value::from(0.1));
        assert_eq!(t.rows()[1][4], Value::from(0.2));
    }

    #[test]
    fn join_null_keys_never_match() {
        let mut c = catalog();
        c.insert(
            Table::build("l", &[("k", DataType::Int)])
                .row(vec![Value::Null])
                .row(vec![Value::from(1)])
                .finish()
                .unwrap(),
        );
        c.insert(
            Table::build("rr", &[("k2", DataType::Int)])
                .row(vec![Value::Null])
                .row(vec![Value::from(1)])
                .finish()
                .unwrap(),
        );
        let t = c
            .query(&Plan::scan("l").join(Plan::scan("rr"), &[("k", "k2")]))
            .unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn join_builds_on_smaller_side_preserving_left_major_order() {
        // Small LEFT dimension table against a larger fact table: the
        // engine builds the hash index on the left, but the output must
        // still be in left-major order (each dim row's matches in fact-row
        // order), exactly as if the right side had been built.
        let mut c = Catalog::new();
        c.insert(
            Table::build("dim", &[("k", DataType::Int), ("label", DataType::Str)])
                .row(vec![Value::from(2), Value::from("two")])
                .row(vec![Value::from(1), Value::from("one")])
                .finish()
                .unwrap(),
        );
        let mut fact = Table::new(
            "fact",
            crate::schema::Schema::from_pairs(&[("k2", DataType::Int), ("x", DataType::Int)])
                .unwrap(),
        );
        for i in 0..9i64 {
            fact.push_row(vec![Value::from(i % 3), Value::from(i)])
                .unwrap();
        }
        c.insert(fact);
        let t = c
            .query_unoptimized(&Plan::scan("dim").join(Plan::scan("fact"), &[("k", "k2")]))
            .unwrap();
        // dim row (2, "two") matches fact rows 2, 5, 8; then (1, "one")
        // matches 1, 4, 7 — left-major, fact-row order within each.
        assert_eq!(t.len(), 6);
        let ks: Vec<Value> = t.column("k").unwrap();
        assert_eq!(ks[..3], vec![Value::from(2); 3][..]);
        assert_eq!(ks[3..], vec![Value::from(1); 3][..]);
        let xs = t.column("x").unwrap();
        assert_eq!(
            xs,
            vec![2i64, 5, 8, 1, 4, 7]
                .into_iter()
                .map(Value::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn join_requires_keys() {
        let c = catalog();
        let p = Plan::Join {
            left: Box::new(Plan::scan("sales")),
            right: Box::new(Plan::scan("regions")),
            on: vec![],
            right_prefix: "r".into(),
        };
        assert!(c.query(&p).is_err());
    }

    #[test]
    fn group_by_aggregation() {
        let c = catalog();
        let t = c
            .query(&Plan::scan("sales").aggregate(
                &["region"],
                vec![
                    AggSpec::count_star("n"),
                    AggSpec::new("nn", AggFunc::Count, Expr::col("amount")),
                    AggSpec::new("total", AggFunc::Sum, Expr::col("amount")),
                    AggSpec::new("mean", AggFunc::Avg, Expr::col("amount")),
                    AggSpec::new("lo", AggFunc::Min, Expr::col("amount")),
                    AggSpec::new("hi", AggFunc::Max, Expr::col("amount")),
                ],
            ))
            .unwrap();
        assert_eq!(t.len(), 2);
        // Groups appear in first-seen order: east, west.
        let east = &t.rows()[0];
        assert_eq!(east[0], Value::from("east"));
        assert_eq!(east[1], Value::from(3)); // COUNT(*) counts the Null row
        assert_eq!(east[2], Value::from(2)); // COUNT(amount) does not
        assert_eq!(east[3], Value::from(40.0));
        assert_eq!(east[4], Value::from(20.0));
        assert_eq!(east[5], Value::from(10.0));
        assert_eq!(east[6], Value::from(30.0));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let c = catalog();
        let p = Plan::scan("sales")
            .filter(Expr::col("amount").gt(Expr::lit(1e9)))
            .aggregate(
                &[],
                vec![
                    AggSpec::count_star("n"),
                    AggSpec::new("total", AggFunc::Sum, Expr::col("amount")),
                ],
            );
        let t = c.query(&p).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::from(0));
        assert!(t.rows()[0][1].is_null());
    }

    #[test]
    fn empty_group_by_over_nonempty_input_is_one_row() {
        let c = catalog();
        let t = c
            .query(&Plan::scan("sales").aggregate(&[], vec![AggSpec::count_star("n")]))
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::from(4));
    }

    #[test]
    fn sort_with_nulls_and_direction() {
        let c = catalog();
        let t = c
            .query(&Plan::scan("sales").sort(vec![SortKey::desc(Expr::col("amount"))]))
            .unwrap();
        let amounts = t.column("amount").unwrap();
        // Descending: 30, 20, 10, then the Null (Nulls-first under asc
        // reverses to last under desc).
        assert_eq!(amounts[0], Value::from(30.0));
        assert!(amounts[3].is_null());

        let t = c
            .query(&Plan::scan("sales").sort(vec![SortKey::asc(Expr::col("amount"))]))
            .unwrap();
        assert!(t.column("amount").unwrap()[0].is_null());
    }

    #[test]
    fn multi_key_sort() {
        let c = catalog();
        let t = c
            .query(&Plan::scan("sales").sort(vec![
                SortKey::asc(Expr::col("region")),
                SortKey::desc(Expr::col("id")),
            ]))
            .unwrap();
        let ids = t.column("id").unwrap();
        assert_eq!(
            ids,
            vec![
                Value::from(4),
                Value::from(3),
                Value::from(1),
                Value::from(2)
            ]
        );
    }

    #[test]
    fn limit_truncates() {
        let c = catalog();
        let t = c.query(&Plan::scan("sales").limit(2)).unwrap();
        assert_eq!(t.len(), 2);
        let t = c.query(&Plan::scan("sales").limit(100)).unwrap();
        assert_eq!(t.len(), 4);
        let t = c.query(&Plan::scan("sales").limit(0)).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn composed_pipeline() {
        // Revenue by region for amounts > 5, joined with tax, computing
        // taxed revenue — a miniature of the paper's "revenue from East
        // Coast customers" query.
        let c = catalog();
        let p = Plan::scan("sales")
            .filter(Expr::col("amount").gt(Expr::lit(5.0)))
            .join(Plan::scan("regions"), &[("region", "name")])
            .project(&[
                ("region", Expr::col("region")),
                (
                    "net",
                    Expr::col("amount").mul(Expr::lit(1.0).sub(Expr::col("tax"))),
                ),
            ])
            .aggregate(
                &["region"],
                vec![AggSpec::new("net_total", AggFunc::Sum, Expr::col("net"))],
            )
            .sort(vec![SortKey::asc(Expr::col("region"))]);
        let t = c.query(&p).unwrap();
        assert_eq!(t.len(), 2);
        let east = &t.rows()[0];
        assert_eq!(east[0], Value::from("east"));
        assert!((east[1].as_f64().unwrap() - 36.0).abs() < 1e-12); // (10+30)*0.9
        let west = &t.rows()[1];
        assert!((west[1].as_f64().unwrap() - 16.0).abs() < 1e-12); // 20*0.8
    }
}
