//! Typed column vectors with null bitmaps — the storage unit of the
//! vectorized executor.
//!
//! A [`ColumnVec`] holds one column of a batch as a contiguous typed
//! vector (`Vec<i64>`, `Vec<f64>`, …) plus a [`NullMask`] recording which
//! lanes are SQL `NULL`. Keeping the type tag per *column* instead of per
//! *value* is what lets the expression kernels in
//! [`BoundExpr::eval_batch`](crate::expr::BoundExpr::eval_batch) run tight
//! monomorphic loops over primitive slices instead of matching on a
//! [`Value`] enum per row.

use crate::schema::DataType;
use crate::value::Value;
use std::sync::Arc;

/// Per-lane null bitmap with an all-valid fast path.
///
/// `bits: None` means "no nulls anywhere" so that fully valid columns (the
/// common case) cost nothing to check; the bitmap is materialized lazily on
/// the first [`NullMask::set_null`].
#[derive(Debug, Clone, PartialEq)]
pub struct NullMask {
    len: usize,
    /// One bit per lane, set = null. `None` = all lanes valid.
    bits: Option<Vec<u64>>,
}

impl NullMask {
    /// An all-valid mask over `len` lanes.
    pub fn all_valid(len: usize) -> Self {
        NullMask { len, bits: None }
    }

    /// Number of lanes covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero lanes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether lane `i` is null.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match &self.bits {
            None => false,
            Some(b) => b[i / 64] & (1u64 << (i % 64)) != 0,
        }
    }

    /// Mark lane `i` as null (materializes the bitmap on first use).
    pub fn set_null(&mut self, i: usize) {
        let words = self.len.div_ceil(64);
        let bits = self.bits.get_or_insert_with(|| vec![0u64; words]);
        bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether any lane is null.
    pub fn any_null(&self) -> bool {
        match &self.bits {
            None => false,
            Some(b) => b.iter().any(|&w| w != 0),
        }
    }

    /// The raw bitmap words, or `None` when the mask never materialized
    /// (all lanes valid). Lets the page-codec tests assert that decoded
    /// masks reproduce the all-valid fast path verbatim.
    #[cfg(test)]
    pub(crate) fn words(&self) -> Option<&[u64]> {
        self.bits.as_deref()
    }

    /// The bitmap words covering the 64-aligned lane window
    /// `[start, start + len)`, or `None` when the mask never materialized
    /// (all lanes valid). This is the zero-copy handoff to the SIMD
    /// kernels in [`crate::query::simd`], which read lane `i` of the
    /// window as `words[i / 64] >> (i % 64) & 1` — exactly why morsel
    /// boundaries are required to be 64-lane aligned.
    #[inline]
    pub(crate) fn word_slice(&self, start: usize, len: usize) -> Option<&[u64]> {
        debug_assert!(start.is_multiple_of(64) && start + len <= self.len);
        self.bits
            .as_deref()
            .map(|b| &b[start / 64..start / 64 + len.div_ceil(64)])
    }

    /// Rebuild a mask from persisted bitmap words. `words: None` must be
    /// used exactly when the original mask was all-valid so that decoded
    /// masks compare equal (`PartialEq`) to their pre-encode originals.
    pub(crate) fn from_words(len: usize, words: Option<Vec<u64>>) -> NullMask {
        debug_assert!(words.as_ref().is_none_or(|w| w.len() == len.div_ceil(64)));
        NullMask { len, bits: words }
    }

    /// Select lanes by index, producing the gathered mask.
    pub fn gather(&self, sel: &[u32]) -> NullMask {
        let mut out = NullMask::all_valid(sel.len());
        if self.any_null() {
            for (k, &i) in sel.iter().enumerate() {
                if self.is_null(i as usize) {
                    out.set_null(k);
                }
            }
        }
        out
    }

    /// Concatenate two masks lane-wise. Preserves the all-valid fast
    /// path: the result only materializes a bitmap if either input has
    /// null lanes.
    pub(crate) fn concat(&self, tail: &NullMask) -> NullMask {
        let mut out = NullMask::all_valid(self.len + tail.len);
        if self.any_null() || tail.any_null() {
            for i in 0..self.len {
                if self.is_null(i) {
                    out.set_null(i);
                }
            }
            for j in 0..tail.len {
                if tail.is_null(j) {
                    out.set_null(self.len + j);
                }
            }
        }
        out
    }
}

/// A typed column of values with a null bitmap.
///
/// The `AllNull` variant represents a column whose every lane is `NULL`
/// and whose type is unconstrained (e.g. the result of evaluating a bare
/// `NULL` literal over a batch) — it is compatible with any declared
/// column type, mirroring how [`Value::Null`] is typeless.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVec {
    /// 64-bit integer column.
    Int {
        /// Lane values (placeholder `0` at null lanes).
        data: Vec<i64>,
        /// Null lanes.
        nulls: NullMask,
    },
    /// 64-bit float column.
    Float {
        /// Lane values (placeholder `0.0` at null lanes).
        data: Vec<f64>,
        /// Null lanes.
        nulls: NullMask,
    },
    /// Boolean column.
    Bool {
        /// Lane values (placeholder `false` at null lanes).
        data: Vec<bool>,
        /// Null lanes.
        nulls: NullMask,
    },
    /// String column (reference-counted payloads; gathers clone `Arc`s).
    Str {
        /// Lane values (placeholder `""` at null lanes).
        data: Vec<Arc<str>>,
        /// Null lanes.
        nulls: NullMask,
    },
    /// An untyped all-null column.
    AllNull {
        /// Number of lanes.
        len: usize,
    },
}

impl ColumnVec {
    /// Number of lanes.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int { data, .. } => data.len(),
            ColumnVec::Float { data, .. } => data.len(),
            ColumnVec::Bool { data, .. } => data.len(),
            ColumnVec::Str { data, .. } => data.len(),
            ColumnVec::AllNull { len } => *len,
        }
    }

    /// Whether the column has zero lanes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's type, or `None` for an untyped all-null column.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            ColumnVec::Int { .. } => Some(DataType::Int),
            ColumnVec::Float { .. } => Some(DataType::Float),
            ColumnVec::Bool { .. } => Some(DataType::Bool),
            ColumnVec::Str { .. } => Some(DataType::Str),
            ColumnVec::AllNull { .. } => None,
        }
    }

    /// Whether lane `i` is null.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnVec::Int { nulls, .. }
            | ColumnVec::Float { nulls, .. }
            | ColumnVec::Bool { nulls, .. }
            | ColumnVec::Str { nulls, .. } => nulls.is_null(i),
            ColumnVec::AllNull { .. } => true,
        }
    }

    /// The value at lane `i` (strings clone their `Arc`).
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Int(data[i])
                }
            }
            ColumnVec::Float { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Float(data[i])
                }
            }
            ColumnVec::Bool { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Bool(data[i])
                }
            }
            ColumnVec::Str { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Str(Arc::clone(&data[i]))
                }
            }
            ColumnVec::AllNull { .. } => Value::Null,
        }
    }

    /// Build a typed column from one column of row storage. Rows must
    /// conform to the declared `dtype` (table rows are validated on
    /// insert), so mismatches are a debug assertion, not an error.
    pub fn from_rows(rows: &[crate::table::Row], col: usize, dtype: DataType) -> ColumnVec {
        let n = rows.len();
        let mut nulls = NullMask::all_valid(n);
        match dtype {
            DataType::Int => {
                let mut data = vec![0i64; n];
                for (i, row) in rows.iter().enumerate() {
                    match &row[col] {
                        Value::Int(v) => data[i] = *v,
                        Value::Null => nulls.set_null(i),
                        other => debug_assert!(false, "Int column holds {other:?}"),
                    }
                }
                ColumnVec::Int { data, nulls }
            }
            DataType::Float => {
                let mut data = vec![0.0f64; n];
                for (i, row) in rows.iter().enumerate() {
                    match &row[col] {
                        Value::Float(v) => data[i] = *v,
                        Value::Null => nulls.set_null(i),
                        other => debug_assert!(false, "Float column holds {other:?}"),
                    }
                }
                ColumnVec::Float { data, nulls }
            }
            DataType::Bool => {
                let mut data = vec![false; n];
                for (i, row) in rows.iter().enumerate() {
                    match &row[col] {
                        Value::Bool(v) => data[i] = *v,
                        Value::Null => nulls.set_null(i),
                        other => debug_assert!(false, "Bool column holds {other:?}"),
                    }
                }
                ColumnVec::Bool { data, nulls }
            }
            DataType::Str => {
                let empty: Arc<str> = Arc::from("");
                let mut data = vec![Arc::clone(&empty); n];
                for (i, row) in rows.iter().enumerate() {
                    match &row[col] {
                        Value::Str(v) => data[i] = Arc::clone(v),
                        Value::Null => nulls.set_null(i),
                        other => debug_assert!(false, "Str column holds {other:?}"),
                    }
                }
                ColumnVec::Str { data, nulls }
            }
        }
    }

    /// Build a column from owned values, inferring the type from the first
    /// non-null value. Mixed `Int`/`Float` lanes promote to `Float`; any
    /// other mix is a type error.
    pub fn from_values(values: Vec<Value>) -> crate::Result<ColumnVec> {
        let dtype = values.iter().find_map(|v| v.data_type());
        let Some(mut dtype) = dtype else {
            return Ok(ColumnVec::AllNull { len: values.len() });
        };
        if dtype == DataType::Int && values.iter().any(|v| matches!(v, Value::Float(_))) {
            dtype = DataType::Float;
        }
        let n = values.len();
        let mut nulls = NullMask::all_valid(n);
        Ok(match dtype {
            DataType::Int => {
                let mut data = vec![0i64; n];
                for (i, v) in values.into_iter().enumerate() {
                    match v {
                        Value::Int(x) => data[i] = x,
                        Value::Null => nulls.set_null(i),
                        other => return Err(mixed_column_error(DataType::Int, &other)),
                    }
                }
                ColumnVec::Int { data, nulls }
            }
            DataType::Float => {
                let mut data = vec![0.0f64; n];
                for (i, v) in values.into_iter().enumerate() {
                    match v {
                        Value::Float(x) => data[i] = x,
                        Value::Int(x) => data[i] = x as f64,
                        Value::Null => nulls.set_null(i),
                        other => return Err(mixed_column_error(DataType::Float, &other)),
                    }
                }
                ColumnVec::Float { data, nulls }
            }
            DataType::Bool => {
                let mut data = vec![false; n];
                for (i, v) in values.into_iter().enumerate() {
                    match v {
                        Value::Bool(x) => data[i] = x,
                        Value::Null => nulls.set_null(i),
                        other => return Err(mixed_column_error(DataType::Bool, &other)),
                    }
                }
                ColumnVec::Bool { data, nulls }
            }
            DataType::Str => {
                let empty: Arc<str> = Arc::from("");
                let mut data = vec![Arc::clone(&empty); n];
                for (i, v) in values.into_iter().enumerate() {
                    match v {
                        Value::Str(x) => data[i] = x,
                        Value::Null => nulls.set_null(i),
                        other => return Err(mixed_column_error(DataType::Str, &other)),
                    }
                }
                ColumnVec::Str { data, nulls }
            }
        })
    }

    /// A column whose every lane holds `v`.
    pub fn broadcast(v: &Value, len: usize) -> ColumnVec {
        match v {
            Value::Null => ColumnVec::AllNull { len },
            Value::Int(x) => ColumnVec::Int {
                data: vec![*x; len],
                nulls: NullMask::all_valid(len),
            },
            Value::Float(x) => ColumnVec::Float {
                data: vec![*x; len],
                nulls: NullMask::all_valid(len),
            },
            Value::Bool(x) => ColumnVec::Bool {
                data: vec![*x; len],
                nulls: NullMask::all_valid(len),
            },
            Value::Str(s) => ColumnVec::Str {
                data: vec![Arc::clone(s); len],
                nulls: NullMask::all_valid(len),
            },
        }
    }

    /// Select lanes by index (a selection-vector gather).
    pub fn gather(&self, sel: &[u32]) -> ColumnVec {
        match self {
            ColumnVec::Int { data, nulls } => ColumnVec::Int {
                data: sel.iter().map(|&i| data[i as usize]).collect(),
                nulls: nulls.gather(sel),
            },
            ColumnVec::Float { data, nulls } => ColumnVec::Float {
                data: sel.iter().map(|&i| data[i as usize]).collect(),
                nulls: nulls.gather(sel),
            },
            ColumnVec::Bool { data, nulls } => ColumnVec::Bool {
                data: sel.iter().map(|&i| data[i as usize]).collect(),
                nulls: nulls.gather(sel),
            },
            ColumnVec::Str { data, nulls } => ColumnVec::Str {
                data: sel.iter().map(|&i| Arc::clone(&data[i as usize])).collect(),
                nulls: nulls.gather(sel),
            },
            ColumnVec::AllNull { .. } => ColumnVec::AllNull { len: sel.len() },
        }
    }

    /// Concatenate two columns of the same type, lane-wise. Used by the
    /// paged table backend to splice the in-memory append tail onto the
    /// decoded on-disk base. Untyped all-null columns adopt the other
    /// side's type (placeholder values, all lanes null), matching what
    /// [`ColumnVec::from_rows`] would build for the combined rows.
    ///
    /// # Panics
    ///
    /// If the two columns carry different concrete types — impossible
    /// when both conform to one schema column, which is the only way the
    /// engine calls this.
    pub(crate) fn concat(&self, tail: &ColumnVec) -> ColumnVec {
        fn typed_nulls(len: usize, dtype: DataType) -> ColumnVec {
            let mut nulls = NullMask::all_valid(len);
            for i in 0..len {
                nulls.set_null(i);
            }
            match dtype {
                DataType::Int => ColumnVec::Int {
                    data: vec![0; len],
                    nulls,
                },
                DataType::Float => ColumnVec::Float {
                    data: vec![0.0; len],
                    nulls,
                },
                DataType::Bool => ColumnVec::Bool {
                    data: vec![false; len],
                    nulls,
                },
                DataType::Str => ColumnVec::Str {
                    data: vec![Arc::from(""); len],
                    nulls,
                },
            }
        }
        match (self, tail) {
            (ColumnVec::AllNull { len: a }, ColumnVec::AllNull { len: b }) => {
                ColumnVec::AllNull { len: a + b }
            }
            (ColumnVec::AllNull { len }, other) => {
                typed_nulls(*len, other.dtype().expect("non-AllNull has a dtype")).concat(other)
            }
            (other, ColumnVec::AllNull { len }) => other.concat(&typed_nulls(
                *len,
                other.dtype().expect("non-AllNull has a dtype"),
            )),
            (ColumnVec::Int { data: a, nulls: na }, ColumnVec::Int { data: b, nulls: nb }) => {
                ColumnVec::Int {
                    data: a.iter().chain(b).copied().collect(),
                    nulls: na.concat(nb),
                }
            }
            (ColumnVec::Float { data: a, nulls: na }, ColumnVec::Float { data: b, nulls: nb }) => {
                ColumnVec::Float {
                    data: a.iter().chain(b).copied().collect(),
                    nulls: na.concat(nb),
                }
            }
            (ColumnVec::Bool { data: a, nulls: na }, ColumnVec::Bool { data: b, nulls: nb }) => {
                ColumnVec::Bool {
                    data: a.iter().chain(b).copied().collect(),
                    nulls: na.concat(nb),
                }
            }
            (ColumnVec::Str { data: a, nulls: na }, ColumnVec::Str { data: b, nulls: nb }) => {
                ColumnVec::Str {
                    data: a.iter().chain(b).map(Arc::clone).collect(),
                    nulls: na.concat(nb),
                }
            }
            (a, b) => unreachable!(
                "concat of mismatched column types {:?} and {:?}",
                a.dtype(),
                b.dtype()
            ),
        }
    }

    /// Concatenate many columns in one pass with a single allocation per
    /// payload — the morsel-merge primitive. Semantically identical to a
    /// left fold of [`ColumnVec::concat`] (including the untyped-all-null
    /// adoption rules and the all-valid null-mask fast path) but O(total)
    /// instead of O(total · parts).
    ///
    /// # Panics
    ///
    /// Like [`ColumnVec::concat`], if two parts carry different concrete
    /// types — impossible when every part was produced by evaluating the
    /// same expression over morsels of one batch.
    pub(crate) fn concat_many(parts: Vec<ColumnVec>) -> ColumnVec {
        if parts.len() == 1 {
            return parts.into_iter().next().expect("one part");
        }
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let Some(dtype) = parts.iter().find_map(|p| p.dtype()) else {
            return ColumnVec::AllNull { len: total };
        };
        let mut nulls = NullMask::all_valid(total);
        let mut offset = 0;
        for p in &parts {
            match p {
                ColumnVec::AllNull { len } => {
                    for i in 0..*len {
                        nulls.set_null(offset + i);
                    }
                }
                _ => {
                    for i in 0..p.len() {
                        if p.is_null(i) {
                            nulls.set_null(offset + i);
                        }
                    }
                }
            }
            offset += p.len();
        }
        macro_rules! fill {
            ($variant:ident, $ty:ty, $zero:expr, $extend:expr) => {{
                let mut data: Vec<$ty> = Vec::with_capacity(total);
                for p in &parts {
                    match p {
                        ColumnVec::$variant { data: d, .. } => $extend(&mut data, d),
                        ColumnVec::AllNull { len } => {
                            data.resize(data.len() + len, $zero);
                        }
                        other => unreachable!(
                            "concat_many of mismatched column types {:?} and {:?}",
                            Some(DataType::$variant),
                            other.dtype()
                        ),
                    }
                }
                ColumnVec::$variant { data, nulls }
            }};
        }
        match dtype {
            DataType::Int => fill!(Int, i64, 0, |out: &mut Vec<i64>, d: &Vec<i64>| out
                .extend_from_slice(d)),
            DataType::Float => fill!(Float, f64, 0.0, |out: &mut Vec<f64>, d: &Vec<f64>| out
                .extend_from_slice(d)),
            DataType::Bool => fill!(Bool, bool, false, |out: &mut Vec<bool>, d: &Vec<bool>| out
                .extend_from_slice(d)),
            DataType::Str => fill!(
                Str,
                Arc<str>,
                Arc::from(""),
                |out: &mut Vec<Arc<str>>, d: &Vec<Arc<str>>| {
                    out.extend(d.iter().map(Arc::clone))
                }
            ),
        }
    }

    /// Numeric widening to a declared column type: an `Int` column flowing
    /// into a `Float` column converts whole; everything else is unchanged
    /// (mismatches are caught by the projection validator).
    pub fn coerce_to(self, dtype: DataType) -> ColumnVec {
        match (self, dtype) {
            (ColumnVec::Int { data, nulls }, DataType::Float) => ColumnVec::Float {
                data: data.into_iter().map(|v| v as f64).collect(),
                nulls,
            },
            (other, _) => other,
        }
    }
}

fn mixed_column_error(expected: DataType, found: &Value) -> crate::McdbError {
    crate::McdbError::type_mismatch("column build", expected.to_string(), format!("{found}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_mask_basics() {
        let mut m = NullMask::all_valid(70);
        assert!(!m.any_null());
        m.set_null(0);
        m.set_null(69);
        assert!(m.is_null(0) && m.is_null(69) && !m.is_null(33));
        let g = m.gather(&[69, 1, 0]);
        assert!(g.is_null(0) && !g.is_null(1) && g.is_null(2));
    }

    #[test]
    fn from_values_infers_and_promotes() {
        let c = ColumnVec::from_values(vec![Value::Null, Value::from(2), Value::from(3)]).unwrap();
        assert_eq!(c.dtype(), Some(DataType::Int));
        assert!(c.is_null(0));
        assert_eq!(c.value(1), Value::from(2));

        let c = ColumnVec::from_values(vec![Value::from(1), Value::from(2.5)]).unwrap();
        assert_eq!(c.dtype(), Some(DataType::Float));
        assert_eq!(c.value(0), Value::from(1.0));

        let c = ColumnVec::from_values(vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(c.dtype(), None);
        assert!(c.value(0).is_null());

        assert!(ColumnVec::from_values(vec![Value::from(1), Value::from("x")]).is_err());
    }

    #[test]
    fn gather_and_broadcast() {
        let c =
            ColumnVec::from_values(vec![Value::from("a"), Value::Null, Value::from("c")]).unwrap();
        let g = c.gather(&[2, 0, 1]);
        assert_eq!(g.value(0), Value::from("c"));
        assert_eq!(g.value(1), Value::from("a"));
        assert!(g.value(2).is_null());

        let b = ColumnVec::broadcast(&Value::from(true), 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.value(2), Value::from(true));
    }

    #[test]
    fn concat_splices_tails_and_adopts_types() {
        let base = ColumnVec::from_values(vec![Value::from(1), Value::Null]).unwrap();
        let tail = ColumnVec::from_values(vec![Value::from(3)]).unwrap();
        let joined = base.concat(&tail);
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.value(0), Value::from(1));
        assert!(joined.value(1).is_null());
        assert_eq!(joined.value(2), Value::from(3));

        // All-valid fast path survives concat.
        let a = ColumnVec::from_values(vec![Value::from("x")]).unwrap();
        let b = ColumnVec::from_values(vec![Value::from("y")]).unwrap();
        match a.concat(&b) {
            ColumnVec::Str { nulls, .. } => assert!(nulls.words().is_none()),
            other => panic!("expected Str, got {other:?}"),
        }

        // Untyped all-null sides adopt the typed side's dtype.
        let n = ColumnVec::AllNull { len: 2 };
        let typed = n.concat(&tail);
        assert_eq!(typed.dtype(), Some(DataType::Int));
        assert!(typed.value(0).is_null() && typed.value(1).is_null());
        assert_eq!(typed.value(2), Value::from(3));
        let back = tail.concat(&n);
        assert_eq!(back.dtype(), Some(DataType::Int));
        assert_eq!(back.value(0), Value::from(3));
        assert!(back.value(2).is_null());
        assert_eq!(
            n.concat(&ColumnVec::AllNull { len: 1 }),
            ColumnVec::AllNull { len: 3 }
        );
    }

    #[test]
    fn concat_many_matches_concat_fold() {
        let parts = vec![
            ColumnVec::from_values(vec![Value::from(1), Value::Null]).unwrap(),
            ColumnVec::AllNull { len: 3 },
            ColumnVec::from_values(vec![Value::from(7)]).unwrap(),
        ];
        let folded = parts
            .iter()
            .skip(1)
            .fold(parts[0].clone(), |acc, p| acc.concat(p));
        assert_eq!(ColumnVec::concat_many(parts), folded);

        // All-AllNull stays untyped; all-valid fast path survives.
        assert_eq!(
            ColumnVec::concat_many(vec![
                ColumnVec::AllNull { len: 2 },
                ColumnVec::AllNull { len: 1 }
            ]),
            ColumnVec::AllNull { len: 3 }
        );
        let a = ColumnVec::from_values(vec![Value::from("x")]).unwrap();
        let b = ColumnVec::from_values(vec![Value::from("y")]).unwrap();
        match ColumnVec::concat_many(vec![a, b]) {
            ColumnVec::Str { nulls, .. } => assert!(nulls.words().is_none()),
            other => panic!("expected Str, got {other:?}"),
        }
    }

    #[test]
    fn word_slice_windows_align() {
        let mut m = NullMask::all_valid(200);
        assert!(m.word_slice(64, 64).is_none());
        m.set_null(70);
        let w = m.word_slice(64, 64).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0] >> 6 & 1, 1, "global lane 70 = local lane 6");
        assert_eq!(m.word_slice(128, 72).unwrap().len(), 2);
    }

    #[test]
    fn coercion_widens_int_to_float() {
        let c = ColumnVec::from_values(vec![Value::from(1), Value::Null]).unwrap();
        let f = c.coerce_to(DataType::Float);
        assert_eq!(f.dtype(), Some(DataType::Float));
        assert_eq!(f.value(0), Value::from(1.0));
        assert!(f.value(1).is_null());
    }
}
