//! Columnar record batches: a [`Schema`] plus one [`ColumnVec`] per column.
//!
//! A [`Batch`] is the unit of data flowing between physical operators in the
//! vectorized executor. Operators that only reorder or drop rows (filter,
//! sort, limit) never touch a `Batch` at all — they compose selection
//! vectors over a shared `Arc<Batch>` and only the final result (or an
//! operator that must rebuild columns, like a projection) materializes.

use super::column::ColumnVec;
use crate::schema::Schema;
use crate::table::{Row, Table};

/// An immutable columnar batch of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    schema: Schema,
    columns: Vec<ColumnVec>,
    len: usize,
}

impl Batch {
    /// Transpose a validated row-oriented table into columnar form.
    pub fn from_table(table: &Table) -> Batch {
        let schema = table.schema().clone();
        let rows = table.rows();
        let columns = schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, col)| ColumnVec::from_rows(rows, i, col.dtype))
            .collect();
        Batch {
            schema,
            columns,
            len: rows.len(),
        }
    }

    /// Assemble a batch from pre-built columns. All columns must have the
    /// same length and there must be one per schema column.
    pub fn from_columns(
        schema: Schema,
        columns: Vec<ColumnVec>,
        len: usize,
    ) -> crate::Result<Batch> {
        if columns.len() != schema.len() {
            return Err(crate::McdbError::ArityMismatch {
                context: "Batch::from_columns".into(),
                expected: schema.len(),
                found: columns.len(),
            });
        }
        for c in &columns {
            if c.len() != len {
                return Err(crate::McdbError::ArityMismatch {
                    context: "Batch::from_columns".into(),
                    expected: len,
                    found: c.len(),
                });
            }
        }
        Ok(Batch {
            schema,
            columns,
            len,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The batch schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All columns, in schema order.
    pub fn columns(&self) -> &[ColumnVec] {
        &self.columns
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &ColumnVec {
        &self.columns[i]
    }

    /// The row at index `i`, materialized.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Check that every index in a selection vector addresses a row of
    /// this batch — the typed guard in front of the gather kernels, which
    /// index unchecked. A malformed selection vector (an executor bug, or
    /// a caller-supplied one) surfaces as
    /// [`McdbError::RowOutOfBounds`](crate::McdbError::RowOutOfBounds)
    /// instead of a panic deep inside a column kernel.
    fn validate_sel(&self, context: &str, sel: &[u32]) -> crate::Result<()> {
        match sel.iter().find(|&&i| i as usize >= self.len) {
            None => Ok(()),
            Some(&i) => Err(crate::McdbError::RowOutOfBounds {
                context: context.into(),
                index: i as u64,
                rows: self.len,
            }),
        }
    }

    /// Validate a selection vector destined for result materialization,
    /// reporting failures under the `Batch::to_table` context. The
    /// morsel-parallel executor validates once up front and then
    /// materializes rows unchecked on worker threads.
    pub(crate) fn check_sel(&self, sel: &[u32]) -> crate::Result<()> {
        self.validate_sel("Batch::to_table", sel)
    }

    /// Materialize a row-oriented [`Table`] named `name`, optionally
    /// restricted/reordered by a selection vector. Fails with a typed
    /// error if the selection vector addresses rows past the batch end.
    pub fn to_table(&self, name: &str, sel: Option<&[u32]>) -> crate::Result<Table> {
        let mut out = Table::new(name, self.schema.clone());
        match sel {
            None => {
                for i in 0..self.len {
                    out.push_row_unchecked(self.row(i));
                }
            }
            Some(sel) => {
                self.validate_sel("Batch::to_table", sel)?;
                for &i in sel {
                    out.push_row_unchecked(self.row(i as usize));
                }
            }
        }
        Ok(out)
    }

    /// Gather a new batch by row index. Fails with a typed error if the
    /// selection vector addresses rows past the batch end.
    pub fn gather(&self, sel: &[u32]) -> crate::Result<Batch> {
        self.validate_sel("Batch::gather", sel)?;
        Ok(Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(sel)).collect(),
            len: sel.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Str),
            Column::new("score", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::new("sample", schema);
        t.push_row(vec![Value::from(1), Value::from("a"), Value::from(0.5)])
            .unwrap();
        t.push_row(vec![Value::from(2), Value::Null, Value::Null])
            .unwrap();
        t.push_row(vec![Value::from(3), Value::from("c"), Value::from(2.5)])
            .unwrap();
        t
    }

    #[test]
    fn round_trips_through_columnar_form() {
        let t = sample();
        let b = Batch::from_table(&t);
        assert_eq!(b.len(), 3);
        let back = b.to_table("sample", None).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn selection_vector_restricts_and_reorders() {
        let t = sample();
        let b = Batch::from_table(&t);
        let sel = [2u32, 0u32];
        let out = b.to_table("out", Some(&sel)).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0][0], Value::from(3));
        assert_eq!(out.rows()[1][0], Value::from(1));

        let g = b.gather(&sel).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.row(0), t.rows()[2]);
    }

    #[test]
    fn out_of_range_selection_is_a_typed_error_not_a_panic() {
        let b = Batch::from_table(&sample());
        let sel = [0u32, 3u32]; // batch has rows 0..=2
        match b.to_table("out", Some(&sel)) {
            Err(crate::McdbError::RowOutOfBounds {
                context,
                index,
                rows,
            }) => {
                assert_eq!(context, "Batch::to_table");
                assert_eq!((index, rows), (3, 3));
            }
            other => panic!("expected RowOutOfBounds, got {other:?}"),
        }
        match b.gather(&[u32::MAX]) {
            Err(crate::McdbError::RowOutOfBounds { index, rows, .. }) => {
                assert_eq!((index, rows), (u32::MAX as u64, 3));
            }
            other => panic!("expected RowOutOfBounds, got {other:?}"),
        }
        // The error is classified fatal: a malformed selection vector
        // fails identically on every attempt.
        use mde_numeric::{ErrorClass as _, Severity};
        let e = b.gather(&[9]).unwrap_err();
        assert_eq!(e.severity(), Severity::Fatal);
        assert!(e.to_string().contains("row index 9"));
    }
}
