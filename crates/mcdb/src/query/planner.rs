//! Rewrite-based plan optimization.
//!
//! §2.3 of the paper observes that "the problem of simulation-experiment
//! optimization subsumes the problem of query optimization": composite
//! platforms run queries to harmonize data between models at every Monte
//! Carlo repetition, so classical rewrites pay off multiplied by the
//! replication count. The rewrites here are the classical ones:
//!
//! 1. **Conjunct splitting** — `Filter(a AND b)` → `Filter(a)` over
//!    `Filter(b)`, enabling the next rewrite per conjunct.
//! 2. **Filter pushdown below joins** — a predicate referencing only one
//!    join side moves below the join, shrinking the join input.
//! 3. **Filter fusion** — adjacent filters re-merge into one conjunction
//!    after pushdown, so rows are tested once.
//! 4. **Constant folding** — literal-only subexpressions evaluate at plan
//!    time, so per-replicate execution never recomputes them.
//! 5. **Projection pruning** — a projection (or aggregation) stacked on
//!    another projection drops inner columns nothing references.
//!
//! The gridfield `restrict`/`regrid` commutation of §2.2 is the same idea
//! in a different algebra; see `mde_harmonize::gridfield`.

use super::{AggSpec, Plan, SortKey};
use crate::expr::Expr;
use std::collections::BTreeSet;

/// Optimize a plan by repeated local rewrites until fixpoint (bounded by a
/// generous iteration cap; each rewrite strictly reduces a measure, so the
/// cap is never hit in practice).
pub fn optimize(plan: Plan) -> Plan {
    let mut current = plan;
    for _ in 0..64 {
        let (next, changed) = rewrite(current);
        current = next;
        if !changed {
            break;
        }
    }
    current
}

/// One bottom-up rewrite pass. Returns the plan and whether anything
/// changed.
fn rewrite(plan: Plan) -> (Plan, bool) {
    match plan {
        Plan::Filter { input, predicate } => {
            let (input, mut changed) = rewrite(*input);
            let (predicate, folded) = fold_expr(predicate);
            changed |= folded;
            // Split conjunctions into a list of predicates to place.
            let mut conjuncts = Vec::new();
            split_conjuncts(predicate, &mut conjuncts);

            let mut node = input;
            let mut remaining = Vec::new();
            for pred in conjuncts {
                match try_push_down(node, pred) {
                    Ok(new_node) => {
                        node = new_node;
                        changed = true;
                    }
                    Err((old_node, pred)) => {
                        node = old_node;
                        remaining.push(pred);
                    }
                }
            }
            if remaining.is_empty() {
                (node, true)
            } else {
                let fused = fuse_conjuncts(remaining);
                // Splitting-then-refusing identical conjuncts is a no-op;
                // only report change if a pushdown actually happened.
                (node.filter(fused), changed)
            }
        }
        Plan::Project { input, exprs } => {
            let (input, mut changed) = rewrite(*input);
            let exprs: Vec<(String, Expr)> = exprs
                .into_iter()
                .map(|(n, e)| {
                    let (e, c) = fold_expr(e);
                    changed |= c;
                    (n, e)
                })
                .collect();
            let needed: BTreeSet<String> = exprs
                .iter()
                .flat_map(|(_, e)| e.referenced_columns())
                .collect();
            let (input, pruned) = prune_projection(input, &needed);
            changed |= pruned;
            (
                Plan::Project {
                    input: Box::new(input),
                    exprs,
                },
                changed,
            )
        }
        Plan::Join {
            left,
            right,
            on,
            right_prefix,
        } => {
            let (left, c1) = rewrite(*left);
            let (right, c2) = rewrite(*right);
            (
                Plan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    on,
                    right_prefix,
                },
                c1 || c2,
            )
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let (input, mut changed) = rewrite(*input);
            let aggs: Vec<AggSpec> = aggs
                .into_iter()
                .map(|mut a| {
                    if let Some(arg) = a.arg.take() {
                        let (arg, c) = fold_expr(arg);
                        changed |= c;
                        a.arg = Some(arg);
                    }
                    a
                })
                .collect();
            let needed: BTreeSet<String> = group_by
                .iter()
                .cloned()
                .chain(
                    aggs.iter()
                        .filter_map(|a| a.arg.as_ref())
                        .flat_map(Expr::referenced_columns),
                )
                .collect();
            let (input, pruned) = prune_projection(input, &needed);
            changed |= pruned;
            (
                Plan::Aggregate {
                    input: Box::new(input),
                    group_by,
                    aggs,
                },
                changed,
            )
        }
        Plan::Sort { input, keys } => {
            let (input, mut changed) = rewrite(*input);
            let keys: Vec<SortKey> = keys
                .into_iter()
                .map(|SortKey { expr, ascending }| {
                    let (expr, c) = fold_expr(expr);
                    changed |= c;
                    SortKey { expr, ascending }
                })
                .collect();
            (
                Plan::Sort {
                    input: Box::new(input),
                    keys,
                },
                changed,
            )
        }
        Plan::Limit { input, n } => {
            let (input, changed) = rewrite(*input);
            (
                Plan::Limit {
                    input: Box::new(input),
                    n,
                },
                changed,
            )
        }
        leaf @ (Plan::Scan { .. } | Plan::Values { .. }) => (leaf, false),
    }
}

/// Fold literal-only subexpressions bottom-up through the scalar
/// evaluator, so prepared plans never recompute them per row.
///
/// A node folds only when every operand is a literal, evaluation succeeds,
/// **and** the result is non-Null: an erroring subexpression must keep
/// erroring at execution time, and folding to a Null literal would erase
/// the statically inferred output type (`infer_type` gives `1 = 1` type
/// Bool but a bare Null literal type Float). The rewrite is idempotent —
/// a folded node is a literal, and literals never fold again.
fn fold_expr(e: Expr) -> (Expr, bool) {
    match e {
        Expr::Binary { op, left, right } => {
            let (left, c1) = fold_expr(*left);
            let (right, c2) = fold_expr(*right);
            if let (Expr::Lit(l), Expr::Lit(r)) = (&left, &right) {
                if let Ok(v) = crate::expr::eval_binary(op, l.clone(), r.clone()) {
                    if !v.is_null() {
                        return (Expr::Lit(v), true);
                    }
                }
            }
            (
                Expr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                },
                c1 || c2,
            )
        }
        Expr::Unary { op, expr } => {
            let (expr, c) = fold_expr(*expr);
            if let Expr::Lit(v) = &expr {
                if let Ok(v) = crate::expr::eval_unary(op, v.clone()) {
                    if !v.is_null() {
                        return (Expr::Lit(v), true);
                    }
                }
            }
            (
                Expr::Unary {
                    op,
                    expr: Box::new(expr),
                },
                c,
            )
        }
        Expr::Func { func, arg } => {
            let (arg, c) = fold_expr(*arg);
            if let Expr::Lit(v) = &arg {
                if let Ok(v) = crate::expr::eval_func(func, v.clone()) {
                    if !v.is_null() {
                        return (Expr::Lit(v), true);
                    }
                }
            }
            (
                Expr::Func {
                    func,
                    arg: Box::new(arg),
                },
                c,
            )
        }
        leaf @ (Expr::Col(_) | Expr::Lit(_)) => (leaf, false),
    }
}

/// If `input` is a projection, drop its output columns that `needed` does
/// not reference (the consumer is another projection or an aggregation, so
/// anything unreferenced is dead). Conservative: only drops — never
/// rewrites surviving expressions — and only looks one projection deep.
fn prune_projection(input: Plan, needed: &BTreeSet<String>) -> (Plan, bool) {
    match input {
        Plan::Project {
            input: inner,
            exprs,
        } => {
            let before = exprs.len();
            let kept: Vec<(String, Expr)> = exprs
                .into_iter()
                .filter(|(n, _)| needed.contains(n))
                .collect();
            let changed = kept.len() < before;
            (
                Plan::Project {
                    input: inner,
                    exprs: kept,
                },
                changed,
            )
        }
        other => (other, false),
    }
}

/// Try to push one predicate below `node`. On success returns the new node;
/// on failure returns the original node and predicate unchanged.
#[allow(clippy::result_large_err)] // the Err side *is* the pass-through path
fn try_push_down(node: Plan, pred: Expr) -> Result<Plan, (Plan, Expr)> {
    match node {
        Plan::Join {
            left,
            right,
            on,
            right_prefix,
        } => {
            let cols = pred.referenced_columns();
            let left_cols = plan_column_names(&left);
            let right_cols = plan_column_names(&right);
            // Columns that exist on the left keep their names in join
            // output; right columns may be renamed on collision, in which
            // case they are not safely pushable — require exact, unprefixed,
            // unambiguous membership.
            let all_left = cols.iter().all(|c| left_cols.contains(c));
            let all_right = cols
                .iter()
                .all(|c| right_cols.contains(c) && !left_cols.contains(c));
            if all_left {
                Ok(Plan::Join {
                    left: Box::new(left.filter(pred)),
                    right,
                    on,
                    right_prefix,
                })
            } else if all_right {
                Ok(Plan::Join {
                    left,
                    right: Box::new(right.filter(pred)),
                    on,
                    right_prefix,
                })
            } else {
                Err((
                    Plan::Join {
                        left,
                        right,
                        on,
                        right_prefix,
                    },
                    pred,
                ))
            }
        }
        // Filters commute with sorts and pass through other filters; both
        // are cheap wins that also expose deeper joins.
        Plan::Sort { input, keys } => match try_push_down(*input, pred) {
            Ok(inner) => Ok(Plan::Sort {
                input: Box::new(inner),
                keys,
            }),
            Err((inner, pred)) => Err((
                Plan::Sort {
                    input: Box::new(inner),
                    keys,
                },
                pred,
            )),
        },
        other => Err((other, pred)),
    }
}

/// Best-effort static column-name set of a plan (without a catalog, Scan
/// contributes nothing — pushdown through scans of unknown schema is
/// skipped, which is safe).
fn plan_column_names(plan: &Plan) -> BTreeSet<String> {
    match plan {
        Plan::Scan { .. } => BTreeSet::new(),
        Plan::Values { table } => table.schema().names().into_iter().collect(),
        Plan::Filter { input, .. } | Plan::Sort { input, .. } | Plan::Limit { input, .. } => {
            plan_column_names(input)
        }
        Plan::Project { exprs, .. } => exprs.iter().map(|(n, _)| n.clone()).collect(),
        Plan::Join { left, right, .. } => {
            // Approximation: union, with collisions unresolved; pushdown
            // requires unambiguous membership so this stays conservative.
            let mut s = plan_column_names(left);
            s.extend(plan_column_names(right));
            s
        }
        Plan::Aggregate { group_by, aggs, .. } => group_by
            .iter()
            .cloned()
            .chain(aggs.iter().map(|a| a.name.clone()))
            .collect(),
    }
}

fn split_conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary {
            op: crate::expr::BinOp::And,
            left,
            right,
        } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

fn fuse_conjuncts(mut preds: Vec<Expr>) -> Expr {
    let first = preds.remove(0);
    preds.into_iter().fold(first, |acc, p| acc.and(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggSpec, Catalog};
    use crate::schema::DataType;
    use crate::table::Table;
    use crate::value::Value;

    fn people() -> Table {
        Table::build("people", &[("pid", DataType::Int), ("age", DataType::Int)])
            .row(vec![Value::from(1), Value::from(3)])
            .row(vec![Value::from(2), Value::from(40)])
            .finish()
            .unwrap()
    }

    fn visits() -> Table {
        Table::build(
            "visits",
            &[("vid", DataType::Int), ("cost", DataType::Float)],
        )
        .row(vec![Value::from(1), Value::from(10.0)])
        .row(vec![Value::from(1), Value::from(20.0)])
        .row(vec![Value::from(2), Value::from(5.0)])
        .finish()
        .unwrap()
    }

    fn is_filter_below_join(p: &Plan) -> bool {
        match p {
            Plan::Join { left, right, .. } => {
                matches!(**left, Plan::Filter { .. }) || matches!(**right, Plan::Filter { .. })
            }
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Aggregate { input, .. } => is_filter_below_join(input),
            _ => false,
        }
    }

    #[test]
    fn pushes_left_side_filter_below_join() {
        let p = Plan::values(people())
            .join(Plan::values(visits()), &[("pid", "vid")])
            .filter(Expr::col("age").lt(Expr::lit(5)));
        let opt = optimize(p);
        assert!(is_filter_below_join(&opt), "filter not pushed: {opt:?}");
    }

    #[test]
    fn pushes_right_side_filter_below_join() {
        let p = Plan::values(people())
            .join(Plan::values(visits()), &[("pid", "vid")])
            .filter(Expr::col("cost").gt(Expr::lit(7.0)));
        let opt = optimize(p);
        assert!(is_filter_below_join(&opt));
    }

    #[test]
    fn splits_conjuncts_to_both_sides() {
        let p = Plan::values(people())
            .join(Plan::values(visits()), &[("pid", "vid")])
            .filter(
                Expr::col("age")
                    .lt(Expr::lit(5))
                    .and(Expr::col("cost").gt(Expr::lit(7.0))),
            );
        let opt = optimize(p);
        // Both sides should now carry a filter.
        if let Plan::Join { left, right, .. } = &opt {
            assert!(matches!(**left, Plan::Filter { .. }));
            assert!(matches!(**right, Plan::Filter { .. }));
        } else {
            panic!("expected bare join at root, got {opt:?}");
        }
    }

    #[test]
    fn cross_side_predicate_stays_above() {
        let p = Plan::values(people())
            .join(Plan::values(visits()), &[("pid", "vid")])
            .filter(Expr::col("age").lt(Expr::col("cost")));
        let opt = optimize(p);
        assert!(matches!(opt, Plan::Filter { .. }));
    }

    #[test]
    fn optimized_plans_produce_identical_results() {
        let mut c = Catalog::new();
        c.insert(people());
        c.insert(visits());
        let plans = vec![
            Plan::scan("people")
                .join(Plan::scan("visits"), &[("pid", "vid")])
                .filter(
                    Expr::col("age")
                        .lt(Expr::lit(50))
                        .and(Expr::col("cost").gt(Expr::lit(7.0))),
                ),
            Plan::values(people())
                .join(Plan::values(visits()), &[("pid", "vid")])
                .filter(Expr::col("age").gt(Expr::lit(5)))
                .aggregate(&[], vec![AggSpec::count_star("n")]),
        ];
        for p in plans {
            let opt = c.query(&p).unwrap();
            let raw = c.query_unoptimized(&p).unwrap();
            assert_eq!(
                opt.rows(),
                raw.rows(),
                "optimizer changed results for {p:?}"
            );
        }
    }

    #[test]
    fn pushdown_skipped_for_unknown_scan_schema() {
        // Scans have no statically known columns, so nothing is pushed —
        // but the plan must still execute correctly.
        let p = Plan::scan("people")
            .join(Plan::scan("visits"), &[("pid", "vid")])
            .filter(Expr::col("age").lt(Expr::lit(5)));
        let opt = optimize(p.clone());
        let mut c = Catalog::new();
        c.insert(people());
        c.insert(visits());
        assert_eq!(
            c.query_unoptimized(&opt).unwrap().rows(),
            c.query_unoptimized(&p).unwrap().rows()
        );
    }

    #[test]
    fn filter_commutes_with_sort() {
        use crate::query::SortKey;
        let p = Plan::values(people())
            .join(Plan::values(visits()), &[("pid", "vid")])
            .sort(vec![SortKey::asc(Expr::col("age"))])
            .filter(Expr::col("age").lt(Expr::lit(5)));
        let opt = optimize(p);
        // Root should now be the sort, with the filter pushed inside.
        assert!(matches!(opt, Plan::Sort { .. }), "got {opt:?}");
    }

    #[test]
    fn optimize_is_idempotent() {
        let p = Plan::values(people())
            .join(Plan::values(visits()), &[("pid", "vid")])
            .filter(Expr::col("age").lt(Expr::lit(5)));
        let once = optimize(p);
        let twice = optimize(once.clone());
        assert_eq!(once, twice);
    }

    #[test]
    fn folds_literal_subexpressions() {
        // 1 + 2 * 3 folds all the way to 7 inside a projection.
        let p = Plan::values(people())
            .project(&[("x", Expr::lit(1).add(Expr::lit(2).mul(Expr::lit(3))))]);
        match optimize(p) {
            Plan::Project { exprs, .. } => assert_eq!(exprs[0].1, Expr::lit(7)),
            other => panic!("expected project, got {other:?}"),
        }
        // Mixed literal/column expressions fold only the literal part.
        let p = Plan::values(people()).filter(Expr::col("age").lt(Expr::lit(10).mul(Expr::lit(4))));
        match optimize(p) {
            Plan::Filter { predicate, .. } => {
                assert_eq!(predicate, Expr::col("age").lt(Expr::lit(40)));
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn folding_preserves_null_and_error_semantics() {
        // NULL + 1 evaluates to Null, which must NOT fold: a literal Null
        // has no static type, so folding would change the inferred schema.
        let p = Plan::values(people()).project(&[("x", Expr::lit(Value::Null).add(Expr::lit(1)))]);
        match optimize(p) {
            Plan::Project { exprs, .. } => {
                assert!(matches!(exprs[0].1, Expr::Binary { .. }))
            }
            other => panic!("expected project, got {other:?}"),
        }
        // 1 / 0 degrades to Null at runtime — likewise left in place, and
        // still identical between optimized and reference execution.
        let mut c = Catalog::new();
        c.insert(people());
        let p = Plan::scan("people").project(&[("x", Expr::lit(1).div(Expr::lit(0)))]);
        assert_eq!(
            c.query(&p).unwrap().rows(),
            c.query_unoptimized(&p).unwrap().rows()
        );
        // A type error stays a runtime error in both engines.
        let bad = Plan::scan("people").project(&[("x", Expr::lit("s").add(Expr::lit(1)))]);
        assert!(c.query(&bad).is_err());
        assert!(c.query_unoptimized(&bad).is_err());
    }

    #[test]
    fn prunes_unreferenced_projection_columns() {
        // Project over Project: the inner "b" column is never used.
        let p = Plan::values(people())
            .project(&[
                ("a", Expr::col("pid")),
                ("b", Expr::col("age").mul(Expr::lit(2))),
            ])
            .project(&[("a2", Expr::col("a").add(Expr::lit(1)))]);
        let opt = optimize(p.clone());
        match &opt {
            Plan::Project { input, .. } => match input.as_ref() {
                Plan::Project { exprs, .. } => {
                    assert_eq!(exprs.len(), 1);
                    assert_eq!(exprs[0].0, "a");
                }
                other => panic!("expected inner project, got {other:?}"),
            },
            other => panic!("expected project, got {other:?}"),
        }
        // Aggregate over Project: only grouped/aggregated columns survive.
        let agg = Plan::values(people())
            .project(&[
                ("a", Expr::col("pid")),
                ("b", Expr::col("age").mul(Expr::lit(2))),
                ("c", Expr::col("age")),
            ])
            .aggregate(
                &["a"],
                vec![AggSpec::new(
                    "s",
                    super::super::AggFunc::Sum,
                    Expr::col("c"),
                )],
            );
        match optimize(agg.clone()) {
            Plan::Aggregate { input, .. } => match *input {
                Plan::Project { exprs, .. } => {
                    let names: Vec<&str> = exprs.iter().map(|(n, _)| n.as_str()).collect();
                    assert_eq!(names, vec!["a", "c"]);
                }
                other => panic!("expected inner project, got {other:?}"),
            },
            other => panic!("expected aggregate, got {other:?}"),
        }
        // Results are unchanged by pruning, and pruning is idempotent.
        let mut c = Catalog::new();
        c.insert(people());
        for plan in [p, agg] {
            assert_eq!(
                c.query(&plan).unwrap().rows(),
                c.query_unoptimized(&plan).unwrap().rows()
            );
            let once = optimize(plan);
            assert_eq!(once.clone(), optimize(once));
        }
    }
}
