//! Physical query plans and the vectorized columnar executor.
//!
//! [`PreparedQuery::prepare`] lowers a logical [`Plan`] against a catalog
//! snapshot: the plan is optimized, every expression is bound to column
//! indices exactly once, operator output schemas are resolved, inline
//! `Values` tables are transposed to columnar batches, and join key columns
//! are indexed. The resulting physical plan can then be executed any number
//! of times with [`PreparedQuery::execute`] — the prepare-once /
//! execute-per-replicate split that MCDB-style Monte Carlo processing is
//! built around.
//!
//! Execution is vectorized: data flows between operators as
//! [`Chunk`]s — a shared [`Batch`] plus an optional selection vector —
//! so filters, sorts, and limits never copy rows, and expression evaluation
//! runs whole-column kernels ([`BoundExpr::eval_batch`]). Row-level
//! semantics (null propagation, Kleene logic, first-seen group order,
//! Null join keys never matching, validation errors) are identical to the
//! legacy row-at-a-time interpreter in `exec.rs`, which is retained as the
//! reference for differential tests.
//!
//! Execution is also *morsel-parallel*: each operator splits its lane
//! space into 64-aligned morsels ([`crate::query::ExecConfig`]) that are
//! dispatched round-robin onto scoped worker threads
//! ([`crate::par::par_map_ordered`]) and merged back **in morsel order**.
//! Because morsel decomposition depends only on the data and
//! `morsel_rows` — never on the thread count — and every merge walks
//! morsels in their fixed order (group-by accumulates in global lane
//! order, join probe output concatenates in probe-lane order, errors
//! resolve lowest-morsel-first), results are bit-identical to sequential
//! execution at any thread count. Hot filter predicates and integer join
//! probes additionally route through the runtime-dispatched SIMD kernels
//! in [`crate::query::simd`], whose portable twins are exact, so SIMD
//! availability never changes results either.

use super::batch::Batch;
use super::column::{ColumnVec, NullMask};
use super::exec::{coerce, sql_sort_cmp, AggState};
use super::{infer_type, planner, simd, AggFunc, Catalog, Plan};
use crate::expr::{BinOp, BoundExpr};
use crate::par::{first_error, morsel_ranges, par_map_ordered};
use crate::schema::{Column, DataType, Schema};
use crate::storage::spill::{partition_of, SpilledBatch};
use crate::table::{Row, Table};
use crate::value::{GroupKey, Value};
use crate::McdbError;
use mde_numeric::obs::{Counter, Span, Tracer};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// A unit of data flowing between physical operators: a shared columnar
/// batch plus an optional selection vector of row indices into it.
#[derive(Debug, Clone)]
struct Chunk {
    batch: Arc<Batch>,
    /// Row indices into `batch`, in output order. `None` = all rows.
    sel: Option<Vec<u32>>,
}

impl Chunk {
    fn from_batch(batch: Arc<Batch>) -> Chunk {
        Chunk { batch, sel: None }
    }

    /// Number of output rows.
    fn len(&self) -> usize {
        self.sel.as_ref().map_or(self.batch.len(), |s| s.len())
    }

    /// The batch row index backing output lane `lane`.
    #[inline]
    fn index(&self, lane: usize) -> u32 {
        match &self.sel {
            Some(s) => s[lane],
            None => lane as u32,
        }
    }

    fn sel_slice(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// The value of column `col` at output lane `lane`.
    #[inline]
    fn value(&self, col: usize, lane: usize) -> crate::value::Value {
        self.batch.column(col).value(self.index(lane) as usize)
    }
}

/// Per-execution state threaded through the operator tree: the catalog,
/// the morsel/thread configuration, and the deterministic execution
/// counters. Counters are atomics so `&ExecCtx` is `Sync` and morsel
/// workers can bump them; every counter is a pure function of the data
/// and the plan (never of the thread count or timing), except
/// `morsel_nanos`, which is wall-clock and stays out-of-band.
struct ExecCtx<'a> {
    catalog: &'a Catalog,
    threads: usize,
    /// 64-aligned morsel size in lanes.
    morsel_rows: usize,
    /// Whether to accumulate per-morsel wall-clock (tracer enabled).
    timing: bool,
    /// Total morsels dispatched (including paged-scan page decodes).
    morsels: AtomicU64,
    /// Total lanes routed through SIMD-eligible batch kernels.
    simd_lanes: AtomicU64,
    /// Accumulated per-morsel wall-clock; out-of-band (`*_nanos`).
    morsel_nanos: AtomicU64,
}

impl<'a> ExecCtx<'a> {
    fn new(catalog: &'a Catalog, tracer: &Tracer) -> ExecCtx<'a> {
        let exec = catalog.exec_config();
        ExecCtx {
            catalog,
            threads: exec.threads.max(1),
            morsel_rows: exec.aligned_morsel_rows(),
            timing: tracer.enabled(),
            morsels: AtomicU64::new(0),
            simd_lanes: AtomicU64::new(0),
            morsel_nanos: AtomicU64::new(0),
        }
    }

    /// Morsel ranges over `lanes`, with a single empty morsel for empty
    /// input so operators still evaluate expressions exactly once (same
    /// error surface as sequential execution over zero rows).
    fn ranges(&self, lanes: usize) -> Vec<(usize, usize)> {
        if lanes == 0 {
            return vec![(0, 0)];
        }
        morsel_ranges(lanes, self.morsel_rows)
    }

    fn count_morsels(&self, n: usize) {
        self.morsels.fetch_add(n as u64, AtomicOrdering::Relaxed);
    }

    fn count_simd_lanes(&self, n: usize) {
        self.simd_lanes.fetch_add(n as u64, AtomicOrdering::Relaxed);
    }

    /// Run one morsel task, accumulating wall-clock when tracing.
    fn timed<T>(&self, f: impl FnOnce() -> T) -> T {
        if !self.timing {
            return f();
        }
        let t0 = std::time::Instant::now();
        let out = f();
        self.morsel_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, AtomicOrdering::Relaxed);
        out
    }
}

/// The selection vector for morsel `[a, b)` of a chunk: `None` when the
/// morsel is the entire unselected batch (the exact argument sequential
/// execution passes), a materialized lane range when the chunk has no
/// selection, or a slice of the chunk's selection otherwise.
fn morsel_sel(chunk: &Chunk, a: usize, b: usize) -> Option<Vec<u32>> {
    match chunk.sel_slice() {
        None if a == 0 && b == chunk.batch.len() => None,
        None => Some((a as u32..b as u32).collect()),
        Some(s) => Some(s[a..b].to_vec()),
    }
}

/// A comparison predicate eligible for the SIMD column-vs-literal filter
/// kernels.
#[derive(Clone, Copy)]
enum FastCmp {
    F64(simd::CmpOp, f64),
    I64(simd::CmpOp, i64),
}

fn cmp_op_of(op: BinOp) -> Option<simd::CmpOp> {
    match op {
        BinOp::Eq => Some(simd::CmpOp::Eq),
        BinOp::Ne => Some(simd::CmpOp::Ne),
        BinOp::Lt => Some(simd::CmpOp::Lt),
        BinOp::Le => Some(simd::CmpOp::Le),
        BinOp::Gt => Some(simd::CmpOp::Gt),
        BinOp::Ge => Some(simd::CmpOp::Ge),
        _ => None,
    }
}

/// Mirror a comparison across its operands (`lit op col` → `col op' lit`).
fn flip_cmp(op: simd::CmpOp) -> simd::CmpOp {
    match op {
        simd::CmpOp::Eq => simd::CmpOp::Eq,
        simd::CmpOp::Ne => simd::CmpOp::Ne,
        simd::CmpOp::Lt => simd::CmpOp::Gt,
        simd::CmpOp::Le => simd::CmpOp::Ge,
        simd::CmpOp::Gt => simd::CmpOp::Lt,
        simd::CmpOp::Ge => simd::CmpOp::Le,
    }
}

/// Detect a `col <cmp> literal` predicate over an unselected Float/Int
/// column — the shape the SIMD comparison kernels accept with results
/// bit-identical to the generic path. Float-literal-vs-Int-column and
/// NaN literals fall back to the generic path so coercion and error
/// semantics stay byte-for-byte those of `eval_batch`.
fn filter_fast_path(chunk: &Chunk, predicate: &BoundExpr) -> Option<(usize, FastCmp)> {
    if chunk.sel.is_some() {
        return None;
    }
    let (op, col, lit, flipped) = match predicate {
        BoundExpr::Binary { op, left, right } => match (left.as_ref(), right.as_ref()) {
            (BoundExpr::Col(i), BoundExpr::Lit(v)) => (*op, *i, v, false),
            (BoundExpr::Lit(v), BoundExpr::Col(i)) => (*op, *i, v, true),
            _ => return None,
        },
        _ => return None,
    };
    let op = cmp_op_of(op)?;
    let op = if flipped { flip_cmp(op) } else { op };
    match (chunk.batch.column(col), lit) {
        (ColumnVec::Float { .. }, Value::Float(x)) if !x.is_nan() => {
            Some((col, FastCmp::F64(op, *x)))
        }
        (ColumnVec::Float { .. }, Value::Int(x)) => Some((col, FastCmp::F64(op, *x as f64))),
        (ColumnVec::Int { .. }, Value::Int(x)) => Some((col, FastCmp::I64(op, *x))),
        _ => None,
    }
}

/// Chained hash index over a single Int join key, bucketed by the same
/// [`simd::hash_i64_one`] hash the batched probe kernel computes. Bucket
/// entries keep build-lane order, so per probe key the matches come out
/// in ascending build lane — exactly the order the generic
/// `HashMap<key, Vec<lane>>` index yields.
struct IntIndex {
    mask: u64,
    buckets: Vec<Vec<(i64, u32)>>,
}

impl IntIndex {
    fn build(chunk: &Chunk, col: usize) -> Option<IntIndex> {
        let (data, nulls) = match chunk.batch.column(col) {
            ColumnVec::Int { data, nulls } => (data, nulls),
            _ => return None,
        };
        let lanes = chunk.len();
        let cap = (lanes.max(1) * 2).next_power_of_two();
        let mask = (cap - 1) as u64;
        let mut buckets = vec![Vec::new(); cap];
        for lane in 0..lanes {
            let row = chunk.index(lane) as usize;
            if !nulls.is_null(row) {
                let k = data[row];
                buckets[(simd::hash_i64_one(k) & mask) as usize].push((k, lane as u32));
            }
        }
        Some(IntIndex { mask, buckets })
    }

    /// Probe lanes `base..base + keys.len()` (an unselected probe chunk,
    /// so lane == batch row), emitting matching lane pairs oriented by
    /// `build_right`. Hashes for the whole morsel are computed by the
    /// batched SIMD kernel.
    fn probe(
        &self,
        keys: &[i64],
        nulls: &NullMask,
        base: usize,
        build_right: bool,
    ) -> Vec<(u32, u32)> {
        let hashes = simd::hash_i64_batch(keys);
        let mut out = Vec::new();
        for (i, (&k, &h)) in keys.iter().zip(&hashes).enumerate() {
            if nulls.is_null(base + i) {
                continue;
            }
            let lane = (base + i) as u32;
            for &(bk, bl) in &self.buckets[(h & self.mask) as usize] {
                if bk == k {
                    out.push(if build_right { (lane, bl) } else { (bl, lane) });
                }
            }
        }
        out
    }
}

/// A physical operator with all expressions bound and schemas resolved.
#[derive(Debug, Clone)]
enum PhysOp {
    /// Scan a catalog table through its cached columnar batch.
    Scan { table: String, schema: Schema },
    /// An inline table, transposed to a batch at prepare time.
    Values { name: String, batch: Arc<Batch> },
    /// Selection-vector filter; emits no data, only indices.
    Filter {
        input: Box<PhysOp>,
        predicate: BoundExpr,
    },
    /// Column-at-a-time projection with declared output types.
    Project {
        input: Box<PhysOp>,
        exprs: Vec<BoundExpr>,
        schema: Schema,
    },
    /// Hash equi-join; the build side is chosen by cardinality at runtime.
    HashJoin {
        left: Box<PhysOp>,
        right: Box<PhysOp>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        schema: Schema,
    },
    /// Hash-grouped aggregation with pre-evaluated argument columns.
    Aggregate {
        input: Box<PhysOp>,
        group_idx: Vec<usize>,
        agg_funcs: Vec<AggFunc>,
        agg_args: Vec<Option<BoundExpr>>,
        schema: Schema,
    },
    /// Stable sort producing a permutation selection vector.
    Sort {
        input: Box<PhysOp>,
        keys: Vec<(BoundExpr, bool)>,
    },
    /// Selection-vector truncation.
    Limit { input: Box<PhysOp>, n: usize },
}

impl PhysOp {
    /// The name the materialized result table carries — matching what the
    /// row-at-a-time executor names each operator's output.
    fn result_name(&self) -> &str {
        match self {
            PhysOp::Scan { table, .. } => table,
            PhysOp::Values { name, .. } => name,
            PhysOp::Filter { .. } => "filter",
            PhysOp::Project { .. } => "project",
            PhysOp::HashJoin { .. } => "join",
            PhysOp::Aggregate { .. } => "aggregate",
            PhysOp::Sort { .. } => "sort",
            PhysOp::Limit { .. } => "limit",
        }
    }
}

/// A logical plan lowered to a physical plan against a catalog snapshot:
/// optimized, expressions bound once, schemas resolved.
///
/// Prepare once, execute many times:
///
/// ```
/// use mde_mcdb::prelude::*;
/// use mde_mcdb::query::PreparedQuery;
///
/// let mut c = Catalog::new();
/// c.insert(
///     Table::build("t", &[("x", DataType::Int)])
///         .row(vec![Value::from(1)])
///         .row(vec![Value::from(5)])
///         .finish()
///         .unwrap(),
/// );
/// let plan = Plan::scan("t").filter(Expr::col("x").gt(Expr::lit(2)));
/// let prepared = PreparedQuery::prepare(&plan, &c).unwrap();
/// for _ in 0..3 {
///     assert_eq!(prepared.execute(&c).unwrap().len(), 1);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    root: PhysOp,
    schema: Schema,
    /// Lifetime execution count of this prepared plan (clones snapshot).
    executions: Counter,
}

impl PreparedQuery {
    /// Optimize and lower a logical plan against a catalog.
    ///
    /// Errors surface anything the planner can see statically: unknown
    /// tables or columns, unbound expressions, joins without keys,
    /// aggregates missing arguments.
    pub fn prepare(plan: &Plan, catalog: &Catalog) -> crate::Result<PreparedQuery> {
        Self::lower(&planner::optimize(plan.clone()), catalog)
    }

    /// Lower a plan without running the rewrite planner first. Used by
    /// differential tests that isolate executor semantics from planner
    /// rewrites.
    pub fn prepare_unoptimized(plan: &Plan, catalog: &Catalog) -> crate::Result<PreparedQuery> {
        Self::lower(plan, catalog)
    }

    fn lower(plan: &Plan, catalog: &Catalog) -> crate::Result<PreparedQuery> {
        let (root, schema) = build(plan, catalog)?;
        Ok(PreparedQuery {
            root,
            schema,
            executions: Counter::new(),
        })
    }

    /// The result schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// How many times this prepared plan has been executed.
    pub fn executions(&self) -> u64 {
        self.executions.get()
    }

    /// Execute against a catalog, materializing the result table.
    ///
    /// The catalog may differ from the one used at prepare time (the Monte
    /// Carlo runners prepare against a planning catalog and execute against
    /// per-replicate scratch catalogs); scanned tables must still exist
    /// with the schema seen at prepare time.
    pub fn execute(&self, catalog: &Catalog) -> crate::Result<Table> {
        self.execute_traced(catalog, &Tracer::disabled())
    }

    /// Execute with structured tracing: one `query` root span, one child
    /// span per physical operator (in execution order) carrying row counts
    /// and — for scans — table names and batch-cache reuse. With the
    /// disabled tracer this is exactly [`PreparedQuery::execute`]: spans
    /// are inert and nothing allocates.
    pub fn execute_traced(&self, catalog: &Catalog, tracer: &Tracer) -> crate::Result<Table> {
        self.executions.inc();
        let ctx = ExecCtx::new(catalog, tracer);
        let mut span = tracer.root("query");
        span.record("exec", self.executions.get());
        let chunk = run(&self.root, &ctx, &span)?;
        let table = materialize(&chunk, self.root.result_name(), &ctx)?;
        span.record("rows_out", table.len());
        // Deterministic execution counters: pure functions of the data and
        // the plan, identical at every thread count and with or without
        // SIMD. Wall-clock stays out-of-band under the `*_nanos` suffix —
        // the deterministic ledger is every field EXCEPT `*_nanos` and
        // span durations (DESIGN.md §6g).
        span.record("query.morsels", ctx.morsels.load(AtomicOrdering::Relaxed));
        span.record(
            "query.simd_lanes",
            ctx.simd_lanes.load(AtomicOrdering::Relaxed),
        );
        if ctx.timing {
            span.record(
                "query.morsel_nanos",
                ctx.morsel_nanos.load(AtomicOrdering::Relaxed),
            );
        }
        Ok(table)
    }
}

/// Lower one plan node, returning the physical operator and its output
/// schema. Mirrors `Plan::output_schema` so error discovery order matches
/// the legacy executor.
fn build(plan: &Plan, catalog: &Catalog) -> crate::Result<(PhysOp, Schema)> {
    match plan {
        Plan::Scan { table } => {
            let schema = catalog.get(table)?.schema().clone();
            Ok((
                PhysOp::Scan {
                    table: table.clone(),
                    schema: schema.clone(),
                },
                schema,
            ))
        }
        Plan::Values { table } => Ok((
            PhysOp::Values {
                name: table.name().to_string(),
                batch: table.batch(),
            },
            table.schema().clone(),
        )),
        Plan::Filter { input, predicate } => {
            let (child, schema) = build(input, catalog)?;
            let predicate = predicate.bind(&schema)?;
            Ok((
                PhysOp::Filter {
                    input: Box::new(child),
                    predicate,
                },
                schema,
            ))
        }
        Plan::Project { input, exprs } => {
            let (child, in_schema) = build(input, catalog)?;
            let mut cols = Vec::with_capacity(exprs.len());
            for (name, e) in exprs {
                let dt = infer_type(e, &in_schema)?.unwrap_or(DataType::Float);
                cols.push(Column::new(name.clone(), dt));
            }
            let schema = Schema::new(cols)?;
            let bound: Vec<BoundExpr> = exprs
                .iter()
                .map(|(_, e)| e.bind(&in_schema))
                .collect::<crate::Result<_>>()?;
            Ok((
                PhysOp::Project {
                    input: Box::new(child),
                    exprs: bound,
                    schema: schema.clone(),
                },
                schema,
            ))
        }
        Plan::Join {
            left,
            right,
            on,
            right_prefix,
        } => {
            let (lchild, ls) = build(left, catalog)?;
            let (rchild, rs) = build(right, catalog)?;
            if on.is_empty() {
                return Err(McdbError::invalid_plan(
                    "join requires at least one key pair (cross joins unsupported)",
                ));
            }
            let left_keys: Vec<usize> = on
                .iter()
                .map(|(l, _)| ls.index_of(l))
                .collect::<crate::Result<_>>()?;
            let right_keys: Vec<usize> = on
                .iter()
                .map(|(_, r)| rs.index_of(r))
                .collect::<crate::Result<_>>()?;
            let schema = ls.concat(&rs, right_prefix)?;
            Ok((
                PhysOp::HashJoin {
                    left: Box::new(lchild),
                    right: Box::new(rchild),
                    left_keys,
                    right_keys,
                    schema: schema.clone(),
                },
                schema,
            ))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let (child, in_schema) = build(input, catalog)?;
            let group_idx: Vec<usize> = group_by
                .iter()
                .map(|g| in_schema.index_of(g))
                .collect::<crate::Result<_>>()?;
            let mut cols = Vec::with_capacity(group_idx.len() + aggs.len());
            for &j in &group_idx {
                cols.push(in_schema.columns()[j].clone());
            }
            for a in aggs {
                let dt = match (a.func, &a.arg) {
                    (AggFunc::Count, _) => DataType::Int,
                    (_, None) => {
                        return Err(McdbError::invalid_plan(format!(
                            "aggregate `{}` requires an argument",
                            a.name
                        )))
                    }
                    (AggFunc::Avg, Some(_)) => DataType::Float,
                    (AggFunc::Sum, Some(e)) | (AggFunc::Min, Some(e)) | (AggFunc::Max, Some(e)) => {
                        infer_type(e, &in_schema)?.unwrap_or(DataType::Float)
                    }
                };
                cols.push(Column::new(a.name.clone(), dt));
            }
            let schema = Schema::new(cols)?;
            let agg_args: Vec<Option<BoundExpr>> = aggs
                .iter()
                .map(|a| a.arg.as_ref().map(|e| e.bind(&in_schema)).transpose())
                .collect::<crate::Result<_>>()?;
            Ok((
                PhysOp::Aggregate {
                    input: Box::new(child),
                    group_idx,
                    agg_funcs: aggs.iter().map(|a| a.func).collect(),
                    agg_args,
                    schema: schema.clone(),
                },
                schema,
            ))
        }
        Plan::Sort { input, keys } => {
            let (child, schema) = build(input, catalog)?;
            let keys: Vec<(BoundExpr, bool)> = keys
                .iter()
                .map(|k| Ok((k.expr.bind(&schema)?, k.ascending)))
                .collect::<crate::Result<_>>()?;
            Ok((
                PhysOp::Sort {
                    input: Box::new(child),
                    keys,
                },
                schema,
            ))
        }
        Plan::Limit { input, n } => {
            let (child, schema) = build(input, catalog)?;
            Ok((
                PhysOp::Limit {
                    input: Box::new(child),
                    n: *n,
                },
                schema,
            ))
        }
    }
}

/// Materialize the root chunk as a row-oriented table: validate the
/// selection vector once, then build rows morsel-parallel and append
/// them in morsel order.
fn materialize(chunk: &Chunk, name: &str, ctx: &ExecCtx) -> crate::Result<Table> {
    if let Some(sel) = chunk.sel_slice() {
        chunk.batch.check_sel(sel)?;
    } else {
        // No selection vector: the root chunk is a batch verbatim (plain
        // scan, values, or an operator that rebuilt its batch). Adopt it
        // wholesale — no per-row rebuild, and the result table's columnar
        // view is already cached for follow-up queries.
        return Ok(Table::from_batch(name, Arc::clone(&chunk.batch)));
    }
    let lanes = chunk.len();
    let ranges = ctx.ranges(lanes);
    ctx.count_morsels(ranges.len());
    let parts = par_map_ordered(ctx.threads, ranges.len(), |m| {
        let (a, b) = ranges[m];
        Ok(ctx.timed(|| {
            (a..b)
                .map(|lane| chunk.batch.row(chunk.index(lane) as usize))
                .collect::<Vec<Row>>()
        }))
    });
    let mut out = Table::new(name, chunk.batch.schema().clone());
    for part in first_error(parts)? {
        for row in part {
            out.push_row_unchecked(row);
        }
    }
    Ok(out)
}

fn run(op: &PhysOp, ctx: &ExecCtx, parent: &Span) -> crate::Result<Chunk> {
    match op {
        PhysOp::Scan { table, schema } => {
            let mut span = parent.child("scan");
            let t = ctx.catalog.get(table)?;
            if t.schema() != schema {
                return Err(McdbError::invalid_plan(format!(
                    "prepared plan is stale: schema of table `{table}` changed since prepare"
                )));
            }
            span.record("table", table.as_str());
            span.record("cache_hit", t.batch_is_cached());
            // Logical page reads are deterministic (a pure function of the
            // queries executed), so they may live on the span; the pool's
            // hit/eviction counters are timing-dependent and stay
            // out-of-band in `PoolStats`.
            let reads_before = t.paged_store().map(|s| s.logical_reads());
            let chunk = Chunk::from_batch(t.try_batch_parallel(ctx.threads)?);
            if let (Some(before), Some(store)) = (reads_before, t.paged_store()) {
                let pages = store.logical_reads() - before;
                span.record("storage.page_reads", pages);
                // Paged scans parallelize per page frame: each decoded
                // page is one morsel.
                ctx.morsels.fetch_add(pages, AtomicOrdering::Relaxed);
            }
            span.record("rows", chunk.len());
            Ok(chunk)
        }
        PhysOp::Values { name, batch } => {
            let mut span = parent.child("values");
            span.record("table", name.as_str());
            span.record("rows", batch.len());
            Ok(Chunk::from_batch(Arc::clone(batch)))
        }
        PhysOp::Filter { input, predicate } => {
            let mut span = parent.child("filter");
            let chunk = run(input, ctx, &span)?;
            let lanes = chunk.len();
            span.record("rows_in", lanes);
            let ranges = ctx.ranges(lanes);
            ctx.count_morsels(ranges.len());
            let sel: Vec<u32> = if let Some((col, fast)) = filter_fast_path(&chunk, predicate) {
                // SIMD fast path: the comparison kernels consume the
                // column slice and its null words directly; morsel
                // boundaries are 64-aligned so each morsel borrows whole
                // mask words. Lane eligibility is counted regardless of
                // whether AVX2 is actually available.
                ctx.count_simd_lanes(lanes);
                let parts = par_map_ordered(ctx.threads, ranges.len(), |m| {
                    let (a, b) = ranges[m];
                    Ok(ctx.timed(|| {
                        let mut local = match (fast, chunk.batch.column(col)) {
                            (FastCmp::F64(op, lit), ColumnVec::Float { data, nulls }) => {
                                simd::cmp_f64_lit(op, &data[a..b], lit, nulls.word_slice(a, b - a))
                            }
                            (FastCmp::I64(op, lit), ColumnVec::Int { data, nulls }) => {
                                simd::cmp_i64_lit(op, &data[a..b], lit, nulls.word_slice(a, b - a))
                            }
                            // `filter_fast_path` only emits matching pairs.
                            _ => Vec::new(),
                        };
                        for s in &mut local {
                            *s += a as u32;
                        }
                        local
                    }))
                });
                first_error(parts)?.into_iter().flatten().collect()
            } else {
                // Generic path: evaluate the predicate per morsel, then
                // compact true-and-not-null lanes with the SIMD bool
                // kernel. Merging concatenates in morsel order, so the
                // selection vector is identical at every thread count.
                let parts = par_map_ordered(ctx.threads, ranges.len(), |m| {
                    let (a, b) = ranges[m];
                    ctx.timed(|| {
                        let msel = morsel_sel(&chunk, a, b);
                        let pred = predicate.eval_batch(&chunk.batch, msel.as_deref())?;
                        let mlen = b - a;
                        match &pred {
                            ColumnVec::Bool { data, nulls } => {
                                let local =
                                    simd::compact_bool_lanes(data, nulls.word_slice(0, mlen));
                                let mapped: Vec<u32> = local
                                    .into_iter()
                                    .map(|l| chunk.index(a + l as usize))
                                    .collect();
                                Ok((mapped, mlen))
                            }
                            // All-null predicate: NULL is not true.
                            ColumnVec::AllNull { .. } => Ok((Vec::new(), 0)),
                            other => {
                                // Same error the row engine raises at the
                                // first row whose predicate value is
                                // non-Bool and non-Null.
                                if let Some(i) = (0..other.len()).find(|&i| !other.is_null(i)) {
                                    return Err(McdbError::type_mismatch(
                                        "filter predicate",
                                        "Bool or NULL",
                                        format!("{}", other.value(i)),
                                    ));
                                }
                                Ok((Vec::new(), 0))
                            }
                        }
                    })
                });
                let mut sel = Vec::new();
                for (part, simd_lanes) in first_error(parts)? {
                    ctx.count_simd_lanes(simd_lanes);
                    sel.extend(part);
                }
                sel
            };
            span.record("rows_out", sel.len());
            Ok(Chunk {
                batch: chunk.batch,
                sel: Some(sel),
            })
        }
        PhysOp::Project {
            input,
            exprs,
            schema,
        } => {
            let mut span = parent.child("project");
            let chunk = run(input, ctx, &span)?;
            let len = chunk.len();
            span.record("rows", len);
            let ranges = ctx.ranges(len);
            ctx.count_morsels(ranges.len());
            // Each morsel evaluates and validates EVERY output column,
            // recording per-column results instead of stopping at the
            // first failure, so the merge below can surface errors
            // column-major — the order sequential execution discovers
            // them in.
            let parts = par_map_ordered(ctx.threads, ranges.len(), |m| {
                let (a, b) = ranges[m];
                Ok(ctx.timed(|| {
                    let msel = morsel_sel(&chunk, a, b);
                    exprs
                        .iter()
                        .zip(schema.columns())
                        .map(|(e, col)| {
                            let c = e
                                .eval_batch(&chunk.batch, msel.as_deref())?
                                .coerce_to(col.dtype);
                            validate_column(&c, col)?;
                            Ok(c)
                        })
                        .collect::<Vec<crate::Result<ColumnVec>>>()
                }))
            });
            let parts = first_error(parts)?;
            for j in 0..exprs.len() {
                for part in &parts {
                    if let Err(e) = &part[j] {
                        return Err(e.clone());
                    }
                }
            }
            let mut col_parts: Vec<Vec<ColumnVec>> = (0..exprs.len())
                .map(|_| Vec::with_capacity(parts.len()))
                .collect();
            for part in parts {
                for (j, r) in part.into_iter().enumerate() {
                    // Cannot fail: errors were surfaced column-major above.
                    col_parts[j].push(r?);
                }
            }
            let cols: Vec<ColumnVec> = col_parts.into_iter().map(ColumnVec::concat_many).collect();
            let batch = Batch::from_columns(schema.clone(), cols, len)?;
            Ok(Chunk::from_batch(Arc::new(batch)))
        }
        PhysOp::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            schema,
        } => {
            let mut span = parent.child("join");
            let lc = run(left, ctx, &span)?;
            let rc = run(right, ctx, &span)?;
            let (l_lanes, r_lanes) = (lc.len(), rc.len());
            span.record("left_rows", l_lanes);
            span.record("right_rows", r_lanes);

            // Lane-space join key; None when any key part is Null (SQL
            // inner-join semantics: Null keys never match).
            let key_of = |c: &Chunk, keys: &[usize], lane: usize| -> Option<Vec<GroupKey>> {
                let mut key = Vec::with_capacity(keys.len());
                for &j in keys {
                    let v = c.value(j, lane);
                    if v.is_null() {
                        return None;
                    }
                    key.push(v.group_key());
                }
                Some(key)
            };

            // Matching (left lane, right lane) pairs in the reference
            // output order: ascending left lane, then ascending right lane.
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            let spill = ctx.catalog.spill_config();
            if l_lanes.min(r_lanes) > spill.threshold_rows {
                // Grace hash join: the build side exceeds the spill
                // threshold, so both inputs are hash-partitioned by join
                // key (deterministic FNV — identical sharding every run),
                // each partition is persisted through the page codec, and
                // partitions are joined one at a time. Every key lives
                // wholly in one partition, and the final lane-pair sort
                // restores the reference output order exactly, so results
                // are bit-identical to the in-memory path.
                let parts = spill.partitions.max(1);
                span.record("spilled", true);
                span.record("partitions", parts);
                let mut l_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
                for lane in 0..l_lanes {
                    if let Some(key) = key_of(&lc, left_keys, lane) {
                        l_parts[partition_of(&key, parts)].push(lane as u32);
                    }
                }
                let mut r_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
                for lane in 0..r_lanes {
                    if let Some(key) = key_of(&rc, right_keys, lane) {
                        r_parts[partition_of(&key, parts)].push(lane as u32);
                    }
                }
                let bkey = |b: &Batch, keys: &[usize], row: usize| -> Vec<GroupKey> {
                    keys.iter()
                        .map(|&j| b.column(j).value(row).group_key())
                        .collect()
                };
                let mut spill_rows = 0u64;
                for p in 0..parts {
                    let (lp, rp) = (&l_parts[p], &r_parts[p]);
                    if lp.is_empty() || rp.is_empty() {
                        continue;
                    }
                    let l_sel: Vec<u32> = lp.iter().map(|&l| lc.index(l as usize)).collect();
                    let r_sel: Vec<u32> = rp.iter().map(|&r| rc.index(r as usize)).collect();
                    let ls = SpilledBatch::write(&lc.batch, &l_sel, spill, &format!("jl{p}"))?;
                    let rs = SpilledBatch::write(&rc.batch, &r_sel, spill, &format!("jr{p}"))?;
                    spill_rows += (ls.n_rows() + rs.n_rows()) as u64;
                    let lb = ls.read()?;
                    let rb = rs.read()?;
                    // In-memory hash table bounded to one partition's
                    // smaller side (ties keep the legacy right build).
                    if rb.len() <= lb.len() {
                        let mut index: HashMap<Vec<GroupKey>, Vec<u32>> = HashMap::new();
                        for (row, &rlane) in rp.iter().enumerate() {
                            index
                                .entry(bkey(&rb, right_keys, row))
                                .or_default()
                                .push(rlane);
                        }
                        for (row, &llane) in lp.iter().enumerate() {
                            if let Some(matches) = index.get(&bkey(&lb, left_keys, row)) {
                                for &r in matches {
                                    pairs.push((llane, r));
                                }
                            }
                        }
                    } else {
                        let mut index: HashMap<Vec<GroupKey>, Vec<u32>> = HashMap::new();
                        for (row, &llane) in lp.iter().enumerate() {
                            index
                                .entry(bkey(&lb, left_keys, row))
                                .or_default()
                                .push(llane);
                        }
                        for (row, &rlane) in rp.iter().enumerate() {
                            if let Some(matches) = index.get(&bkey(&rb, right_keys, row)) {
                                for &l in matches {
                                    pairs.push((l, rlane));
                                }
                            }
                        }
                    }
                }
                span.record("spill_rows", spill_rows);
                pairs.sort_unstable();
            } else {
                // In-memory path: build a hash index over the smaller side
                // sequentially (ties keep the legacy right build), then
                // probe the larger side morsel-parallel. Per-morsel pair
                // vectors concatenate in morsel order, so a right build
                // emerges in the reference order (ascending probe lane ×
                // ascending build lane) directly; a left build restores it
                // with the same global sort the sequential code used.
                let build_right = r_lanes <= l_lanes;
                let (bc, b_keys, b_lanes, pc, p_keys, p_lanes) = if build_right {
                    (&rc, right_keys, r_lanes, &lc, left_keys, l_lanes)
                } else {
                    (&lc, left_keys, l_lanes, &rc, right_keys, r_lanes)
                };
                let ranges = ctx.ranges(p_lanes);
                ctx.count_morsels(ranges.len());
                // Single-Int-key joins over an unselected probe chunk use
                // the batched hash kernel and a chained Int index; the
                // bucket scan preserves build-lane order, so pairs match
                // the generic index exactly.
                let int_probe = if b_keys.len() == 1 && pc.sel.is_none() {
                    match (bc.batch.column(b_keys[0]), pc.batch.column(p_keys[0])) {
                        (ColumnVec::Int { .. }, ColumnVec::Int { data, nulls }) => {
                            IntIndex::build(bc, b_keys[0]).map(|ix| (ix, data, nulls))
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some((index, pdata, pnulls)) = int_probe {
                    ctx.count_simd_lanes(p_lanes);
                    let parts = par_map_ordered(ctx.threads, ranges.len(), |m| {
                        let (a, b) = ranges[m];
                        Ok(ctx.timed(|| index.probe(&pdata[a..b], pnulls, a, build_right)))
                    });
                    for part in first_error(parts)? {
                        pairs.extend(part);
                    }
                } else {
                    let mut index: HashMap<Vec<GroupKey>, Vec<u32>> = HashMap::new();
                    for lane in 0..b_lanes {
                        if let Some(key) = key_of(bc, b_keys, lane) {
                            index.entry(key).or_default().push(lane as u32);
                        }
                    }
                    let parts = par_map_ordered(ctx.threads, ranges.len(), |m| {
                        let (a, b) = ranges[m];
                        Ok(ctx.timed(|| {
                            let mut out = Vec::new();
                            for lane in a..b {
                                if let Some(key) = key_of(pc, p_keys, lane) {
                                    if let Some(matches) = index.get(&key) {
                                        for &bl in matches {
                                            out.push(if build_right {
                                                (lane as u32, bl)
                                            } else {
                                                (bl, lane as u32)
                                            });
                                        }
                                    }
                                }
                            }
                            out
                        }))
                    });
                    for part in first_error(parts)? {
                        pairs.extend(part);
                    }
                }
                if !build_right {
                    pairs.sort_unstable();
                }
            }

            let l_sel: Vec<u32> = pairs.iter().map(|&(l, _)| lc.index(l as usize)).collect();
            let r_sel: Vec<u32> = pairs.iter().map(|&(_, r)| rc.index(r as usize)).collect();
            // Output columns gather independently — one task per column.
            let n_left = lc.batch.columns().len();
            let n_cols = n_left + rc.batch.columns().len();
            let cols = first_error(par_map_ordered(ctx.threads, n_cols, |j| {
                Ok(ctx.timed(|| {
                    if j < n_left {
                        lc.batch.column(j).gather(&l_sel)
                    } else {
                        rc.batch.column(j - n_left).gather(&r_sel)
                    }
                }))
            }))?;
            span.record("rows_out", pairs.len());
            let batch = Batch::from_columns(schema.clone(), cols, pairs.len())?;
            Ok(Chunk::from_batch(Arc::new(batch)))
        }
        PhysOp::Aggregate {
            input,
            group_idx,
            agg_funcs,
            agg_args,
            schema,
        } => {
            let mut span = parent.child("aggregate");
            let chunk = run(input, ctx, &span)?;
            let lanes = chunk.len();
            span.record("rows_in", lanes);
            let spill = ctx.catalog.spill_config();
            if lanes > spill.threshold_rows && !group_idx.is_empty() {
                // Grace-partitioned aggregation: the input exceeds the
                // spill threshold, so lanes are hash-partitioned by group
                // key, each partition is persisted and aggregated on its
                // own, and groups are re-emitted in global first-seen
                // order. Every group lives wholly in one partition and
                // its lanes keep ascending order, so accumulation order —
                // and therefore floating-point sums — is bit-identical to
                // the unspilled path. (A global aggregate with no group
                // keys holds O(1) state and never needs to spill.)
                let parts = spill.partitions.max(1);
                span.record("spilled", true);
                span.record("partitions", parts);
                let mut lane_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
                for lane in 0..lanes {
                    let key: Vec<GroupKey> = group_idx
                        .iter()
                        .map(|&j| chunk.value(j, lane).group_key())
                        .collect();
                    lane_parts[partition_of(&key, parts)].push(lane as u32);
                }
                // (first global lane, group values, accumulators) per group.
                let mut groups: Vec<(u32, Row, Vec<AggState>)> = Vec::new();
                let mut spill_rows = 0u64;
                for (p, part) in lane_parts.iter().enumerate() {
                    if part.is_empty() {
                        continue;
                    }
                    let sel: Vec<u32> = part.iter().map(|&l| chunk.index(l as usize)).collect();
                    let spilled =
                        SpilledBatch::write(&chunk.batch, &sel, spill, &format!("agg{p}"))?;
                    spill_rows += spilled.n_rows() as u64;
                    let pb = Arc::new(spilled.read()?);
                    let arg_cols: Vec<Option<ColumnVec>> = agg_args
                        .iter()
                        .map(|a| a.as_ref().map(|b| b.eval_batch(&pb, None)).transpose())
                        .collect::<crate::Result<_>>()?;
                    let mut slot: HashMap<Vec<GroupKey>, usize> = HashMap::new();
                    let first = groups.len();
                    for (row, &global_lane) in part.iter().enumerate() {
                        let key: Vec<GroupKey> = group_idx
                            .iter()
                            .map(|&j| pb.column(j).value(row).group_key())
                            .collect();
                        let idx = *slot.entry(key).or_insert_with(|| {
                            groups.push((
                                global_lane,
                                group_idx.iter().map(|&j| pb.column(j).value(row)).collect(),
                                agg_funcs.iter().map(|&f| AggState::new(f)).collect(),
                            ));
                            groups.len() - 1
                        });
                        for (state, col) in groups[idx].2.iter_mut().zip(&arg_cols) {
                            state.update(col.as_ref().map(|c| c.value(row)))?;
                        }
                    }
                    debug_assert!(groups[first..].windows(2).all(|w| w[0].0 < w[1].0));
                }
                span.record("spill_rows", spill_rows);
                // Partitions interleave in lane space; first-seen group
                // order is the order of each group's first global lane.
                groups.sort_by_key(|g| g.0);
                let mut out = Table::new("aggregate", schema.clone());
                for (_, group_vals, sts) in groups {
                    let mut row = group_vals;
                    for (st, col) in sts
                        .into_iter()
                        .zip(schema.columns().iter().skip(group_idx.len()))
                    {
                        row.push(coerce(st.finish(), col.dtype));
                    }
                    out.push_row(row)?;
                }
                span.record("groups", out.len());
                return Ok(Chunk::from_batch(out.batch()));
            }
            // Per-morsel parallel phase: evaluate argument expressions and
            // group keys for the morsel's lanes. The merge below walks
            // morsels (and lanes within them) in global order, so group
            // discovery order and floating-point accumulation order are
            // exactly those of sequential execution.
            let ranges = ctx.ranges(lanes);
            ctx.count_morsels(ranges.len());
            let parts = par_map_ordered(ctx.threads, ranges.len(), |m| {
                let (a, b) = ranges[m];
                ctx.timed(|| {
                    let msel = morsel_sel(&chunk, a, b);
                    let arg_cols: Vec<Option<ColumnVec>> = agg_args
                        .iter()
                        .map(|x| {
                            x.as_ref()
                                .map(|e| e.eval_batch(&chunk.batch, msel.as_deref()))
                                .transpose()
                        })
                        .collect::<crate::Result<_>>()?;
                    let keys: Vec<Vec<GroupKey>> = (a..b)
                        .map(|lane| {
                            group_idx
                                .iter()
                                .map(|&j| chunk.value(j, lane).group_key())
                                .collect()
                        })
                        .collect();
                    Ok((arg_cols, keys))
                })
            });
            let parts = first_error(parts)?;

            let mut states: HashMap<Vec<GroupKey>, (Row, Vec<AggState>)> = HashMap::new();
            let mut order: Vec<Vec<GroupKey>> = Vec::new();
            for (m, (arg_cols, keys)) in parts.iter().enumerate() {
                let (a, _) = ranges[m];
                for (local, key) in keys.iter().enumerate() {
                    let lane = a + local;
                    let entry = states.entry(key.clone()).or_insert_with(|| {
                        order.push(key.clone());
                        (
                            group_idx.iter().map(|&j| chunk.value(j, lane)).collect(),
                            agg_funcs.iter().map(|&f| AggState::new(f)).collect(),
                        )
                    });
                    for (state, col) in entry.1.iter_mut().zip(arg_cols) {
                        let v = col.as_ref().map(|c| c.value(local));
                        state.update(v)?;
                    }
                }
            }

            let mut out = Table::new("aggregate", schema.clone());
            if states.is_empty() && group_idx.is_empty() {
                // Global aggregate over empty input: one row of identities.
                let row: Row = agg_funcs
                    .iter()
                    .map(|&f| AggState::new(f).finish())
                    .zip(schema.columns())
                    .map(|(v, c)| coerce(v, c.dtype))
                    .collect();
                out.push_row(row)?;
            } else {
                for key in order {
                    // Every key in `order` was recorded when its state was
                    // created; if the maps ever desynchronize, surface a
                    // typed error — this path runs inside session workers
                    // where a panic would cost the whole session.
                    let (group_vals, sts) = states.remove(&key).ok_or_else(|| {
                        crate::McdbError::invalid_plan(
                            "aggregate group state desynchronized from group order",
                        )
                    })?;
                    let mut row = group_vals;
                    for (st, col) in sts
                        .into_iter()
                        .zip(schema.columns().iter().skip(group_idx.len()))
                    {
                        row.push(coerce(st.finish(), col.dtype));
                    }
                    out.push_row(row)?;
                }
            }
            span.record("groups", out.len());
            Ok(Chunk::from_batch(out.batch()))
        }
        PhysOp::Sort { input, keys } => {
            let mut span = parent.child("sort");
            let chunk = run(input, ctx, &span)?;
            let lanes = chunk.len();
            span.record("rows", lanes);
            // Precompute whole key columns so the comparator is
            // infallible. Key evaluation morselizes; the comparator sort
            // itself stays sequential (it is a stable global order).
            let ranges = ctx.ranges(lanes);
            ctx.count_morsels(ranges.len());
            let parts = par_map_ordered(ctx.threads, ranges.len(), |m| {
                let (a, b) = ranges[m];
                ctx.timed(|| {
                    let msel = morsel_sel(&chunk, a, b);
                    keys.iter()
                        .map(|(e, _)| e.eval_batch(&chunk.batch, msel.as_deref()))
                        .collect::<crate::Result<Vec<ColumnVec>>>()
                })
            });
            let parts = first_error(parts)?;
            let mut per_key: Vec<Vec<ColumnVec>> = (0..keys.len())
                .map(|_| Vec::with_capacity(parts.len()))
                .collect();
            for part in parts {
                for (k, c) in part.into_iter().enumerate() {
                    per_key[k].push(c);
                }
            }
            let key_cols: Vec<(ColumnVec, bool)> = per_key
                .into_iter()
                .zip(keys)
                .map(|(cp, (_, asc))| (ColumnVec::concat_many(cp), *asc))
                .collect();
            let mut perm: Vec<u32> = (0..lanes as u32).collect();
            perm.sort_by(|&a, &b| {
                for (col, asc) in &key_cols {
                    let ord = sql_sort_cmp(&col.value(a as usize), &col.value(b as usize));
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            let sel: Vec<u32> = perm.into_iter().map(|l| chunk.index(l as usize)).collect();
            Ok(Chunk {
                batch: chunk.batch,
                sel: Some(sel),
            })
        }
        PhysOp::Limit { input, n } => {
            let mut span = parent.child("limit");
            let chunk = run(input, ctx, &span)?;
            span.record("rows_in", chunk.len());
            let n = *n;
            let sel = match chunk.sel {
                Some(mut s) => {
                    s.truncate(n);
                    Some(s)
                }
                None => {
                    if chunk.batch.len() <= n {
                        None
                    } else {
                        Some((0..n as u32).collect())
                    }
                }
            };
            let out = Chunk {
                batch: chunk.batch,
                sel,
            };
            span.record("rows_out", out.len());
            Ok(out)
        }
    }
}

/// Column-level analogue of `Schema::validate_row`: the computed column
/// must match the declared type (untyped all-null columns match anything)
/// and Float columns must not contain NaN. Errors carry the same messages
/// row validation produces.
fn validate_column(c: &ColumnVec, col: &Column) -> crate::Result<()> {
    match c.dtype() {
        None => Ok(()),
        Some(t) if t == col.dtype => {
            if let ColumnVec::Float { data, nulls } = c {
                for (i, v) in data.iter().enumerate() {
                    if v.is_nan() && !nulls.is_null(i) {
                        return Err(McdbError::type_mismatch(
                            format!("column `{}`", col.name),
                            "finite float or NULL",
                            "NaN",
                        ));
                    }
                }
            }
            Ok(())
        }
        Some(t) => Err(McdbError::type_mismatch(
            format!("column `{}`", col.name),
            col.dtype.to_string(),
            t.to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::{AggSpec, SortKey};
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            Table::build(
                "sales",
                &[
                    ("id", DataType::Int),
                    ("region", DataType::Str),
                    ("amount", DataType::Float),
                ],
            )
            .row(vec![Value::from(1), Value::from("east"), Value::from(10.0)])
            .row(vec![Value::from(2), Value::from("west"), Value::from(20.0)])
            .row(vec![Value::from(3), Value::from("east"), Value::from(30.0)])
            .row(vec![Value::from(4), Value::from("east"), Value::Null])
            .finish()
            .unwrap(),
        );
        c.insert(
            Table::build(
                "regions",
                &[("name", DataType::Str), ("tax", DataType::Float)],
            )
            .row(vec![Value::from("east"), Value::from(0.1)])
            .row(vec![Value::from("west"), Value::from(0.2)])
            .finish()
            .unwrap(),
        );
        c
    }

    /// Both engines, same plan, same catalog — results must agree exactly
    /// (the unoptimized reference is executed on the optimized plan so the
    /// comparison isolates the engine, not the planner).
    fn assert_engines_agree(c: &Catalog, plan: &Plan) {
        let optimized = planner::optimize(plan.clone());
        let legacy = super::super::execute(&optimized, c);
        let vectorized =
            PreparedQuery::prepare_unoptimized(&optimized, c).and_then(|p| p.execute(c));
        match (legacy, vectorized) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "engines diverged for {}", plan.explain()),
            (Err(a), Err(b)) => assert_eq!(a, b, "errors diverged for {}", plan.explain()),
            (a, b) => panic!("status diverged for {}: {a:?} vs {b:?}", plan.explain()),
        }
    }

    #[test]
    fn matches_reference_on_core_operators() {
        let c = catalog();
        let plans = vec![
            Plan::scan("sales"),
            Plan::scan("sales").filter(Expr::col("amount").gt(Expr::lit(15.0))),
            Plan::scan("sales").project(&[
                ("id", Expr::col("id")),
                ("taxed", Expr::col("amount").mul(Expr::lit(1.1))),
                ("flag", Expr::col("amount").is_null()),
            ]),
            Plan::scan("sales").join(Plan::scan("regions"), &[("region", "name")]),
            Plan::scan("sales").aggregate(
                &["region"],
                vec![
                    AggSpec::count_star("n"),
                    AggSpec::new("total", AggFunc::Sum, Expr::col("amount")),
                    AggSpec::new("mean", AggFunc::Avg, Expr::col("amount")),
                    AggSpec::new("lo", AggFunc::Min, Expr::col("amount")),
                    AggSpec::new("hi", AggFunc::Max, Expr::col("amount")),
                ],
            ),
            Plan::scan("sales").sort(vec![
                SortKey::asc(Expr::col("region")),
                SortKey::desc(Expr::col("amount")),
            ]),
            Plan::scan("sales").limit(2),
            Plan::scan("sales")
                .filter(Expr::col("amount").gt(Expr::lit(5.0)))
                .join(Plan::scan("regions"), &[("region", "name")])
                .project(&[
                    ("region", Expr::col("region")),
                    (
                        "net",
                        Expr::col("amount").mul(Expr::lit(1.0).sub(Expr::col("tax"))),
                    ),
                ])
                .aggregate(
                    &["region"],
                    vec![AggSpec::new("net_total", AggFunc::Sum, Expr::col("net"))],
                )
                .sort(vec![SortKey::asc(Expr::col("region"))])
                .limit(10),
        ];
        for p in &plans {
            assert_engines_agree(&c, p);
        }
    }

    #[test]
    fn matches_reference_on_null_and_edge_semantics() {
        let mut c = catalog();
        c.insert(
            Table::build("l", &[("k", DataType::Int), ("v", DataType::Float)])
                .row(vec![Value::Null, Value::from(1.0)])
                .row(vec![Value::from(1), Value::from(2.0)])
                .row(vec![Value::from(2), Value::Null])
                .finish()
                .unwrap(),
        );
        c.insert(
            Table::build("rr", &[("k2", DataType::Int), ("w", DataType::Int)])
                .row(vec![Value::Null, Value::from(7)])
                .row(vec![Value::from(1), Value::from(8)])
                .row(vec![Value::from(1), Value::from(9)])
                .finish()
                .unwrap(),
        );
        let plans = vec![
            // Null join keys never match, and duplicate build keys fan out.
            Plan::scan("l").join(Plan::scan("rr"), &[("k", "k2")]),
            // Null grouping keys form their own group.
            Plan::scan("l").aggregate(
                &["k"],
                vec![AggSpec::new("s", AggFunc::Sum, Expr::col("v"))],
            ),
            // Kleene logic without short-circuit, NULL predicate is false.
            Plan::scan("l").filter(
                Expr::col("v")
                    .gt(Expr::lit(0.5))
                    .and(Expr::col("k").is_null().not()),
            ),
            // Division by zero degrades to NULL; Int/Int division floats.
            Plan::scan("l").project(&[
                ("d", Expr::col("k").div(Expr::lit(0))),
                ("e", Expr::col("v").div(Expr::col("v"))),
                ("f", Expr::col("k").div(Expr::lit(2))),
            ]),
            // Int literal flowing into a Float output column coerces.
            Plan::scan("l")
                .project(&[("c", Expr::lit(1))])
                .project(&[("c2", Expr::col("c").add(Expr::lit(0.5)))]),
            // Sqrt/Ln domain errors degrade to NULL; Abs keeps Int.
            Plan::scan("l").project(&[
                (
                    "s",
                    Expr::col("v").neg().func(crate::expr::ScalarFunc::Sqrt),
                ),
                ("a", Expr::col("k").neg().func(crate::expr::ScalarFunc::Abs)),
                ("ln", Expr::lit(0.0).func(crate::expr::ScalarFunc::Ln)),
            ]),
            // Nulls sort first ascending, last descending; stable ties.
            Plan::scan("l").sort(vec![
                SortKey::desc(Expr::col("v")),
                SortKey::asc(Expr::col("k")),
            ]),
            // Empty input: filter drops all, aggregate still yields identity.
            Plan::scan("l")
                .filter(Expr::lit(false))
                .aggregate(&[], vec![AggSpec::count_star("n")]),
            // Non-Bool filter predicate errors identically.
            Plan::scan("l").filter(Expr::col("k")),
            // Wrapping integer arithmetic.
            Plan::scan("l").project(&[(
                "w",
                Expr::col("k").mul(Expr::lit(i64::MAX)).add(Expr::lit(1)),
            )]),
        ];
        for p in &plans {
            assert_engines_agree(&c, p);
        }
    }

    #[test]
    fn join_builds_on_smaller_side_with_identical_output() {
        // Big left (fact) × small right (dimension) and the mirror image:
        // both orientations must equal the reference row engine's output.
        let mut c = Catalog::new();
        let mut fact = Table::new(
            "fact",
            Schema::from_pairs(&[("k", DataType::Int), ("x", DataType::Int)]).unwrap(),
        );
        for i in 0..100i64 {
            fact.push_row(vec![Value::from(i % 7), Value::from(i)])
                .unwrap();
        }
        c.insert(fact);
        c.insert(
            Table::build("dim", &[("k2", DataType::Int), ("label", DataType::Str)])
                .row(vec![Value::from(1), Value::from("one")])
                .row(vec![Value::from(3), Value::from("three")])
                .finish()
                .unwrap(),
        );
        // Small right: build side is the right (legacy orientation).
        assert_engines_agree(
            &c,
            &Plan::scan("fact").join(Plan::scan("dim"), &[("k", "k2")]),
        );
        // Small LEFT: the engine flips the build side; output order must
        // still match the reference exactly.
        assert_engines_agree(
            &c,
            &Plan::scan("dim").join(Plan::scan("fact"), &[("k2", "k")]),
        );
    }

    #[test]
    fn spilled_join_and_aggregate_match_in_memory_results() {
        use crate::storage::SpillConfig;
        // Large enough that keys repeat and floats accumulate in a
        // meaningful order; small spill threshold forces Grace
        // partitioning on both the join build and the group-by.
        let mut c = Catalog::new();
        let mut fact = Table::new(
            "fact",
            Schema::from_pairs(&[
                ("k", DataType::Int),
                ("x", DataType::Float),
                ("tag", DataType::Str),
            ])
            .unwrap(),
        );
        for i in 0..500i64 {
            fact.push_row(vec![
                Value::from(i % 23),
                if i % 17 == 0 {
                    Value::Null
                } else {
                    Value::from((i as f64) * 0.1)
                },
                Value::str(["a", "b", "c"][(i % 3) as usize]),
            ])
            .unwrap();
        }
        c.insert(fact);
        c.insert(
            Table::build("dim", &[("k2", DataType::Int), ("w", DataType::Float)])
                .rows((0..23).map(|i| vec![Value::from(i as i64), Value::from(i as f64 * 2.0)]))
                .finish()
                .unwrap(),
        );
        let plans = vec![
            Plan::scan("fact").join(Plan::scan("dim"), &[("k", "k2")]),
            Plan::scan("fact").aggregate(
                &["k", "tag"],
                vec![
                    AggSpec::count_star("n"),
                    AggSpec::new("s", AggFunc::Sum, Expr::col("x")),
                ],
            ),
            Plan::scan("fact")
                .join(Plan::scan("dim"), &[("k", "k2")])
                .aggregate(
                    &["tag"],
                    vec![AggSpec::new("t", AggFunc::Sum, Expr::col("w"))],
                )
                .sort(vec![SortKey::asc(Expr::col("tag"))]),
        ];
        let dir = std::env::temp_dir().join(format!("mde_phys_spill_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut spilled = c.clone();
        spilled.set_spill_config(SpillConfig {
            threshold_rows: 16,
            partitions: 5,
            dir: Some(dir.clone()),
            page_size: 512,
            ..SpillConfig::default()
        });
        for p in &plans {
            let plain = c.query(p).unwrap();
            let out_of_core = spilled.query(p).unwrap();
            assert_eq!(plain, out_of_core, "spill diverged for {}", p.explain());
        }
        // Partition files are transient: all deleted once consumed.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prepared_query_reuses_plan_and_detects_schema_drift() {
        let c = catalog();
        let plan = Plan::scan("sales")
            .filter(Expr::col("amount").gt(Expr::lit(5.0)))
            .aggregate(
                &[],
                vec![AggSpec::new("s", AggFunc::Sum, Expr::col("amount"))],
            );
        let prepared = PreparedQuery::prepare(&plan, &c).unwrap();
        assert_eq!(prepared.schema().names(), vec!["s"]);
        let a = prepared.execute(&c).unwrap();
        let b = prepared.execute(&c).unwrap();
        assert_eq!(a, b);

        // Same table name, different schema: execution fails loudly
        // instead of producing garbage.
        let mut drifted = Catalog::new();
        drifted.insert(
            Table::build("sales", &[("amount", DataType::Float)])
                .finish()
                .unwrap(),
        );
        let err = prepared.execute(&drifted).unwrap_err();
        assert!(err.to_string().contains("stale"), "{err}");
        // A missing table is an UnknownTable error, as with direct queries.
        assert!(matches!(
            prepared.execute(&Catalog::new()).unwrap_err(),
            McdbError::UnknownTable { .. }
        ));
    }

    #[test]
    fn morsel_parallel_is_bit_identical_across_thread_counts() {
        use crate::query::ExecConfig;
        // 1000 rows with 64-lane morsels → 16 morsels per operator, so
        // every merge path (SIMD filter fast path, generic filter, Int
        // join probe, group-by accumulation, sort keys, projection
        // concat) crosses real morsel boundaries.
        let mut c = Catalog::new();
        let mut t = Table::new(
            "big",
            Schema::from_pairs(&[("k", DataType::Int), ("x", DataType::Float)]).unwrap(),
        );
        for i in 0..1000i64 {
            t.push_row(vec![
                if i % 13 == 0 {
                    Value::Null
                } else {
                    Value::from(i % 7)
                },
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::from(i as f64 * 0.37)
                },
            ])
            .unwrap();
        }
        c.insert(t);
        c.insert(
            Table::build("dim", &[("k2", DataType::Int), ("w", DataType::Float)])
                .rows((0..7).map(|i| vec![Value::from(i), Value::from(i as f64 + 0.5)]))
                .finish()
                .unwrap(),
        );
        let plans = vec![
            Plan::scan("big").filter(Expr::col("x").gt(Expr::lit(100.0))),
            Plan::scan("big").filter(Expr::lit(3).le(Expr::col("k"))),
            Plan::scan("big").join(Plan::scan("dim"), &[("k", "k2")]),
            Plan::scan("big").aggregate(
                &["k"],
                vec![
                    AggSpec::count_star("n"),
                    AggSpec::new("s", AggFunc::Sum, Expr::col("x")),
                ],
            ),
            Plan::scan("big")
                .sort(vec![SortKey::desc(Expr::col("x"))])
                .limit(10),
            Plan::scan("big").project(&[("y", Expr::col("x").mul(Expr::lit(2.0)))]),
        ];
        for plan in &plans {
            let mut seq = c.clone();
            seq.set_exec_config(ExecConfig {
                threads: 1,
                morsel_rows: 64,
            });
            let want = seq.query(plan).unwrap();
            for threads in [2, 4, 8] {
                let mut par = c.clone();
                par.set_exec_config(ExecConfig {
                    threads,
                    morsel_rows: 64,
                });
                assert_eq!(
                    par.query(plan).unwrap(),
                    want,
                    "threads={threads} diverged for {}",
                    plan.explain()
                );
            }
        }
    }

    #[test]
    fn selection_vectors_compose_through_filter_sort_limit() {
        let c = catalog();
        let plan = Plan::scan("sales")
            .filter(Expr::col("amount").is_null().not())
            .sort(vec![SortKey::desc(Expr::col("amount"))])
            .limit(2);
        let t = c.query(&plan).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][2], Value::from(30.0));
        assert_eq!(t.rows()[1][2], Value::from(20.0));
        assert_eq!(t.name(), "limit");
    }
}
