//! SIMD batch kernels for the vectorized executor, with portable scalar
//! oracles.
//!
//! Extends the runtime-dispatch pattern of `mde_numeric::linalg::kernels`
//! (PR 5) to the query path: each public entry point checks
//! `is_x86_feature_detected!("avx2")` once per call (the detection result
//! is cached by `std`) and either runs an AVX2 kernel or the portable
//! scalar loop. Unlike the floating-point GP kernels, everything here is
//! **exact** — comparisons, mask logic, and integer hashing have no
//! rounding — so the dispatched and portable paths return bit-identical
//! results and the property suite (`tests/simd_kernels.rs`) asserts full
//! equality, not a tolerance.
//!
//! Null masks follow the [`crate::query::column::NullMask`] convention:
//! 64 lanes per `u64` word, **set bit = NULL**, lane `i` maps to
//! `words[i / 64] >> (i % 64) & 1`. Callers slice whole words, which is
//! why morsel boundaries are 64-lane aligned.
//!
//! NaN never reaches the `f64` comparison kernel from engine columns —
//! schema validation rejects non-finite table values and projection
//! re-validates computed columns, so a non-null NaN lane is unreachable
//! by construction (`eval_cmp` turns a NaN comparison into a typed
//! error before any fast path applies). The kernels nevertheless define
//! IEEE-total behavior (ordered-quiet predicates: any comparison with
//! NaN is false, except `Ne` which is true) and the property tests pin
//! dispatched == portable on NaN/±0.0/infinity inputs.

/// Comparison predicate for the literal-comparison kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Whether the AVX2 kernels are active on this host. The portable paths
/// run (and are tested) everywhere; this only reports which side the
/// dispatch takes.
pub fn simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[inline]
fn null_at(nulls: Option<&[u64]>, lane: usize) -> bool {
    match nulls {
        Some(w) => w[lane / 64] >> (lane % 64) & 1 != 0,
        None => false,
    }
}

#[inline]
fn cmp_f64_scalar(op: CmpOp, a: f64, lit: f64) -> bool {
    match op {
        CmpOp::Eq => a == lit,
        CmpOp::Ne => a != lit,
        CmpOp::Lt => a < lit,
        CmpOp::Le => a <= lit,
        CmpOp::Gt => a > lit,
        CmpOp::Ge => a >= lit,
    }
}

#[inline]
fn cmp_i64_scalar(op: CmpOp, a: i64, lit: i64) -> bool {
    match op {
        CmpOp::Eq => a == lit,
        CmpOp::Ne => a != lit,
        CmpOp::Lt => a < lit,
        CmpOp::Le => a <= lit,
        CmpOp::Gt => a > lit,
        CmpOp::Ge => a >= lit,
    }
}

/// Compact a boolean column into a selection vector: the (local) lane
/// indices where `data[lane]` is true and the lane is not null.
pub fn compact_bool_lanes(data: &[bool], nulls: Option<&[u64]>) -> Vec<u32> {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 verified at runtime.
        return unsafe { avx2::compact_bool(data, nulls) };
    }
    compact_bool_lanes_portable(data, nulls)
}

/// Portable oracle for [`compact_bool_lanes`].
pub fn compact_bool_lanes_portable(data: &[bool], nulls: Option<&[u64]>) -> Vec<u32> {
    let mut out = Vec::new();
    for (lane, &v) in data.iter().enumerate() {
        if v && !null_at(nulls, lane) {
            out.push(lane as u32);
        }
    }
    out
}

/// Compare an `f64` column against a literal and return the selection
/// vector of non-null lanes where the predicate holds. IEEE semantics:
/// comparisons with NaN are false (true for [`CmpOp::Ne`]).
pub fn cmp_f64_lit(op: CmpOp, data: &[f64], lit: f64, nulls: Option<&[u64]>) -> Vec<u32> {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 verified at runtime.
        return unsafe { avx2::cmp_f64(op, data, lit, nulls) };
    }
    cmp_f64_lit_portable(op, data, lit, nulls)
}

/// Portable oracle for [`cmp_f64_lit`].
pub fn cmp_f64_lit_portable(op: CmpOp, data: &[f64], lit: f64, nulls: Option<&[u64]>) -> Vec<u32> {
    let mut out = Vec::new();
    for (lane, &a) in data.iter().enumerate() {
        if cmp_f64_scalar(op, a, lit) && !null_at(nulls, lane) {
            out.push(lane as u32);
        }
    }
    out
}

/// Compare an `i64` column against a literal and return the selection
/// vector of non-null lanes where the predicate holds.
pub fn cmp_i64_lit(op: CmpOp, data: &[i64], lit: i64, nulls: Option<&[u64]>) -> Vec<u32> {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 verified at runtime.
        return unsafe { avx2::cmp_i64(op, data, lit, nulls) };
    }
    cmp_i64_lit_portable(op, data, lit, nulls)
}

/// Portable oracle for [`cmp_i64_lit`].
pub fn cmp_i64_lit_portable(op: CmpOp, data: &[i64], lit: i64, nulls: Option<&[u64]>) -> Vec<u32> {
    let mut out = Vec::new();
    for (lane, &a) in data.iter().enumerate() {
        if cmp_i64_scalar(op, a, lit) && !null_at(nulls, lane) {
            out.push(lane as u32);
        }
    }
    out
}

/// The scalar hash the batched kernel must agree with: splitmix64's
/// finalizer over the key's two's-complement bits. Used for the
/// build side of the integer-key join index (one key at a time).
#[inline]
pub fn hash_i64_one(key: i64) -> u64 {
    let mut z = (key as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Batched splitmix64 over an `i64` key column (probe-side batching for
/// the integer-key hash join). Exact integer arithmetic: bit-identical
/// to [`hash_i64_one`] per lane on every path.
pub fn hash_i64_batch(keys: &[i64]) -> Vec<u64> {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 verified at runtime.
        return unsafe { avx2::hash_i64(keys) };
    }
    hash_i64_batch_portable(keys)
}

/// Portable oracle for [`hash_i64_batch`].
pub fn hash_i64_batch_portable(keys: &[i64]) -> Vec<u64> {
    keys.iter().map(|&k| hash_i64_one(k)).collect()
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 kernels. Every function is gated behind the caller's runtime
    //! feature check; `#[target_feature]` makes the intrinsics safe to
    //! emit, the caller's `is_x86_feature_detected!` makes them safe to
    //! run.
    use super::{cmp_f64_scalar, cmp_i64_scalar, null_at, CmpOp};
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// Push the lanes of a (≤32-bit) keep mask anchored at `base`.
    #[inline]
    fn push_mask(out: &mut Vec<u32>, base: usize, mut keep: u32) {
        while keep != 0 {
            let t = keep.trailing_zeros();
            out.push(base as u32 + t);
            keep &= keep - 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn compact_bool(data: &[bool], nulls: Option<&[u64]>) -> Vec<u32> {
        let n = data.len();
        let mut out = Vec::new();
        // `bool` is guaranteed to be one byte holding 0 or 1.
        let ptr = data.as_ptr() as *const u8;
        let zero = _mm256_setzero_si256();
        let mut i = 0;
        while i + 32 <= n {
            let v = _mm256_loadu_si256(ptr.add(i) as *const __m256i);
            let is_zero = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)) as u32;
            let mut keep = !is_zero;
            if let Some(w) = nulls {
                let word = w[i / 64];
                let half = if i % 64 == 0 { word } else { word >> 32 };
                keep &= !(half as u32);
            }
            push_mask(&mut out, i, keep);
            i += 32;
        }
        for (lane, &d) in data.iter().enumerate().skip(i) {
            if d && !null_at(nulls, lane) {
                out.push(lane as u32);
            }
        }
        out
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn cmp_f64(op: CmpOp, data: &[f64], lit: f64, nulls: Option<&[u64]>) -> Vec<u32> {
        // Ordered-quiet predicates except NEQ_UQ: IEEE `!=` is true when
        // unordered, everything else is false — matching the scalar ops.
        match op {
            CmpOp::Eq => cmp_f64_imm::<_CMP_EQ_OQ>(data, lit, nulls, op),
            CmpOp::Ne => cmp_f64_imm::<_CMP_NEQ_UQ>(data, lit, nulls, op),
            CmpOp::Lt => cmp_f64_imm::<_CMP_LT_OQ>(data, lit, nulls, op),
            CmpOp::Le => cmp_f64_imm::<_CMP_LE_OQ>(data, lit, nulls, op),
            CmpOp::Gt => cmp_f64_imm::<_CMP_GT_OQ>(data, lit, nulls, op),
            CmpOp::Ge => cmp_f64_imm::<_CMP_GE_OQ>(data, lit, nulls, op),
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn cmp_f64_imm<const IMM: i32>(
        data: &[f64],
        lit: f64,
        nulls: Option<&[u64]>,
        op: CmpOp,
    ) -> Vec<u32> {
        let n = data.len();
        let mut out = Vec::new();
        let l = _mm256_set1_pd(lit);
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(data.as_ptr().add(i));
            let mut keep = _mm256_movemask_pd(_mm256_cmp_pd::<IMM>(v, l)) as u32 & 0xF;
            if let Some(w) = nulls {
                keep &= !((w[i / 64] >> (i % 64)) as u32) & 0xF;
            }
            push_mask(&mut out, i, keep);
            i += 4;
        }
        for (lane, &d) in data.iter().enumerate().skip(i) {
            if cmp_f64_scalar(op, d, lit) && !null_at(nulls, lane) {
                out.push(lane as u32);
            }
        }
        out
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn cmp_i64(op: CmpOp, data: &[i64], lit: i64, nulls: Option<&[u64]>) -> Vec<u32> {
        // AVX2 has 64-bit eq and signed gt; the other four derive by
        // operand swap and mask negation.
        let (use_eq, swap, negate) = match op {
            CmpOp::Eq => (true, false, false),
            CmpOp::Ne => (true, false, true),
            CmpOp::Gt => (false, false, false),
            CmpOp::Le => (false, false, true),
            CmpOp::Lt => (false, true, false),
            CmpOp::Ge => (false, true, true),
        };
        let n = data.len();
        let mut out = Vec::new();
        let l = _mm256_set1_epi64x(lit);
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_si256(data.as_ptr().add(i) as *const __m256i);
            let m = if use_eq {
                _mm256_cmpeq_epi64(v, l)
            } else if swap {
                _mm256_cmpgt_epi64(l, v)
            } else {
                _mm256_cmpgt_epi64(v, l)
            };
            let mut keep = _mm256_movemask_pd(_mm256_castsi256_pd(m)) as u32 & 0xF;
            if negate {
                keep ^= 0xF;
            }
            if let Some(w) = nulls {
                keep &= !((w[i / 64] >> (i % 64)) as u32) & 0xF;
            }
            push_mask(&mut out, i, keep);
            i += 4;
        }
        for (lane, &d) in data.iter().enumerate().skip(i) {
            if cmp_i64_scalar(op, d, lit) && !null_at(nulls, lane) {
                out.push(lane as u32);
            }
        }
        out
    }

    /// Low 64 bits of `a * c` per lane, from 32x32→64 partial products
    /// (AVX2 has no 64-bit multiply).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_const_u64(a: __m256i, c: u64) -> __m256i {
        let c_lo = _mm256_set1_epi64x((c & 0xffff_ffff) as i64);
        let c_hi = _mm256_set1_epi64x((c >> 32) as i64);
        let lo = _mm256_mul_epu32(a, c_lo);
        let mid = _mm256_add_epi64(
            _mm256_mul_epu32(_mm256_srli_epi64::<32>(a), c_lo),
            _mm256_mul_epu32(a, c_hi),
        );
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(mid))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn hash_i64(keys: &[i64]) -> Vec<u64> {
        let n = keys.len();
        let mut out = vec![0u64; n];
        let seed = _mm256_set1_epi64x(0x9e37_79b9_7f4a_7c15_u64 as i64);
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_si256(keys.as_ptr().add(i) as *const __m256i);
            let mut z = _mm256_add_epi64(v, seed);
            z = mul_const_u64(
                _mm256_xor_si256(z, _mm256_srli_epi64::<30>(z)),
                0xbf58_476d_1ce4_e5b9,
            );
            z = mul_const_u64(
                _mm256_xor_si256(z, _mm256_srli_epi64::<27>(z)),
                0x94d0_49bb_1331_11eb,
            );
            z = _mm256_xor_si256(z, _mm256_srli_epi64::<31>(z));
            _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, z);
            i += 4;
        }
        for lane in i..n {
            out[lane] = super::hash_i64_one(keys[lane]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    #[test]
    fn dispatched_matches_portable_smoke() {
        let f: Vec<f64> = (0..67).map(|i| (i as f64) - 33.0).collect();
        let ints: Vec<i64> = (0..67).map(|i| i - 33).collect();
        let bools: Vec<bool> = (0..67).map(|i| i % 3 == 0).collect();
        let nulls: Vec<u64> = vec![0xAAAA_AAAA_AAAA_AAAA, 0x5];
        for op in OPS {
            assert_eq!(
                cmp_f64_lit(op, &f, 1.5, Some(&nulls)),
                cmp_f64_lit_portable(op, &f, 1.5, Some(&nulls)),
            );
            assert_eq!(
                cmp_i64_lit(op, &ints, -3, Some(&nulls)),
                cmp_i64_lit_portable(op, &ints, -3, Some(&nulls)),
            );
        }
        assert_eq!(
            compact_bool_lanes(&bools, Some(&nulls)),
            compact_bool_lanes_portable(&bools, Some(&nulls)),
        );
        assert_eq!(hash_i64_batch(&ints), hash_i64_batch_portable(&ints));
    }

    #[test]
    fn hash_batch_matches_scalar() {
        let keys: Vec<i64> = vec![i64::MIN, -1, 0, 1, i64::MAX, 42, 7, -7, 99];
        let batch = hash_i64_batch(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(batch[i], hash_i64_one(k));
        }
    }
}
