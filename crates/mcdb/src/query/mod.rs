//! Logical query plans, the catalog, and query execution.
//!
//! Plans are built with a fluent API, optimized by a small rewrite planner
//! ([`planner::optimize`] — conjunct splitting and filter pushdown below
//! joins, constant folding, and projection pruning: the classical rewrites
//! the paper points to when it notes that "techniques for query
//! optimization" transfer to simulation settings), lowered to a physical
//! plan with expressions bound exactly once ([`physical::PreparedQuery`]),
//! and executed against a [`Catalog`] of in-memory tables by a vectorized
//! columnar engine ([`column`]/[`batch`]).
//!
//! The legacy row-at-a-time interpreter survives as
//! [`Catalog::query_unoptimized`], which doubles as the reference
//! implementation for differential testing of the vectorized path.

pub mod batch;
pub mod column;
mod exec;
pub mod physical;
pub mod planner;
pub mod simd;

use crate::expr::Expr;
use crate::schema::{Column, DataType, Schema};
use crate::storage::{BufferPool, SpillConfig};
use crate::table::Table;
use crate::McdbError;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

pub use exec::execute;
pub use physical::PreparedQuery;

/// Morsel-parallel execution policy carried by a [`Catalog`].
///
/// The executor splits every operator's input into `morsel_rows`-lane
/// morsels and runs them on `threads` scoped workers with a
/// deterministic order-preserving merge, so results (rows, errors, and
/// the deterministic ledger) are bit-identical at any thread count.
/// `threads <= 1` runs the same morsel pipeline on the calling thread —
/// sequential execution is the one-worker special case, not a separate
/// code path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads per query (1 = run morsels on the calling thread).
    pub threads: usize,
    /// Lanes per morsel. Rounded up to a multiple of 64 so morsel
    /// boundaries align with null-mask words (and, for typical page
    /// sizes, with page-frame row counts).
    pub morsel_rows: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: 1,
            morsel_rows: 4096,
        }
    }
}

impl ExecConfig {
    /// A config with `threads` workers and the default morsel size.
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads: threads.max(1),
            ..ExecConfig::default()
        }
    }

    /// `morsel_rows` rounded up to a 64-lane boundary (never zero).
    pub fn aligned_morsel_rows(&self) -> usize {
        self.morsel_rows.max(1).div_ceil(64) * 64
    }
}

/// A named collection of tables — the "database".
///
/// Tables are stored behind `Arc`s so cloning a catalog (the per-replicate
/// scratch-reset pattern in the Monte Carlo runners) shares table storage
/// instead of deep-copying every row.
///
/// A catalog also carries the [`SpillConfig`] governing when the executor
/// degrades hash-join builds and group-by hash tables to out-of-core
/// Grace partitioning (default: effectively never — a 2²⁰-row threshold).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    spill: SpillConfig,
    exec: ExecConfig,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Insert (or replace) a table under its own name.
    pub fn insert(&mut self, table: Table) {
        self.tables
            .insert(table.name().to_string(), Arc::new(table));
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> crate::Result<&Table> {
        self.tables
            .get(name)
            .map(|t| t.as_ref())
            .ok_or_else(|| McdbError::UnknownTable {
                name: name.to_string(),
            })
    }

    /// Remove a table, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Table> {
        self.tables
            .remove(name)
            .map(|t| Arc::try_unwrap(t).unwrap_or_else(|a| (*a).clone()))
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all tables (unordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// A stable digest of the catalog's shape: every table name with its
    /// column names and types, in sorted table order. Two catalogs with
    /// identical schemas fingerprint identically regardless of row
    /// contents or insertion order, and any DDL that adds, drops, or
    /// retypes a table changes the digest — which is what makes it a
    /// sound cache key for prepared plans (a plan prepared against one
    /// fingerprint is structurally valid for every catalog snapshot
    /// sharing it).
    pub fn schema_fingerprint(&self) -> u64 {
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        let mut fp = mde_numeric::Fingerprint::new("mcdb.catalog.schema");
        for name in names {
            fp = fp.push_str(name);
            for col in self.tables[name].schema().columns() {
                fp = fp.push_str(&col.name).push_str(&col.dtype.to_string());
            }
        }
        fp.finish()
    }

    /// The spill policy the executor applies to hash joins and group-by.
    pub fn spill_config(&self) -> &SpillConfig {
        &self.spill
    }

    /// Replace the spill policy (e.g. to force out-of-core execution in
    /// tests, or to share one buffer pool between tables and spills).
    pub fn set_spill_config(&mut self, spill: SpillConfig) {
        self.spill = spill;
    }

    /// The morsel-parallel execution policy queries against this catalog
    /// run under.
    pub fn exec_config(&self) -> &ExecConfig {
        &self.exec
    }

    /// Replace the execution policy (thread count / morsel size).
    /// Results are bit-identical across policies by construction; this
    /// only changes how the work is scheduled.
    pub fn set_exec_config(&mut self, exec: ExecConfig) {
        self.exec = exec;
    }

    /// Persist every table as a paged columnar file under `dir` (one
    /// `<table>.mdet` per table) and return a catalog of paged tables
    /// reading back through the shared `pool`. Spill partitions written
    /// by the new catalog reuse the same pool and directory, so one
    /// frame budget governs the whole query workload. The source catalog
    /// is untouched — it is the differential oracle for the paged twin.
    pub fn to_paged(
        &self,
        dir: &Path,
        page_size: usize,
        pool: Arc<BufferPool>,
    ) -> crate::Result<Catalog> {
        std::fs::create_dir_all(dir).map_err(|e| {
            McdbError::invalid_plan(format!("cannot create paged catalog dir: {e}"))
        })?;
        let mut out = Catalog::new();
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort(); // deterministic write order
        for name in names {
            let t = &self.tables[name];
            let path = dir.join(format!("{name}.mdet"));
            out.insert(t.to_paged(&path, page_size, Arc::clone(&pool))?);
        }
        out.spill = SpillConfig {
            dir: Some(dir.to_path_buf()),
            page_size,
            pool,
            ..self.spill.clone()
        };
        out.exec = self.exec.clone();
        Ok(out)
    }

    /// Execute a plan against this catalog.
    ///
    /// The plan is optimized, lowered to a physical plan with expressions
    /// bound once, and run on the vectorized columnar engine. Callers that
    /// execute the same plan repeatedly should lower it themselves with
    /// [`PreparedQuery::prepare`] and call
    /// [`PreparedQuery::execute`] per run.
    pub fn query(&self, plan: &Plan) -> crate::Result<Table> {
        PreparedQuery::prepare(plan, self)?.execute(self)
    }

    /// Execute a plan with structured tracing: one `query` root span plus
    /// one child span per physical operator, routed to `tracer`'s sink.
    /// See [`PreparedQuery::execute_traced`].
    pub fn query_traced(
        &self,
        plan: &Plan,
        tracer: &mde_numeric::obs::Tracer,
    ) -> crate::Result<Table> {
        PreparedQuery::prepare(plan, self)?.execute_traced(self, tracer)
    }

    /// Execute a plan on the legacy row-at-a-time interpreter, without the
    /// optimizer. Kept as the reference semantics for differential tests
    /// of the planner and the vectorized engine.
    pub fn query_unoptimized(&self, plan: &Plan) -> crate::Result<Table> {
        execute(plan, self)
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (`COUNT(*)` when the argument is absent, else counts
    /// non-null argument values).
    Count,
    /// Sum of a numeric expression (Nulls skipped).
    Sum,
    /// Mean of a numeric expression (Nulls skipped).
    Avg,
    /// Minimum by SQL ordering (Nulls skipped).
    Min,
    /// Maximum by SQL ordering (Nulls skipped).
    Max,
}

/// One aggregate output column.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Output column name.
    pub name: String,
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expression; `None` only for `COUNT(*)`.
    pub arg: Option<Expr>,
}

impl AggSpec {
    /// `COUNT(*) AS name`.
    pub fn count_star(name: impl Into<String>) -> Self {
        AggSpec {
            name: name.into(),
            func: AggFunc::Count,
            arg: None,
        }
    }

    /// `func(expr) AS name`.
    pub fn new(name: impl Into<String>, func: AggFunc, arg: Expr) -> Self {
        AggSpec {
            name: name.into(),
            func,
            arg: Some(arg),
        }
    }
}

/// A sort key: expression plus direction. Nulls sort first regardless of
/// direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// The key expression.
    pub expr: Expr,
    /// Ascending if true.
    pub ascending: bool,
}

impl SortKey {
    /// Ascending key on an expression.
    pub fn asc(expr: Expr) -> Self {
        SortKey {
            expr,
            ascending: true,
        }
    }

    /// Descending key on an expression.
    pub fn desc(expr: Expr) -> Self {
        SortKey {
            expr,
            ascending: false,
        }
    }
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a named table from the catalog.
    Scan {
        /// Table name.
        table: String,
    },
    /// An inline table (subquery materialized by the caller, VG output,
    /// etc.).
    Values {
        /// The inline table.
        table: Table,
    },
    /// Keep rows where the predicate evaluates to true.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate expression (Bool-typed).
        predicate: Expr,
    },
    /// Compute output columns from input rows.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// `(output name, expression)` pairs.
        exprs: Vec<(String, Expr)>,
    },
    /// Inner equi-join on pairs of column names.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// `(left column, right column)` equality pairs.
        on: Vec<(String, String)>,
        /// Prefix applied to right-side columns whose names collide with
        /// the left side.
        right_prefix: String,
    },
    /// Group-by aggregation. With an empty `group_by`, produces exactly one
    /// row (global aggregates).
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping column names.
        group_by: Vec<String>,
        /// Aggregate output columns.
        aggs: Vec<AggSpec>,
    },
    /// Sort rows.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys, most significant first.
        keys: Vec<SortKey>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Maximum number of rows.
        n: usize,
    },
}

impl Plan {
    /// Scan a catalog table.
    pub fn scan(table: impl Into<String>) -> Plan {
        Plan::Scan {
            table: table.into(),
        }
    }

    /// Inline table.
    pub fn values(table: Table) -> Plan {
        Plan::Values { table }
    }

    /// Add a filter on top.
    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Add a projection on top.
    pub fn project(self, exprs: &[(&str, Expr)]) -> Plan {
        Plan::Project {
            input: Box::new(self),
            exprs: exprs
                .iter()
                .map(|(n, e)| (n.to_string(), e.clone()))
                .collect(),
        }
    }

    /// Inner equi-join with another plan.
    pub fn join(self, right: Plan, on: &[(&str, &str)]) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: on
                .iter()
                .map(|(l, r)| (l.to_string(), r.to_string()))
                .collect(),
            right_prefix: "r".to_string(),
        }
    }

    /// Group-by aggregation.
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<AggSpec>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            aggs,
        }
    }

    /// Sort.
    pub fn sort(self, keys: Vec<SortKey>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// Limit.
    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Render the plan as an indented operator tree — the engine's
    /// `EXPLAIN`. Useful for seeing what the rewrite planner did:
    ///
    /// ```
    /// use mde_mcdb::prelude::*;
    /// use mde_mcdb::query::planner::optimize;
    ///
    /// let plan = Plan::scan("sales")
    ///     .join(Plan::scan("regions"), &[("region", "name")])
    ///     .filter(Expr::col("amount").gt(Expr::lit(10)));
    /// assert!(plan.explain().starts_with("Filter"));
    /// // (Pushdown through bare scans is skipped — schemas unknown — so
    /// // this plan optimizes to itself; see the planner tests for pushdown
    /// // in action over inline tables.)
    /// assert_eq!(optimize(plan.clone()).explain(), plan.explain());
    /// ```
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan { table } => {
                out.push_str(&format!("{pad}Scan {table}\n"));
            }
            Plan::Values { table } => {
                out.push_str(&format!(
                    "{pad}Values {} ({} rows)\n",
                    table.name(),
                    table.len()
                ));
            }
            Plan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate}\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::Project { input, exprs } => {
                let cols: Vec<String> = exprs.iter().map(|(n, e)| format!("{n}={e}")).collect();
                out.push_str(&format!("{pad}Project [{}]\n", cols.join(", ")));
                input.explain_into(out, depth + 1);
            }
            Plan::Join {
                left, right, on, ..
            } => {
                let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                out.push_str(&format!("{pad}HashJoin on {}\n", keys.join(" AND ")));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let agg_names: Vec<&str> = aggs.iter().map(|a| a.name.as_str()).collect();
                out.push_str(&format!(
                    "{pad}Aggregate group_by=[{}] aggs=[{}]\n",
                    group_by.join(", "),
                    agg_names.join(", ")
                ));
                input.explain_into(out, depth + 1);
            }
            Plan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{} {}", k.expr, if k.ascending { "ASC" } else { "DESC" }))
                    .collect();
                out.push_str(&format!("{pad}Sort [{}]\n", ks.join(", ")));
                input.explain_into(out, depth + 1);
            }
            Plan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }

    /// Infer the output schema against a catalog, without executing.
    ///
    /// Used for composite-model mismatch detection and by the executor to
    /// pre-validate plans.
    pub fn output_schema(&self, catalog: &Catalog) -> crate::Result<Schema> {
        match self {
            Plan::Scan { table } => Ok(catalog.get(table)?.schema().clone()),
            Plan::Values { table } => Ok(table.schema().clone()),
            Plan::Filter { input, predicate } => {
                let schema = input.output_schema(catalog)?;
                // Validate the predicate binds.
                predicate.bind(&schema)?;
                Ok(schema)
            }
            Plan::Project { input, exprs } => {
                let in_schema = input.output_schema(catalog)?;
                let mut cols = Vec::with_capacity(exprs.len());
                for (name, e) in exprs {
                    let dt = infer_type(e, &in_schema)?.unwrap_or(DataType::Float);
                    cols.push(Column::new(name.clone(), dt));
                }
                Schema::new(cols)
            }
            Plan::Join {
                left,
                right,
                on,
                right_prefix,
            } => {
                let ls = left.output_schema(catalog)?;
                let rs = right.output_schema(catalog)?;
                for (l, r) in on {
                    ls.index_of(l)?;
                    rs.index_of(r)?;
                }
                ls.concat(&rs, right_prefix)
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.output_schema(catalog)?;
                let mut cols = Vec::new();
                for g in group_by {
                    let i = in_schema.index_of(g)?;
                    cols.push(in_schema.columns()[i].clone());
                }
                for a in aggs {
                    let dt = match (a.func, &a.arg) {
                        (AggFunc::Count, _) => DataType::Int,
                        (_, None) => {
                            return Err(McdbError::invalid_plan(format!(
                                "aggregate `{}` requires an argument",
                                a.name
                            )))
                        }
                        (AggFunc::Avg, Some(_)) => DataType::Float,
                        (AggFunc::Sum, Some(e))
                        | (AggFunc::Min, Some(e))
                        | (AggFunc::Max, Some(e)) => {
                            infer_type(e, &in_schema)?.unwrap_or(DataType::Float)
                        }
                    };
                    cols.push(Column::new(a.name.clone(), dt));
                }
                Schema::new(cols)
            }
            Plan::Sort { input, keys } => {
                let schema = input.output_schema(catalog)?;
                for k in keys {
                    k.expr.bind(&schema)?;
                }
                Ok(schema)
            }
            Plan::Limit { input, .. } => input.output_schema(catalog),
        }
    }
}

/// Infer the static type of an expression against a schema. `None` means
/// "unconstrained" (a bare NULL literal).
pub(crate) fn infer_type(e: &Expr, schema: &Schema) -> crate::Result<Option<DataType>> {
    use crate::expr::{BinOp, ScalarFunc, UnOp};
    Ok(match e {
        Expr::Col(name) => Some(schema.columns()[schema.index_of(name)?].dtype),
        Expr::Lit(v) => v.data_type(),
        Expr::Binary { op, left, right } => {
            let lt = infer_type(left, schema)?;
            let rt = infer_type(right, schema)?;
            match op {
                BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or => Some(DataType::Bool),
                BinOp::Div => Some(DataType::Float),
                BinOp::Add | BinOp::Sub | BinOp::Mul => match (lt, rt) {
                    (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
                    (None, None) => None,
                    _ => Some(DataType::Float),
                },
            }
        }
        Expr::Unary { op, expr } => match op {
            UnOp::IsNull | UnOp::Not => Some(DataType::Bool),
            UnOp::Neg => infer_type(expr, schema)?,
        },
        Expr::Func { func, arg } => match func {
            ScalarFunc::Abs => infer_type(arg, schema)?,
            _ => Some(DataType::Float),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            Table::build(
                "t",
                &[
                    ("id", DataType::Int),
                    ("x", DataType::Float),
                    ("s", DataType::Str),
                ],
            )
            .row(vec![Value::from(1), Value::from(2.0), Value::from("a")])
            .finish()
            .unwrap(),
        );
        c
    }

    #[test]
    fn schema_fingerprint_tracks_shape_not_rows() {
        let c = catalog();
        let fp = c.schema_fingerprint();
        // Same shape, different rows: identical fingerprint.
        let mut c2 = Catalog::new();
        c2.insert(
            Table::build(
                "t",
                &[
                    ("id", DataType::Int),
                    ("x", DataType::Float),
                    ("s", DataType::Str),
                ],
            )
            .rows((0..10).map(|i| vec![Value::from(i), Value::from(0.5), Value::from("b")]))
            .finish()
            .unwrap(),
        );
        assert_eq!(fp, c2.schema_fingerprint());
        // Adding a table changes it; dropping it restores it.
        c2.insert(Table::build("u", &[("k", DataType::Int)]).finish().unwrap());
        assert_ne!(fp, c2.schema_fingerprint());
        c2.remove("u");
        assert_eq!(fp, c2.schema_fingerprint());
        // Retyping a column changes it.
        let mut c3 = Catalog::new();
        c3.insert(
            Table::build(
                "t",
                &[
                    ("id", DataType::Int),
                    ("x", DataType::Int),
                    ("s", DataType::Str),
                ],
            )
            .finish()
            .unwrap(),
        );
        assert_ne!(fp, c3.schema_fingerprint());
    }

    #[test]
    fn catalog_crud() {
        let mut c = catalog();
        assert!(c.contains("t"));
        assert!(c.get("t").is_ok());
        assert!(c.get("nope").is_err());
        assert!(c.remove("t").is_some());
        assert!(!c.contains("t"));
    }

    #[test]
    fn schema_inference_scan_filter() {
        let c = catalog();
        let p = Plan::scan("t").filter(Expr::col("id").gt(Expr::lit(0)));
        let s = p.output_schema(&c).unwrap();
        assert_eq!(s.names(), vec!["id", "x", "s"]);
        // Unknown column in the predicate is caught statically.
        let p = Plan::scan("t").filter(Expr::col("zzz").gt(Expr::lit(0)));
        assert!(p.output_schema(&c).is_err());
    }

    #[test]
    fn schema_inference_project_types() {
        let c = catalog();
        let p = Plan::scan("t").project(&[
            ("i2", Expr::col("id").add(Expr::lit(1))),
            ("f", Expr::col("id").add(Expr::col("x"))),
            ("d", Expr::col("id").div(Expr::lit(2))),
            ("b", Expr::col("id").gt(Expr::lit(0))),
        ]);
        let s = p.output_schema(&c).unwrap();
        let types: Vec<DataType> = s.columns().iter().map(|col| col.dtype).collect();
        assert_eq!(
            types,
            vec![
                DataType::Int,
                DataType::Float,
                DataType::Float,
                DataType::Bool
            ]
        );
    }

    #[test]
    fn schema_inference_aggregate() {
        let c = catalog();
        let p = Plan::scan("t").aggregate(
            &["s"],
            vec![
                AggSpec::count_star("n"),
                AggSpec::new("total", AggFunc::Sum, Expr::col("id")),
                AggSpec::new("mean", AggFunc::Avg, Expr::col("x")),
            ],
        );
        let s = p.output_schema(&c).unwrap();
        assert_eq!(s.names(), vec!["s", "n", "total", "mean"]);
        let types: Vec<DataType> = s.columns().iter().map(|col| col.dtype).collect();
        assert_eq!(
            types,
            vec![DataType::Str, DataType::Int, DataType::Int, DataType::Float]
        );
    }

    #[test]
    fn schema_inference_join_collision() {
        let mut c = catalog();
        c.insert(
            Table::build("u", &[("id", DataType::Int), ("y", DataType::Float)])
                .finish()
                .unwrap(),
        );
        let p = Plan::scan("t").join(Plan::scan("u"), &[("id", "id")]);
        let s = p.output_schema(&c).unwrap();
        assert_eq!(s.names(), vec!["id", "x", "s", "r.id", "y"]);
        // Joining on a missing column errors.
        let p = Plan::scan("t").join(Plan::scan("u"), &[("id", "nope")]);
        assert!(p.output_schema(&c).is_err());
    }

    #[test]
    fn explain_renders_tree_shape() {
        let p = Plan::scan("t")
            .join(Plan::scan("u"), &[("id", "id")])
            .filter(Expr::col("x").gt(Expr::lit(1)))
            .aggregate(&["s"], vec![AggSpec::count_star("n")])
            .sort(vec![crate::query::SortKey::asc(Expr::col("s"))])
            .limit(5);
        let e = p.explain();
        let lines: Vec<&str> = e.lines().collect();
        assert!(lines[0].starts_with("Limit 5"));
        assert!(lines[1].trim_start().starts_with("Sort"));
        assert!(lines[2].trim_start().starts_with("Aggregate"));
        assert!(lines[3].trim_start().starts_with("Filter"));
        assert!(lines[4].trim_start().starts_with("HashJoin on id=id"));
        assert!(lines[5].contains("Scan t"));
        assert!(lines[6].contains("Scan u"));
        // Indentation increases down the tree.
        assert!(lines[5].starts_with("          ") || lines[5].starts_with("    "));
    }

    #[test]
    fn explain_shows_pushdown_effect() {
        use crate::query::planner::optimize;
        let people = Table::build("people", &[("pid", DataType::Int)])
            .row(vec![Value::from(1)])
            .finish()
            .unwrap();
        let visits = Table::build("visits", &[("vid", DataType::Int)])
            .row(vec![Value::from(1)])
            .finish()
            .unwrap();
        let p = Plan::values(people)
            .join(Plan::values(visits), &[("pid", "vid")])
            .filter(Expr::col("pid").gt(Expr::lit(0)));
        let before = p.explain();
        let after = optimize(p).explain();
        assert!(before.starts_with("Filter"));
        assert!(after.starts_with("HashJoin"), "pushdown visible: {after}");
    }

    #[test]
    fn aggregate_without_arg_rejected() {
        let c = catalog();
        let p = Plan::scan("t").aggregate(
            &[],
            vec![AggSpec {
                name: "bad".into(),
                func: AggFunc::Sum,
                arg: None,
            }],
        );
        assert!(p.output_schema(&c).is_err());
    }
}
