//! Recursive-descent SQL parser producing logical [`Plan`]s.

use super::lexer::{tokenize, SqlError, Token, TokenKind};
use crate::expr::{Expr, ScalarFunc};
use crate::query::{AggFunc, AggSpec, Plan, SortKey};
use crate::value::Value;

/// Parse one SQL SELECT statement into a plan.
pub fn parse_select(sql: &str) -> Result<Plan, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let plan = p.select_statement()?;
    p.expect_eof()?;
    Ok(plan)
}

/// Crate-internal: parse a SELECT from an already-lexed token slice
/// (`[start, end)`), for the DDL parser's embedded subqueries. The slice
/// must form a complete statement.
pub(crate) fn parse_select_tokens(
    tokens: &[Token],
    start: usize,
    end: usize,
) -> Result<Plan, SqlError> {
    let mut sub: Vec<Token> = tokens[start..end].to_vec();
    let eof_pos = sub.last().map(|t| t.pos).unwrap_or(0);
    sub.push(Token {
        kind: TokenKind::Eof,
        pos: eof_pos,
    });
    let mut p = Parser {
        tokens: sub,
        pos: 0,
    };
    let plan = p.select_statement()?;
    p.expect_eof()?;
    Ok(plan)
}

/// Crate-internal: parse one expression starting at `pos` within a token
/// stream; returns the expression and the position just past it.
pub(crate) fn parse_expression_at(tokens: &[Token], pos: usize) -> Result<(Expr, usize), SqlError> {
    let mut p = Parser {
        tokens: tokens.to_vec(),
        pos,
    };
    let e = p.expression()?;
    Ok((e, p.pos))
}

/// One parsed select item.
enum SelectItem {
    Star,
    Agg {
        func: AggFunc,
        arg: Option<Expr>,
        alias: Option<String>,
    },
    Expr {
        expr: Expr,
        alias: Option<String>,
    },
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next_is_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Keyword(k) if *k == kw)
    }

    fn next_is_sym(&self, sym: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Symbol(s) if *s == sym)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.next_is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.next_is_sym(sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {kw}, found {}", self.peek().kind)))
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), SqlError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected `{sym}`, found {}", self.peek().kind)))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, SqlError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            other => Err(self.error_here(format!("expected {what}, found {other}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        if matches!(self.peek().kind, TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error_here(format!("unexpected trailing {}", self.peek().kind)))
        }
    }

    fn error_here(&self, message: String) -> SqlError {
        SqlError::new(message, Some(self.peek().pos))
    }

    // ---- statement structure ----

    fn select_statement(&mut self) -> Result<Plan, SqlError> {
        self.expect_kw("SELECT")?;
        let items = self.select_list()?;

        self.expect_kw("FROM")?;
        let table = self.expect_ident("table name")?;
        let mut plan = Plan::scan(table);

        while self.eat_kw("JOIN") {
            let right = self.expect_ident("table name")?;
            self.expect_kw("ON")?;
            let mut on: Vec<(String, String)> = Vec::new();
            loop {
                let l = self.expect_ident("join column")?;
                self.expect_sym("=")?;
                let r = self.expect_ident("join column")?;
                on.push((l, r));
                if !self.eat_kw("AND") {
                    break;
                }
            }
            let pairs: Vec<(&str, &str)> =
                on.iter().map(|(l, r)| (l.as_str(), r.as_str())).collect();
            plan = plan.join(Plan::scan(right), &pairs);
        }

        if self.eat_kw("WHERE") {
            let pred = self.expression()?;
            plan = plan.filter(pred);
        }

        let mut group_by: Vec<String> = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expect_ident("grouping column")?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }

        let mut order_keys: Vec<SortKey> = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expression()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_keys.push(if asc {
                    SortKey::asc(e)
                } else {
                    SortKey::desc(e)
                });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }

        let mut limit: Option<usize> = None;
        if self.eat_kw("LIMIT") {
            match self.peek().kind.clone() {
                TokenKind::Number(n) if n >= 0.0 && n.fract() == 0.0 => {
                    self.bump(); // number
                    self.bump(); // float flag
                    limit = Some(n as usize);
                }
                other => {
                    return Err(self.error_here(format!(
                        "LIMIT expects a non-negative integer, found {other}"
                    )))
                }
            }
        }

        // ORDER BY placement, per SQL semantics: keys may reference either
        // output names (aliases, aggregate columns) or — for plain selects —
        // source columns that the projection drops. If every referenced
        // column is among the select output names, sort above the
        // projection; otherwise sort below it (only possible on the
        // non-aggregate path).
        let output_names = select_output_names(&items);
        let keys_fit_output = order_keys.iter().all(|k| {
            k.expr
                .referenced_columns()
                .iter()
                .all(|c| output_names.as_ref().is_none_or(|names| names.contains(c)))
        });
        let has_agg =
            items.iter().any(|i| matches!(i, SelectItem::Agg { .. })) || !group_by.is_empty();
        if !order_keys.is_empty() && !keys_fit_output && !has_agg {
            plan = plan.sort(order_keys);
            plan = self.apply_select(plan, items, group_by)?;
        } else {
            plan = self.apply_select(plan, items, group_by)?;
            if !order_keys.is_empty() {
                plan = plan.sort(order_keys);
            }
        }
        if let Some(n) = limit {
            plan = plan.limit(n);
        }
        Ok(plan)
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        if self.eat_sym("*") {
            return Ok(vec![SelectItem::Star]);
        }
        let mut items = Vec::new();
        loop {
            let item = self.select_item()?;
            items.push(item);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        // Aggregates are only legal at the top of a select item.
        let agg = match &self.peek().kind {
            TokenKind::Keyword("COUNT") => Some(AggFunc::Count),
            TokenKind::Keyword("SUM") => Some(AggFunc::Sum),
            TokenKind::Keyword("AVG") => Some(AggFunc::Avg),
            TokenKind::Keyword("MIN") => Some(AggFunc::Min),
            TokenKind::Keyword("MAX") => Some(AggFunc::Max),
            TokenKind::Eof | TokenKind::Keyword("FROM") => {
                return Err(self.error_here("expected select item".to_string()))
            }
            _ => None,
        };
        if let Some(func) = agg {
            self.bump();
            self.expect_sym("(")?;
            let arg = if func == AggFunc::Count && self.eat_sym("*") {
                None
            } else {
                Some(self.expression()?)
            };
            self.expect_sym(")")?;
            let alias = self.optional_alias()?;
            return Ok(SelectItem::Agg { func, arg, alias });
        }
        let expr = self.expression()?;
        let alias = self.optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn optional_alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.eat_kw("AS") {
            Ok(Some(self.expect_ident("alias")?))
        } else {
            Ok(None)
        }
    }

    /// Apply the select list (and GROUP BY) on top of the source plan.
    fn apply_select(
        &self,
        plan: Plan,
        items: Vec<SelectItem>,
        group_by: Vec<String>,
    ) -> Result<Plan, SqlError> {
        let has_agg = items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));
        if !has_agg && group_by.is_empty() {
            // Plain projection (or pass-through for SELECT *).
            if items.len() == 1 && matches!(items[0], SelectItem::Star) {
                return Ok(plan);
            }
            let mut cols: Vec<(String, Expr)> = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                match item {
                    SelectItem::Star => {
                        return Err(SqlError::new(
                            "`*` cannot be combined with other select items",
                            None,
                        ))
                    }
                    SelectItem::Expr { expr, alias } => {
                        cols.push((derive_name(expr, alias.as_deref(), i), expr.clone()))
                    }
                    SelectItem::Agg { .. } => unreachable!("no aggregates on this path"),
                }
            }
            let refs: Vec<(&str, Expr)> =
                cols.iter().map(|(n, e)| (n.as_str(), e.clone())).collect();
            return Ok(plan.project(&refs));
        }

        // Aggregation path. Non-aggregate select items must be bare columns
        // listed in GROUP BY.
        let mut aggs = Vec::new();
        let mut output: Vec<(String, bool)> = Vec::new(); // (name, is_group_col)
        for (i, item) in items.iter().enumerate() {
            match item {
                SelectItem::Star => {
                    return Err(SqlError::new(
                        "`*` is not valid with GROUP BY/aggregates",
                        None,
                    ))
                }
                SelectItem::Agg { func, arg, alias } => {
                    let name = alias.clone().unwrap_or_else(|| default_agg_name(*func, i));
                    aggs.push(match arg {
                        None => AggSpec::count_star(name.clone()),
                        Some(e) => AggSpec::new(name.clone(), *func, e.clone()),
                    });
                    output.push((name, false));
                }
                SelectItem::Expr { expr, alias } => match expr {
                    Expr::Col(col) if group_by.iter().any(|g| g == col) => {
                        let name = alias.clone().unwrap_or_else(|| col.clone());
                        output.push((name, true));
                        if alias.is_some() && alias.as_deref() != Some(col.as_str()) {
                            return Err(SqlError::new(
                                "aliasing GROUP BY columns is not supported",
                                None,
                            ));
                        }
                    }
                    _ => {
                        return Err(SqlError::new(
                            format!(
                                "select item {} must be an aggregate or a GROUP BY column",
                                i + 1
                            ),
                            None,
                        ))
                    }
                },
            }
        }
        let group_refs: Vec<&str> = group_by.iter().map(|s| s.as_str()).collect();
        let mut plan = plan.aggregate(&group_refs, aggs);
        // Reorder/prune to the select-list order when it differs from
        // (group_by ++ aggs).
        let natural: Vec<String> = group_by
            .iter()
            .cloned()
            .chain(output.iter().filter(|(_, g)| !g).map(|(n, _)| n.clone()))
            .collect();
        let wanted: Vec<String> = output.iter().map(|(n, _)| n.clone()).collect();
        if wanted != natural {
            let refs: Vec<(&str, Expr)> = wanted
                .iter()
                .map(|n| (n.as_str(), Expr::col(n.clone())))
                .collect();
            plan = plan.project(&refs);
        }
        Ok(plan)
    }

    // ---- expressions (precedence climbing) ----

    fn expression(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("NOT") {
            Ok(self.not_expr()?.not())
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        let left = self.additive()?;
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            let e = left.is_null();
            return Ok(if negated { e.not() } else { e });
        }
        for (sym, build) in [
            ("=", Expr::eq as fn(Expr, Expr) -> Expr),
            ("<>", Expr::ne),
            ("<=", Expr::le),
            (">=", Expr::ge),
            ("<", Expr::lt),
            (">", Expr::gt),
        ] {
            if self.eat_sym(sym) {
                let right = self.additive()?;
                return Ok(build(left, right));
            }
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.multiplicative()?;
        loop {
            if self.eat_sym("+") {
                left = left.add(self.multiplicative()?);
            } else if self.eat_sym("-") {
                left = left.sub(self.multiplicative()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.unary()?;
        loop {
            if self.eat_sym("*") {
                left = left.mul(self.unary()?);
            } else if self.eat_sym("/") {
                left = left.div(self.unary()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat_sym("-") {
            Ok(self.unary()?.neg())
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        let token = self.peek().kind.clone();
        match token {
            TokenKind::Number(n) => {
                self.bump();
                let is_float = match self.peek().kind {
                    TokenKind::NumberIsFloat(f) => {
                        self.bump();
                        f
                    }
                    _ => true,
                };
                Ok(if is_float {
                    Expr::lit(n)
                } else {
                    Expr::lit(Value::Int(n as i64))
                })
            }
            TokenKind::StringLit(s) => {
                self.bump();
                Ok(Expr::lit(Value::str(s)))
            }
            TokenKind::Keyword("TRUE") => {
                self.bump();
                Ok(Expr::lit(true))
            }
            TokenKind::Keyword("FALSE") => {
                self.bump();
                Ok(Expr::lit(false))
            }
            TokenKind::Keyword("NULL") => {
                self.bump();
                Ok(Expr::lit(Value::Null))
            }
            TokenKind::Keyword(k @ ("ABS" | "SQRT" | "EXP" | "LN" | "FLOOR" | "CEIL")) => {
                self.bump();
                self.expect_sym("(")?;
                let arg = self.expression()?;
                self.expect_sym(")")?;
                let func = match k {
                    "ABS" => ScalarFunc::Abs,
                    "SQRT" => ScalarFunc::Sqrt,
                    "EXP" => ScalarFunc::Exp,
                    "LN" => ScalarFunc::Ln,
                    "FLOOR" => ScalarFunc::Floor,
                    _ => ScalarFunc::Ceil,
                };
                Ok(arg.func(func))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::col(name))
            }
            TokenKind::Symbol("(") => {
                self.bump();
                let e = self.expression()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            other => Err(self.error_here(format!("expected expression, found {other}"))),
        }
    }
}

/// The output column names of a select list; `None` for `SELECT *` (every
/// source column flows through).
fn select_output_names(items: &[SelectItem]) -> Option<Vec<String>> {
    if items.iter().any(|i| matches!(i, SelectItem::Star)) {
        return None;
    }
    Some(
        items
            .iter()
            .enumerate()
            .map(|(i, item)| match item {
                SelectItem::Star => unreachable!("filtered above"),
                SelectItem::Agg { func, alias, .. } => {
                    alias.clone().unwrap_or_else(|| default_agg_name(*func, i))
                }
                SelectItem::Expr { expr, alias } => derive_name(expr, alias.as_deref(), i),
            })
            .collect(),
    )
}

fn derive_name(expr: &Expr, alias: Option<&str>, index: usize) -> String {
    match (alias, expr) {
        (Some(a), _) => a.to_string(),
        (None, Expr::Col(c)) => c.clone(),
        (None, _) => format!("expr_{}", index + 1),
    }
}

fn default_agg_name(func: AggFunc, index: usize) -> String {
    let base = match func {
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Avg => "avg",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    };
    format!("{base}_{}", index + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_typing_int_vs_float() {
        let p = parse_select("SELECT * FROM t WHERE a = 5").unwrap();
        let Plan::Filter { predicate, .. } = p else {
            panic!()
        };
        assert_eq!(predicate, Expr::col("a").eq(Expr::lit(Value::Int(5))));
        let p = parse_select("SELECT * FROM t WHERE a = 5.0").unwrap();
        let Plan::Filter { predicate, .. } = p else {
            panic!()
        };
        assert_eq!(predicate, Expr::col("a").eq(Expr::lit(5.0)));
    }

    #[test]
    fn operator_precedence() {
        // a + b * 2 parses as a + (b * 2).
        let p = parse_select("SELECT a + b * 2 AS x FROM t").unwrap();
        let Plan::Project { exprs, .. } = p else {
            panic!()
        };
        assert_eq!(
            exprs[0].1,
            Expr::col("a").add(Expr::col("b").mul(Expr::lit(Value::Int(2))))
        );
        // NOT binds tighter than AND; AND tighter than OR.
        let p = parse_select("SELECT * FROM t WHERE NOT a = 1 AND b = 2 OR c = 3").unwrap();
        let Plan::Filter { predicate, .. } = p else {
            panic!()
        };
        let expected = Expr::col("a")
            .eq(Expr::lit(Value::Int(1)))
            .not()
            .and(Expr::col("b").eq(Expr::lit(Value::Int(2))))
            .or(Expr::col("c").eq(Expr::lit(Value::Int(3))));
        assert_eq!(predicate, expected);
    }

    #[test]
    fn unary_minus_and_parens() {
        let p = parse_select("SELECT -(a + 1) AS x FROM t").unwrap();
        let Plan::Project { exprs, .. } = p else {
            panic!()
        };
        assert_eq!(
            exprs[0].1,
            Expr::col("a").add(Expr::lit(Value::Int(1))).neg()
        );
    }

    #[test]
    fn non_group_arithmetic_in_aggregate_select_rejected() {
        // a + 1 is neither an aggregate nor a bare GROUP BY column.
        let e = parse_select("SELECT a, a + 1, COUNT(*) FROM t GROUP BY a").unwrap_err();
        assert!(e.to_string().contains("GROUP BY"), "{e}");
    }

    #[test]
    fn non_group_expression_rejected() {
        let e = parse_select("SELECT b FROM t GROUP BY a").unwrap_err();
        assert!(e.to_string().contains("GROUP BY"));
    }

    #[test]
    fn derived_names() {
        let p = parse_select("SELECT a, a + 1 FROM t").unwrap();
        let Plan::Project { exprs, .. } = p else {
            panic!()
        };
        assert_eq!(exprs[0].0, "a");
        assert_eq!(exprs[1].0, "expr_2");
        let p = parse_select("SELECT COUNT(*), SUM(a) FROM t").unwrap();
        let Plan::Aggregate { aggs, .. } = p else {
            panic!()
        };
        assert_eq!(aggs[0].name, "count_1");
        assert_eq!(aggs[1].name, "sum_2");
    }

    #[test]
    fn select_order_reorders_group_output() {
        // SUM first, group col second: a projection restores select order.
        let p = parse_select("SELECT SUM(b) AS s, a FROM t GROUP BY a").unwrap();
        let Plan::Project { exprs, input } = p else {
            panic!("expected projection on top")
        };
        assert_eq!(exprs[0].0, "s");
        assert_eq!(exprs[1].0, "a");
        assert!(matches!(*input, Plan::Aggregate { .. }));
    }

    #[test]
    fn multi_join_chain() {
        let p = parse_select("SELECT * FROM a JOIN b ON x = y JOIN c ON u = v AND w = z").unwrap();
        let Plan::Join { on, left, .. } = p else {
            panic!()
        };
        assert_eq!(on.len(), 2);
        assert!(matches!(*left, Plan::Join { .. }));
    }
}
