//! A SQL text interface for the engine.
//!
//! Every query the paper shows — the SBP stochastic-table parametrization,
//! the Indemics observation and intervention queries of Algorithm 1, the
//! "revenue from East Coast customers" what-if — is written in SQL. This
//! module provides the textual front end: a hand-written lexer and
//! recursive-descent parser translating a practical SELECT subset into the
//! engine's logical [`Plan`]s:
//!
//! ```sql
//! SELECT region, SUM(amount * 1.1) AS taxed
//! FROM sales JOIN regions ON region = name
//! WHERE amount > 10 AND NOT region = 'north'
//! GROUP BY region
//! ORDER BY taxed DESC
//! LIMIT 10
//! ```
//!
//! Supported: `SELECT` lists with expressions, aliases, `*`, and the
//! aggregates `COUNT(*) | COUNT | SUM | AVG | MIN | MAX`; `FROM` with any
//! number of `JOIN … ON a = b [AND c = d]` equi-joins; `WHERE` with full
//! boolean/comparison/arithmetic expressions, `IS [NOT] NULL`, and the
//! scalar functions `ABS/SQRT/EXP/LN/FLOOR/CEIL`; `GROUP BY`; `ORDER BY …
//! [ASC|DESC]`; `LIMIT`. Identifiers are case-sensitive; keywords are not.
//!
//! The translation targets the same [`Plan`] API programmatic callers use,
//! so the optimizer, the Monte Carlo estimators, and (where the operators
//! allow) tuple-bundle execution all apply to parsed queries unchanged.

mod ddl;
mod lexer;
mod parser;

pub use ddl::{parse_create_random_table, VgRegistry};
pub use lexer::{tokenize, SqlError, Token, TokenKind};
pub use parser::parse_select;

use crate::query::{Catalog, Plan};
use crate::table::Table;

/// Parse a SQL SELECT into a logical plan.
pub fn plan_from_sql(sql: &str) -> Result<Plan, SqlError> {
    parse_select(sql)
}

impl Catalog {
    /// Parse and execute a SQL SELECT against this catalog.
    pub fn sql(&self, sql: &str) -> crate::Result<Table> {
        let plan = plan_from_sql(sql).map_err(|e| crate::McdbError::invalid_plan(e.to_string()))?;
        self.query(&plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::{AggFunc, AggSpec, SortKey};
    use crate::schema::DataType;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            Table::build(
                "sales",
                &[
                    ("id", DataType::Int),
                    ("region", DataType::Str),
                    ("amount", DataType::Float),
                ],
            )
            .row(vec![Value::from(1), Value::from("east"), Value::from(10.0)])
            .row(vec![Value::from(2), Value::from("west"), Value::from(20.0)])
            .row(vec![Value::from(3), Value::from("east"), Value::from(30.0)])
            .row(vec![Value::from(4), Value::from("north"), Value::Null])
            .finish()
            .unwrap(),
        );
        c.insert(
            Table::build(
                "regions",
                &[("name", DataType::Str), ("tax", DataType::Float)],
            )
            .row(vec![Value::from("east"), Value::from(0.1)])
            .row(vec![Value::from("west"), Value::from(0.2)])
            .row(vec![Value::from("north"), Value::from(0.0)])
            .finish()
            .unwrap(),
        );
        c
    }

    #[test]
    fn select_star() {
        let t = catalog().sql("SELECT * FROM sales").unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.schema().names(), vec!["id", "region", "amount"]);
    }

    #[test]
    fn projection_with_expressions_and_aliases() {
        let t = catalog()
            .sql("SELECT id, amount * 1.5 AS scaled FROM sales WHERE amount >= 20")
            .unwrap();
        assert_eq!(t.schema().names(), vec!["id", "scaled"]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][1], Value::from(30.0));
    }

    #[test]
    fn where_clause_full_boolean_logic() {
        let t = catalog()
            .sql("SELECT id FROM sales WHERE (amount > 15 OR region = 'east') AND NOT id = 3")
            .unwrap();
        let ids = t.column("id").unwrap();
        assert_eq!(ids, vec![Value::from(1), Value::from(2)]);
    }

    #[test]
    fn is_null_and_is_not_null() {
        let t = catalog()
            .sql("SELECT id FROM sales WHERE amount IS NULL")
            .unwrap();
        assert_eq!(t.column("id").unwrap(), vec![Value::from(4)]);
        let t = catalog()
            .sql("SELECT id FROM sales WHERE amount IS NOT NULL")
            .unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn group_by_with_aggregates() {
        let t = catalog()
            .sql(
                "SELECT region, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS mean \
                 FROM sales GROUP BY region ORDER BY region",
            )
            .unwrap();
        assert_eq!(t.len(), 3);
        let east = &t.rows()[0];
        assert_eq!(east[0], Value::from("east"));
        assert_eq!(east[1], Value::from(2));
        assert_eq!(east[2], Value::from(40.0));
        assert_eq!(east[3], Value::from(20.0));
        // north has a NULL amount: COUNT(*)=1, SUM=NULL.
        let north = &t.rows()[1];
        assert_eq!(north[1], Value::from(1));
        assert!(north[2].is_null());
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let t = catalog()
            .sql("SELECT COUNT(*) AS n, MAX(amount) AS hi FROM sales")
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::from(4));
        assert_eq!(t.rows()[0][1], Value::from(30.0));
    }

    #[test]
    fn join_with_on_clause() {
        let t = catalog()
            .sql(
                "SELECT id, tax FROM sales JOIN regions ON region = name \
                 WHERE amount > 5 ORDER BY id",
            )
            .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows()[0][1], Value::from(0.1));
        assert_eq!(t.rows()[1][1], Value::from(0.2));
    }

    #[test]
    fn order_by_directions_and_limit() {
        let t = catalog()
            .sql("SELECT id FROM sales ORDER BY amount DESC LIMIT 2")
            .unwrap();
        // Nulls sort first ascending, hence last descending — top two are
        // 30 and 20.
        assert_eq!(
            t.column("id").unwrap(),
            vec![Value::from(3), Value::from(2)]
        );
    }

    #[test]
    fn scalar_functions() {
        let t = catalog()
            .sql("SELECT ABS(0 - amount) AS a, SQRT(amount) AS s FROM sales WHERE id = 1")
            .unwrap();
        assert_eq!(t.rows()[0][0], Value::from(10.0));
        assert!((t.rows()[0][1].as_f64().unwrap() - 10.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn parse_errors_are_informative() {
        let c = catalog();
        for (sql, needle) in [
            ("SELEC * FROM sales", "expected SELECT"),
            ("SELECT * FROM", "table name"),
            ("SELECT FROM sales", "select item"),
            ("SELECT * FROM sales WHERE", "expression"),
            ("SELECT * FROM sales LIMIT x", "LIMIT"),
            ("SELECT id FROM sales ORDER", "BY"),
            ("SELECT 'unterminated FROM sales", "string"),
        ] {
            let err = c.sql(sql).unwrap_err().to_string();
            assert!(
                err.to_lowercase().contains(&needle.to_lowercase()),
                "for {sql:?}: error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn parsed_plan_equals_hand_built_plan() {
        let sql = "SELECT region, SUM(amount) AS total FROM sales \
                   WHERE amount > 5 GROUP BY region";
        let parsed = plan_from_sql(sql).unwrap();
        let hand = Plan::scan("sales")
            .filter(Expr::col("amount").gt(Expr::lit(5)))
            .aggregate(
                &["region"],
                vec![AggSpec::new("total", AggFunc::Sum, Expr::col("amount"))],
            );
        assert_eq!(parsed, hand);
    }

    #[test]
    fn parsed_order_by_matches_hand_built() {
        let parsed =
            plan_from_sql("SELECT * FROM sales ORDER BY amount DESC, id ASC LIMIT 3").unwrap();
        let hand = Plan::scan("sales")
            .sort(vec![
                SortKey::desc(Expr::col("amount")),
                SortKey::asc(Expr::col("id")),
            ])
            .limit(3);
        assert_eq!(parsed, hand);
    }

    #[test]
    fn keywords_case_insensitive_identifiers_not() {
        let t = catalog()
            .sql(
                "select ID from SALES where AMOUNT > 5"
                    .replace("ID", "id")
                    .replace("SALES", "sales")
                    .replace("AMOUNT", "amount")
                    .as_str(),
            )
            .unwrap();
        assert_eq!(t.len(), 3);
        // Wrong-case table name fails (identifiers are case-sensitive).
        assert!(catalog().sql("SELECT * FROM SALES").is_err());
    }

    #[test]
    fn algorithm_1_queries_in_sql() {
        // The paper's Algorithm 1 observation queries, textually.
        let mut c = Catalog::new();
        c.insert(
            Table::build("Person", &[("pid", DataType::Int), ("age", DataType::Int)])
                .rows((0..100).map(|i| vec![Value::from(i), Value::from(i % 50)]))
                .finish()
                .unwrap(),
        );
        c.insert(
            Table::build("InfectedPerson", &[("pid", DataType::Int)])
                .rows((0..10).map(|i| vec![Value::from(i * 7)]))
                .finish()
                .unwrap(),
        );
        let n_preschool = c
            .sql("SELECT COUNT(*) AS n FROM Person WHERE age >= 0 AND age <= 4")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(n_preschool, Value::from(10));
        let n_infected_preschool = c
            .sql(
                "SELECT COUNT(*) AS n FROM Person JOIN InfectedPerson ON pid = pid \
                 WHERE age >= 0 AND age <= 4",
            )
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(n_infected_preschool, Value::from(1)); // pid 0 only
    }
}
