//! The MCDB stochastic-table DDL — the paper's own syntax, parsed.
//!
//! §2.1 introduces random tables with:
//!
//! ```sql
//! CREATE TABLE SBP_DATA(PID, GENDER, SBP) AS
//!   FOR EACH p IN PATIENTS
//!   WITH SBP AS Normal (SELECT s.MEAN, s.STD FROM SBP_PARAM s)
//!   SELECT p.PID, p.GENDER, b.VALUE FROM SBP b
//! ```
//!
//! [`parse_create_random_table`] accepts that statement shape, minus the
//! purely decorative row aliases and trailing `FROM` of the inner select
//! (this engine's columns are unambiguous without them):
//!
//! ```sql
//! CREATE TABLE SBP_DATA AS
//!   FOR EACH PATIENTS
//!   WITH Normal(SELECT MEAN, STD FROM SBP_PARAM)
//!   SELECT PID, GENDER, VALUE AS SBP
//! ```
//!
//! `WITH <vg>(…)` parametrizes the VG function either with a bare subquery
//! (evaluated once per realization, its single row prefixing the VG
//! parameters — the paper's form), with a comma-separated expression list
//! over the driver row, or with both: `WITH Vg((SELECT …), expr, …)`.
//! VG functions resolve by name through a [`VgRegistry`], so user-defined
//! VG functions plug in exactly like the paper's "user- and system-defined
//! libraries".

use super::lexer::{tokenize, SqlError, Token, TokenKind};
use super::parser::{parse_expression_at, parse_select_tokens};
use crate::expr::Expr;
use crate::query::Plan;
use crate::random_table::RandomTableSpec;
use crate::vg::{
    BackwardWalkVg, BayesianDemandVg, ExponentialVg, NormalVg, PoissonVg, StockOptionVg, UniformVg,
    VgFunction,
};
use std::collections::HashMap;
use std::sync::Arc;

/// A registry of VG functions addressable by name from DDL text.
#[derive(Clone, Default)]
pub struct VgRegistry {
    entries: HashMap<String, Arc<dyn VgFunction>>,
}

impl VgRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        VgRegistry::default()
    }

    /// The built-in library: `Normal`, `Uniform`, `Poisson`, `Exponential`,
    /// `BackwardWalk`, `StockOption`, `BayesianDemand`.
    pub fn standard() -> Self {
        let mut r = VgRegistry::new();
        r.register(Arc::new(NormalVg));
        r.register(Arc::new(UniformVg));
        r.register(Arc::new(PoissonVg));
        r.register(Arc::new(ExponentialVg));
        r.register(Arc::new(BackwardWalkVg));
        r.register(Arc::new(StockOptionVg));
        r.register(Arc::new(BayesianDemandVg));
        r
    }

    /// Register a VG function under its own name.
    pub fn register(&mut self, vg: Arc<dyn VgFunction>) {
        self.entries.insert(vg.name().to_string(), vg);
    }

    /// Look up by name (case-sensitive, like identifiers).
    pub fn get(&self, name: &str) -> Option<&Arc<dyn VgFunction>> {
        self.entries.get(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.entries.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }
}

impl std::fmt::Debug for VgRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VgRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// Parse a `CREATE TABLE … AS FOR EACH … WITH … SELECT …` statement into a
/// [`RandomTableSpec`].
pub fn parse_create_random_table(
    sql: &str,
    registry: &VgRegistry,
) -> Result<RandomTableSpec, SqlError> {
    let tokens = tokenize(sql)?;
    let mut pos = 0usize;

    let err_at = |tokens: &[Token], pos: usize, msg: String| -> SqlError {
        SqlError::new(msg, Some(tokens[pos.min(tokens.len() - 1)].pos))
    };
    let word_at = |tokens: &[Token], pos: usize, word: &str| -> bool {
        match &tokens[pos].kind {
            TokenKind::Ident(s) => s.eq_ignore_ascii_case(word),
            TokenKind::Keyword(k) => k.eq_ignore_ascii_case(word),
            _ => false,
        }
    };
    let expect_word = |tokens: &[Token], pos: &mut usize, word: &str| -> Result<(), SqlError> {
        if word_at(tokens, *pos, word) {
            *pos += 1;
            Ok(())
        } else {
            Err(err_at(
                tokens,
                *pos,
                format!("expected {word}, found {}", tokens[*pos].kind),
            ))
        }
    };
    let expect_ident =
        |tokens: &[Token], pos: &mut usize, what: &str| -> Result<String, SqlError> {
            match &tokens[*pos].kind {
                TokenKind::Ident(s) => {
                    let s = s.clone();
                    *pos += 1;
                    Ok(s)
                }
                other => Err(err_at(
                    tokens,
                    *pos,
                    format!("expected {what}, found {other}"),
                )),
            }
        };
    let is_sym = |tokens: &[Token], pos: usize, sym: &str| -> bool {
        matches!(&tokens[pos].kind, TokenKind::Symbol(s) if *s == sym)
    };
    let expect_sym = |tokens: &[Token], pos: &mut usize, sym: &str| -> Result<(), SqlError> {
        if is_sym(tokens, *pos, sym) {
            *pos += 1;
            Ok(())
        } else {
            Err(err_at(
                tokens,
                *pos,
                format!("expected `{sym}`, found {}", tokens[*pos].kind),
            ))
        }
    };
    /// Index of the symbol closing the paren that was opened just before
    /// `start` (depth accounting over the token stream).
    fn matching_close(tokens: &[Token], start: usize) -> Result<usize, SqlError> {
        let mut depth = 1usize;
        let mut i = start;
        loop {
            match &tokens[i].kind {
                TokenKind::Eof => {
                    return Err(SqlError::new("unbalanced parentheses", Some(tokens[i].pos)))
                }
                TokenKind::Symbol("(") => depth += 1,
                TokenKind::Symbol(")") => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(i);
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    // CREATE TABLE name [(cols…)] AS FOR EACH driver
    expect_word(&tokens, &mut pos, "CREATE")?;
    expect_word(&tokens, &mut pos, "TABLE")?;
    let table_name = expect_ident(&tokens, &mut pos, "table name")?;
    if is_sym(&tokens, pos, "(") {
        pos += 1;
        loop {
            let _ = expect_ident(&tokens, &mut pos, "column name")?;
            if is_sym(&tokens, pos, ",") {
                pos += 1;
            } else {
                break;
            }
        }
        expect_sym(&tokens, &mut pos, ")")?;
    }
    expect_word(&tokens, &mut pos, "AS")?;
    expect_word(&tokens, &mut pos, "FOR")?;
    expect_word(&tokens, &mut pos, "EACH")?;
    let driver = expect_ident(&tokens, &mut pos, "driver table name")?;

    // WITH Vg( params )
    expect_word(&tokens, &mut pos, "WITH")?;
    let vg_name = expect_ident(&tokens, &mut pos, "VG function name")?;
    let vg = registry
        .get(&vg_name)
        .ok_or_else(|| {
            err_at(
                &tokens,
                pos,
                format!(
                    "unknown VG function `{vg_name}` (registered: {})",
                    registry.names().join(", ")
                ),
            )
        })?
        .clone();
    expect_sym(&tokens, &mut pos, "(")?;
    let args_close = matching_close(&tokens, pos)?;

    let mut params_query: Option<Plan> = None;
    let mut param_exprs: Vec<Expr> = Vec::new();
    if matches!(tokens[pos].kind, TokenKind::Keyword("SELECT")) {
        // Bare subquery fills the whole argument list (the paper's form).
        params_query = Some(parse_select_tokens(&tokens, pos, args_close)?);
        pos = args_close + 1;
    } else if pos == args_close {
        // Empty argument list.
        pos = args_close + 1;
    } else {
        // Optional parenthesized subquery as the first argument.
        if is_sym(&tokens, pos, "(") && matches!(tokens[pos + 1].kind, TokenKind::Keyword("SELECT"))
        {
            let sub_close = matching_close(&tokens, pos + 1)?;
            params_query = Some(parse_select_tokens(&tokens, pos + 1, sub_close)?);
            pos = sub_close + 1;
            if is_sym(&tokens, pos, ",") {
                pos += 1;
            }
        }
        while pos < args_close {
            let (e, next) = parse_expression_at(&tokens, pos)?;
            param_exprs.push(e);
            pos = next;
            if is_sym(&tokens, pos, ",") {
                pos += 1;
            } else {
                break;
            }
        }
        if pos != args_close {
            return Err(err_at(
                &tokens,
                pos,
                format!("unexpected {} in VG arguments", tokens[pos].kind),
            ));
        }
        pos = args_close + 1;
    }

    // SELECT projection over driver ++ VG columns.
    if !matches!(tokens[pos].kind, TokenKind::Keyword("SELECT")) {
        return Err(err_at(
            &tokens,
            pos,
            format!("expected SELECT projection, found {}", tokens[pos].kind),
        ));
    }
    pos += 1;
    let mut select: Vec<(String, Expr)> = Vec::new();
    loop {
        let (expr, next) = parse_expression_at(&tokens, pos)?;
        pos = next;
        let name = if word_at(&tokens, pos, "AS") {
            pos += 1;
            expect_ident(&tokens, &mut pos, "alias")?
        } else {
            match &expr {
                Expr::Col(c) => c.clone(),
                _ => format!("col_{}", select.len() + 1),
            }
        };
        select.push((name, expr));
        if is_sym(&tokens, pos, ",") {
            pos += 1;
        } else {
            break;
        }
    }
    if !matches!(tokens[pos].kind, TokenKind::Eof) {
        return Err(err_at(
            &tokens,
            pos,
            format!("unexpected trailing {}", tokens[pos].kind),
        ));
    }

    let mut builder = RandomTableSpec::builder(table_name)
        .for_each(Plan::scan(driver))
        .with_vg(vg);
    if let Some(q) = params_query {
        builder = builder.vg_params_query(q);
    }
    if !param_exprs.is_empty() {
        builder = builder.vg_params_exprs(&param_exprs);
    }
    let refs: Vec<(&str, Expr)> = select
        .iter()
        .map(|(n, e)| (n.as_str(), e.clone()))
        .collect();
    builder
        .select(&refs)
        .build()
        .map_err(|e| SqlError::new(e.to_string(), None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Catalog;
    use crate::schema::DataType;
    use crate::table::Table;
    use crate::value::Value;
    use mde_numeric::rng::rng_from_seed;

    fn catalog() -> Catalog {
        let mut db = Catalog::new();
        db.insert(
            Table::build(
                "PATIENTS",
                &[("PID", DataType::Int), ("GENDER", DataType::Str)],
            )
            .row(vec![Value::from(1), Value::from("F")])
            .row(vec![Value::from(2), Value::from("M")])
            .finish()
            .unwrap(),
        );
        db.insert(
            Table::build(
                "SBP_PARAM",
                &[("MEAN", DataType::Float), ("STD", DataType::Float)],
            )
            .row(vec![Value::from(120.0), Value::from(15.0)])
            .finish()
            .unwrap(),
        );
        db
    }

    #[test]
    fn paper_sbp_statement_round_trips() {
        let spec = parse_create_random_table(
            "CREATE TABLE SBP_DATA(PID, GENDER, SBP) AS \
             FOR EACH PATIENTS \
             WITH Normal(SELECT MEAN, STD FROM SBP_PARAM) \
             SELECT PID, GENDER, VALUE AS SBP",
            &VgRegistry::standard(),
        )
        .unwrap();
        assert_eq!(spec.name(), "SBP_DATA");
        let db = catalog();
        let t = spec.realize(&db, &mut rng_from_seed(1)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().names(), vec!["PID", "GENDER", "SBP"]);
        for v in t.column_f64("SBP").unwrap() {
            assert!((30.0..210.0).contains(&v), "implausible SBP {v}");
        }
    }

    #[test]
    fn expression_parameters_per_driver_row() {
        let spec = parse_create_random_table(
            "CREATE TABLE X AS FOR EACH PATIENTS \
             WITH Normal(PID * 100, 0.5) \
             SELECT PID, VALUE",
            &VgRegistry::standard(),
        )
        .unwrap();
        let db = catalog();
        let t = spec.realize(&db, &mut rng_from_seed(2)).unwrap();
        // Means 100 and 200 with sd 0.5.
        assert!((t.rows()[0][1].as_f64().unwrap() - 100.0).abs() < 3.0);
        assert!((t.rows()[1][1].as_f64().unwrap() - 200.0).abs() < 3.0);
    }

    #[test]
    fn subquery_plus_expressions() {
        // Mean from the param table, std per-row from an expression.
        let spec = parse_create_random_table(
            "CREATE TABLE X AS FOR EACH PATIENTS \
             WITH Normal((SELECT MEAN FROM SBP_PARAM), 0.001) \
             SELECT PID, VALUE AS V",
            &VgRegistry::standard(),
        )
        .unwrap();
        let db = catalog();
        let t = spec.realize(&db, &mut rng_from_seed(3)).unwrap();
        for v in t.column_f64("V").unwrap() {
            assert!((v - 120.0).abs() < 0.1, "V = {v}");
        }
    }

    #[test]
    fn unknown_vg_lists_registered_names() {
        let err = parse_create_random_table(
            "CREATE TABLE X AS FOR EACH T WITH Zeta(1) SELECT VALUE",
            &VgRegistry::standard(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("Zeta"));
        assert!(err.to_string().contains("Normal"));
    }

    #[test]
    fn registry_accepts_user_defined_vg() {
        #[derive(Debug)]
        struct ConstVg;
        impl VgFunction for ConstVg {
            fn name(&self) -> &str {
                "ConstSeven"
            }
            fn output_schema(&self) -> crate::schema::Schema {
                crate::schema::Schema::from_pairs(&[("VALUE", DataType::Float)]).unwrap()
            }
            fn arity(&self) -> Option<usize> {
                Some(0)
            }
            fn cardinality(&self) -> crate::vg::OutputCardinality {
                crate::vg::OutputCardinality::Fixed(1)
            }
            fn generate(
                &self,
                _params: &[Value],
                _rng: &mut mde_numeric::rng::Rng,
            ) -> crate::Result<Vec<Vec<Value>>> {
                Ok(vec![vec![Value::from(7.0)]])
            }
        }
        let mut reg = VgRegistry::standard();
        reg.register(Arc::new(ConstVg));
        let spec = parse_create_random_table(
            "CREATE TABLE X AS FOR EACH PATIENTS WITH ConstSeven() SELECT PID, VALUE",
            &reg,
        )
        .unwrap();
        let t = spec.realize(&catalog(), &mut rng_from_seed(4)).unwrap();
        assert_eq!(t.rows()[0][1], Value::from(7.0));
    }

    #[test]
    fn syntax_errors_are_located() {
        let reg = VgRegistry::standard();
        for (sql, needle) in [
            ("CREATE TULIP X AS", "TABLE"),
            ("CREATE TABLE X AS FOR EVERY T", "EACH"),
            (
                "CREATE TABLE X AS FOR EACH T WITH Normal(1, 2 SELECT VALUE",
                "unbalanced",
            ),
            (
                "CREATE TABLE X AS FOR EACH T WITH Normal(1,2) SELECT VALUE extra",
                "trailing",
            ),
        ] {
            let err = parse_create_random_table(sql, &reg)
                .unwrap_err()
                .to_string();
            assert!(
                err.to_lowercase().contains(&needle.to_lowercase()),
                "for {sql:?}: {err}"
            );
        }
    }

    #[test]
    fn ddl_plus_dql_end_to_end() {
        // The full MCDB loop in SQL text: declare the stochastic table,
        // realize it, query it.
        let reg = VgRegistry::standard();
        let spec = parse_create_random_table(
            "CREATE TABLE SBP_DATA AS FOR EACH PATIENTS \
             WITH Normal(SELECT MEAN, STD FROM SBP_PARAM) \
             SELECT PID, GENDER, VALUE AS SBP",
            &reg,
        )
        .unwrap();
        let mut db = catalog();
        let t = spec.realize(&db, &mut rng_from_seed(5)).unwrap();
        db.insert(t);
        let result = db
            .sql("SELECT COUNT(*) AS n FROM SBP_DATA WHERE SBP > 0")
            .unwrap();
        assert_eq!(result.scalar().unwrap(), Value::from(2));
    }
}
