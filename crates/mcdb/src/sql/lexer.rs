//! SQL tokenizer.

use std::fmt;

/// A lexed token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// Byte offset in the input.
    pub pos: usize,
}

/// Token kinds. Keywords are recognized case-insensitively at the lexer
/// level; identifiers keep their original case.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword (stored uppercase).
    Keyword(&'static str),
    /// An identifier (case preserved). Dotted names like `r.id` lex as a
    /// single identifier, matching the engine's collision-prefixed columns.
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// Whether the numeric literal had a decimal point or exponent.
    /// (Carried beside `Number` via `NumberIsFloat`; see `tokenize`.)
    NumberIsFloat(bool),
    /// A string literal (quotes stripped, `''` unescaped).
    StringLit(String),
    /// An operator or punctuation symbol.
    Symbol(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::NumberIsFloat(_) => write!(f, "number flag"),
            TokenKind::StringLit(s) => write!(f, "string '{s}'"),
            TokenKind::Symbol(s) => write!(f, "`{s}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A SQL front-end error with position context.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the input, if known.
    pub pos: Option<usize>,
}

impl SqlError {
    pub(crate) fn new(message: impl Into<String>, pos: Option<usize>) -> Self {
        SqlError {
            message: message.into(),
            pos,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "SQL error at byte {p}: {}", self.message),
            None => write!(f, "SQL error: {}", self.message),
        }
    }
}

impl std::error::Error for SqlError {}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "ASC", "DESC", "LIMIT", "JOIN", "ON", "AND",
    "OR", "NOT", "AS", "COUNT", "SUM", "AVG", "MIN", "MAX", "TRUE", "FALSE", "NULL", "IS", "ABS",
    "SQRT", "EXP", "LN", "FLOOR", "CEIL",
];

/// Tokenize a SQL string. Numbers carry an `is_float` flag in a paired
/// `NumberIsFloat` token immediately following the `Number` token — an
/// implementation detail consumed by the parser (integer literals become
/// `Value::Int`, floats `Value::Float`, matching SQL semantics).
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            // Identifier or keyword; allow dots for prefixed columns.
            let mut j = i + 1;
            while j < bytes.len() {
                let cj = bytes[j] as char;
                if cj.is_ascii_alphanumeric() || cj == '_' || cj == '.' {
                    j += 1;
                } else {
                    break;
                }
            }
            let word = &input[i..j];
            let upper = word.to_ascii_uppercase();
            match KEYWORDS.iter().find(|k| **k == upper) {
                Some(k) if !word.contains('.') => out.push(Token {
                    kind: TokenKind::Keyword(k),
                    pos: start,
                }),
                _ => out.push(Token {
                    kind: TokenKind::Ident(word.to_string()),
                    pos: start,
                }),
            }
            i = j;
        } else if c.is_ascii_digit()
            || (c == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
        {
            let mut j = i;
            let mut is_float = false;
            while j < bytes.len() {
                let cj = bytes[j] as char;
                if cj.is_ascii_digit() {
                    j += 1;
                } else if cj == '.' && !is_float {
                    is_float = true;
                    j += 1;
                } else if (cj == 'e' || cj == 'E')
                    && j + 1 < bytes.len()
                    && ((bytes[j + 1] as char).is_ascii_digit()
                        || bytes[j + 1] == b'+'
                        || bytes[j + 1] == b'-')
                {
                    is_float = true;
                    j += 2;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                    break;
                } else {
                    break;
                }
            }
            let text = &input[i..j];
            let value: f64 = text
                .parse()
                .map_err(|_| SqlError::new(format!("invalid number `{text}`"), Some(start)))?;
            out.push(Token {
                kind: TokenKind::Number(value),
                pos: start,
            });
            out.push(Token {
                kind: TokenKind::NumberIsFloat(is_float),
                pos: start,
            });
            i = j;
        } else if c == '\'' {
            // String literal with '' escaping.
            let mut j = i + 1;
            let mut s = String::new();
            loop {
                if j >= bytes.len() {
                    return Err(SqlError::new("unterminated string literal", Some(start)));
                }
                if bytes[j] == b'\'' {
                    if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                        s.push('\'');
                        j += 2;
                    } else {
                        j += 1;
                        break;
                    }
                } else {
                    s.push(bytes[j] as char);
                    j += 1;
                }
            }
            out.push(Token {
                kind: TokenKind::StringLit(s),
                pos: start,
            });
            i = j;
        } else {
            // Symbols, longest first.
            let two = if i + 1 < bytes.len() {
                &input[i..i + 2]
            } else {
                ""
            };
            let sym2 = ["<>", "<=", ">=", "!="].iter().find(|s| **s == two);
            if let Some(&s) = sym2 {
                out.push(Token {
                    kind: TokenKind::Symbol(if s == "!=" { "<>" } else { s }),
                    pos: start,
                });
                i += 2;
                continue;
            }
            let sym1 = ["=", "<", ">", "+", "-", "*", "/", "(", ")", ","]
                .iter()
                .find(|s| s.as_bytes()[0] == bytes[i]);
            match sym1 {
                Some(&s) => {
                    out.push(Token {
                        kind: TokenKind::Symbol(s),
                        pos: start,
                    });
                    i += 1;
                }
                None => {
                    return Err(SqlError::new(
                        format!("unexpected character `{c}`"),
                        Some(start),
                    ))
                }
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        pos: input.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("select FROM WhErE")[..3],
            [
                TokenKind::Keyword("SELECT"),
                TokenKind::Keyword("FROM"),
                TokenKind::Keyword("WHERE"),
            ]
        );
    }

    #[test]
    fn identifiers_preserve_case_and_dots() {
        let k = kinds("Sales r.id _x");
        assert_eq!(k[0], TokenKind::Ident("Sales".into()));
        assert_eq!(k[1], TokenKind::Ident("r.id".into()));
        assert_eq!(k[2], TokenKind::Ident("_x".into()));
    }

    #[test]
    fn numbers_int_vs_float() {
        let k = kinds("42 4.5 1e3 .5");
        assert_eq!(k[0], TokenKind::Number(42.0));
        assert_eq!(k[1], TokenKind::NumberIsFloat(false));
        assert_eq!(k[2], TokenKind::Number(4.5));
        assert_eq!(k[3], TokenKind::NumberIsFloat(true));
        assert_eq!(k[4], TokenKind::Number(1000.0));
        assert_eq!(k[5], TokenKind::NumberIsFloat(true));
        assert_eq!(k[6], TokenKind::Number(0.5));
    }

    #[test]
    fn strings_with_escapes() {
        let k = kinds("'east' 'o''brien'");
        assert_eq!(k[0], TokenKind::StringLit("east".into()));
        assert_eq!(k[1], TokenKind::StringLit("o'brien".into()));
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn symbols_including_two_char() {
        let k = kinds("<= >= <> != = < > ( ) , + - * /");
        assert_eq!(k[0], TokenKind::Symbol("<="));
        assert_eq!(k[1], TokenKind::Symbol(">="));
        assert_eq!(k[2], TokenKind::Symbol("<>"));
        assert_eq!(k[3], TokenKind::Symbol("<>")); // != normalizes
        assert_eq!(k[4], TokenKind::Symbol("="));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT #").is_err());
    }

    #[test]
    fn positions_recorded() {
        let toks = tokenize("SELECT x").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 7);
    }
}
