//! Tables: a schema plus rows, backed either by memory or by a paged
//! columnar file.
//!
//! A [`Table`] is the unit of exchange throughout the workspace. Since
//! the out-of-core storage layer landed it has two backends behind one
//! API: the original all-in-RAM row store, and a read-only
//! [`PagedStore`] (an `MDETAB01` file read through a [`BufferPool`])
//! plus a small in-memory append tail. The row backend doubles as the
//! differential oracle for the paged one — the property suites assert
//! both return bit-identical query results.

use crate::query::batch::Batch;
use crate::query::column::ColumnVec;
use crate::schema::{DataType, Schema};
use crate::storage::{BufferPool, PagedStore};
use crate::value::Value;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A row is an ordered vector of values matching a schema.
pub type Row = Vec<Value>;

/// Where a table's rows live.
#[derive(Debug, Clone)]
enum TableStore {
    /// All rows in memory (the original backend, and the oracle).
    Mem(Vec<Row>),
    /// A read-only paged file plus an in-memory append tail. `rows_cache`
    /// lazily materializes the full row vector for the row-oriented
    /// oracle paths ([`Table::rows`], equality); the vectorized executor
    /// never touches it.
    Paged {
        store: Arc<PagedStore>,
        tail: Vec<Row>,
        rows_cache: OnceLock<Vec<Row>>,
    },
    /// A columnar batch adopted wholesale from the vectorized executor
    /// (a plain-scan result with no selection vector). Row-oriented
    /// access lazily transposes into `rows_cache`; [`Table::try_batch`]
    /// is free, so repeated queries over a query result never re-transpose.
    Batch {
        batch: Arc<Batch>,
        rows_cache: OnceLock<Vec<Row>>,
    },
}

/// A table with a name, schema, and rows.
///
/// Tables are the unit of exchange throughout the workspace: ordinary
/// (deterministic) database tables, realizations of stochastic tables,
/// query results, snapshots of agent populations, and observation exports
/// from simulations are all `Table`s.
///
/// # Backends
///
/// A memory-backed table (everything constructed via [`Table::new`] /
/// [`Table::build`]) lazily caches a columnar [`Batch`] view of itself
/// (see [`Table::batch`]); the vectorized executor scans through that
/// cache so repeated queries over the same table transpose it exactly
/// once. The cache is invalidated whenever a row is appended and is
/// ignored by equality comparison.
///
/// A paged table ([`Table::open_paged`] / [`Table::to_paged`]) keeps its
/// rows in an on-disk `MDETAB01` file and decodes them through a shared
/// [`BufferPool`] on every [`Table::try_batch`] call, so resident memory
/// is bounded by the pool's frame budget rather than the table size.
/// Paged batches are deliberately *not* cached — [`Table::batch_is_cached`]
/// is always `false` — which keeps the `cache_hit` field on scan spans
/// truthful: a paged scan always pays page reads. Appending to a paged
/// table pushes onto an in-memory tail that is spliced onto the decoded
/// base at scan time.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    store: TableStore,
    /// Lazily transposed columnar view (Mem backend only).
    ///
    /// `OnceLock::get_or_init` guarantees the init closure runs exactly
    /// once even under concurrent morsel-parallel scans — racing readers
    /// block and then share the winner's `Arc` — so there is no
    /// double-materialize race to guard against (regression-tested in
    /// `concurrent_scans_materialize_exactly_once`).
    batch_cache: OnceLock<Arc<Batch>>,
    /// How many times `batch_cache` actually ran its transpose. Shared
    /// across clones (clones share the observation, not the cache) so
    /// tests can assert the exactly-once property.
    materializations: Arc<AtomicU64>,
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.schema == other.schema && self.rows() == other.rows()
    }
}

impl Table {
    /// Create an empty memory-backed table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            store: TableStore::Mem(Vec::new()),
            batch_cache: OnceLock::new(),
            materializations: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Start a builder from `(name, type)` column pairs.
    pub fn build(name: impl Into<String>, columns: &[(&str, DataType)]) -> TableBuilder {
        TableBuilder {
            name: name.into(),
            columns: columns.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
            rows: Vec::new(),
        }
    }

    /// Open a paged table file written by [`Table::to_paged`] (or
    /// [`PagedStore::write`] directly), reading its frames through
    /// `pool`. The table name and schema come from the validated file
    /// header; corruption surfaces as the typed
    /// [`McdbError::PageCorrupt`](crate::McdbError::PageCorrupt) /
    /// [`PageChecksumMismatch`](crate::McdbError::PageChecksumMismatch)
    /// errors.
    pub fn open_paged(path: &Path, pool: Arc<BufferPool>) -> crate::Result<Table> {
        let store = PagedStore::open(path, pool)?;
        Ok(Table {
            name: store.name().to_string(),
            schema: store.schema().clone(),
            store: TableStore::Paged {
                store,
                tail: Vec::new(),
                rows_cache: OnceLock::new(),
            },
            batch_cache: OnceLock::new(),
            materializations: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Persist this table as a paged columnar file at `path`
    /// (crash-consistently: temp file, fsync, atomic rename) and return
    /// a paged table reading it back through `pool`.
    pub fn to_paged(
        &self,
        path: &Path,
        page_size: usize,
        pool: Arc<BufferPool>,
    ) -> crate::Result<Table> {
        let batch = self.try_batch()?;
        PagedStore::write(path, &self.name, &batch, page_size)?;
        Table::open_paged(path, pool)
    }

    /// Wrap an executor batch as a table without transposing it back to
    /// rows. This is how the vectorized executor returns a plain scan:
    /// the result shares the scanned table's cached batch, so a full-table
    /// scan is O(1) instead of an O(rows × cols) rebuild.
    pub(crate) fn from_batch(name: impl Into<String>, batch: Arc<Batch>) -> Table {
        Table {
            name: name.into(),
            schema: batch.schema().clone(),
            store: TableStore::Batch {
                batch,
                rows_cache: OnceLock::new(),
            },
            batch_cache: OnceLock::new(),
            materializations: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Whether this table is backed by a paged file.
    pub fn is_paged(&self) -> bool {
        matches!(self.store, TableStore::Paged { .. })
    }

    /// The paged store backing this table, if any — exposed so the
    /// executor can attribute logical page reads per scan and tests can
    /// inspect pool behavior.
    pub fn paged_store(&self) -> Option<&Arc<PagedStore>> {
        match &self.store {
            TableStore::Mem(_) | TableStore::Batch { .. } => None,
            TableStore::Paged { store, .. } => Some(store),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (used when registering query results).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows.
    ///
    /// For a paged table this is the oracle path: the first call decodes
    /// the whole file and materializes (and caches) a row vector —
    /// deliberately unbounded by the pool budget, and it panics on a
    /// corrupt file. Executor code uses [`Table::try_batch`] instead,
    /// which stays columnar and surfaces corruption as typed errors.
    pub fn rows(&self) -> &[Row] {
        match &self.store {
            TableStore::Mem(rows) => rows,
            TableStore::Paged {
                store,
                tail,
                rows_cache,
            } => rows_cache.get_or_init(|| {
                let batch = store
                    .read_batch()
                    .expect("paged table row materialization failed");
                let mut rows: Vec<Row> = (0..batch.len()).map(|i| batch.row(i)).collect();
                rows.extend(tail.iter().cloned());
                rows
            }),
            TableStore::Batch { batch, rows_cache } => {
                rows_cache.get_or_init(|| (0..batch.len()).map(|i| batch.row(i)).collect())
            }
        }
    }

    /// Number of rows. Never materializes a paged table.
    pub fn len(&self) -> usize {
        match &self.store {
            TableStore::Mem(rows) => rows.len(),
            TableStore::Paged { store, tail, .. } => store.n_rows() + tail.len(),
            TableStore::Batch { batch, .. } => batch.len(),
        }
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consume the table, yielding its rows (engine-internal; lets
    /// operators that own their input avoid per-row clones). Paged tables
    /// materialize first.
    pub(crate) fn into_rows(self) -> Vec<Row> {
        let _ = self.rows();
        match self.store {
            TableStore::Mem(rows) => rows,
            TableStore::Paged { rows_cache, .. } | TableStore::Batch { rows_cache, .. } => {
                rows_cache.into_inner().expect("rows materialized above")
            }
        }
    }

    /// The columnar [`Batch`] view of this table.
    ///
    /// Memory-backed: transposed on first use and cached; appending rows
    /// invalidates the cache. Paged: decoded from disk on every call
    /// (never cached — see [`Table::batch_is_cached`]); panics on a
    /// corrupt file, so executor code calls [`Table::try_batch`].
    pub fn batch(&self) -> Arc<Batch> {
        self.try_batch().expect("paged table batch decode failed")
    }

    /// The columnar [`Batch`] view, with paged-file corruption surfaced
    /// as a typed error instead of a panic. This is what the vectorized
    /// executor's scan operator calls.
    pub fn try_batch(&self) -> crate::Result<Arc<Batch>> {
        self.try_batch_parallel(1)
    }

    /// [`Table::try_batch`] with paged-file page decoding fanned out over
    /// `threads` workers ([`PagedStore::read_batch_parallel`]). The
    /// result is bit-identical at any thread count. Memory-backed tables
    /// ignore `threads`: the cached transpose is already exactly-once
    /// under concurrency (see the `batch_cache` field docs).
    pub fn try_batch_parallel(&self, threads: usize) -> crate::Result<Arc<Batch>> {
        match &self.store {
            TableStore::Mem(_) => Ok(Arc::clone(self.batch_cache.get_or_init(|| {
                self.materializations.fetch_add(1, Ordering::Relaxed);
                Arc::new(Batch::from_table(self))
            }))),
            TableStore::Batch { batch, .. } => Ok(Arc::clone(batch)),
            TableStore::Paged { store, tail, .. } => {
                let base = store.read_batch_parallel(threads)?;
                if tail.is_empty() {
                    return Ok(Arc::new(base));
                }
                let len = base.len() + tail.len();
                let columns: Vec<ColumnVec> = self
                    .schema
                    .columns()
                    .iter()
                    .enumerate()
                    .map(|(i, col)| {
                        base.column(i)
                            .concat(&ColumnVec::from_rows(tail, i, col.dtype))
                    })
                    .collect();
                Ok(Arc::new(Batch::from_columns(
                    self.schema.clone(),
                    columns,
                    len,
                )?))
            }
        }
    }

    /// Whether the columnar batch is already transposed and cached — i.e.
    /// whether the next [`Table::batch`] call is a cache hit. Exposed so
    /// the traced executor can report batch-cache reuse per scan. Always
    /// `false` for paged tables: every paged scan decodes through the
    /// buffer pool, so reporting a cache hit would be a lie.
    pub fn batch_is_cached(&self) -> bool {
        match &self.store {
            TableStore::Mem(_) => self.batch_cache.get().is_some(),
            TableStore::Paged { .. } => false,
            // An adopted batch IS the columnar view — always a hit.
            TableStore::Batch { .. } => true,
        }
    }

    /// How many times the columnar batch cache actually transposed rows.
    /// Under concurrent scans of one (shared) table this must end up at
    /// exactly 1 — the exactly-once guarantee of the `OnceLock` cache.
    pub fn batch_materializations(&self) -> u64 {
        self.materializations.load(Ordering::Relaxed)
    }

    /// Append a validated row. On a paged table the row lands in the
    /// in-memory tail; the on-disk base is immutable.
    pub fn push_row(&mut self, row: Row) -> crate::Result<()> {
        self.schema.validate_row(&row)?;
        self.push_row_unchecked(row);
        Ok(())
    }

    /// Append a row without validation.
    ///
    /// For engine-internal paths where the row provably conforms (e.g.
    /// projections of validated rows). Not `unsafe` in the memory sense,
    /// but misuse produces confusing downstream type errors.
    pub(crate) fn push_row_unchecked(&mut self, row: Row) {
        debug_assert!(self.schema.validate_row(&row).is_ok());
        self.batch_cache.take();
        if matches!(self.store, TableStore::Batch { .. }) {
            // Appending demotes an adopted batch to the plain row backend:
            // the batch is immutable, so materialize rows once and switch.
            let prev = std::mem::replace(&mut self.store, TableStore::Mem(Vec::new()));
            if let TableStore::Batch { batch, rows_cache } = prev {
                let rows = rows_cache
                    .into_inner()
                    .unwrap_or_else(|| (0..batch.len()).map(|i| batch.row(i)).collect());
                self.store = TableStore::Mem(rows);
            }
        }
        match &mut self.store {
            TableStore::Mem(rows) => rows.push(row),
            TableStore::Paged {
                tail, rows_cache, ..
            } => {
                rows_cache.take();
                tail.push(row);
            }
            TableStore::Batch { .. } => unreachable!("demoted to Mem above"),
        }
    }

    /// The single scalar value of a 1×1 table, or an error.
    pub fn scalar(&self) -> crate::Result<Value> {
        if self.len() == 1 && self.schema.len() == 1 {
            Ok(self.rows()[0][0].clone())
        } else {
            Err(crate::McdbError::NonScalarResult {
                rows: self.len(),
                cols: self.schema.len(),
            })
        }
    }

    /// Extract one column as a vector of values.
    pub fn column(&self, name: &str) -> crate::Result<Vec<Value>> {
        let i = self.schema.index_of(name)?;
        Ok(self.rows().iter().map(|r| r[i].clone()).collect())
    }

    /// Extract one numeric column as `f64`s (Nulls are skipped).
    pub fn column_f64(&self, name: &str) -> crate::Result<Vec<f64>> {
        let i = self.schema.index_of(name)?;
        self.rows()
            .iter()
            .filter(|r| !r[i].is_null())
            .map(|r| r[i].as_f64())
            .collect()
    }

    /// Render as an aligned text table (for the figure-regeneration
    /// binaries and debugging).
    pub fn render_ascii(&self) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows()
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = names
            .iter()
            .zip(&widths)
            .map(|(n, w)| format!("{n:>w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} rows)", self.name, self.len())?;
        write!(f, "{}", self.render_ascii())
    }
}

/// Incremental table builder; validation happens at `finish`.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    columns: Vec<(String, DataType)>,
    rows: Vec<Row>,
}

impl TableBuilder {
    /// Append a row (validated at [`TableBuilder::finish`]).
    pub fn row(mut self, row: Row) -> Self {
        self.rows.push(row);
        self
    }

    /// Append many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Row>) -> Self {
        self.rows.extend(rows);
        self
    }

    /// Validate all rows and produce the table.
    pub fn finish(self) -> crate::Result<Table> {
        let pairs: Vec<(&str, DataType)> =
            self.columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let schema = Schema::from_pairs(&pairs)?;
        let mut t = Table::new(self.name, schema);
        for row in self.rows {
            t.push_row(row)?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::build("t", &[("id", DataType::Int), ("x", DataType::Float)])
            .row(vec![Value::from(1), Value::from(1.5)])
            .row(vec![Value::from(2), Value::from(2.5)])
            .finish()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        let bad = Table::build("t", &[("id", DataType::Int)])
            .row(vec![Value::from("oops")])
            .finish();
        assert!(bad.is_err());
    }

    #[test]
    fn push_and_access() {
        let mut t = sample();
        assert_eq!(t.len(), 2);
        t.push_row(vec![Value::from(3), Value::Null]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.column("id").unwrap().len(), 3);
        // column_f64 skips Nulls.
        assert_eq!(t.column_f64("x").unwrap(), vec![1.5, 2.5]);
        assert!(t.column("nope").is_err());
    }

    #[test]
    fn scalar_extraction() {
        let t = Table::build("s", &[("v", DataType::Float)])
            .row(vec![Value::from(9.0)])
            .finish()
            .unwrap();
        assert_eq!(t.scalar().unwrap(), Value::from(9.0));
        assert!(sample().scalar().is_err());
    }

    #[test]
    fn render_contains_headers_and_values() {
        let s = sample().render_ascii();
        assert!(s.contains("id"));
        assert!(s.contains("2.5"));
        assert_eq!(s.lines().count(), 4); // header + separator + 2 rows
    }

    #[test]
    fn rename() {
        let t = sample().with_name("renamed");
        assert_eq!(t.name(), "renamed");
    }

    #[test]
    fn batch_cache_reuses_until_mutated() {
        let mut t = sample();
        let b1 = t.batch();
        assert!(Arc::ptr_eq(&b1, &t.batch()));
        assert_eq!(b1.len(), 2);
        t.push_row(vec![Value::from(3), Value::Null]).unwrap();
        let b2 = t.batch();
        assert!(!Arc::ptr_eq(&b1, &b2));
        assert_eq!(b2.len(), 3);
        // The cache is invisible to equality.
        let fresh = sample().with_name("t");
        let warmed = {
            let t = sample();
            let _ = t.batch();
            t
        };
        assert_eq!(fresh, warmed);
    }

    #[test]
    fn concurrent_scans_materialize_exactly_once() {
        // The double-materialize audit (ISSUE 9): many threads hitting a
        // cold batch cache must transpose once and share one Arc.
        let t = Table::build("big", &[("id", DataType::Int)])
            .rows((0..5000).map(|i| vec![Value::from(i)]))
            .finish()
            .unwrap();
        assert_eq!(t.batch_materializations(), 0);
        let batches = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|_| t.try_batch().unwrap()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        })
        .unwrap();
        assert_eq!(t.batch_materializations(), 1, "transpose ran once");
        for b in &batches[1..] {
            assert!(Arc::ptr_eq(&batches[0], b), "all scans share one batch");
        }
        // Mutation invalidates; the next scan re-materializes (counter 2).
        let mut t = t;
        t.push_row(vec![Value::from(9999)]).unwrap();
        let _ = t.try_batch().unwrap();
        assert_eq!(t.batch_materializations(), 2);
    }

    #[test]
    fn paged_round_trip_equals_memory_twin() {
        let dir = std::env::temp_dir().join(format!("mde_table_paged_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.mdet");
        let mem = sample();
        let paged = mem.to_paged(&path, 256, BufferPool::new(2)).unwrap();
        assert!(paged.is_paged() && !mem.is_paged());
        assert_eq!(paged.name(), mem.name());
        assert_eq!(paged.schema(), mem.schema());
        assert_eq!(paged.len(), mem.len());
        // Batches decode bit-identically; equality compares materialized rows.
        assert_eq!(*paged.try_batch().unwrap(), *mem.batch());
        assert_eq!(paged, mem);
        // Paged batches are never cached: every scan pays page reads.
        assert!(!paged.batch_is_cached());
        let _ = paged.try_batch().unwrap();
        assert!(!paged.batch_is_cached());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paged_append_tail_splices_onto_base() {
        let dir = std::env::temp_dir().join(format!("mde_table_tail_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.mdet");
        let mut mem = sample();
        let mut paged = mem.to_paged(&path, 256, BufferPool::new(2)).unwrap();
        for t in [&mut mem, &mut paged] {
            t.push_row(vec![Value::from(3), Value::Null]).unwrap();
            t.push_row(vec![Value::from(4), Value::from(4.5)]).unwrap();
        }
        assert_eq!(paged.len(), 4);
        assert_eq!(*paged.try_batch().unwrap(), *mem.batch());
        assert_eq!(paged, mem);
        assert_eq!(paged.column("id").unwrap(), mem.column("id").unwrap());
        // Tail rows are validated against the schema like any others.
        assert!(paged
            .push_row(vec![Value::from("bad"), Value::Null])
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paged_corruption_is_typed_through_try_batch() {
        let dir = std::env::temp_dir().join(format!("mde_table_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.mdet");
        let mem = sample();
        let paged = mem.to_paged(&path, 256, BufferPool::new(2)).unwrap();
        // Flip a bit in the first page body, past the header.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 100] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();
        let err = paged.try_batch().unwrap_err();
        assert!(
            matches!(
                err,
                crate::McdbError::PageChecksumMismatch { .. }
                    | crate::McdbError::PageCorrupt { .. }
            ),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
