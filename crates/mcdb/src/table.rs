//! In-memory tables: a schema plus rows.

use crate::query::batch::Batch;
use crate::schema::{DataType, Schema};
use crate::value::Value;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A row is an ordered vector of values matching a schema.
pub type Row = Vec<Value>;

/// An in-memory table with a name, schema, and rows.
///
/// Tables are the unit of exchange throughout the workspace: ordinary
/// (deterministic) database tables, realizations of stochastic tables,
/// query results, snapshots of agent populations, and observation exports
/// from simulations are all `Table`s.
///
/// Tables also lazily cache a columnar [`Batch`] view of themselves (see
/// [`Table::batch`]); the vectorized executor scans through that cache so
/// repeated queries over the same table transpose it exactly once. The
/// cache is invalidated whenever a row is appended and is ignored by
/// equality comparison.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    batch_cache: OnceLock<Arc<Batch>>,
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.schema == other.schema && self.rows == other.rows
    }
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            batch_cache: OnceLock::new(),
        }
    }

    /// Start a builder from `(name, type)` column pairs.
    pub fn build(name: impl Into<String>, columns: &[(&str, DataType)]) -> TableBuilder {
        TableBuilder {
            name: name.into(),
            columns: columns.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
            rows: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (used when registering query results).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Consume the table, yielding its rows (engine-internal; lets
    /// operators that own their input avoid per-row clones).
    pub(crate) fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// The columnar [`Batch`] view of this table, transposed on first use
    /// and cached. Appending rows invalidates the cache.
    pub fn batch(&self) -> Arc<Batch> {
        Arc::clone(
            self.batch_cache
                .get_or_init(|| Arc::new(Batch::from_table(self))),
        )
    }

    /// Whether the columnar batch is already transposed and cached — i.e.
    /// whether the next [`Table::batch`] call is a cache hit. Exposed so
    /// the traced executor can report batch-cache reuse per scan.
    pub fn batch_is_cached(&self) -> bool {
        self.batch_cache.get().is_some()
    }

    /// Append a validated row.
    pub fn push_row(&mut self, row: Row) -> crate::Result<()> {
        self.schema.validate_row(&row)?;
        self.batch_cache.take();
        self.rows.push(row);
        Ok(())
    }

    /// Append a row without validation.
    ///
    /// For engine-internal paths where the row provably conforms (e.g.
    /// projections of validated rows). Not `unsafe` in the memory sense,
    /// but misuse produces confusing downstream type errors.
    pub(crate) fn push_row_unchecked(&mut self, row: Row) {
        debug_assert!(self.schema.validate_row(&row).is_ok());
        self.batch_cache.take();
        self.rows.push(row);
    }

    /// The single scalar value of a 1×1 table, or an error.
    pub fn scalar(&self) -> crate::Result<Value> {
        if self.rows.len() == 1 && self.schema.len() == 1 {
            Ok(self.rows[0][0].clone())
        } else {
            Err(crate::McdbError::NonScalarResult {
                rows: self.rows.len(),
                cols: self.schema.len(),
            })
        }
    }

    /// Extract one column as a vector of values.
    pub fn column(&self, name: &str) -> crate::Result<Vec<Value>> {
        let i = self.schema.index_of(name)?;
        Ok(self.rows.iter().map(|r| r[i].clone()).collect())
    }

    /// Extract one numeric column as `f64`s (Nulls are skipped).
    pub fn column_f64(&self, name: &str) -> crate::Result<Vec<f64>> {
        let i = self.schema.index_of(name)?;
        self.rows
            .iter()
            .filter(|r| !r[i].is_null())
            .map(|r| r[i].as_f64())
            .collect()
    }

    /// Render as an aligned text table (for the figure-regeneration
    /// binaries and debugging).
    pub fn render_ascii(&self) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = names
            .iter()
            .zip(&widths)
            .map(|(n, w)| format!("{n:>w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} rows)", self.name, self.rows.len())?;
        write!(f, "{}", self.render_ascii())
    }
}

/// Incremental table builder; validation happens at `finish`.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    columns: Vec<(String, DataType)>,
    rows: Vec<Row>,
}

impl TableBuilder {
    /// Append a row (validated at [`TableBuilder::finish`]).
    pub fn row(mut self, row: Row) -> Self {
        self.rows.push(row);
        self
    }

    /// Append many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Row>) -> Self {
        self.rows.extend(rows);
        self
    }

    /// Validate all rows and produce the table.
    pub fn finish(self) -> crate::Result<Table> {
        let pairs: Vec<(&str, DataType)> =
            self.columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let schema = Schema::from_pairs(&pairs)?;
        let mut t = Table::new(self.name, schema);
        for row in self.rows {
            t.push_row(row)?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::build("t", &[("id", DataType::Int), ("x", DataType::Float)])
            .row(vec![Value::from(1), Value::from(1.5)])
            .row(vec![Value::from(2), Value::from(2.5)])
            .finish()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        let bad = Table::build("t", &[("id", DataType::Int)])
            .row(vec![Value::from("oops")])
            .finish();
        assert!(bad.is_err());
    }

    #[test]
    fn push_and_access() {
        let mut t = sample();
        assert_eq!(t.len(), 2);
        t.push_row(vec![Value::from(3), Value::Null]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.column("id").unwrap().len(), 3);
        // column_f64 skips Nulls.
        assert_eq!(t.column_f64("x").unwrap(), vec![1.5, 2.5]);
        assert!(t.column("nope").is_err());
    }

    #[test]
    fn scalar_extraction() {
        let t = Table::build("s", &[("v", DataType::Float)])
            .row(vec![Value::from(9.0)])
            .finish()
            .unwrap();
        assert_eq!(t.scalar().unwrap(), Value::from(9.0));
        assert!(sample().scalar().is_err());
    }

    #[test]
    fn render_contains_headers_and_values() {
        let s = sample().render_ascii();
        assert!(s.contains("id"));
        assert!(s.contains("2.5"));
        assert_eq!(s.lines().count(), 4); // header + separator + 2 rows
    }

    #[test]
    fn rename() {
        let t = sample().with_name("renamed");
        assert_eq!(t.name(), "renamed");
    }

    #[test]
    fn batch_cache_reuses_until_mutated() {
        let mut t = sample();
        let b1 = t.batch();
        assert!(Arc::ptr_eq(&b1, &t.batch()));
        assert_eq!(b1.len(), 2);
        t.push_row(vec![Value::from(3), Value::Null]).unwrap();
        let b2 = t.batch();
        assert!(!Arc::ptr_eq(&b1, &b2));
        assert_eq!(b2.len(), 3);
        // The cache is invisible to equality.
        let fresh = sample().with_name("t");
        let warmed = {
            let t = sample();
            let _ = t.batch();
            t
        };
        assert_eq!(fresh, warmed);
    }
}
