//! Ordered fork/join over an indexed task range — the morsel dispatch
//! primitive shared by the query executor and the paged-storage reader.
//!
//! The contract mirrors `mc::campaign_parallel`: tasks are assigned to
//! workers by static round-robin (worker `w` takes tasks `w`, `w + W`,
//! `w + 2W`, …), results land in task order, and the caller merges them
//! in that order — so any merge the caller performs observes the same
//! sequence at every worker count, including `W = 1`, which runs the
//! identical code on the calling thread. That is the whole bit-identity
//! argument: parallelism only changes *when* a task runs, never what it
//! computes or where its result sits in the merge.

/// Run `n` independent tasks and return their results in task order.
///
/// `threads <= 1` (or `n <= 1`) executes in-line on the calling thread.
/// Otherwise tasks are distributed round-robin over `min(threads, n)`
/// scoped workers. A panicking task propagates as a panic on the caller
/// (the same surface as a panic in a sequential loop).
pub(crate) fn par_map_ordered<T, F>(threads: usize, n: usize, f: F) -> Vec<crate::Result<T>>
where
    T: Send,
    F: Fn(usize) -> crate::Result<T> + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(&f).collect();
    }
    let workers = threads.min(n);
    let mut out: Vec<Option<crate::Result<T>>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move |_| -> Vec<(usize, crate::Result<T>)> {
                    (w..n).step_by(workers).map(|i| (i, f(i))).collect()
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("morsel worker panicked") {
                out[i] = Some(r);
            }
        }
    })
    .expect("morsel scope");
    out.into_iter()
        .map(|o| o.expect("every task index filled"))
        .collect()
}

/// Collapse ordered task results to the first (lowest-index) error, or
/// the full result vector. Lowest-index-wins is exactly the error a
/// sequential left-to-right loop would have surfaced first.
pub(crate) fn first_error<T>(results: Vec<crate::Result<T>>) -> crate::Result<Vec<T>> {
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

/// Split `lanes` into `[start, end)` ranges of at most `morsel_rows`
/// lanes. `morsel_rows` must already be 64-aligned (see
/// [`crate::query::ExecConfig::aligned_morsel_rows`]) so every morsel
/// boundary falls on a null-mask word boundary.
pub(crate) fn morsel_ranges(lanes: usize, morsel_rows: usize) -> Vec<(usize, usize)> {
    debug_assert!(morsel_rows > 0 && morsel_rows.is_multiple_of(64));
    (0..lanes.div_ceil(morsel_rows))
        .map(|m| (m * morsel_rows, ((m + 1) * morsel_rows).min(lanes)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let got = first_error(par_map_ordered(threads, 10, |i| Ok(i * i))).unwrap();
            assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        for threads in [1, 2, 8] {
            let err = first_error(par_map_ordered(threads, 10, |i| {
                if i >= 3 {
                    Err(crate::McdbError::invalid_plan(format!("task {i}")))
                } else {
                    Ok(i)
                }
            }))
            .unwrap_err();
            assert_eq!(err, crate::McdbError::invalid_plan("task 3"));
        }
    }

    #[test]
    fn morsel_ranges_cover_and_align() {
        assert_eq!(morsel_ranges(0, 64), Vec::<(usize, usize)>::new());
        assert_eq!(morsel_ranges(1, 64), vec![(0, 1)]);
        assert_eq!(morsel_ranges(130, 64), vec![(0, 64), (64, 128), (128, 130)]);
        let r = morsel_ranges(100_000, 4096);
        assert_eq!(r.first(), Some(&(0, 4096)));
        assert_eq!(r.last(), Some(&(98304, 100_000)));
        assert!(r.windows(2).all(|w| w[0].1 == w[1].0));
    }
}
