//! Typed scalar values.

use crate::McdbError;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string (reference-counted; rows are cloned freely during
    /// Monte Carlo iteration, so string payloads must be cheap to clone).
    Str,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Stable one-byte tag used by the page codec (`MDEPAGE1`). Tags are
    /// part of the on-disk format: never renumber, only append.
    pub(crate) fn to_tag(self) -> u8 {
        match self {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Str => 2,
            DataType::Bool => 3,
        }
    }

    /// Inverse of [`DataType::to_tag`]; `None` for an unknown tag (a
    /// corrupt or future-format page).
    pub(crate) fn from_tag(tag: u8) -> Option<DataType> {
        match tag {
            0 => Some(DataType::Int),
            1 => Some(DataType::Float),
            2 => Some(DataType::Str),
            3 => Some(DataType::Bool),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "Int"),
            DataType::Float => write!(f, "Float"),
            DataType::Str => write!(f, "Str"),
            DataType::Bool => write!(f, "Bool"),
        }
    }
}

/// A scalar value. `Null` is typeless and compatible with every column
/// type, mirroring SQL.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl Value {
    /// String constructor (wraps in an `Arc`).
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The value's type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Null => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: `Int` and `Float` coerce to `f64`; everything else is
    /// a type error.
    pub fn as_f64(&self) -> crate::Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(McdbError::type_mismatch(
                "as_f64",
                "Int or Float",
                format!("{other}"),
            )),
        }
    }

    /// Integer view (no float coercion — truncation must be explicit in
    /// expressions).
    pub fn as_i64(&self) -> crate::Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(McdbError::type_mismatch(
                "as_i64",
                "Int",
                format!("{other}"),
            )),
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> crate::Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(McdbError::type_mismatch(
                "as_bool",
                "Bool",
                format!("{other}"),
            )),
        }
    }

    /// String view.
    pub fn as_str(&self) -> crate::Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(McdbError::type_mismatch(
                "as_str",
                "Str",
                format!("{other}"),
            )),
        }
    }

    /// SQL-style three-valued comparison: `None` when either side is Null
    /// or the types are incomparable. Ints and Floats compare numerically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            _ => None,
        }
    }

    /// Equality for grouping and join keys: Null groups with Null (unlike
    /// SQL `=`, matching SQL `GROUP BY` semantics), numeric types compare
    /// numerically.
    pub fn group_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Null, _) | (_, Value::Null) => false,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }

    /// A hashable key form for grouping/joining. Floats hash by bit
    /// pattern of their canonicalized value (`-0.0` → `0.0`); NaN keys are
    /// rejected upstream by table validation.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Int(i) => GroupKey::Int(*i),
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Str(s) => GroupKey::Str(Arc::clone(s)),
            Value::Float(f) => {
                let f = if *f == 0.0 { 0.0 } else { *f };
                GroupKey::Float(f.to_bits())
            }
        }
    }
}

/// Hashable projection of a [`Value`] for hash joins and group-by.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// Null key (groups with other Nulls).
    Null,
    /// Integer key.
    Int(i64),
    /// Float key by canonical bit pattern.
    Float(u64),
    /// Boolean key.
    Bool(bool),
    /// String key.
    Str(Arc<str>),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3).as_i64().unwrap(), 3);
        assert_eq!(Value::from(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::from(2.5).as_f64().unwrap(), 2.5);
        assert!(Value::from(true).as_bool().unwrap());
        assert_eq!(Value::from("hi").as_str().unwrap(), "hi");
        assert!(Value::from("hi").as_f64().is_err());
        assert!(Value::from(1.5).as_i64().is_err());
        assert!(Value::Null.as_bool().is_err());
    }

    #[test]
    fn data_types() {
        assert_eq!(Value::from(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::from(1.0).data_type(), Some(DataType::Float));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::from(2).sql_cmp(&Value::from(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::from(1.5).sql_cmp(&Value::from(2)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::from(1)), None);
        assert_eq!(Value::from("a").sql_cmp(&Value::from(1)), None);
        assert_eq!(
            Value::from("a").sql_cmp(&Value::from("b")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn group_semantics() {
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(!Value::Null.group_eq(&Value::from(0)));
        assert!(Value::from(2).group_eq(&Value::from(2.0)));
        assert_eq!(Value::Null.group_key(), GroupKey::Null);
        // -0.0 and 0.0 produce the same key.
        assert_eq!(Value::from(-0.0).group_key(), Value::from(0.0).group_key());
    }

    #[test]
    fn equality_matches_sql_cmp() {
        assert_eq!(Value::from(1), Value::from(1.0));
        assert_ne!(Value::from(1), Value::from("1"));
        assert_eq!(Value::Null, Value::Null); // for tests/assertions
    }

    #[test]
    fn display() {
        assert_eq!(Value::from(1).to_string(), "1");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::from("x").to_string(), "x");
    }
}
