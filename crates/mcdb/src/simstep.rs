//! Agent-based simulation steps as self-joins (Wang et al., VLDB 2010).
//!
//! "A step in an agent-based simulation can be viewed as a self-join. That
//! is, the data in each row of a table represent the internal state of an
//! agent, so the self-join step allows agents to interact with other
//! agents. A key observation is that agents typically interact only with a
//! relatively small group of 'nearby' agents. Thus (with a little care) the
//! join can be parallelized among groups of agents."
//!
//! [`SelfJoinSim`] implements exactly that: the agent table carries a
//! *partition key* (spatial cell, social group, …); a step equi-joins each
//! agent with the agents in its own and adjacent partitions and applies a
//! pluggable stochastic [`AgentTransition`]. Partitions are processed in
//! parallel worker threads with per-partition RNG streams, so results are
//! bit-identical regardless of thread count — the "little care" the paper
//! alludes to.

use crate::table::{Row, Table};
use crate::value::{GroupKey, Value};
use crate::McdbError;
use mde_numeric::rng::{Rng, StreamFactory};
use std::collections::HashMap;
use std::sync::Arc;

/// A stochastic agent state-transition function.
pub trait AgentTransition: Send + Sync {
    /// Compute the agent's next-state row from its current row and the rows
    /// of its neighbors (agents in the same or adjacent partitions,
    /// including the agent itself). Must return a row matching the agent
    /// table's schema.
    fn transition(&self, agent: &Row, neighbors: &[&Row], rng: &mut Rng) -> crate::Result<Row>;
}

/// Blanket implementation so closures can be used directly.
impl<F> AgentTransition for F
where
    F: Fn(&Row, &[&Row], &mut Rng) -> crate::Result<Row> + Send + Sync,
{
    fn transition(&self, agent: &Row, neighbors: &[&Row], rng: &mut Rng) -> crate::Result<Row> {
        self(agent, neighbors, rng)
    }
}

/// Neighborhood expansion: maps a partition key to its adjacent keys.
pub type AdjacencyFn = Arc<dyn Fn(&Value) -> Vec<Value> + Send + Sync>;

/// An ABS engine whose step is a neighborhood-partitioned self-join.
pub struct SelfJoinSim {
    key_column: String,
    adjacency: AdjacencyFn,
    transition: Arc<dyn AgentTransition>,
    threads: usize,
}

impl SelfJoinSim {
    /// Create a simulator.
    ///
    /// * `key_column` — the partition-key column of the agent table;
    /// * `adjacency` — maps a partition key to the *other* partition keys
    ///   whose agents are also neighbors (the agent's own partition is
    ///   always included automatically);
    /// * `transition` — the per-agent stochastic update.
    pub fn new(
        key_column: impl Into<String>,
        adjacency: impl Fn(&Value) -> Vec<Value> + Send + Sync + 'static,
        transition: Arc<dyn AgentTransition>,
    ) -> Self {
        SelfJoinSim {
            key_column: key_column.into(),
            adjacency: Arc::new(adjacency),
            transition,
            threads: 1,
        }
    }

    /// Use up to `threads` worker threads for the partition-parallel join.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Execute one simulation step: the self-join plus transition, in
    /// parallel over partitions. Row order of the output matches the input.
    pub fn step(&self, agents: &Table, seed: u64) -> crate::Result<Table> {
        let key_idx = agents.schema().index_of(&self.key_column)?;

        // Partition agents: key -> row indices, remembering encounter order
        // of partitions so RNG stream assignment is deterministic.
        let mut partitions: HashMap<GroupKey, usize> = HashMap::new();
        let mut part_rows: Vec<Vec<usize>> = Vec::new();
        let mut part_key_values: Vec<Value> = Vec::new();
        for (i, row) in agents.rows().iter().enumerate() {
            let k = row[key_idx].group_key();
            let pid = *partitions.entry(k).or_insert_with(|| {
                part_rows.push(Vec::new());
                part_key_values.push(row[key_idx].clone());
                part_rows.len() - 1
            });
            part_rows[pid].push(i);
        }

        // Resolve each partition's neighbor row set: own rows plus rows of
        // adjacent partitions that exist.
        let neighbor_rows_of = |pid: usize| -> Vec<&Row> {
            let mut rows: Vec<&Row> = part_rows[pid].iter().map(|&i| &agents.rows()[i]).collect();
            for adj in (self.adjacency)(&part_key_values[pid]) {
                if let Some(&apid) = partitions.get(&adj.group_key()) {
                    if apid != pid {
                        rows.extend(part_rows[apid].iter().map(|&i| &agents.rows()[i]));
                    }
                }
            }
            rows
        };

        let factory = StreamFactory::new(seed);
        let n_parts = part_rows.len();
        let threads = self.threads.min(n_parts.max(1));
        type PartOut = crate::Result<Vec<(usize, Row)>>;
        let mut results: Vec<Option<PartOut>> = (0..threads).map(|_| None).collect();

        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let part_rows = &part_rows;
                let neighbor_rows_of = &neighbor_rows_of;
                let transition = &self.transition;
                handles.push(scope.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut pid = t;
                    while pid < n_parts {
                        let neighbors = neighbor_rows_of(pid);
                        // Per-partition stream: deterministic across thread
                        // counts because pid, not thread id, selects it.
                        let mut rng = factory.stream(pid as u64);
                        for &i in &part_rows[pid] {
                            let agent = &agents.rows()[i];
                            match transition.transition(agent, &neighbors, &mut rng) {
                                Ok(new_row) => out.push((i, new_row)),
                                Err(e) => return Err(e),
                            }
                        }
                        pid += threads;
                    }
                    Ok(out)
                }));
            }
            for (slot, h) in results.iter_mut().zip(handles) {
                match h.join() {
                    Ok(out) => *slot = Some(out),
                    Err(_) => {
                        return Err(McdbError::worker_lost(
                            "self-join partition worker panicked outside the transition",
                        ))
                    }
                }
            }
            Ok(())
        })
        .map_err(|_| McdbError::worker_lost("self-join scoped worker pool panicked"))??;

        let mut indexed: Vec<(usize, Row)> = Vec::with_capacity(agents.len());
        for r in results.into_iter().flatten() {
            indexed.extend(r?);
        }
        indexed.sort_by_key(|(i, _)| *i);
        if indexed.len() != agents.len() {
            return Err(McdbError::invalid_plan(format!(
                "self-join step produced {} rows for {} agents",
                indexed.len(),
                agents.len()
            )));
        }

        let mut out = Table::new(agents.name().to_string(), agents.schema().clone());
        for (_, row) in indexed {
            out.push_row(row)?;
        }
        Ok(out)
    }

    /// Run `steps` consecutive steps, returning every intermediate state
    /// (`steps + 1` tables including the input).
    pub fn run(&self, agents: Table, steps: usize, seed: u64) -> crate::Result<Vec<Table>> {
        let factory = StreamFactory::new(seed);
        let mut states = vec![agents];
        for s in 0..steps {
            let next = self.step(
                states.last().expect("seeded with initial state"),
                factory.seed_of(s as u64),
            )?;
            states.push(next);
        }
        Ok(states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    /// A 1-D "infection" model: agents live in integer cells; an agent
    /// becomes infected if any neighbor (same or adjacent cell) is
    /// infected. Deterministic, so the spread front is checkable.
    fn contagion_sim(threads: usize) -> SelfJoinSim {
        let transition = |agent: &Row, neighbors: &[&Row], _rng: &mut Rng| {
            let infected = agent[2].as_bool()?;
            let any_near = neighbors.iter().any(|n| n[2].as_bool().unwrap_or(false));
            Ok(vec![
                agent[0].clone(),
                agent[1].clone(),
                Value::Bool(infected || any_near),
            ])
        };
        SelfJoinSim::new(
            "cell",
            |k: &Value| {
                let c = k.as_i64().expect("int cell key");
                vec![Value::Int(c - 1), Value::Int(c + 1)]
            },
            Arc::new(transition),
        )
        .with_threads(threads)
    }

    fn line_of_agents(n: i64) -> Table {
        Table::build(
            "agents",
            &[
                ("id", DataType::Int),
                ("cell", DataType::Int),
                ("infected", DataType::Bool),
            ],
        )
        .rows((0..n).map(|i| {
            vec![
                Value::from(i),
                Value::from(i), // one agent per cell
                Value::from(i == 0),
            ]
        }))
        .finish()
        .unwrap()
    }

    fn count_infected(t: &Table) -> usize {
        t.rows().iter().filter(|r| r[2].as_bool().unwrap()).count()
    }

    #[test]
    fn contagion_front_advances_one_cell_per_step() {
        let sim = contagion_sim(1);
        let states = sim.run(line_of_agents(10), 4, 9).unwrap();
        for (t, s) in states.iter().enumerate() {
            assert_eq!(count_infected(s), (t + 1).min(10), "at step {t}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let t0 = line_of_agents(30);
        let seq = contagion_sim(1).run(t0.clone(), 5, 4).unwrap();
        let par = contagion_sim(8).run(t0, 5, 4).unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.rows(), b.rows());
        }
    }

    #[test]
    fn stochastic_transition_reproducible_across_thread_counts() {
        // Transition flips a coin; per-partition streams must make the
        // result independent of the thread count.
        let make = |threads| {
            SelfJoinSim::new(
                "cell",
                |_k: &Value| vec![],
                Arc::new(|agent: &Row, _n: &[&Row], rng: &mut Rng| {
                    use rand::Rng as _;
                    Ok(vec![
                        agent[0].clone(),
                        agent[1].clone(),
                        Value::Bool(rng.gen::<f64>() < 0.5),
                    ])
                }),
            )
            .with_threads(threads)
        };
        let t0 = line_of_agents(40);
        let a = make(1).step(&t0, 123).unwrap();
        let b = make(4).step(&t0, 123).unwrap();
        let c = make(16).step(&t0, 123).unwrap();
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.rows(), c.rows());
        // And the seed matters.
        let d = make(4).step(&t0, 124).unwrap();
        assert_ne!(a.rows(), d.rows());
    }

    #[test]
    fn neighbors_include_own_partition_and_adjacent_only() {
        // Agent counts its neighbors into its own state.
        let sim = SelfJoinSim::new(
            "cell",
            |k: &Value| {
                let c = k.as_i64().unwrap();
                vec![Value::Int(c - 1), Value::Int(c + 1)]
            },
            Arc::new(|agent: &Row, neighbors: &[&Row], _rng: &mut Rng| {
                Ok(vec![
                    agent[0].clone(),
                    agent[1].clone(),
                    Value::Int(neighbors.len() as i64),
                ])
            }),
        );
        // Three agents in cell 0, two in cell 1, one in cell 5 (isolated).
        let t = Table::build(
            "a",
            &[
                ("id", DataType::Int),
                ("cell", DataType::Int),
                ("n", DataType::Int),
            ],
        )
        .rows(vec![
            vec![Value::from(0), Value::from(0), Value::from(0)],
            vec![Value::from(1), Value::from(0), Value::from(0)],
            vec![Value::from(2), Value::from(0), Value::from(0)],
            vec![Value::from(3), Value::from(1), Value::from(0)],
            vec![Value::from(4), Value::from(1), Value::from(0)],
            vec![Value::from(5), Value::from(5), Value::from(0)],
        ])
        .finish()
        .unwrap();
        let out = sim.step(&t, 1).unwrap();
        let n: Vec<i64> = out.rows().iter().map(|r| r[2].as_i64().unwrap()).collect();
        // Cells 0 and 1 are mutually adjacent: everyone there sees 5.
        // The isolated agent sees only itself.
        assert_eq!(n, vec![5, 5, 5, 5, 5, 1]);
    }

    #[test]
    fn bad_transition_row_is_rejected() {
        let sim = SelfJoinSim::new(
            "cell",
            |_k: &Value| vec![],
            Arc::new(|_a: &Row, _n: &[&Row], _rng: &mut Rng| Ok(vec![Value::from("wrong schema")])),
        );
        assert!(sim.step(&line_of_agents(3), 1).is_err());
    }

    #[test]
    fn missing_key_column_is_an_error() {
        let sim = contagion_sim(1);
        let t = Table::build("a", &[("id", DataType::Int)])
            .row(vec![Value::from(1)])
            .finish()
            .unwrap();
        assert!(sim.step(&t, 1).is_err());
    }
}
