//! Stochastic ("random") table specifications.
//!
//! A [`RandomTableSpec`] is the engine's equivalent of MCDB's
//!
//! ```sql
//! CREATE TABLE SBP_DATA(PID, GENDER, SBP) AS
//!   FOR EACH p IN PATIENTS
//!   WITH SBP AS Normal((SELECT s.MEAN, s.STD FROM SBP_PARAM s))
//!   SELECT p.PID, p.GENDER, b.VALUE FROM SBP b
//! ```
//!
//! A realization loops over the rows of the *driver* query (`FOR EACH`),
//! invokes the VG function once per driver row — parametrized by a SQL
//! query over the non-random tables and/or by expressions over the driver
//! row — and assembles output rows with the `SELECT` projection, which sees
//! the driver row's columns and the VG output's columns side by side.

use crate::expr::BoundExpr;
use crate::query::{Catalog, Plan, PreparedQuery};
use crate::schema::Schema;
use crate::table::{Row, Table};
use crate::value::Value;
use crate::vg::VgFunction;
use crate::{expr::Expr, McdbError};
use mde_numeric::rng::Rng;
use std::sync::Arc;

/// Specification of a stochastic table.
#[derive(Clone)]
pub struct RandomTableSpec {
    name: String,
    driver: Plan,
    vg: Arc<dyn VgFunction>,
    /// Parameter query evaluated once per realization over the catalog; its
    /// single row's values prefix the VG parameter list.
    params_query: Option<Plan>,
    /// Per-driver-row parameter expressions, appended after the query
    /// parameters.
    param_exprs: Vec<Expr>,
    /// `(output name, expression)` over driver ++ VG columns.
    select: Vec<(String, Expr)>,
}

impl std::fmt::Debug for RandomTableSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomTableSpec")
            .field("name", &self.name)
            .field("vg", &self.vg.name())
            .field(
                "select",
                &self.select.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl RandomTableSpec {
    /// Start building a spec for a table with the given name.
    pub fn builder(name: impl Into<String>) -> RandomTableSpecBuilder {
        RandomTableSpecBuilder {
            name: name.into(),
            driver: None,
            vg: None,
            params_query: None,
            param_exprs: Vec::new(),
            select: Vec::new(),
        }
    }

    /// The table name this spec realizes.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The VG function.
    pub fn vg(&self) -> &Arc<dyn VgFunction> {
        &self.vg
    }

    /// The driver plan (`FOR EACH`).
    pub fn driver(&self) -> &Plan {
        &self.driver
    }

    /// Schema of the combined (driver ++ VG) row visible to the `SELECT`
    /// projection.
    pub fn combined_schema(&self, catalog: &Catalog) -> crate::Result<Schema> {
        let driver_schema = self.driver.output_schema(catalog)?;
        driver_schema.concat(&self.vg.output_schema(), "vg")
    }

    /// Output schema of a realization.
    pub fn output_schema(&self, catalog: &Catalog) -> crate::Result<Schema> {
        let combined = self.combined_schema(catalog)?;
        let mut cols = Vec::with_capacity(self.select.len());
        for (name, e) in &self.select {
            let dt =
                crate::query::infer_type(e, &combined)?.unwrap_or(crate::schema::DataType::Float);
            cols.push(crate::schema::Column::new(name.clone(), dt));
        }
        Schema::new(cols)
    }

    /// Evaluate the parameter query (if any) to the base parameter values.
    fn base_params(&self, catalog: &Catalog) -> crate::Result<Vec<Value>> {
        match &self.params_query {
            None => Ok(Vec::new()),
            Some(q) => {
                let t = catalog.query(q)?;
                if t.len() != 1 {
                    return Err(McdbError::invalid_plan(format!(
                        "VG parameter query for `{}` must return exactly one row, got {}",
                        self.name,
                        t.len()
                    )));
                }
                Ok(t.rows()[0].clone())
            }
        }
    }

    /// Crate-internal: evaluate the parameter query to base parameters
    /// (used by the tuple-bundle generator, which drives the VG directly).
    pub(crate) fn base_params_values(&self, catalog: &Catalog) -> crate::Result<Vec<Value>> {
        self.base_params(catalog)
    }

    /// Crate-internal: bind the per-row parameter expressions.
    pub(crate) fn bind_param_exprs(
        &self,
        driver_schema: &Schema,
    ) -> crate::Result<Vec<crate::expr::BoundExpr>> {
        self.param_exprs
            .iter()
            .map(|e| e.bind(driver_schema))
            .collect()
    }

    /// Crate-internal: bind the SELECT projection against the combined
    /// schema.
    pub(crate) fn bind_select(
        &self,
        combined: &Schema,
    ) -> crate::Result<Vec<crate::expr::BoundExpr>> {
        self.select.iter().map(|(_, e)| e.bind(combined)).collect()
    }

    /// Prepare this spec against a catalog snapshot: plan the driver and
    /// parameter queries once, bind every expression, and resolve the
    /// output schema. The result realizes any number of replicates without
    /// re-planning — the MCDB prepare-once / sample-per-replicate split.
    ///
    /// Tables the driver or parameter query scan must exist in `catalog`
    /// with their execution-time schemas (the Monte Carlo runners register
    /// empty placeholder tables for not-yet-realized stochastic inputs).
    pub fn prepare(&self, catalog: &Catalog) -> crate::Result<PreparedRandomTable> {
        let driver = PreparedQuery::prepare(&self.driver, catalog)?;
        let combined = driver.schema().concat(&self.vg.output_schema(), "vg")?;
        let mut cols = Vec::with_capacity(self.select.len());
        for (name, e) in &self.select {
            let dt =
                crate::query::infer_type(e, &combined)?.unwrap_or(crate::schema::DataType::Float);
            cols.push(crate::schema::Column::new(name.clone(), dt));
        }
        let out_schema = Schema::new(cols)?;
        let params_query = self
            .params_query
            .as_ref()
            .map(|q| PreparedQuery::prepare(q, catalog))
            .transpose()?;
        let bound_param_exprs = self.bind_param_exprs(driver.schema())?;
        let bound_select = self.bind_select(&combined)?;
        Ok(PreparedRandomTable {
            name: self.name.clone(),
            vg: Arc::clone(&self.vg),
            driver,
            params_query,
            bound_param_exprs,
            bound_select,
            combined_len: combined.len(),
            out_schema,
        })
    }

    /// Generate one realization of the stochastic table.
    ///
    /// Convenience wrapper that prepares and realizes in one step; loops
    /// should call [`RandomTableSpec::prepare`] once and realize the
    /// prepared form per replicate.
    pub fn realize(&self, catalog: &Catalog, rng: &mut Rng) -> crate::Result<Table> {
        self.prepare(catalog)?.realize(catalog, rng)
    }
}

/// A [`RandomTableSpec`] with its driver and parameter queries planned and
/// every expression bound, ready to realize once per replicate.
///
/// The driver and parameter queries still *execute* per realization (they
/// may read tables realized earlier in the same replicate), but planning,
/// binding, and schema resolution happen exactly once, at
/// [`RandomTableSpec::prepare`] time.
#[derive(Clone)]
pub struct PreparedRandomTable {
    name: String,
    vg: Arc<dyn VgFunction>,
    driver: PreparedQuery,
    params_query: Option<PreparedQuery>,
    bound_param_exprs: Vec<BoundExpr>,
    bound_select: Vec<BoundExpr>,
    combined_len: usize,
    out_schema: Schema,
}

impl std::fmt::Debug for PreparedRandomTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedRandomTable")
            .field("name", &self.name)
            .field("vg", &self.vg.name())
            .field("out_schema", &self.out_schema)
            .finish_non_exhaustive()
    }
}

impl PreparedRandomTable {
    /// The table name this realizes.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output schema of a realization (resolved at prepare time).
    pub fn output_schema(&self) -> &Schema {
        &self.out_schema
    }

    /// Generate one realization using the prepared plans.
    ///
    /// RNG consumption is identical to the unprepared path: one VG
    /// invocation per driver row, in driver order.
    pub fn realize(&self, catalog: &Catalog, rng: &mut Rng) -> crate::Result<Table> {
        let driver_table = self.driver.execute(catalog)?;
        let base_params = match &self.params_query {
            None => Vec::new(),
            Some(q) => {
                let t = q.execute(catalog)?;
                if t.len() != 1 {
                    return Err(McdbError::invalid_plan(format!(
                        "VG parameter query for `{}` must return exactly one row, got {}",
                        self.name,
                        t.len()
                    )));
                }
                t.rows()[0].clone()
            }
        };

        let mut out = Table::new(self.name.clone(), self.out_schema.clone());
        for drow in driver_table.rows() {
            let mut params = base_params.clone();
            for be in &self.bound_param_exprs {
                params.push(be.eval(drow)?);
            }
            self.vg.check_arity(&params)?;
            for vrow in self.vg.generate(&params, rng)? {
                let mut crow: Row = Vec::with_capacity(self.combined_len);
                crow.extend(drow.iter().cloned());
                crow.extend(vrow);
                let mut orow = Vec::with_capacity(self.bound_select.len());
                for (be, col) in self.bound_select.iter().zip(self.out_schema.columns()) {
                    let v = be.eval(&crow)?;
                    let v = match (&v, col.dtype) {
                        (Value::Int(i), crate::schema::DataType::Float) => Value::Float(*i as f64),
                        _ => v,
                    };
                    orow.push(v);
                }
                out.push_row(orow)?;
            }
        }
        Ok(out)
    }
}

/// Builder for [`RandomTableSpec`].
pub struct RandomTableSpecBuilder {
    name: String,
    driver: Option<Plan>,
    vg: Option<Arc<dyn VgFunction>>,
    params_query: Option<Plan>,
    param_exprs: Vec<Expr>,
    select: Vec<(String, Expr)>,
}

impl RandomTableSpecBuilder {
    /// The `FOR EACH` driver query.
    pub fn for_each(mut self, driver: Plan) -> Self {
        self.driver = Some(driver);
        self
    }

    /// The VG function.
    pub fn with_vg(mut self, vg: Arc<dyn VgFunction>) -> Self {
        self.vg = Some(vg);
        self
    }

    /// Parameter query (evaluated once per realization; must yield one row
    /// whose values prefix the VG parameter list).
    pub fn vg_params_query(mut self, q: Plan) -> Self {
        self.params_query = Some(q);
        self
    }

    /// Per-driver-row parameter expressions (appended after the query
    /// parameters).
    pub fn vg_params_exprs(mut self, exprs: &[Expr]) -> Self {
        self.param_exprs = exprs.to_vec();
        self
    }

    /// The output projection over driver ++ VG columns.
    pub fn select(mut self, exprs: &[(&str, Expr)]) -> Self {
        self.select = exprs
            .iter()
            .map(|(n, e)| (n.to_string(), e.clone()))
            .collect();
        self
    }

    /// Validate and build the spec.
    pub fn build(self) -> crate::Result<RandomTableSpec> {
        let driver = self
            .driver
            .ok_or_else(|| McdbError::invalid_plan("random table needs a FOR EACH driver"))?;
        let vg = self
            .vg
            .ok_or_else(|| McdbError::invalid_plan("random table needs a VG function"))?;
        if self.select.is_empty() {
            return Err(McdbError::invalid_plan(
                "random table needs a SELECT projection",
            ));
        }
        Ok(RandomTableSpec {
            name: self.name,
            driver,
            vg,
            params_query: self.params_query,
            param_exprs: self.param_exprs,
            select: self.select,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use crate::vg::{BayesianDemandVg, NormalVg, PoissonVg};
    use mde_numeric::rng::rng_from_seed;

    fn patients_catalog() -> Catalog {
        let mut db = Catalog::new();
        db.insert(
            Table::build(
                "PATIENTS",
                &[("PID", DataType::Int), ("GENDER", DataType::Str)],
            )
            .row(vec![Value::from(1), Value::from("F")])
            .row(vec![Value::from(2), Value::from("M")])
            .row(vec![Value::from(3), Value::from("F")])
            .finish()
            .unwrap(),
        );
        db.insert(
            Table::build(
                "SBP_PARAM",
                &[("MEAN", DataType::Float), ("STD", DataType::Float)],
            )
            .row(vec![Value::from(120.0), Value::from(15.0)])
            .finish()
            .unwrap(),
        );
        db
    }

    fn sbp_spec() -> RandomTableSpec {
        RandomTableSpec::builder("SBP_DATA")
            .for_each(Plan::scan("PATIENTS"))
            .with_vg(Arc::new(NormalVg))
            .vg_params_query(Plan::scan("SBP_PARAM"))
            .select(&[
                ("PID", Expr::col("PID")),
                ("GENDER", Expr::col("GENDER")),
                ("SBP", Expr::col("VALUE")),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn sbp_example_realizes_per_patient() {
        let db = patients_catalog();
        let spec = sbp_spec();
        let mut rng = rng_from_seed(42);
        let t = spec.realize(&db, &mut rng).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.schema().names(), vec!["PID", "GENDER", "SBP"]);
        // SBP values are plausible normal draws around 120.
        for v in t.column_f64("SBP").unwrap() {
            assert!((30.0..=210.0).contains(&v), "implausible SBP {v}");
        }
    }

    #[test]
    fn realizations_differ_across_rng_states_but_reproduce_with_seed() {
        let db = patients_catalog();
        let spec = sbp_spec();
        let t1 = spec.realize(&db, &mut rng_from_seed(1)).unwrap();
        let t2 = spec.realize(&db, &mut rng_from_seed(1)).unwrap();
        let t3 = spec.realize(&db, &mut rng_from_seed(2)).unwrap();
        assert_eq!(t1.rows(), t2.rows(), "same seed must reproduce");
        assert_ne!(t1.rows(), t3.rows(), "different seeds must differ");
    }

    #[test]
    fn per_row_params_feed_the_vg() {
        // Each row's lambda comes from its own column.
        let mut db = Catalog::new();
        db.insert(
            Table::build("CUST", &[("CID", DataType::Int), ("RATE", DataType::Float)])
                .row(vec![Value::from(1), Value::from(1.0)])
                .row(vec![Value::from(2), Value::from(50.0)])
                .finish()
                .unwrap(),
        );
        let spec = RandomTableSpec::builder("DEMAND")
            .for_each(Plan::scan("CUST"))
            .with_vg(Arc::new(PoissonVg))
            .vg_params_exprs(&[Expr::col("RATE")])
            .select(&[("CID", Expr::col("CID")), ("D", Expr::col("VALUE"))])
            .build()
            .unwrap();
        let mut rng = rng_from_seed(5);
        // Average a few realizations: customer 2 must dominate customer 1.
        let (mut d1, mut d2) = (0.0, 0.0);
        for _ in 0..50 {
            let t = spec.realize(&db, &mut rng).unwrap();
            d1 += t.rows()[0][1].as_i64().unwrap() as f64;
            d2 += t.rows()[1][1].as_i64().unwrap() as f64;
        }
        assert!(d2 > d1 * 5.0, "demand means: {d1} vs {d2}");
    }

    #[test]
    fn combined_projection_uses_driver_and_vg_columns() {
        let db = patients_catalog();
        // Select an arithmetic combination spanning both sides.
        let spec = RandomTableSpec::builder("X")
            .for_each(Plan::scan("PATIENTS"))
            .with_vg(Arc::new(NormalVg))
            .vg_params_query(Plan::scan("SBP_PARAM"))
            .select(&[(
                "SHIFTED",
                Expr::col("VALUE").add(Expr::col("PID").mul(Expr::lit(1000))),
            )])
            .build()
            .unwrap();
        let t = spec.realize(&db, &mut rng_from_seed(3)).unwrap();
        for (i, row) in t.rows().iter().enumerate() {
            let v = row[0].as_f64().unwrap();
            let expected_band = (i as f64 + 1.0) * 1000.0;
            assert!(
                (v - expected_band).abs() < 500.0,
                "row {i} out of band: {v}"
            );
        }
    }

    #[test]
    fn multi_row_param_query_rejected() {
        let db = patients_catalog();
        let spec = RandomTableSpec::builder("BAD")
            .for_each(Plan::scan("PATIENTS"))
            .with_vg(Arc::new(NormalVg))
            .vg_params_query(Plan::scan("PATIENTS")) // 3 rows: invalid
            .select(&[("V", Expr::col("VALUE"))])
            .build()
            .unwrap();
        assert!(spec.realize(&db, &mut rng_from_seed(1)).is_err());
    }

    #[test]
    fn builder_validation() {
        assert!(RandomTableSpec::builder("X").build().is_err());
        assert!(RandomTableSpec::builder("X")
            .for_each(Plan::scan("T"))
            .build()
            .is_err());
        assert!(RandomTableSpec::builder("X")
            .for_each(Plan::scan("T"))
            .with_vg(Arc::new(NormalVg))
            .build()
            .is_err());
    }

    #[test]
    fn bayesian_demand_end_to_end() {
        // The paper's demand scenario: global model params + per-customer
        // history, asking demand under a 5% price increase.
        let mut db = Catalog::new();
        db.insert(
            Table::build(
                "CUSTOMERS",
                &[
                    ("CID", DataType::Int),
                    ("HIST_PERIODS", DataType::Float),
                    ("HIST_UNITS", DataType::Float),
                ],
            )
            .row(vec![Value::from(1), Value::from(10.0), Value::from(20.0)])
            .row(vec![Value::from(2), Value::from(10.0), Value::from(80.0)])
            .finish()
            .unwrap(),
        );
        db.insert(
            Table::build(
                "DEMAND_MODEL",
                &[("ALPHA", DataType::Float), ("BETA", DataType::Float)],
            )
            .row(vec![Value::from(2.0), Value::from(1.0)])
            .finish()
            .unwrap(),
        );
        let spec = RandomTableSpec::builder("DEMAND")
            .for_each(Plan::scan("CUSTOMERS"))
            .with_vg(Arc::new(BayesianDemandVg))
            .vg_params_query(Plan::scan("DEMAND_MODEL"))
            .vg_params_exprs(&[
                Expr::col("HIST_PERIODS"),
                Expr::col("HIST_UNITS"),
                Expr::lit(10.5), // price after 5% increase
                Expr::lit(10.0), // reference price
                Expr::lit(2.0),  // elasticity
            ])
            .select(&[("CID", Expr::col("CID")), ("UNITS", Expr::col("VALUE"))])
            .build()
            .unwrap();
        let mut rng = rng_from_seed(11);
        let (mut u1, mut u2) = (0.0, 0.0);
        for _ in 0..200 {
            let t = spec.realize(&db, &mut rng).unwrap();
            u1 += t.rows()[0][1].as_i64().unwrap() as f64;
            u2 += t.rows()[1][1].as_i64().unwrap() as f64;
        }
        // Posterior means ~2 vs ~7.45 (×0.905 price factor); heavy history
        // customer demands more.
        assert!(u2 > u1 * 2.0);
    }
}
