//! Error type for the Monte Carlo database engine.

use std::fmt;

/// Errors produced by the Monte Carlo database engine.
#[derive(Debug, Clone, PartialEq)]
pub enum McdbError {
    /// A referenced table does not exist in the catalog.
    UnknownTable {
        /// Name of the missing table.
        name: String,
    },
    /// A referenced column does not exist in a schema.
    UnknownColumn {
        /// Name of the missing column.
        column: String,
        /// The columns that were available.
        available: Vec<String>,
    },
    /// A value had the wrong type for an operation.
    TypeMismatch {
        /// Description of the operation.
        context: String,
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// A row had the wrong arity for its schema.
    ArityMismatch {
        /// Description of the operation.
        context: String,
        /// Expected number of values.
        expected: usize,
        /// Found number of values.
        found: usize,
    },
    /// A query or spec was structurally invalid.
    InvalidPlan {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A row index (e.g. in a selection vector) pointed past the end of
    /// the batch it selects from.
    RowOutOfBounds {
        /// The operation that consumed the index.
        context: String,
        /// The offending row index.
        index: u64,
        /// Number of rows actually available.
        rows: usize,
    },
    /// An error from the numeric substrate (VG functions, estimators).
    Numeric(mde_numeric::NumericError),
    /// A Monte Carlo estimation query produced a non-scalar result.
    NonScalarResult {
        /// Number of rows produced.
        rows: usize,
        /// Number of columns produced.
        cols: usize,
    },
    /// A supervised replicate failed (panic caught by the worker, or a
    /// non-finite sample) and the run policy had no recovery left.
    ReplicateFailed {
        /// Zero-based replicate index.
        replicate: u64,
        /// Zero-based attempt on which the terminal failure occurred.
        attempt: u32,
        /// Human-readable cause (panic payload or offending value).
        message: String,
    },
    /// A best-effort run dropped so many replicates that the estimate fell
    /// below the policy's minimum success fraction.
    TooManyFailures {
        /// Replicates that produced a sample.
        succeeded: usize,
        /// Replicates attempted.
        attempted: usize,
        /// Minimum successes the policy required.
        required: usize,
    },
    /// Durable-campaign checkpoint persistence or validation failed
    /// (unwritable path, corrupt file, or a checkpoint that belongs to a
    /// different campaign).
    Checkpoint(mde_numeric::CheckpointError),
    /// A page in a paged table file (or spill partition) could not be
    /// decoded: bad magic, truncation, an unknown encoding/type tag, or a
    /// structurally impossible field. Data loss surfaces as this typed
    /// error — never as a silently wrong query result.
    PageCorrupt {
        /// File the page was read from.
        path: String,
        /// Zero-based page index within the file (or `u64::MAX` when the
        /// file header itself is corrupt).
        page: u64,
        /// What the decoder tripped over.
        reason: String,
    },
    /// A page's content does not hash to its stored FNV-1a checksum —
    /// the frame was altered or torn after it was written.
    PageChecksumMismatch {
        /// File the page was read from.
        path: String,
        /// Zero-based page index within the file.
        page: u64,
        /// Checksum stored in the page header.
        expected: u64,
        /// Checksum of the frame as found.
        found: u64,
    },
    /// The buffer pool could not make room: every resident frame is
    /// pinned by an in-flight reader. Retryable — pins are transient, so
    /// a later attempt (or a larger frame budget) can succeed.
    PoolExhausted {
        /// Frame budget of the pool.
        budget: usize,
        /// Frames that were pinned when eviction gave up.
        pinned: usize,
    },
    /// A worker thread or the scoped pool itself was lost (a panic
    /// *outside* the supervised per-replicate region, or scope teardown
    /// failure). Unlike a replicate panic this is infrastructure loss:
    /// the run's results are unaccounted for, so it surfaces as a typed
    /// fatal error instead of propagating the panic into the caller.
    WorkerLost {
        /// Where the worker was lost.
        context: String,
    },
}

impl McdbError {
    /// Shorthand for [`McdbError::InvalidPlan`].
    pub fn invalid_plan(reason: impl Into<String>) -> Self {
        McdbError::InvalidPlan {
            reason: reason.into(),
        }
    }

    /// Shorthand for [`McdbError::WorkerLost`].
    pub fn worker_lost(context: impl Into<String>) -> Self {
        McdbError::WorkerLost {
            context: context.into(),
        }
    }

    /// Shorthand for [`McdbError::TypeMismatch`].
    pub fn type_mismatch(
        context: impl Into<String>,
        expected: impl Into<String>,
        found: impl Into<String>,
    ) -> Self {
        McdbError::TypeMismatch {
            context: context.into(),
            expected: expected.into(),
            found: found.into(),
        }
    }
}

impl fmt::Display for McdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McdbError::UnknownTable { name } => write!(f, "unknown table `{name}`"),
            McdbError::UnknownColumn { column, available } => {
                write!(
                    f,
                    "unknown column `{column}` (available: {})",
                    available.join(", ")
                )
            }
            McdbError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            McdbError::ArityMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch in {context}: expected {expected} values, found {found}"
            ),
            McdbError::InvalidPlan { reason } => write!(f, "invalid plan: {reason}"),
            McdbError::RowOutOfBounds {
                context,
                index,
                rows,
            } => write!(
                f,
                "row index {index} out of bounds in {context}: batch has {rows} rows"
            ),
            McdbError::Numeric(e) => write!(f, "numeric error: {e}"),
            McdbError::NonScalarResult { rows, cols } => write!(
                f,
                "Monte Carlo estimation requires a scalar (1x1) query result, got {rows}x{cols}"
            ),
            McdbError::ReplicateFailed {
                replicate,
                attempt,
                message,
            } => write!(
                f,
                "replicate {replicate} failed on attempt {attempt}: {message}"
            ),
            McdbError::TooManyFailures {
                succeeded,
                attempted,
                required,
            } => write!(
                f,
                "best-effort run degraded below its floor: {succeeded}/{attempted} replicates \
                 succeeded, policy required {required}"
            ),
            McdbError::Checkpoint(e) => write!(f, "{e}"),
            McdbError::PageCorrupt { path, page, reason } => {
                if *page == u64::MAX {
                    write!(f, "corrupt table file `{path}`: {reason}")
                } else {
                    write!(f, "corrupt page {page} in `{path}`: {reason}")
                }
            }
            McdbError::PageChecksumMismatch {
                path,
                page,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch on page {page} in `{path}`: stored {expected:#018x}, \
                 found {found:#018x}"
            ),
            McdbError::PoolExhausted { budget, pinned } => write!(
                f,
                "buffer pool exhausted: all {pinned} of {budget} frames pinned"
            ),
            McdbError::WorkerLost { context } => {
                write!(f, "worker thread lost: {context}")
            }
        }
    }
}

impl mde_numeric::ErrorClass for McdbError {
    /// Replicate-level failures are retryable (they came from one
    /// replicate's draws); numeric errors delegate to their own
    /// classification; everything else — unknown tables/columns, type and
    /// arity mismatches, invalid plans, non-scalar results, an exhausted
    /// best-effort floor — is a configuration or structural error that
    /// would fail identically on every attempt.
    fn severity(&self) -> mde_numeric::Severity {
        match self {
            McdbError::ReplicateFailed { .. } => mde_numeric::Severity::Retryable,
            // Pool pins are transient (readers release them), so a retry
            // can find an evictable frame. Corruption is not: re-reading a
            // damaged page fails identically every time.
            McdbError::PoolExhausted { .. } => mde_numeric::Severity::Retryable,
            McdbError::Numeric(e) => e.severity(),
            McdbError::Checkpoint(e) => e.severity(),
            _ => mde_numeric::Severity::Fatal,
        }
    }
}

impl std::error::Error for McdbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McdbError::Numeric(e) => Some(e),
            McdbError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mde_numeric::NumericError> for McdbError {
    fn from(e: mde_numeric::NumericError) -> Self {
        McdbError::Numeric(e)
    }
}

impl From<mde_numeric::CheckpointError> for McdbError {
    fn from(e: mde_numeric::CheckpointError) -> Self {
        McdbError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = McdbError::UnknownTable { name: "T".into() };
        assert!(e.to_string().contains("T"));

        let e = McdbError::UnknownColumn {
            column: "x".into(),
            available: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("x"));
        assert!(e.to_string().contains("a, b"));

        let e = McdbError::type_mismatch("filter", "Bool", "Int");
        assert!(e.to_string().contains("Bool"));

        let e = McdbError::NonScalarResult { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2x3"));
    }

    #[test]
    fn numeric_error_wraps_with_source() {
        use std::error::Error as _;
        let e: McdbError = mde_numeric::NumericError::EmptyInput { context: "q" }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn severity_classification() {
        use mde_numeric::{ErrorClass as _, Severity};
        let e = McdbError::ReplicateFailed {
            replicate: 3,
            attempt: 1,
            message: "worker panicked".into(),
        };
        assert_eq!(e.severity(), Severity::Retryable);
        assert!(e.to_string().contains("replicate 3"));

        let e = McdbError::TooManyFailures {
            succeeded: 2,
            attempted: 10,
            required: 9,
        };
        assert_eq!(e.severity(), Severity::Fatal);
        assert!(e.to_string().contains("2/10"));

        assert_eq!(
            McdbError::UnknownTable { name: "T".into() }.severity(),
            Severity::Fatal
        );
        // Numeric errors delegate to their own classification.
        let e: McdbError = mde_numeric::NumericError::SingularMatrix { context: "chol" }.into();
        assert_eq!(e.severity(), Severity::Retryable);
        let e: McdbError = mde_numeric::NumericError::invalid("sigma", "negative").into();
        assert_eq!(e.severity(), Severity::Fatal);
        // Checkpoint failures are always fatal: re-reading a corrupt or
        // foreign checkpoint fails identically every time.
        let e: McdbError = mde_numeric::CheckpointError::Corrupt {
            reason: "bad magic".into(),
        }
        .into();
        assert_eq!(e.severity(), Severity::Fatal);
        assert!(e.to_string().contains("bad magic"));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
