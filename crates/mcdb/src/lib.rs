//! An in-process Monte Carlo database engine, reproducing the MCDB and
//! SimSQL systems surveyed in §2.1 and §2.4 of Haas, *Model-Data
//! Ecosystems* (PODS 2014).
//!
//! # What the paper describes
//!
//! MCDB (Jampani et al., TODS 2011) lets an analyst attach arbitrary
//! stochastic models to a relational database: alongside ordinary tables,
//! *stochastic tables* contain "uncertain" data represented not by values
//! but by probability distributions, realized on demand by **VG functions**
//! (variable-generation functions). Running a query over one realization
//! yields one sample from the query-result distribution; iterating yields a
//! Monte Carlo sample from which moments, quantiles (MCDB-R risk
//! analysis), and threshold probabilities are estimated. To make this
//! affordable, MCDB executes a query plan *once* over **tuple bundles** —
//! tuples carrying all `N` Monte Carlo instantiations at once — instead of
//! `N` times.
//!
//! SimSQL (Cai et al., SIGMOD 2013) extends MCDB with *versioned,
//! recursively defined* stochastic tables: the mechanism that generates
//! database state `D[i]` may depend on `D[i−1]`, so the system simulates a
//! **database-valued Markov chain** — enabling scalable Bayesian machine
//! learning and, building on Wang et al.'s observation that an agent-based
//! simulation step is a self-join, massive stochastic ABS inside the
//! database.
//!
//! # Crate layout
//!
//! | module | paper concept |
//! |---|---|
//! | [`value`], [`schema`], [`table`] | ordinary relational storage |
//! | [`expr`] | scalar expressions over rows |
//! | [`query`] | logical plans, executor, filter-pushdown planner |
//! | [`vg`] | the VG-function trait and the paper's example library |
//! | [`random_table`] | `CREATE TABLE … AS FOR EACH … WITH … AS VG(…)` |
//! | [`bundle`] | tuple-bundle execution |
//! | [`mc`] | Monte Carlo query estimation, risk & threshold queries |
//! | [`markov`] | SimSQL database-valued Markov chains |
//! | [`simstep`] | ABS-step-as-self-join (Wang et al.) |
//!
//! # Quick example
//!
//! The paper's SBP (systolic blood pressure) stochastic table:
//!
//! ```
//! use mde_mcdb::prelude::*;
//! use mde_mcdb::vg::NormalVg;
//! use std::sync::Arc;
//!
//! // Ordinary tables: patients, and the (single-row) SBP parameter table.
//! let mut db = Catalog::new();
//! db.insert(
//!     Table::build("PATIENTS", &[("PID", DataType::Int), ("GENDER", DataType::Str)])
//!         .row(vec![Value::from(1), Value::from("F")])
//!         .row(vec![Value::from(2), Value::from("M")])
//!         .finish()
//!         .unwrap(),
//! );
//! db.insert(
//!     Table::build("SBP_PARAM", &[("MEAN", DataType::Float), ("STD", DataType::Float)])
//!         .row(vec![Value::from(120.0), Value::from(15.0)])
//!         .finish()
//!         .unwrap(),
//! );
//!
//! // CREATE TABLE SBP_DATA(PID, GENDER, SBP) AS
//! //   FOR EACH p IN PATIENTS
//! //   WITH SBP AS Normal((SELECT s.MEAN, s.STD FROM SBP_PARAM s))
//! //   SELECT p.PID, p.GENDER, b.VALUE FROM SBP b
//! let spec = RandomTableSpec::builder("SBP_DATA")
//!     .for_each(Plan::scan("PATIENTS"))
//!     .with_vg(std::sync::Arc::new(NormalVg))
//!     .vg_params_query(Plan::scan("SBP_PARAM"))
//!     .select(&[("PID", Expr::col("PID")), ("GENDER", Expr::col("GENDER")),
//!               ("SBP", Expr::col("VALUE"))])
//!     .build()
//!     .unwrap();
//!
//! let mut rng = mde_numeric::rng::rng_from_seed(1);
//! let realization = spec.realize(&db, &mut rng).unwrap();
//! assert_eq!(realization.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod bundle;
pub mod error;
pub mod expr;
pub mod markov;
pub mod mc;
pub(crate) mod par;
pub mod query;
pub mod random_table;
pub mod sched;
pub mod schema;
pub mod simstep;
pub mod sql;
pub mod storage;
pub mod table;
pub mod value;
pub mod vg;

pub use error::McdbError;
pub use mde_numeric::resilience::{RunOptions, RunPolicy, RunReport};
pub use sched::McCampaign;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, McdbError>;

/// The most common imports, for examples and downstream crates.
pub mod prelude {
    pub use crate::expr::Expr;
    pub use crate::query::{AggFunc, Catalog, ExecConfig, Plan};
    pub use crate::random_table::RandomTableSpec;
    pub use crate::schema::{Column, DataType, Schema};
    pub use crate::table::Table;
    pub use crate::value::Value;
}
