//! Database-valued Markov chains — the SimSQL extension.
//!
//! "Whereas MCDB merely allowed generation of sample realizations of a
//! stochastic database D — in other words, a static database-valued random
//! variable — the foregoing extensions enable SimSQL to generate
//! realizations of a database-valued Markov chain `D[0], D[1], D[2], …`
//! That is, the stochastic mechanism that generates a realization of the
//! i-th database state `D[i]` may explicitly depend on the prior state
//! D[i−1]."
//!
//! [`MarkovChainSpec`] holds initialization specs (generating `D[0]` from
//! the deterministic base tables) and transition specs (generating `D[i]`
//! from the base tables *plus* `D[i−1]`). Transitions use **batch
//! semantics**: all of step `i`'s tables are generated against the frozen
//! state `i−1`, then swapped in together — so a spec that regenerates table
//! `A` reads the *previous* `A`, exactly the "data in stochastic table A …
//! used to parametrize the stochastic generation of … a second version of
//! A" recursion the paper describes.

use crate::query::{Catalog, Plan};
use crate::random_table::RandomTableSpec;
use crate::table::Table;
use mde_numeric::rng::StreamFactory;

/// Specification of a database-valued Markov chain.
#[derive(Debug, Clone)]
pub struct MarkovChainSpec {
    init: Vec<RandomTableSpec>,
    transition: Vec<RandomTableSpec>,
}

impl MarkovChainSpec {
    /// Create from initialization specs (produce `D[0]`) and transition
    /// specs (produce `D[i]` from `D[i−1]`).
    pub fn new(init: Vec<RandomTableSpec>, transition: Vec<RandomTableSpec>) -> Self {
        MarkovChainSpec { init, transition }
    }

    /// Simulate the chain for `steps` transitions, producing the trajectory
    /// `D[0], …, D[steps]`.
    pub fn run(&self, base: &Catalog, steps: usize, seed: u64) -> crate::Result<ChainTrajectory> {
        let factory = StreamFactory::new(seed);
        let mut working = base.clone();

        // D[0].
        let init_factory = factory.child(0);
        let mut state0 = Vec::new();
        for (k, spec) in self.init.iter().enumerate() {
            let mut rng = init_factory.stream(k as u64);
            let t = spec.realize(&working, &mut rng)?;
            state0.push(t.clone());
            working.insert(t);
        }
        let mut states = vec![state0];

        // Transitions with batch semantics.
        for step in 1..=steps {
            let step_factory = factory.child(step as u64);
            let mut new_tables = Vec::new();
            for (k, spec) in self.transition.iter().enumerate() {
                let mut rng = step_factory.stream(k as u64);
                // Realize against `working`, which still holds D[i-1].
                new_tables.push(spec.realize(&working, &mut rng)?);
            }
            for t in &new_tables {
                working.insert(t.clone());
            }
            states.push(new_tables);
        }

        Ok(ChainTrajectory {
            base: base.clone(),
            states,
        })
    }
}

/// A realized trajectory `D[0..=T]` of a database-valued Markov chain.
#[derive(Debug, Clone)]
pub struct ChainTrajectory {
    base: Catalog,
    /// `states[i]` holds the stochastic tables generated at step `i`.
    states: Vec<Vec<Table>>,
}

impl ChainTrajectory {
    /// Number of states (`T + 1` for `T` transitions).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the trajectory is empty (no states generated).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The stochastic tables generated at version `i` (versioned access,
    /// the SimSQL `A[i]` syntax).
    pub fn tables_at(&self, version: usize) -> &[Table] {
        &self.states[version]
    }

    /// Materialize the full catalog visible at version `i`: base tables
    /// overlaid with the latest generation of every stochastic table up to
    /// and including version `i`.
    pub fn catalog_at(&self, version: usize) -> Catalog {
        let mut c = self.base.clone();
        for state in &self.states[..=version.min(self.states.len() - 1)] {
            for t in state {
                c.insert(t.clone());
            }
        }
        c
    }

    /// Run a query against the catalog at version `i`.
    pub fn query_at(&self, version: usize, plan: &Plan) -> crate::Result<Table> {
        self.catalog_at(version).query(plan)
    }

    /// Run a scalar query at every version, producing the time series of
    /// results (the typical SimSQL analysis pattern: track a statistic of
    /// the chain over simulated time).
    pub fn scalar_series(&self, plan: &Plan) -> crate::Result<Vec<f64>> {
        (0..self.len())
            .map(|i| self.query_at(i, plan)?.scalar()?.as_f64())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::{AggFunc, AggSpec};
    use crate::schema::DataType;
    use crate::value::Value;
    use crate::vg::NormalVg;
    use std::sync::Arc;

    /// A scalar AR(1)-style chain implemented as a database-valued Markov
    /// chain: table X has one row whose VALUE gets re-generated as
    /// N(phi * prev_value, sigma).
    fn ar1_chain(phi: f64, sigma: f64) -> (Catalog, MarkovChainSpec) {
        let mut base = Catalog::new();
        base.insert(
            Table::build("SEED", &[("X0", DataType::Float)])
                .row(vec![Value::from(100.0)])
                .finish()
                .unwrap(),
        );
        // D[0]: X = N(X0, sigma).
        let init = RandomTableSpec::builder("X")
            .for_each(Plan::scan("SEED"))
            .with_vg(Arc::new(NormalVg))
            .vg_params_exprs(&[Expr::col("X0"), Expr::lit(sigma)])
            .select(&[("V", Expr::col("VALUE"))])
            .build()
            .unwrap();
        // D[i]: X = N(phi * X[i-1].V, sigma) — reads the previous version
        // of X itself (the SimSQL recursion).
        let trans = RandomTableSpec::builder("X")
            .for_each(Plan::scan("X"))
            .with_vg(Arc::new(NormalVg))
            .vg_params_exprs(&[Expr::col("V").mul(Expr::lit(phi)), Expr::lit(sigma)])
            .select(&[("V", Expr::col("VALUE"))])
            .build()
            .unwrap();
        (base, MarkovChainSpec::new(vec![init], vec![trans]))
    }

    #[test]
    fn chain_produces_versioned_states() {
        let (base, spec) = ar1_chain(0.5, 0.1);
        let traj = spec.run(&base, 10, 3).unwrap();
        assert_eq!(traj.len(), 11);
        assert!(!traj.is_empty());
        assert_eq!(traj.tables_at(0).len(), 1);
        assert_eq!(traj.tables_at(5)[0].name(), "X");
    }

    #[test]
    fn recursive_self_reference_contracts_toward_zero() {
        // With phi = 0.5 and tiny noise, X[t] ≈ 100 * 0.5^t.
        let (base, spec) = ar1_chain(0.5, 0.01);
        let traj = spec.run(&base, 6, 4).unwrap();
        let q =
            Plan::scan("X").aggregate(&[], vec![AggSpec::new("V", AggFunc::Avg, Expr::col("V"))]);
        let series = traj.scalar_series(&q).unwrap();
        for (t, v) in series.iter().enumerate() {
            let expected = 100.0 * 0.5f64.powi(t as i32);
            assert!(
                (v - expected).abs() < 1.0 + 0.05 * expected,
                "t={t}: {v} vs {expected}"
            );
        }
    }

    #[test]
    fn trajectories_reproducible_by_seed() {
        let (base, spec) = ar1_chain(0.9, 1.0);
        let a = spec.run(&base, 5, 77).unwrap();
        let b = spec.run(&base, 5, 77).unwrap();
        let c = spec.run(&base, 5, 78).unwrap();
        for i in 0..a.len() {
            assert_eq!(a.tables_at(i)[0].rows(), b.tables_at(i)[0].rows());
        }
        assert_ne!(a.tables_at(1)[0].rows(), c.tables_at(1)[0].rows());
    }

    #[test]
    fn catalog_at_overlays_correct_version() {
        let (base, spec) = ar1_chain(0.5, 0.01);
        let traj = spec.run(&base, 3, 5).unwrap();
        // The catalog at version 0 must show the initial X, not a later one.
        let v0 = traj.query_at(0, &Plan::scan("X")).unwrap().rows()[0][0]
            .as_f64()
            .unwrap();
        let v3 = traj.query_at(3, &Plan::scan("X")).unwrap().rows()[0][0]
            .as_f64()
            .unwrap();
        assert!((v0 - 100.0).abs() < 1.0);
        assert!((v3 - 12.5).abs() < 2.0);
        // Base tables remain visible at every version.
        assert!(traj.query_at(2, &Plan::scan("SEED")).is_ok());
    }

    /// "SimSQL [is] well suited to scalable Bayesian machine learning": a
    /// two-block Gibbs sampler as a database-valued Markov chain. The
    /// chain alternates `P ~ Beta(1 + Σx, 1 + n − Σx)` and
    /// `x_i ~ Bernoulli(P)`; its stationary joint is
    /// `prior(p) × f(x | p)` with prior Beta(1,1), so the long-run marginal
    /// of `P` is Uniform(0,1) — exactly checkable.
    #[test]
    fn gibbs_sampler_as_database_valued_chain() {
        use crate::query::AggFunc;
        use crate::vg::{BernoulliVg, BetaVg};

        let n_units = 20;
        let mut base = Catalog::new();
        base.insert(
            Table::build("UNITS", &[("UID", DataType::Int)])
                .rows((0..n_units).map(|i| vec![Value::from(i)]))
                .finish()
                .unwrap(),
        );
        base.insert(
            Table::build("INIT_P", &[("P0", DataType::Float)])
                .row(vec![Value::from(0.5)])
                .finish()
                .unwrap(),
        );

        // D[0]: X_i ~ Bernoulli(0.5) and P ~ Beta(1, 1).
        let init_x = RandomTableSpec::builder("X")
            .for_each(Plan::scan("UNITS"))
            .with_vg(Arc::new(BernoulliVg))
            .vg_params_query(Plan::scan("INIT_P"))
            .select(&[("UID", Expr::col("UID")), ("V", Expr::col("VALUE"))])
            .build()
            .unwrap();
        let init_p = RandomTableSpec::builder("P")
            .for_each(Plan::scan("INIT_P"))
            .with_vg(Arc::new(BetaVg))
            .vg_params_exprs(&[Expr::lit(1.0), Expr::lit(1.0)])
            .select(&[("P", Expr::col("VALUE"))])
            .build()
            .unwrap();

        // Block 1: P ~ Beta(1 + Σx, 1 + n − Σx) — parameters via a SQL
        // aggregate over the previous X (the conjugate update, in-database).
        let posterior_params = Plan::scan("X")
            .aggregate(
                &[],
                vec![AggSpec::new(
                    "A",
                    AggFunc::Sum,
                    Expr::col("V").add(Expr::lit(0)),
                )],
            )
            .project(&[
                ("A", Expr::col("A").add(Expr::lit(1)).add(Expr::lit(0.0))),
                (
                    "B",
                    Expr::lit((n_units + 1) as i64)
                        .sub(Expr::col("A"))
                        .add(Expr::lit(0.0)),
                ),
            ]);
        let draw_p = RandomTableSpec::builder("P")
            .for_each(Plan::scan("INIT_P")) // single-row driver
            .with_vg(Arc::new(BetaVg))
            .vg_params_query(posterior_params)
            .select(&[("P", Expr::col("VALUE"))])
            .build()
            .unwrap();

        // Block 2: X_i ~ Bernoulli(P). Under the chain's batch semantics
        // both blocks read the *previous* step's tables — a synchronous
        // two-block Gibbs update, whose interleaved subsequences
        // (P₁, X₂, P₃, …) and (X₁, P₂, X₃, …) are each a standard
        // alternating-scan Gibbs chain, so both marginals converge to the
        // correct stationary marginals.
        let draw_x = RandomTableSpec::builder("X")
            .for_each(Plan::scan("UNITS"))
            .with_vg(Arc::new(BernoulliVg))
            .vg_params_query(Plan::scan("P").project(&[("P", Expr::col("P"))]))
            .select(&[("UID", Expr::col("UID")), ("V", Expr::col("VALUE"))])
            .build()
            .unwrap();

        let spec = MarkovChainSpec::new(vec![init_x, init_p], vec![draw_p, draw_x]);
        let steps = 800;
        let traj = spec.run(&base, steps, 99).unwrap();

        // Collect P's trajectory after burn-in.
        let p_query =
            Plan::scan("P").aggregate(&[], vec![AggSpec::new("P", AggFunc::Avg, Expr::col("P"))]);
        let mut ps = Vec::new();
        for t in 100..=steps {
            ps.push(
                traj.query_at(t, &p_query)
                    .unwrap()
                    .scalar()
                    .unwrap()
                    .as_f64()
                    .unwrap(),
            );
        }
        let mean = ps.iter().sum::<f64>() / ps.len() as f64;
        let var = ps.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / ps.len() as f64;
        // Stationary marginal Uniform(0,1): mean 1/2, variance 1/12. The
        // chain is autocorrelated, so tolerances are generous but still
        // far tighter than any broken sampler would pass.
        assert!((mean - 0.5).abs() < 0.06, "P mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.025, "P variance {var}");
        // And P visits both tails.
        assert!(ps.iter().any(|&p| p < 0.15));
        assert!(ps.iter().any(|&p| p > 0.85));
    }

    #[test]
    fn two_table_cross_parametrization() {
        // The paper's A -> B -> A' pattern: B is generated from A, then a
        // new A from B.
        let mut base = Catalog::new();
        base.insert(
            Table::build("START", &[("V", DataType::Float)])
                .row(vec![Value::from(10.0)])
                .finish()
                .unwrap(),
        );
        let init_a = RandomTableSpec::builder("A")
            .for_each(Plan::scan("START"))
            .with_vg(Arc::new(NormalVg))
            .vg_params_exprs(&[Expr::col("V"), Expr::lit(0.001)])
            .select(&[("V", Expr::col("VALUE"))])
            .build()
            .unwrap();
        // B = A + 1 (tiny noise); A' = B + 1.
        let trans_b = RandomTableSpec::builder("B")
            .for_each(Plan::scan("A"))
            .with_vg(Arc::new(NormalVg))
            .vg_params_exprs(&[Expr::col("V").add(Expr::lit(1.0)), Expr::lit(0.001)])
            .select(&[("V", Expr::col("VALUE"))])
            .build()
            .unwrap();
        let trans_a = RandomTableSpec::builder("A")
            .for_each(Plan::scan("A"))
            .with_vg(Arc::new(NormalVg))
            .vg_params_exprs(&[Expr::col("V").add(Expr::lit(2.0)), Expr::lit(0.001)])
            .select(&[("V", Expr::col("VALUE"))])
            .build()
            .unwrap();
        let spec = MarkovChainSpec::new(vec![init_a], vec![trans_b, trans_a]);
        let traj = spec.run(&base, 2, 6).unwrap();
        // Batch semantics: at step 1, B reads A[0]=10 so B[1] ≈ 11, and
        // A[1] reads A[0] so A[1] ≈ 12. At step 2, B[2] ≈ A[1]+1 = 13.
        let a1 = traj.tables_at(1)[1].rows()[0][0].as_f64().unwrap();
        let b1 = traj.tables_at(1)[0].rows()[0][0].as_f64().unwrap();
        let b2 = traj.tables_at(2)[0].rows()[0][0].as_f64().unwrap();
        assert!((b1 - 11.0).abs() < 0.1, "B[1] = {b1}");
        assert!((a1 - 12.0).abs() < 0.1, "A[1] = {a1}");
        assert!((b2 - 13.0).abs() < 0.1, "B[2] = {b2}");
    }
}
