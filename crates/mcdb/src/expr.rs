//! Scalar expressions over rows.
//!
//! Expressions are built by name ([`Expr`]), then *bound* against a schema
//! ([`BoundExpr`]) which resolves column references to indices once. The
//! executor binds each operator's expressions a single time per plan, so
//! per-row evaluation never does string lookups — the same logical/physical
//! split a production engine uses.
//!
//! Semantics follow SQL: `NULL` propagates through arithmetic and
//! comparisons, and `AND`/`OR` use three-valued logic.

use crate::schema::Schema;
use crate::value::Value;
use crate::McdbError;
use std::collections::BTreeSet;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition (numeric).
    Add,
    /// Subtraction (numeric).
    Sub,
    /// Multiplication (numeric).
    Mul,
    /// Division (numeric; always produces Float).
    Div,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Three-valued logical AND.
    And,
    /// Three-valued logical OR.
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Three-valued logical NOT.
    Not,
    /// `IS NULL` (never returns Null itself).
    IsNull,
}

/// Scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// Absolute value.
    Abs,
    /// Floor (returns Float).
    Floor,
    /// Ceiling (returns Float).
    Ceil,
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
}

/// A logical (unbound) scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Col(String),
    /// A literal value.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Scalar function application.
    Func {
        /// The function.
        func: ScalarFunc,
        /// Argument.
        arg: Box<Expr>,
    },
}

// The builder methods deliberately mirror SQL operator names (`add`,
// `eq`, `not`, ...) rather than implementing the std operator traits:
// `Expr` is a by-value AST builder, and the traits' by-ref semantics
// and `Output` plumbing would obscure the DSL.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal value.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    fn binary(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Add, rhs)
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Sub, rhs)
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Mul, rhs)
    }

    /// `self / rhs` (Float result).
    pub fn div(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Div, rhs)
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Eq, rhs)
    }

    /// `self <> rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ne, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Lt, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Le, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Gt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ge, rhs)
    }

    /// `self AND rhs` (three-valued).
    pub fn and(self, rhs: Expr) -> Expr {
        self.binary(BinOp::And, rhs)
    }

    /// `self OR rhs` (three-valued).
    pub fn or(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Or, rhs)
    }

    /// `-self`.
    pub fn neg(self) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(self),
        }
    }

    /// `NOT self`.
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(self),
        }
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::Unary {
            op: UnOp::IsNull,
            expr: Box::new(self),
        }
    }

    /// Apply a scalar function.
    pub fn func(self, func: ScalarFunc) -> Expr {
        Expr::Func {
            func,
            arg: Box::new(self),
        }
    }

    /// The set of column names this expression references — used by the
    /// filter-pushdown planner to decide which side of a join a predicate
    /// belongs to.
    pub fn referenced_columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Col(name) => {
                out.insert(name.clone());
            }
            Expr::Lit(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Func { arg, .. } => arg.collect_columns(out),
        }
    }

    /// Bind against a schema, resolving all column references.
    pub fn bind(&self, schema: &Schema) -> crate::Result<BoundExpr> {
        Ok(match self {
            Expr::Col(name) => BoundExpr::Col(schema.index_of(name)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::Unary { op, expr } => BoundExpr::Unary {
                op: *op,
                expr: Box::new(expr.bind(schema)?),
            },
            Expr::Func { func, arg } => BoundExpr::Func {
                func: *func,
                arg: Box::new(arg.bind(schema)?),
            },
        })
    }

    /// Bind and evaluate in one step (convenience for one-off evaluation).
    pub fn eval(&self, row: &[Value], schema: &Schema) -> crate::Result<Value> {
        self.bind(schema)?.eval(row)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(n) => write!(f, "{n}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op:?} {right})"),
            Expr::Unary { op, expr } => write!(f, "{op:?}({expr})"),
            Expr::Func { func, arg } => write!(f, "{func:?}({arg})"),
        }
    }
}

/// An expression with column references resolved to row indices.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Column by index.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<BoundExpr>,
    },
    /// Scalar function.
    Func {
        /// The function.
        func: ScalarFunc,
        /// Argument.
        arg: Box<BoundExpr>,
    },
}

impl BoundExpr {
    /// Evaluate against a row.
    pub fn eval(&self, row: &[Value]) -> crate::Result<Value> {
        match self {
            BoundExpr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| McdbError::ArityMismatch {
                    context: "BoundExpr::eval".to_string(),
                    expected: i + 1,
                    found: row.len(),
                }),
            BoundExpr::Lit(v) => Ok(v.clone()),
            BoundExpr::Binary { op, left, right } => {
                eval_binary(*op, left.eval(row)?, right.eval(row)?)
            }
            BoundExpr::Unary { op, expr } => eval_unary(*op, expr.eval(row)?),
            BoundExpr::Func { func, arg } => eval_func(*func, arg.eval(row)?),
        }
    }

    /// Evaluate as a filter predicate: SQL `WHERE` keeps a row only when
    /// the predicate is `true` (not `false`, not `NULL`).
    pub fn eval_predicate(&self, row: &[Value]) -> crate::Result<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(McdbError::type_mismatch(
                "filter predicate",
                "Bool or NULL",
                format!("{other}"),
            )),
        }
    }
}

pub(crate) fn eval_binary(op: BinOp, l: Value, r: Value) -> crate::Result<Value> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div => eval_arith(op, l, r),
        Eq | Ne | Lt | Le | Gt | Ge => eval_cmp(op, l, r),
        And | Or => eval_logic(op, l, r),
    }
}

fn eval_arith(op: BinOp, l: Value, r: Value) -> crate::Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Int op Int stays Int except Div, which always yields Float.
    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
        return Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null // SQL engines raise; we degrade to NULL and document it
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
            _ => unreachable!("eval_arith only handles arithmetic ops"),
        });
    }
    let a = l
        .as_f64()
        .map_err(|_| McdbError::type_mismatch("arithmetic", "numeric", format!("{l}")))?;
    let b = r
        .as_f64()
        .map_err(|_| McdbError::type_mismatch("arithmetic", "numeric", format!("{r}")))?;
    let v = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a / b
        }
        _ => unreachable!("eval_arith only handles arithmetic ops"),
    };
    Ok(Value::Float(v))
}

fn eval_cmp(op: BinOp, l: Value, r: Value) -> crate::Result<Value> {
    let Some(ord) = l.sql_cmp(&r) else {
        // Null operand, or incomparable types: comparisons with Null yield
        // Null; genuinely incomparable types are an error.
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        return Err(McdbError::type_mismatch(
            "comparison",
            "comparable values".to_string(),
            format!("{l} vs {r}"),
        ));
    };
    use std::cmp::Ordering::*;
    let b = match op {
        BinOp::Eq => ord == Equal,
        BinOp::Ne => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!("eval_cmp only handles comparison ops"),
    };
    Ok(Value::Bool(b))
}

fn eval_logic(op: BinOp, l: Value, r: Value) -> crate::Result<Value> {
    let to_opt = |v: &Value| -> crate::Result<Option<bool>> {
        match v {
            Value::Bool(b) => Ok(Some(*b)),
            Value::Null => Ok(None),
            other => Err(McdbError::type_mismatch(
                "logical operator",
                "Bool or NULL",
                format!("{other}"),
            )),
        }
    };
    let (a, b) = (to_opt(&l)?, to_opt(&r)?);
    let out = match op {
        // Kleene logic.
        BinOp::And => match (a, b) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinOp::Or => match (a, b) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!("eval_logic only handles logical ops"),
    };
    Ok(out.map_or(Value::Null, Value::Bool))
}

pub(crate) fn eval_unary(op: UnOp, v: Value) -> crate::Result<Value> {
    match op {
        UnOp::IsNull => Ok(Value::Bool(v.is_null())),
        UnOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(McdbError::type_mismatch(
                "negation",
                "numeric",
                format!("{other}"),
            )),
        },
        UnOp::Not => match v {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(McdbError::type_mismatch(
                "NOT",
                "Bool or NULL",
                format!("{other}"),
            )),
        },
    }
}

pub(crate) fn eval_func(func: ScalarFunc, v: Value) -> crate::Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    if func == ScalarFunc::Abs {
        // Abs preserves Int-ness.
        if let Value::Int(i) = v {
            return Ok(Value::Int(i.abs()));
        }
    }
    let x = v
        .as_f64()
        .map_err(|_| McdbError::type_mismatch(format!("{func:?}"), "numeric", format!("{v}")))?;
    let out = match func {
        ScalarFunc::Abs => x.abs(),
        ScalarFunc::Floor => x.floor(),
        ScalarFunc::Ceil => x.ceil(),
        ScalarFunc::Sqrt => {
            if x < 0.0 {
                return Ok(Value::Null);
            }
            x.sqrt()
        }
        ScalarFunc::Exp => x.exp(),
        ScalarFunc::Ln => {
            if x <= 0.0 {
                return Ok(Value::Null);
            }
            x.ln()
        }
    };
    Ok(Value::Float(out))
}

// ---------------------------------------------------------------------------
// Vectorized evaluation
// ---------------------------------------------------------------------------

use crate::query::batch::Batch;
use crate::query::column::{ColumnVec, NullMask};
use std::borrow::Cow;

/// Intermediate result of evaluating one expression node over a batch:
/// either a full column (borrowed straight from the batch when no selection
/// vector is active, owned when computed) or a single constant that has not
/// been broadcast yet. Keeping literals as constants lets `col ⊕ const`
/// kernels avoid materializing the constant side at all.
enum BatchVal<'a> {
    Col(Cow<'a, ColumnVec>),
    Const(Value),
}

impl BatchVal<'_> {
    fn value(&self, i: usize) -> Value {
        match self {
            BatchVal::Col(c) => c.value(i),
            BatchVal::Const(v) => v.clone(),
        }
    }

    /// Whether every lane is guaranteed Null (a Null constant or an
    /// untyped all-null column).
    fn is_all_null(&self) -> bool {
        match self {
            BatchVal::Const(v) => v.is_null(),
            BatchVal::Col(c) => matches!(c.as_ref(), ColumnVec::AllNull { .. }),
        }
    }
}

/// Lane accessor over a numeric operand (Int/Float column or constant).
enum NumAcc<'a> {
    I(&'a [i64], &'a NullMask),
    F(&'a [f64], &'a NullMask),
    CI(i64),
    CF(f64),
}

impl NumAcc<'_> {
    fn is_int(&self) -> bool {
        matches!(self, NumAcc::I(..) | NumAcc::CI(_))
    }

    /// `(value, is_null)` as i64 — only meaningful when [`Self::is_int`].
    #[inline]
    fn get_i64(&self, i: usize) -> (i64, bool) {
        match self {
            NumAcc::I(d, n) => (d[i], n.is_null(i)),
            NumAcc::CI(x) => (*x, false),
            _ => unreachable!("get_i64 on a float accessor"),
        }
    }

    /// `(value, is_null)` widened to f64.
    #[inline]
    fn get_f64(&self, i: usize) -> (f64, bool) {
        match self {
            NumAcc::I(d, n) => (d[i] as f64, n.is_null(i)),
            NumAcc::F(d, n) => (d[i], n.is_null(i)),
            NumAcc::CI(x) => (*x as f64, false),
            NumAcc::CF(x) => (*x, false),
        }
    }

    /// The lane as a [`Value`] with its original type (for error messages
    /// that must match the row-at-a-time engine byte for byte).
    fn value(&self, i: usize) -> Value {
        match self {
            NumAcc::I(d, n) => {
                if n.is_null(i) {
                    Value::Null
                } else {
                    Value::Int(d[i])
                }
            }
            NumAcc::F(d, n) => {
                if n.is_null(i) {
                    Value::Null
                } else {
                    Value::Float(d[i])
                }
            }
            NumAcc::CI(x) => Value::Int(*x),
            NumAcc::CF(x) => Value::Float(*x),
        }
    }
}

fn num_acc<'a>(v: &'a BatchVal<'a>) -> Option<NumAcc<'a>> {
    match v {
        BatchVal::Col(c) => match c.as_ref() {
            ColumnVec::Int { data, nulls } => Some(NumAcc::I(data, nulls)),
            ColumnVec::Float { data, nulls } => Some(NumAcc::F(data, nulls)),
            _ => None,
        },
        BatchVal::Const(Value::Int(x)) => Some(NumAcc::CI(*x)),
        BatchVal::Const(Value::Float(x)) => Some(NumAcc::CF(*x)),
        _ => None,
    }
}

/// Lane accessor over a string operand.
enum StrAcc<'a> {
    S(&'a [std::sync::Arc<str>], &'a NullMask),
    C(&'a std::sync::Arc<str>),
}

impl StrAcc<'_> {
    /// `(value, is_null)`; the payload is only valid when not null.
    #[inline]
    fn get(&self, i: usize) -> (&str, bool) {
        match self {
            StrAcc::S(d, n) => (&d[i], n.is_null(i)),
            StrAcc::C(s) => (s, false),
        }
    }
}

fn str_acc<'a>(v: &'a BatchVal<'a>) -> Option<StrAcc<'a>> {
    match v {
        BatchVal::Col(c) => match c.as_ref() {
            ColumnVec::Str { data, nulls } => Some(StrAcc::S(data, nulls)),
            _ => None,
        },
        BatchVal::Const(Value::Str(s)) => Some(StrAcc::C(s)),
        _ => None,
    }
}

/// Lane accessor over a Kleene boolean operand (`Some(b)` or null).
enum BoolAcc<'a> {
    B(&'a [bool], &'a NullMask),
    C(Option<bool>),
    AllNull,
}

impl BoolAcc<'_> {
    #[inline]
    fn get(&self, i: usize) -> Option<bool> {
        match self {
            BoolAcc::B(d, n) => {
                if n.is_null(i) {
                    None
                } else {
                    Some(d[i])
                }
            }
            BoolAcc::C(b) => *b,
            BoolAcc::AllNull => None,
        }
    }
}

fn bool_acc<'a>(v: &'a BatchVal<'a>) -> Option<BoolAcc<'a>> {
    match v {
        BatchVal::Col(c) => match c.as_ref() {
            ColumnVec::Bool { data, nulls } => Some(BoolAcc::B(data, nulls)),
            ColumnVec::AllNull { .. } => Some(BoolAcc::AllNull),
            _ => None,
        },
        BatchVal::Const(Value::Bool(b)) => Some(BoolAcc::C(Some(*b))),
        BatchVal::Const(Value::Null) => Some(BoolAcc::C(None)),
        _ => None,
    }
}

#[inline]
fn cmp_to_bool(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Eq => ord == Equal,
        BinOp::Ne => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!("cmp_to_bool only handles comparison ops"),
    }
}

/// Per-lane fallback through the scalar evaluator — used for operand type
/// combinations with no dedicated kernel so error behavior is identical to
/// the row engine by construction.
fn map2_scalar(
    op: BinOp,
    l: &BatchVal<'_>,
    r: &BatchVal<'_>,
    lanes: usize,
) -> crate::Result<ColumnVec> {
    let mut out = Vec::with_capacity(lanes);
    for i in 0..lanes {
        out.push(eval_binary(op, l.value(i), r.value(i))?);
    }
    ColumnVec::from_values(out)
}

fn arith_batch(
    op: BinOp,
    l: &BatchVal<'_>,
    r: &BatchVal<'_>,
    lanes: usize,
) -> crate::Result<ColumnVec> {
    if l.is_all_null() || r.is_all_null() {
        return Ok(ColumnVec::AllNull { len: lanes });
    }
    let (Some(la), Some(ra)) = (num_acc(l), num_acc(r)) else {
        return map2_scalar(op, l, r, lanes);
    };
    if la.is_int() && ra.is_int() && op != BinOp::Div {
        let mut data = vec![0i64; lanes];
        let mut nulls = NullMask::all_valid(lanes);
        for (i, slot) in data.iter_mut().enumerate() {
            let (a, an) = la.get_i64(i);
            let (b, bn) = ra.get_i64(i);
            if an || bn {
                nulls.set_null(i);
                continue;
            }
            *slot = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                _ => unreachable!("int arith kernel"),
            };
        }
        return Ok(ColumnVec::Int { data, nulls });
    }
    let mut data = vec![0.0f64; lanes];
    let mut nulls = NullMask::all_valid(lanes);
    for (i, slot) in data.iter_mut().enumerate() {
        let (a, an) = la.get_f64(i);
        let (b, bn) = ra.get_f64(i);
        if an || bn {
            nulls.set_null(i);
            continue;
        }
        match op {
            BinOp::Add => *slot = a + b,
            BinOp::Sub => *slot = a - b,
            BinOp::Mul => *slot = a * b,
            BinOp::Div => {
                if b == 0.0 {
                    nulls.set_null(i);
                } else {
                    *slot = a / b;
                }
            }
            _ => unreachable!("float arith kernel"),
        }
    }
    Ok(ColumnVec::Float { data, nulls })
}

fn cmp_batch(
    op: BinOp,
    l: &BatchVal<'_>,
    r: &BatchVal<'_>,
    lanes: usize,
) -> crate::Result<ColumnVec> {
    if l.is_all_null() || r.is_all_null() {
        return Ok(ColumnVec::AllNull { len: lanes });
    }
    if let (Some(la), Some(ra)) = (num_acc(l), num_acc(r)) {
        let mut data = vec![false; lanes];
        let mut nulls = NullMask::all_valid(lanes);
        if la.is_int() && ra.is_int() {
            // Exact i64 ordering, matching Value::sql_cmp for Int × Int.
            for (i, slot) in data.iter_mut().enumerate() {
                let (a, an) = la.get_i64(i);
                let (b, bn) = ra.get_i64(i);
                if an || bn {
                    nulls.set_null(i);
                    continue;
                }
                *slot = cmp_to_bool(op, a.cmp(&b));
            }
        } else {
            for (i, slot) in data.iter_mut().enumerate() {
                let (a, an) = la.get_f64(i);
                let (b, bn) = ra.get_f64(i);
                if an || bn {
                    nulls.set_null(i);
                    continue;
                }
                match a.partial_cmp(&b) {
                    Some(ord) => *slot = cmp_to_bool(op, ord),
                    // NaN: same error the scalar path raises.
                    None => {
                        return Err(McdbError::type_mismatch(
                            "comparison",
                            "comparable values".to_string(),
                            format!("{} vs {}", la.value(i), ra.value(i)),
                        ))
                    }
                }
            }
        }
        return Ok(ColumnVec::Bool { data, nulls });
    }
    if let (Some(la), Some(ra)) = (str_acc(l), str_acc(r)) {
        let mut data = vec![false; lanes];
        let mut nulls = NullMask::all_valid(lanes);
        for (i, slot) in data.iter_mut().enumerate() {
            let (a, an) = la.get(i);
            let (b, bn) = ra.get(i);
            if an || bn {
                nulls.set_null(i);
                continue;
            }
            *slot = cmp_to_bool(op, a.cmp(b));
        }
        return Ok(ColumnVec::Bool { data, nulls });
    }
    map2_scalar(op, l, r, lanes)
}

fn logic_batch(
    op: BinOp,
    l: &BatchVal<'_>,
    r: &BatchVal<'_>,
    lanes: usize,
) -> crate::Result<ColumnVec> {
    let (Some(la), Some(ra)) = (bool_acc(l), bool_acc(r)) else {
        return map2_scalar(op, l, r, lanes);
    };
    let mut data = vec![false; lanes];
    let mut nulls = NullMask::all_valid(lanes);
    for (i, slot) in data.iter_mut().enumerate() {
        let (a, b) = (la.get(i), ra.get(i));
        let out = match op {
            BinOp::And => match (a, b) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinOp::Or => match (a, b) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => unreachable!("logic kernel"),
        };
        match out {
            Some(v) => *slot = v,
            None => nulls.set_null(i),
        }
    }
    Ok(ColumnVec::Bool { data, nulls })
}

fn unary_batch(op: UnOp, v: &BatchVal<'_>, lanes: usize) -> crate::Result<ColumnVec> {
    match op {
        UnOp::IsNull => {
            let data = match v {
                BatchVal::Const(c) => vec![c.is_null(); lanes],
                BatchVal::Col(c) => (0..lanes).map(|i| c.is_null(i)).collect(),
            };
            Ok(ColumnVec::Bool {
                data,
                nulls: NullMask::all_valid(lanes),
            })
        }
        UnOp::Neg => match v {
            BatchVal::Col(c) => match c.as_ref() {
                ColumnVec::Int { data, nulls } => Ok(ColumnVec::Int {
                    data: data
                        .iter()
                        .enumerate()
                        .map(|(i, &x)| if nulls.is_null(i) { 0 } else { -x })
                        .collect(),
                    nulls: nulls.clone(),
                }),
                ColumnVec::Float { data, nulls } => Ok(ColumnVec::Float {
                    data: data.iter().map(|x| -x).collect(),
                    nulls: nulls.clone(),
                }),
                ColumnVec::AllNull { .. } => Ok(ColumnVec::AllNull { len: lanes }),
                _ => map1_scalar(op, v, lanes),
            },
            BatchVal::Const(_) => map1_scalar(op, v, lanes),
        },
        UnOp::Not => match bool_acc(v) {
            Some(acc) => {
                let mut data = vec![false; lanes];
                let mut nulls = NullMask::all_valid(lanes);
                for (i, slot) in data.iter_mut().enumerate() {
                    match acc.get(i) {
                        Some(b) => *slot = !b,
                        None => nulls.set_null(i),
                    }
                }
                Ok(ColumnVec::Bool { data, nulls })
            }
            None => map1_scalar(op, v, lanes),
        },
    }
}

fn map1_scalar(op: UnOp, v: &BatchVal<'_>, lanes: usize) -> crate::Result<ColumnVec> {
    let mut out = Vec::with_capacity(lanes);
    for i in 0..lanes {
        out.push(eval_unary(op, v.value(i))?);
    }
    ColumnVec::from_values(out)
}

fn func_batch(func: ScalarFunc, v: &BatchVal<'_>, lanes: usize) -> crate::Result<ColumnVec> {
    if v.is_all_null() {
        return Ok(ColumnVec::AllNull { len: lanes });
    }
    if func == ScalarFunc::Abs {
        if let BatchVal::Col(c) = v {
            // Abs preserves Int-ness, matching the scalar path.
            if let ColumnVec::Int { data, nulls } = c.as_ref() {
                return Ok(ColumnVec::Int {
                    data: data
                        .iter()
                        .enumerate()
                        .map(|(i, &x)| if nulls.is_null(i) { 0 } else { x.abs() })
                        .collect(),
                    nulls: nulls.clone(),
                });
            }
        }
        if let BatchVal::Const(Value::Int(x)) = v {
            return Ok(ColumnVec::broadcast(&Value::Int(x.abs()), lanes));
        }
    }
    let Some(acc) = num_acc(v) else {
        let mut out = Vec::with_capacity(lanes);
        for i in 0..lanes {
            out.push(eval_func(func, v.value(i))?);
        }
        return ColumnVec::from_values(out);
    };
    let mut data = vec![0.0f64; lanes];
    let mut nulls = NullMask::all_valid(lanes);
    for (i, slot) in data.iter_mut().enumerate() {
        let (x, is_null) = acc.get_f64(i);
        if is_null {
            nulls.set_null(i);
            continue;
        }
        match func {
            ScalarFunc::Abs => *slot = x.abs(),
            ScalarFunc::Floor => *slot = x.floor(),
            ScalarFunc::Ceil => *slot = x.ceil(),
            ScalarFunc::Sqrt => {
                if x < 0.0 {
                    nulls.set_null(i);
                } else {
                    *slot = x.sqrt();
                }
            }
            ScalarFunc::Exp => *slot = x.exp(),
            ScalarFunc::Ln => {
                if x <= 0.0 {
                    nulls.set_null(i);
                } else {
                    *slot = x.ln();
                }
            }
        }
    }
    Ok(ColumnVec::Float { data, nulls })
}

impl BoundExpr {
    /// Evaluate over a whole batch, producing one column.
    ///
    /// `sel` is an optional selection vector: only the listed row indices
    /// are evaluated (in that order), and the result has one lane per
    /// selected row. Semantics — null propagation, Kleene logic without
    /// short-circuiting, wrapping integer arithmetic, division-by-zero and
    /// function-domain Nulls, and every error message — are identical to
    /// calling [`BoundExpr::eval`] on each selected row; typed kernels
    /// cover the common operand shapes and anything else falls back to the
    /// scalar evaluator per lane.
    pub fn eval_batch(&self, batch: &Batch, sel: Option<&[u32]>) -> crate::Result<ColumnVec> {
        let lanes = sel.map_or(batch.len(), |s| s.len());
        if lanes == 0 {
            // The row engine never evaluates expressions over zero rows, so
            // neither do we (avoids raising type errors legacy cannot hit).
            return Ok(ColumnVec::AllNull { len: 0 });
        }
        match self.eval_batch_inner(batch, sel, lanes)? {
            BatchVal::Col(c) => Ok(c.into_owned()),
            BatchVal::Const(v) => Ok(ColumnVec::broadcast(&v, lanes)),
        }
    }

    fn eval_batch_inner<'a>(
        &'a self,
        batch: &'a Batch,
        sel: Option<&[u32]>,
        lanes: usize,
    ) -> crate::Result<BatchVal<'a>> {
        Ok(match self {
            BoundExpr::Col(i) => {
                if *i >= batch.schema().len() {
                    return Err(McdbError::ArityMismatch {
                        context: "BoundExpr::eval".to_string(),
                        expected: i + 1,
                        found: batch.schema().len(),
                    });
                }
                match sel {
                    None => BatchVal::Col(Cow::Borrowed(batch.column(*i))),
                    Some(s) => BatchVal::Col(Cow::Owned(batch.column(*i).gather(s))),
                }
            }
            BoundExpr::Lit(v) => BatchVal::Const(v.clone()),
            BoundExpr::Binary { op, left, right } => {
                let l = left.eval_batch_inner(batch, sel, lanes)?;
                let r = right.eval_batch_inner(batch, sel, lanes)?;
                if let (BatchVal::Const(a), BatchVal::Const(b)) = (&l, &r) {
                    // Constant × constant: evaluate once (lanes > 0, so the
                    // scalar path would evaluate it at least once too).
                    return Ok(BatchVal::Const(eval_binary(*op, a.clone(), b.clone())?));
                }
                use BinOp::*;
                let col = match op {
                    Add | Sub | Mul | Div => arith_batch(*op, &l, &r, lanes)?,
                    Eq | Ne | Lt | Le | Gt | Ge => cmp_batch(*op, &l, &r, lanes)?,
                    And | Or => logic_batch(*op, &l, &r, lanes)?,
                };
                BatchVal::Col(Cow::Owned(col))
            }
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval_batch_inner(batch, sel, lanes)?;
                if let BatchVal::Const(c) = &v {
                    return Ok(BatchVal::Const(eval_unary(*op, c.clone())?));
                }
                BatchVal::Col(Cow::Owned(unary_batch(*op, &v, lanes)?))
            }
            BoundExpr::Func { func, arg } => {
                let v = arg.eval_batch_inner(batch, sel, lanes)?;
                if let BatchVal::Const(c) = &v {
                    return Ok(BatchVal::Const(eval_func(*func, c.clone())?));
                }
                BatchVal::Col(Cow::Owned(func_batch(*func, &v, lanes)?))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("s", DataType::Str),
            ("flag", DataType::Bool),
        ])
        .unwrap()
    }

    fn row() -> Vec<Value> {
        vec![
            Value::from(3),
            Value::from(1.5),
            Value::from("hi"),
            Value::from(true),
        ]
    }

    #[test]
    fn arithmetic_int_semantics() {
        let s = schema();
        let e = Expr::col("a").add(Expr::lit(2));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Int(5));
        let e = Expr::col("a").mul(Expr::lit(4));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Int(12));
        // Division always floats.
        let e = Expr::col("a").div(Expr::lit(2));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn arithmetic_mixed_promotes() {
        let s = schema();
        let e = Expr::col("a").add(Expr::col("b"));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Float(4.5));
    }

    #[test]
    fn division_by_zero_yields_null() {
        let s = schema();
        let e = Expr::col("a").div(Expr::lit(0));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Null);
        let e = Expr::col("b").div(Expr::lit(0.0));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Null);
    }

    #[test]
    fn null_propagates_through_arithmetic_and_comparison() {
        let s = schema();
        let e = Expr::col("a").add(Expr::lit(Value::Null));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Null);
        let e = Expr::col("a").lt(Expr::lit(Value::Null));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Null);
    }

    #[test]
    fn comparisons() {
        let s = schema();
        assert_eq!(
            Expr::col("a").ge(Expr::lit(3)).eval(&row(), &s).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::col("s").eq(Expr::lit("hi")).eval(&row(), &s).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::col("a").lt(Expr::col("b")).eval(&row(), &s).unwrap(),
            Value::Bool(false)
        );
        // Incomparable non-null types are an error.
        assert!(Expr::col("s").lt(Expr::lit(1)).eval(&row(), &s).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let s = schema();
        let null = Expr::lit(Value::Null);
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        // false AND NULL = false; true AND NULL = NULL.
        assert_eq!(
            f.clone().and(null.clone()).eval(&row(), &s).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            t.clone().and(null.clone()).eval(&row(), &s).unwrap(),
            Value::Null
        );
        // true OR NULL = true; false OR NULL = NULL.
        assert_eq!(
            t.clone().or(null.clone()).eval(&row(), &s).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            f.clone().or(null.clone()).eval(&row(), &s).unwrap(),
            Value::Null
        );
        // NOT NULL = NULL.
        assert_eq!(null.clone().not().eval(&row(), &s).unwrap(), Value::Null);
    }

    #[test]
    fn predicate_semantics_null_is_false() {
        let s = schema();
        let bound = Expr::lit(Value::Null).bind(&s).unwrap();
        assert!(!bound.eval_predicate(&row()).unwrap());
        let bound = Expr::lit(true).bind(&s).unwrap();
        assert!(bound.eval_predicate(&row()).unwrap());
        let bound = Expr::lit(1).bind(&s).unwrap();
        assert!(bound.eval_predicate(&row()).is_err());
    }

    #[test]
    fn unary_and_functions() {
        let s = schema();
        assert_eq!(
            Expr::col("a").neg().eval(&row(), &s).unwrap(),
            Value::Int(-3)
        );
        assert_eq!(
            Expr::col("flag").not().eval(&row(), &s).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::col("a").is_null().eval(&row(), &s).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::lit(Value::Null).is_null().eval(&row(), &s).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::lit(-4)
                .func(ScalarFunc::Abs)
                .eval(&row(), &s)
                .unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            Expr::lit(2.25)
                .func(ScalarFunc::Sqrt)
                .eval(&row(), &s)
                .unwrap(),
            Value::Float(1.5)
        );
        // Domain errors degrade to NULL.
        assert_eq!(
            Expr::lit(-1.0)
                .func(ScalarFunc::Sqrt)
                .eval(&row(), &s)
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            Expr::lit(0.0)
                .func(ScalarFunc::Ln)
                .eval(&row(), &s)
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn referenced_columns() {
        let e = Expr::col("x")
            .add(Expr::col("y").mul(Expr::lit(2)))
            .lt(Expr::col("x"));
        let cols = e.referenced_columns();
        assert_eq!(cols.len(), 2);
        assert!(cols.contains("x") && cols.contains("y"));
    }

    #[test]
    fn binding_unknown_column_fails() {
        let s = schema();
        assert!(Expr::col("zzz").bind(&s).is_err());
    }

    #[test]
    fn bound_expr_out_of_range_row() {
        let s = schema();
        let b = Expr::col("flag").bind(&s).unwrap();
        assert!(b.eval(&[Value::from(1)]).is_err());
    }
}
