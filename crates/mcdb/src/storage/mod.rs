//! Out-of-core paged columnar storage: page codec, pager, buffer pool,
//! and spill partitions.
//!
//! This layer lets a [`Table`](crate::Table) be backed by an on-disk
//! paged columnar file instead of in-memory rows, with working memory
//! bounded by a [`BufferPool`] frame budget rather than data size. The
//! all-in-RAM row path is retained as the differential oracle: the
//! property suites assert that a paged catalog returns bit-identical
//! query results to its in-memory twin across the whole SQL corpus, and
//! the chaos suites assert that page corruption (bit flips, truncation,
//! torn writes, foreign magic) surfaces as the typed
//! [`McdbError::PageCorrupt`](crate::McdbError::PageCorrupt) /
//! [`PageChecksumMismatch`](crate::McdbError::PageChecksumMismatch)
//! errors — never as silently wrong answers.
//!
//! The module splits into:
//! - [`pager`] — the `MDETAB01` file format, `MDEPAGE1` page frames
//!   with per-page FNV-1a checksums, and crash-consistent whole-file
//!   writes via the checkpoint codec's atomic-rename discipline;
//! - [`encoding`] — per-page column encodings (dictionary, RLE,
//!   bit-packing, plain) chosen smallest-wins at write time and decoded
//!   straight into the executor's typed column vectors;
//! - [`pool`] — the clock buffer pool with Arc-pinned frames, eviction
//!   counters, and typed pool-exhaustion errors;
//! - [`spill`] — Grace-style hash partitioning that lets join builds and
//!   group-by hash tables degrade to out-of-core instead of aborting.

pub mod encoding;
pub mod pager;
pub mod pool;
pub mod spill;

pub(crate) mod codec;

pub use encoding::Encoding;
pub use pager::{PageMeta, PagedStore, DEFAULT_PAGE_SIZE, PAGE_MAGIC, TABLE_MAGIC};
pub use pool::{BufferPool, PoolStats};
pub use spill::SpillConfig;

/// Record the storage layer's out-of-band counters into a run ledger:
/// the pool's `storage.pool_hits` / `storage.pool_misses` /
/// `storage.pool_evictions` and the process-wide `storage.spills`
/// partition-write count. These are timing-dependent (frame residency
/// depends on eviction order across concurrent readers), which is why
/// they go to the ledger's I/O side via
/// [`add_io`](mde_numeric::obs::RunMetrics::add_io) and are excluded
/// from determinism fingerprints. The *logical* page-read counts are
/// deterministic and live elsewhere: per store on
/// [`PagedStore::logical_reads`], and per scan on the traced executor's
/// `storage.page_reads` span field.
pub fn record_storage_metrics(pool: &BufferPool, metrics: &mut mde_numeric::obs::RunMetrics) {
    pool.stats().record_into(metrics);
    metrics.add_io("storage.spills", spill::spill_count());
}
