//! The paged table file: fixed-size frames, a checksummed header, and
//! crash-consistent writes.
//!
//! ## File layout (`MDETAB01`)
//!
//! ```text
//! [ 0..8 ]   file magic "MDETAB01"
//! [ 8..16]   pages_start: u64 — byte offset of page 0 (= header length)
//! [16..24]   FNV-1a checksum of the header body
//! [24..  ]   header body: table name, n_rows, page_size, schema,
//!            page directory (one (column, n_values) entry per page)
//! [pages_start .. ]  page frames, each exactly `page_size` bytes
//! ```
//!
//! ## Page frame (`MDEPAGE1`)
//!
//! ```text
//! [ 0..8 ]   page magic "MDEPAGE1"
//! [ 8..16]   FNV-1a checksum of frame[16..page_size]
//! [16..20]   column index: u32
//! [20..24]   n_values: u32
//! [24..28]   body length: u32
//! [28..  ]   encoded body (see `encoding`), zero-padded to `page_size`
//! ```
//!
//! Every page holds one chunk of one column; a column spans as many
//! pages as needed, in row order. The checksum covers everything after
//! itself including the padding, so a bit flip anywhere in a frame —
//! payload or padding — surfaces as
//! [`McdbError::PageChecksumMismatch`], and a torn/truncated frame as
//! [`McdbError::PageCorrupt`]. Whole files are written with the same
//! temp-file + fsync + atomic-rename discipline as `MDECKPT` campaign
//! checkpoints ([`mde_numeric::write_atomic`]), so a crash mid-write
//! leaves the previous file intact.

use super::codec::{fnv1a, put_str, put_u32, put_u64, Cursor, FNV_OFFSET};
use super::encoding::{decode_page, encode_page_body, ColumnAssembler};
use super::pool::BufferPool;
use crate::query::batch::Batch;
use crate::schema::{Column, DataType, Schema};
use crate::McdbError;
use std::io::{Read as _, Seek as _, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic prefix of a paged table file.
pub const TABLE_MAGIC: [u8; 8] = *b"MDETAB01";
/// Magic prefix of every page frame.
pub const PAGE_MAGIC: [u8; 8] = *b"MDEPAGE1";
/// Default page frame size: 16 KiB.
pub const DEFAULT_PAGE_SIZE: usize = 16 * 1024;
/// Bytes of frame header before the encoded body.
const PAGE_HEADER: usize = 28;
/// Smallest sane frame (header plus a little room for a body).
const MIN_PAGE_SIZE: usize = 64;

/// Unique id per opened store, namespacing its frames in the shared
/// buffer pool.
static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(1);

/// One directory entry: which column a page belongs to and how many
/// values it holds. Pages appear in the directory in file order
/// (column-major, row order within a column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMeta {
    /// Column index in the schema.
    pub column: u32,
    /// Values encoded in this page.
    pub n_values: u32,
}

/// A read-only paged columnar table file plus the buffer pool its frames
/// are cached in.
///
/// Stores are immutable once written (appends live in the owning
/// [`Table`](crate::Table)'s in-memory tail); all mutation happens by
/// atomically rewriting the whole file via [`PagedStore::write`].
#[derive(Debug)]
pub struct PagedStore {
    id: u64,
    path: PathBuf,
    name: String,
    schema: Schema,
    n_rows: usize,
    page_size: usize,
    pages_start: u64,
    directory: Vec<PageMeta>,
    file: Mutex<std::fs::File>,
    pool: Arc<BufferPool>,
    /// Logical page accesses (hit or miss) — deterministic, unlike the
    /// pool's hit/eviction counters.
    logical_reads: AtomicU64,
}

impl PagedStore {
    /// Encode `batch` as a paged table file at `path`, crash-consistently.
    /// Returns the I/O stats of the atomic write (out-of-band telemetry).
    pub fn write(
        path: &Path,
        name: &str,
        batch: &Batch,
        page_size: usize,
    ) -> crate::Result<mde_numeric::SaveStats> {
        if page_size < MIN_PAGE_SIZE {
            return Err(McdbError::invalid_plan(format!(
                "page size {page_size} below minimum {MIN_PAGE_SIZE}"
            )));
        }
        let body_budget = page_size - PAGE_HEADER;
        let mut directory: Vec<PageMeta> = Vec::new();
        let mut frames: Vec<u8> = Vec::new();
        let mut body = Vec::new();
        for (c, col) in batch.columns().iter().enumerate() {
            let mut start = 0usize;
            while start < batch.len() {
                let remaining = batch.len() - start;
                // Greedy chunk sizing: begin at the fixed-width estimate
                // and halve until the encoded body fits the frame.
                let mut len = remaining.min((body_budget / 8).max(1));
                loop {
                    body.clear();
                    encode_page_body(col, start, len, &mut body);
                    if body.len() <= body_budget {
                        break;
                    }
                    if len == 1 {
                        return Err(McdbError::invalid_plan(format!(
                            "value in column {c} needs {} bytes, page body holds {body_budget}",
                            body.len()
                        )));
                    }
                    len /= 2;
                }
                directory.push(PageMeta {
                    column: c as u32,
                    n_values: len as u32,
                });
                let frame_at = frames.len();
                frames.extend_from_slice(&PAGE_MAGIC);
                frames.extend_from_slice(&[0u8; 8]); // checksum patched below
                put_u32(&mut frames, c as u32);
                put_u32(&mut frames, len as u32);
                put_u32(&mut frames, body.len() as u32);
                frames.extend_from_slice(&body);
                frames.resize(frame_at + page_size, 0);
                let sum = fnv1a(FNV_OFFSET, &frames[frame_at + 16..frame_at + page_size]);
                frames[frame_at + 8..frame_at + 16].copy_from_slice(&sum.to_le_bytes());
                start += len;
            }
        }

        let mut header_body = Vec::new();
        put_str(&mut header_body, name);
        put_u64(&mut header_body, batch.len() as u64);
        put_u64(&mut header_body, page_size as u64);
        put_u32(&mut header_body, batch.schema().len() as u32);
        for col in batch.schema().columns() {
            put_str(&mut header_body, &col.name);
            header_body.push(col.dtype.to_tag());
        }
        put_u32(&mut header_body, directory.len() as u32);
        for m in &directory {
            put_u32(&mut header_body, m.column);
            put_u32(&mut header_body, m.n_values);
        }

        let mut file = Vec::with_capacity(24 + header_body.len() + frames.len());
        file.extend_from_slice(&TABLE_MAGIC);
        put_u64(&mut file, (24 + header_body.len()) as u64);
        put_u64(&mut file, fnv1a(FNV_OFFSET, &header_body));
        file.extend_from_slice(&header_body);
        file.extend_from_slice(&frames);
        Ok(mde_numeric::write_atomic(path, &file)?)
    }

    /// Open a paged table file, validating its header, against `pool`.
    pub fn open(path: &Path, pool: Arc<BufferPool>) -> crate::Result<Arc<PagedStore>> {
        let display = path.display().to_string();
        let header_corrupt = |reason: String| McdbError::PageCorrupt {
            path: display.clone(),
            page: u64::MAX,
            reason,
        };
        let mut f =
            std::fs::File::open(path).map_err(|e| header_corrupt(format!("cannot open: {e}")))?;
        let file_len = f
            .metadata()
            .map_err(|e| header_corrupt(format!("cannot stat: {e}")))?
            .len();
        let mut fixed = [0u8; 24];
        f.read_exact(&mut fixed)
            .map_err(|_| header_corrupt("truncated before header".into()))?;
        if fixed[..8] != TABLE_MAGIC {
            return Err(header_corrupt(
                "bad file magic (not an MDETAB01 file)".into(),
            ));
        }
        let pages_start = u64::from_le_bytes(fixed[8..16].try_into().unwrap());
        let stored_sum = u64::from_le_bytes(fixed[16..24].try_into().unwrap());
        if pages_start < 24 || pages_start > file_len {
            return Err(header_corrupt(format!(
                "header length {pages_start} outside file of {file_len} bytes"
            )));
        }
        let mut header_body = vec![0u8; (pages_start - 24) as usize];
        f.read_exact(&mut header_body)
            .map_err(|_| header_corrupt("truncated header".into()))?;
        let found = fnv1a(FNV_OFFSET, &header_body);
        if found != stored_sum {
            return Err(McdbError::PageChecksumMismatch {
                path: display,
                page: u64::MAX,
                expected: stored_sum,
                found,
            });
        }

        let mut cur = Cursor::new(&header_body, &display, u64::MAX);
        let name = cur.str()?;
        let n_rows = cur.u64()? as usize;
        let page_size = cur.u64()? as usize;
        if !(MIN_PAGE_SIZE..=1 << 30).contains(&page_size) {
            return Err(cur.corrupt(format!("implausible page size {page_size}")));
        }
        let n_cols = cur.u32()? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let col_name = cur.str()?;
            let tag = cur.u8()?;
            let dtype = DataType::from_tag(tag)
                .ok_or_else(|| cur.corrupt(format!("unknown column type tag {tag}")))?;
            columns.push(Column::new(col_name, dtype));
        }
        let schema = Schema::new(columns)?;
        let n_pages = cur.u32()? as usize;
        let expect_len = pages_start + (n_pages * page_size) as u64;
        if expect_len > file_len {
            return Err(cur.corrupt(format!(
                "directory declares {n_pages} pages ({expect_len} bytes), file has {file_len}"
            )));
        }
        let mut directory = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            let column = cur.u32()?;
            if column as usize >= schema.len() {
                return Err(cur.corrupt(format!("page references column {column}")));
            }
            directory.push(PageMeta {
                column,
                n_values: cur.u32()?,
            });
        }

        Ok(Arc::new(PagedStore {
            id: NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
            path: path.to_path_buf(),
            name,
            schema,
            n_rows,
            page_size,
            pages_start,
            directory,
            file: Mutex::new(f),
            pool,
            logical_reads: AtomicU64::new(0),
        }))
    }

    /// Table name recorded in the file.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema recorded in the file.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows stored on disk.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of page frames.
    pub fn n_pages(&self) -> usize {
        self.directory.len()
    }

    /// Frame size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The buffer pool this store reads through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Logical page reads since open: one per page access regardless of
    /// pool residency. Deterministic — a pure function of the queries
    /// executed — unlike the pool's hit/eviction counters.
    pub fn logical_reads(&self) -> u64 {
        self.logical_reads.load(Ordering::Relaxed)
    }

    /// Decode the entire table into a columnar [`Batch`] by streaming
    /// every page through the buffer pool (at most one pinned frame at a
    /// time). The decoded batch is `PartialEq`-identical to the batch
    /// that was written.
    pub fn read_batch(&self) -> crate::Result<Batch> {
        self.read_batch_parallel(1)
    }

    /// [`PagedStore::read_batch`] with page decode fanned out over
    /// `threads` scoped workers. Page decoding is pure (every encoding is
    /// page-local), so workers decode pages independently — each pinning
    /// at most one frame at a time — and the decoded pages are absorbed
    /// into column assemblers **in page order** on the calling thread:
    /// the result is bit-identical to the sequential read at any thread
    /// count. On a page error, the lowest-numbered failing page wins —
    /// the same error a sequential scan would have hit first. Note that
    /// `threads` workers can hold `threads` pinned frames concurrently,
    /// so a pool with a frame budget below the worker count can surface
    /// [`McdbError::PoolExhausted`] (typed, retryable) where a
    /// sequential read would not.
    pub fn read_batch_parallel(&self, threads: usize) -> crate::Result<Batch> {
        let display = self.path.display().to_string();
        let decoded = crate::par::par_map_ordered(threads, self.directory.len(), |page_no| {
            let frame = self.read_page(page_no as u32)?;
            let n_values = self.directory[page_no].n_values as usize;
            let body_len = u32::from_le_bytes(frame[24..28].try_into().unwrap()) as usize;
            if PAGE_HEADER + body_len > frame.len() {
                return Err(McdbError::PageCorrupt {
                    path: display.clone(),
                    page: page_no as u64,
                    reason: format!("body length {body_len} exceeds frame"),
                });
            }
            let body = &frame[PAGE_HEADER..PAGE_HEADER + body_len];
            decode_page(&mut Cursor::new(body, &display, page_no as u64), n_values)
        });
        let pages = crate::par::first_error(decoded)?;
        let mut assemblers: Vec<ColumnAssembler> = (0..self.schema.len())
            .map(|_| ColumnAssembler::new(self.n_rows))
            .collect();
        for (page_no, (meta, page)) in self.directory.iter().zip(pages).enumerate() {
            assemblers[meta.column as usize].absorb(page, &display, page_no as u64)?;
        }
        let mut columns = Vec::with_capacity(self.schema.len());
        for (asm, col) in assemblers.into_iter().zip(self.schema.columns()) {
            columns.push(asm.finish(col.dtype, &display)?);
        }
        Batch::from_columns(self.schema.clone(), columns, self.n_rows)
    }

    /// Fetch one page frame through the pool, validating magic, header
    /// consistency, and checksum on a miss. The returned `Arc` pins the
    /// frame.
    pub(crate) fn read_page(&self, page_no: u32) -> crate::Result<Arc<Vec<u8>>> {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
        self.pool
            .get((self.id, page_no), || self.load_frame(page_no))
    }

    fn load_frame(&self, page_no: u32) -> crate::Result<Vec<u8>> {
        let display = self.path.display().to_string();
        let corrupt = |reason: String| McdbError::PageCorrupt {
            path: display.clone(),
            page: page_no as u64,
            reason,
        };
        let meta = self
            .directory
            .get(page_no as usize)
            .ok_or_else(|| corrupt("page index outside directory".into()))?;
        let mut frame = vec![0u8; self.page_size];
        {
            let mut f = self.file.lock().expect("pager file lock");
            f.seek(SeekFrom::Start(
                self.pages_start + page_no as u64 * self.page_size as u64,
            ))
            .map_err(|e| corrupt(format!("seek failed: {e}")))?;
            f.read_exact(&mut frame)
                .map_err(|e| corrupt(format!("torn or truncated page: {e}")))?;
        }
        if frame[..8] != PAGE_MAGIC {
            return Err(corrupt("bad page magic (not an MDEPAGE1 frame)".into()));
        }
        let stored = u64::from_le_bytes(frame[8..16].try_into().unwrap());
        let found = fnv1a(FNV_OFFSET, &frame[16..]);
        if stored != found {
            return Err(McdbError::PageChecksumMismatch {
                path: display,
                page: page_no as u64,
                expected: stored,
                found,
            });
        }
        let col = u32::from_le_bytes(frame[16..20].try_into().unwrap());
        let n_values = u32::from_le_bytes(frame[20..24].try_into().unwrap());
        if col != meta.column || n_values != meta.n_values {
            return Err(corrupt(format!(
                "frame header (column {col}, {n_values} values) disagrees with \
                 directory (column {}, {} values)",
                meta.column, meta.n_values
            )));
        }
        Ok(frame)
    }

    /// Release this store's frames from the pool. Called on drop; safe
    /// to call early (e.g. after a spill partition is consumed).
    pub fn retire(&self) {
        self.pool.retire_store(self.id);
    }
}

impl Drop for PagedStore {
    fn drop(&mut self) {
        self.pool.retire_store(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use crate::value::Value;

    fn sample_table(n: usize) -> Table {
        let mut b = Table::build(
            "t",
            &[
                ("id", DataType::Int),
                ("x", DataType::Float),
                ("tag", DataType::Str),
                ("ok", DataType::Bool),
            ],
        );
        for i in 0..n {
            b = b.row(vec![
                Value::from(i as i64),
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::from(i as f64 * 0.25)
                },
                Value::str(["red", "green", "blue"][i % 3]),
                Value::from(i % 2 == 0),
            ]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn write_open_read_round_trip() {
        let dir = std::env::temp_dir().join(format!("mde_pager_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.mdet");
        let t = sample_table(1000);
        let batch = Batch::from_table(&t);
        PagedStore::write(&path, "t", &batch, 1024).unwrap();
        let pool = BufferPool::new(4);
        let store = PagedStore::open(&path, Arc::clone(&pool)).unwrap();
        assert_eq!(store.name(), "t");
        assert_eq!(store.n_rows(), 1000);
        assert!(store.n_pages() > 4, "expected multiple pages per column");
        let back = store.read_batch().unwrap();
        assert_eq!(back, batch);
        assert_eq!(store.logical_reads(), store.n_pages() as u64);
        // Second read with a tiny pool still succeeds (evictions, not
        // exhaustion) and stays within the frame budget.
        let back2 = store.read_batch().unwrap();
        assert_eq!(back2, batch);
        assert!(pool.stats().resident <= 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_read_matches_sequential_bitwise() {
        let dir = std::env::temp_dir().join(format!("mde_pager_par_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.mdet");
        let t = sample_table(2000);
        let batch = Batch::from_table(&t);
        PagedStore::write(&path, "t", &batch, 1024).unwrap();
        let store = PagedStore::open(&path, BufferPool::new(16)).unwrap();
        let seq = store.read_batch().unwrap();
        assert_eq!(seq, batch);
        for threads in [2, 4, 8] {
            let par = store.read_batch_parallel(threads).unwrap();
            assert_eq!(par, seq, "thread count {threads} changed the batch");
        }
        // Logical reads stay a pure function of pages scanned.
        assert_eq!(store.logical_reads(), 4 * store.n_pages() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_table_round_trips() {
        let dir = std::env::temp_dir().join(format!("mde_pager_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("e.mdet");
        let t = Table::build("e", &[("a", DataType::Int)]).finish().unwrap();
        let batch = Batch::from_table(&t);
        PagedStore::write(&path, "e", &batch, 256).unwrap();
        let store = PagedStore::open(&path, BufferPool::new(2)).unwrap();
        assert_eq!(store.n_rows(), 0);
        assert_eq!(store.n_pages(), 0);
        assert_eq!(store.read_batch().unwrap(), batch);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_value_is_a_typed_write_error() {
        let dir = std::env::temp_dir().join(format!("mde_pager_big_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("big.mdet");
        let t = Table::build("big", &[("s", DataType::Str)])
            .row(vec![Value::str("x".repeat(4096))])
            .finish()
            .unwrap();
        let err = PagedStore::write(&path, "big", &Batch::from_table(&t), 256).unwrap_err();
        assert!(matches!(err, McdbError::InvalidPlan { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
