//! Clock buffer pool over fixed-size page frames.
//!
//! The pool caches *compressed* page frames (not decoded columns) under a
//! configurable frame budget, shared by every paged table and spill
//! partition that was opened against it. Eviction is second-chance
//! clock: each hit sets a referenced bit; the hand clears bits until it
//! finds an unreferenced, unpinned frame. A frame is pinned exactly
//! while a caller holds the `Arc` returned by [`BufferPool::get`] — no
//! explicit unpin call, dropping the guard releases the pin — so
//! eviction can never free bytes a reader is still decoding. If every
//! frame is pinned the pool refuses the load with the retryable
//! [`McdbError::PoolExhausted`] rather than blowing the budget.
//!
//! ## Determinism
//!
//! Logical page reads (one per page *access*) are a pure function of the
//! plan and data, so they land in deterministic ledger counters. Hits,
//! misses, and evictions depend on which thread touched the pool first —
//! flow-control telemetry, recorded out-of-band and excluded from run
//! equality (same split as `ckpt.fsync` durations).

use crate::McdbError;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Key of a cached frame: (store id, page index). Store ids are unique
/// per opened [`PagedStore`](super::PagedStore), so two stores opened on
/// the same path never alias frames.
pub(crate) type PageKey = (u64, u32);

/// Counter snapshot of a pool's activity since creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Frame lookups served from a resident frame.
    pub hits: u64,
    /// Frame lookups that had to load from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Frames currently resident.
    pub resident: usize,
    /// Configured frame budget.
    pub budget: usize,
}

impl PoolStats {
    /// Hit fraction of all lookups (`0.0` when the pool is untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold this snapshot into a ledger's out-of-band section
    /// (`storage.pool_hits` / `storage.pool_misses` /
    /// `storage.pool_evictions` I/O counters). Out-of-band because cache
    /// behavior under parallel interleaving is timing, not semantics;
    /// the deterministic `storage.page_reads` counter is recorded by the
    /// scan operator, not here.
    pub fn record_into(&self, metrics: &mut mde_numeric::obs::RunMetrics) {
        metrics.add_io("storage.pool_hits", self.hits);
        metrics.add_io("storage.pool_misses", self.misses);
        metrics.add_io("storage.pool_evictions", self.evictions);
    }
}

struct Frame {
    data: Arc<Vec<u8>>,
    referenced: bool,
}

#[derive(Default)]
struct Inner {
    frames: HashMap<PageKey, Frame>,
    /// Clock ring; keys may be stale (already evicted) and are dropped
    /// lazily when the hand reaches them.
    ring: VecDeque<PageKey>,
}

/// A clock-eviction cache of compressed page frames. See the module docs
/// for pinning and determinism semantics.
pub struct BufferPool {
    budget: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BufferPool")
            .field("budget", &self.budget)
            .field("stats", &stats)
            .finish()
    }
}

impl BufferPool {
    /// A pool holding at most `frame_budget` page frames (minimum 1).
    pub fn new(frame_budget: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            budget: frame_budget.max(1),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// Configured frame budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Occupancy in `[0, 1]`: resident frames over budget. Exposed as an
    /// admission signal for the campaign scheduler.
    pub fn pressure(&self) -> f64 {
        let resident = self.inner.lock().expect("pool lock").frames.len();
        resident as f64 / self.budget as f64
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: self.inner.lock().expect("pool lock").frames.len(),
            budget: self.budget,
        }
    }

    /// Fetch the frame for `key`, loading it via `load` on a miss. The
    /// returned `Arc` pins the frame until dropped.
    pub(crate) fn get(
        &self,
        key: PageKey,
        load: impl FnOnce() -> crate::Result<Vec<u8>>,
    ) -> crate::Result<Arc<Vec<u8>>> {
        {
            let mut inner = self.inner.lock().expect("pool lock");
            if let Some(frame) = inner.frames.get_mut(&key) {
                frame.referenced = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&frame.data));
            }
        }
        // Load outside the lock so concurrent misses on other pages are
        // not serialized behind this disk read. A racing load of the
        // same key is benign: the loser adopts the winner's frame.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(load()?);
        let mut inner = self.inner.lock().expect("pool lock");
        if let Some(frame) = inner.frames.get_mut(&key) {
            frame.referenced = true;
            return Ok(Arc::clone(&frame.data));
        }
        while inner.frames.len() >= self.budget {
            self.evict_one(&mut inner)?;
        }
        inner.frames.insert(
            key,
            Frame {
                data: Arc::clone(&data),
                referenced: true,
            },
        );
        inner.ring.push_back(key);
        Ok(data)
    }

    /// Drop every frame belonging to `store_id` (called when a paged
    /// store is closed or its spill file deleted).
    pub(crate) fn retire_store(&self, store_id: u64) {
        let mut inner = self.inner.lock().expect("pool lock");
        inner.frames.retain(|k, _| k.0 != store_id);
        // Stale ring entries are dropped lazily by the clock hand.
    }

    fn evict_one(&self, inner: &mut Inner) -> crate::Result<()> {
        // Second-chance sweep: each resident frame is visited at most
        // twice (once to clear its bit, once to evict). Bound the walk
        // so a fully pinned pool terminates with a typed error.
        let mut sweeps = 2 * inner.ring.len() + 1;
        while sweeps > 0 {
            sweeps -= 1;
            let Some(key) = inner.ring.pop_front() else {
                break;
            };
            let Some(frame) = inner.frames.get_mut(&key) else {
                continue; // stale entry for an already-retired frame
            };
            if frame.referenced {
                frame.referenced = false;
                inner.ring.push_back(key);
            } else if Arc::strong_count(&frame.data) == 1 {
                inner.frames.remove(&key);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            } else {
                inner.ring.push_back(key); // pinned by a reader
            }
        }
        let pinned = inner
            .frames
            .values()
            .filter(|f| Arc::strong_count(&f.data) > 1)
            .count();
        Err(McdbError::PoolExhausted {
            budget: self.budget,
            pinned,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction_counters() {
        let pool = BufferPool::new(2);
        for page in 0..3u32 {
            let data = pool.get((1, page), || Ok(vec![page as u8; 4])).unwrap();
            assert_eq!(data[0], page as u8);
        }
        // Page 0 was evicted (budget 2); re-reading is a miss.
        let _ = pool.get((1, 0), || Ok(vec![9; 4])).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.misses, 4);
        assert!(stats.evictions >= 2);
        assert_eq!(stats.resident, 2);
        // A resident page is a hit and does not reload.
        let _ = pool.get((1, 0), || panic!("must not reload")).unwrap();
        assert_eq!(pool.stats().hits, 1);
        assert!(pool.pressure() > 0.99);
    }

    #[test]
    fn pinned_frames_are_not_evicted() {
        let pool = BufferPool::new(2);
        let pin_a = pool.get((1, 0), || Ok(vec![0])).unwrap();
        let pin_b = pool.get((1, 1), || Ok(vec![1])).unwrap();
        // Pool is full and fully pinned: the next load must fail typed.
        let err = pool.get((1, 2), || Ok(vec![2])).unwrap_err();
        assert!(matches!(err, McdbError::PoolExhausted { budget: 2, .. }));
        use mde_numeric::ErrorClass as _;
        assert_eq!(err.severity(), mde_numeric::Severity::Retryable);
        // Releasing one pin makes room again.
        drop(pin_a);
        let _ = pool.get((1, 2), || Ok(vec![2])).unwrap();
        assert_eq!(pin_b[0], 1);
        // The pinned frame survived the eviction.
        let _ = pool
            .get((1, 1), || panic!("pinned frame was evicted"))
            .unwrap();
    }

    #[test]
    fn retire_store_frees_frames() {
        let pool = BufferPool::new(4);
        for page in 0..4u32 {
            let _ = pool.get((7, page), || Ok(vec![0])).unwrap();
        }
        pool.retire_store(7);
        assert_eq!(pool.stats().resident, 0);
        // Ring has stale keys; a fresh store still loads fine.
        for page in 0..4u32 {
            let _ = pool.get((8, page), || Ok(vec![1])).unwrap();
        }
        assert_eq!(pool.stats().resident, 4);
    }
}
