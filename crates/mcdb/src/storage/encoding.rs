//! Per-page column encodings: plain, RLE, bit-packed integers, and
//! dictionary strings.
//!
//! A page body is one encoded chunk of one column. The writer encodes
//! every candidate applicable to the column's type and keeps the smallest
//! — a deterministic, local decision recorded in the page header so the
//! reader needs no global state. Null lanes hold the same placeholder
//! values the in-memory [`ColumnVec`] uses (`0`, `0.0`, `false`, `""`)
//! and are encoded as ordinary values alongside a verbatim copy of the
//! null bitmap, so a decoded column compares equal (`PartialEq`) to the
//! column that was written — the property the differential suite leans on
//! for bit-identical paged vs in-memory query results. Floats are
//! encoded by bit pattern (`to_bits`), never re-parsed.

use super::codec::{put_i64, put_str, put_u32, put_u64, Cursor};
use crate::query::column::{ColumnVec, NullMask};
use crate::schema::DataType;
use std::sync::Arc;

/// How a page body is encoded. Tags are part of the on-disk format:
/// never renumber, only append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Values verbatim (floats by bit pattern, bools as a bitmap).
    Plain,
    /// Run-length: `(count, value)` pairs; wins on constant or sorted
    /// low-cardinality chunks.
    Rle,
    /// Frame-of-reference bit-packing for integers: a base plus
    /// fixed-width deltas.
    BitPack,
    /// Dictionary strings: distinct payloads once, lanes as bit-packed
    /// indices; wins on low-cardinality string chunks.
    Dict,
    /// An untyped all-null chunk (no body at all).
    AllNull,
}

impl Encoding {
    pub(crate) fn to_tag(self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::Rle => 1,
            Encoding::BitPack => 2,
            Encoding::Dict => 3,
            Encoding::AllNull => 4,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Encoding> {
        match tag {
            0 => Some(Encoding::Plain),
            1 => Some(Encoding::Rle),
            2 => Some(Encoding::BitPack),
            3 => Some(Encoding::Dict),
            4 => Some(Encoding::AllNull),
            _ => None,
        }
    }
}

/// Column-type tag for an untyped all-null chunk (see
/// [`DataType::to_tag`] for the typed tags 0–3).
pub(crate) const ALL_NULL_TAG: u8 = 4;

// ---------------------------------------------------------------------------
// Bit packing
// ---------------------------------------------------------------------------

fn pack_bits(values: impl Iterator<Item = u64>, n: usize, width: u32, out: &mut Vec<u8>) {
    debug_assert!(width <= 64);
    if width == 0 {
        return;
    }
    let total_bits = n * width as usize;
    let start = out.len();
    out.resize(start + total_bits.div_ceil(8), 0);
    let bytes = &mut out[start..];
    let mut bit = 0usize;
    for v in values {
        for k in 0..width as usize {
            if v >> k & 1 == 1 {
                bytes[bit / 8] |= 1 << (bit % 8);
            }
            bit += 1;
        }
    }
}

fn unpack_bits(cur: &mut Cursor<'_>, n: usize, width: u32) -> crate::Result<Vec<u64>> {
    if width > 64 {
        return Err(cur.corrupt(format!("bit width {width} exceeds 64")));
    }
    if width == 0 {
        return Ok(vec![0; n]);
    }
    let total_bits = n * width as usize;
    let bytes = cur.bytes(total_bits.div_ceil(8))?;
    let mut out = Vec::with_capacity(n);
    let mut bit = 0usize;
    for _ in 0..n {
        let mut v = 0u64;
        for k in 0..width as usize {
            if bytes[bit / 8] >> (bit % 8) & 1 == 1 {
                v |= 1 << k;
            }
            bit += 1;
        }
        out.push(v);
    }
    Ok(out)
}

fn width_for(max: u64) -> u32 {
    64 - max.leading_zeros()
}

// ---------------------------------------------------------------------------
// Run-length helper
// ---------------------------------------------------------------------------

/// Collect `(count, index-of-representative)` runs of adjacent equal
/// values under `eq`.
fn runs_of<T, F: Fn(&T, &T) -> bool>(data: &[T], eq: F) -> Vec<(u32, usize)> {
    let mut runs: Vec<(u32, usize)> = Vec::new();
    for (i, v) in data.iter().enumerate() {
        match runs.last_mut() {
            Some((count, rep)) if eq(&data[*rep], v) && *count < u32::MAX => *count += 1,
            _ => runs.push((1, i)),
        }
    }
    runs
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encode lanes `[start, start + len)` of `col` into a page body:
/// `dtype_tag, encoding_tag, has_nulls, [null words], data`. Returns the
/// winning encoding (for telemetry/tests).
pub(crate) fn encode_page_body(
    col: &ColumnVec,
    start: usize,
    len: usize,
    out: &mut Vec<u8>,
) -> Encoding {
    // Untyped all-null chunk: tag + encoding only.
    if let ColumnVec::AllNull { .. } = col {
        out.push(ALL_NULL_TAG);
        out.push(Encoding::AllNull.to_tag());
        out.push(0);
        return Encoding::AllNull;
    }
    let dtype = col.dtype().expect("typed column");
    out.push(dtype.to_tag());
    let enc_pos = out.len();
    out.push(0); // encoding tag, patched below
    let has_nulls = (start..start + len).any(|i| col.is_null(i));
    out.push(has_nulls as u8);
    if has_nulls {
        let mut words = vec![0u64; len.div_ceil(64)];
        for i in 0..len {
            if col.is_null(start + i) {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        for w in &words {
            put_u64(out, *w);
        }
    }
    let enc = match col {
        ColumnVec::Int { data, .. } => encode_int(&data[start..start + len], out),
        ColumnVec::Float { data, .. } => encode_float(&data[start..start + len], out),
        ColumnVec::Bool { data, .. } => encode_bool(&data[start..start + len], out),
        ColumnVec::Str { data, .. } => encode_str(&data[start..start + len], out),
        ColumnVec::AllNull { .. } => unreachable!(),
    };
    out[enc_pos] = enc.to_tag();
    enc
}

/// Encode each candidate, append the smallest to `out`, return its tag.
fn pick_smallest(out: &mut Vec<u8>, candidates: Vec<(Encoding, Vec<u8>)>) -> Encoding {
    let (enc, body) = candidates
        .into_iter()
        .min_by_key(|(_, b)| b.len())
        .expect("at least one candidate");
    out.extend_from_slice(&body);
    enc
}

fn encode_int(data: &[i64], out: &mut Vec<u8>) -> Encoding {
    let mut plain = Vec::with_capacity(data.len() * 8);
    for &v in data {
        put_i64(&mut plain, v);
    }

    let mut packed = Vec::new();
    let min = data.iter().copied().min().unwrap_or(0);
    let width = data
        .iter()
        .map(|&v| width_for(v.wrapping_sub(min) as u64))
        .max()
        .unwrap_or(0);
    put_i64(&mut packed, min);
    packed.push(width as u8);
    pack_bits(
        data.iter().map(|&v| v.wrapping_sub(min) as u64),
        data.len(),
        width,
        &mut packed,
    );

    let runs = runs_of(data, |a, b| a == b);
    let mut rle = Vec::with_capacity(4 + runs.len() * 12);
    put_u32(&mut rle, runs.len() as u32);
    for (count, rep) in &runs {
        put_u32(&mut rle, *count);
        put_i64(&mut rle, data[*rep]);
    }

    pick_smallest(
        out,
        vec![
            (Encoding::Plain, plain),
            (Encoding::BitPack, packed),
            (Encoding::Rle, rle),
        ],
    )
}

fn encode_float(data: &[f64], out: &mut Vec<u8>) -> Encoding {
    let mut plain = Vec::with_capacity(data.len() * 8);
    for &v in data {
        put_u64(&mut plain, v.to_bits());
    }

    let runs = runs_of(data, |a, b| a.to_bits() == b.to_bits());
    let mut rle = Vec::with_capacity(4 + runs.len() * 12);
    put_u32(&mut rle, runs.len() as u32);
    for (count, rep) in &runs {
        put_u32(&mut rle, *count);
        put_u64(&mut rle, data[*rep].to_bits());
    }

    pick_smallest(out, vec![(Encoding::Plain, plain), (Encoding::Rle, rle)])
}

fn encode_bool(data: &[bool], out: &mut Vec<u8>) -> Encoding {
    let mut plain = vec![0u8; data.len().div_ceil(8)];
    for (i, &v) in data.iter().enumerate() {
        if v {
            plain[i / 8] |= 1 << (i % 8);
        }
    }

    let runs = runs_of(data, |a, b| a == b);
    let mut rle = Vec::with_capacity(4 + runs.len() * 5);
    put_u32(&mut rle, runs.len() as u32);
    for (count, rep) in &runs {
        put_u32(&mut rle, *count);
        rle.push(data[*rep] as u8);
    }

    pick_smallest(out, vec![(Encoding::Plain, plain), (Encoding::Rle, rle)])
}

fn encode_str(data: &[Arc<str>], out: &mut Vec<u8>) -> Encoding {
    let mut plain = Vec::new();
    for v in data {
        put_str(&mut plain, v);
    }

    // Dictionary in first-occurrence order so encoding is deterministic.
    let mut dict: Vec<&Arc<str>> = Vec::new();
    let mut indices = Vec::with_capacity(data.len());
    for v in data {
        let idx = match dict.iter().position(|d| d.as_ref() == v.as_ref()) {
            Some(i) => i,
            None => {
                dict.push(v);
                dict.len() - 1
            }
        };
        indices.push(idx as u64);
    }
    let width = if dict.len() <= 1 {
        0
    } else {
        width_for(dict.len() as u64 - 1)
    };
    let mut dicted = Vec::new();
    put_u32(&mut dicted, dict.len() as u32);
    for d in &dict {
        put_str(&mut dicted, d);
    }
    dicted.push(width as u8);
    pack_bits(indices.iter().copied(), data.len(), width, &mut dicted);

    let runs = runs_of(data, |a, b| a.as_ref() == b.as_ref());
    let mut rle = Vec::new();
    put_u32(&mut rle, runs.len() as u32);
    for (count, rep) in &runs {
        put_u32(&mut rle, *count);
        put_str(&mut rle, &data[*rep]);
    }

    pick_smallest(
        out,
        vec![
            (Encoding::Plain, plain),
            (Encoding::Dict, dicted),
            (Encoding::Rle, rle),
        ],
    )
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// One fully decoded page body — the output of [`decode_page`].
///
/// Decoding is **pure**: every encoding is page-local (bit-pack bases,
/// RLE runs, and string dictionaries are all stored in the page itself),
/// so pages can be decoded on worker threads in any order and absorbed
/// into a [`ColumnAssembler`] in page order afterwards — the shape the
/// parallel paged reader exploits.
pub(crate) struct DecodedPage {
    n_values: usize,
    /// Raw null-bitmap bytes exactly as stored (little-endian words);
    /// `None` when the page declared no nulls.
    null_bytes: Option<Vec<u8>>,
    values: PageValues,
}

enum PageValues {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Str(Vec<Arc<str>>),
    AllNull,
}

/// Decode one page body (positioned after the page header) into its
/// values, using only page-local state. Cross-page invariants (row
/// totals, type consistency) are checked by
/// [`ColumnAssembler::absorb`].
pub(crate) fn decode_page(cur: &mut Cursor<'_>, n_values: usize) -> crate::Result<DecodedPage> {
    let dtype_tag = cur.u8()?;
    let enc_tag = cur.u8()?;
    let enc = Encoding::from_tag(enc_tag)
        .ok_or_else(|| cur.corrupt(format!("unknown encoding tag {enc_tag}")))?;
    let has_nulls = match cur.u8()? {
        0 => false,
        1 => true,
        other => return Err(cur.corrupt(format!("bad null flag {other}"))),
    };

    if dtype_tag == ALL_NULL_TAG {
        if enc != Encoding::AllNull || has_nulls {
            return Err(cur.corrupt("malformed all-null chunk"));
        }
        return Ok(DecodedPage {
            n_values,
            null_bytes: None,
            values: PageValues::AllNull,
        });
    }
    let dtype = DataType::from_tag(dtype_tag)
        .ok_or_else(|| cur.corrupt(format!("unknown column type tag {dtype_tag}")))?;

    let null_bytes = if has_nulls {
        Some(cur.bytes(n_values.div_ceil(64) * 8)?.to_vec())
    } else {
        None
    };
    let values = match dtype {
        DataType::Int => {
            let mut v = Vec::with_capacity(n_values);
            decode_int(cur, enc, n_values, &mut v)?;
            PageValues::Int(v)
        }
        DataType::Float => {
            let mut v = Vec::with_capacity(n_values);
            decode_float(cur, enc, n_values, &mut v)?;
            PageValues::Float(v)
        }
        DataType::Bool => {
            let mut v = Vec::with_capacity(n_values);
            decode_bool(cur, enc, n_values, &mut v)?;
            PageValues::Bool(v)
        }
        DataType::Str => {
            let mut v = Vec::with_capacity(n_values);
            decode_str(cur, enc, n_values, &mut v)?;
            PageValues::Str(v)
        }
    };
    Ok(DecodedPage {
        n_values,
        null_bytes,
        values,
    })
}

/// Incrementally rebuilds one column from its pages, in row order.
///
/// The builder's type is fixed by the first page's type tag; `finish`
/// checks the declared schema type and total row count, and reproduces
/// the null mask verbatim (materialized iff any page carried nulls) so
/// the result is `PartialEq`-identical to the column that was written.
pub(crate) struct ColumnAssembler {
    total: usize,
    filled: usize,
    builder: Option<Builder>,
    nulls: Option<Vec<u64>>,
}

enum Builder {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Str(Vec<Arc<str>>),
    AllNull,
}

impl ColumnAssembler {
    /// An assembler expecting `total` rows across all pages.
    pub(crate) fn new(total: usize) -> Self {
        ColumnAssembler {
            total,
            filled: 0,
            builder: None,
            nulls: None,
        }
    }

    /// Decode one page body (positioned after the page header) and append
    /// its `n_values` lanes. Equivalent to [`decode_page`] followed by
    /// [`ColumnAssembler::absorb`] — the split the parallel paged reader
    /// uses to decode pages on worker threads and merge in page order.
    #[cfg(test)]
    pub(crate) fn push_page(&mut self, cur: &mut Cursor<'_>, n_values: usize) -> crate::Result<()> {
        let page = decode_page(cur, n_values)?;
        self.absorb(page, cur.path(), cur.page())
    }

    /// Append a decoded page's lanes, enforcing the cross-page invariants
    /// (declared row count, one concrete type per column). Pages must be
    /// absorbed in page order — null-mask and value placement depend on
    /// `filled`.
    pub(crate) fn absorb(
        &mut self,
        page: DecodedPage,
        path: &str,
        page_no: u64,
    ) -> crate::Result<()> {
        let corrupt = |reason: String| crate::McdbError::PageCorrupt {
            path: path.to_string(),
            page: page_no,
            reason,
        };
        let n_values = page.n_values;
        if self.filled + n_values > self.total {
            return Err(corrupt(format!(
                "page overflows column: {} + {n_values} rows > {} declared",
                self.filled, self.total
            )));
        }
        if let PageValues::AllNull = page.values {
            match self.builder.get_or_insert(Builder::AllNull) {
                Builder::AllNull => {}
                _ => return Err(corrupt("all-null chunk in a typed column".into())),
            }
            self.filled += n_values;
            return Ok(());
        }
        if let Some(words) = &page.null_bytes {
            let global = self
                .nulls
                .get_or_insert_with(|| vec![0u64; self.total.div_ceil(64)]);
            for i in 0..n_values {
                if words[i / 64 * 8 + i % 64 / 8] >> (i % 8) & 1 == 1 {
                    let g = self.filled + i;
                    global[g / 64] |= 1 << (g % 64);
                }
            }
        }
        let builder = self.builder.get_or_insert_with(|| match &page.values {
            PageValues::Int(_) => Builder::Int(Vec::with_capacity(self.total)),
            PageValues::Float(_) => Builder::Float(Vec::with_capacity(self.total)),
            PageValues::Bool(_) => Builder::Bool(Vec::with_capacity(self.total)),
            PageValues::Str(_) => Builder::Str(Vec::with_capacity(self.total)),
            PageValues::AllNull => unreachable!("handled above"),
        });
        match (builder, page.values) {
            (Builder::Int(data), PageValues::Int(v)) => data.extend(v),
            (Builder::Float(data), PageValues::Float(v)) => data.extend(v),
            (Builder::Bool(data), PageValues::Bool(v)) => data.extend(v),
            (Builder::Str(data), PageValues::Str(v)) => data.extend(v),
            _ => return Err(corrupt("column type tag changed between pages".into())),
        }
        self.filled += n_values;
        Ok(())
    }

    /// Produce the finished column, checking row count and the declared
    /// schema type.
    pub(crate) fn finish(self, declared: DataType, path: &str) -> crate::Result<ColumnVec> {
        let corrupt = |reason: String| crate::McdbError::PageCorrupt {
            path: path.to_string(),
            page: u64::MAX,
            reason,
        };
        if self.filled != self.total {
            return Err(corrupt(format!(
                "column has {} rows, file declares {}",
                self.filled, self.total
            )));
        }
        let nulls = NullMask::from_words(self.total, self.nulls);
        Ok(match self.builder {
            None if self.total == 0 => empty_column(declared),
            None => return Err(corrupt("no pages for a non-empty column".into())),
            Some(Builder::AllNull) => ColumnVec::AllNull { len: self.total },
            Some(Builder::Int(data)) if declared == DataType::Int => ColumnVec::Int { data, nulls },
            Some(Builder::Float(data)) if declared == DataType::Float => {
                ColumnVec::Float { data, nulls }
            }
            Some(Builder::Bool(data)) if declared == DataType::Bool => {
                ColumnVec::Bool { data, nulls }
            }
            Some(Builder::Str(data)) if declared == DataType::Str => ColumnVec::Str { data, nulls },
            Some(_) => {
                return Err(corrupt(format!(
                    "column type does not match declared schema type {declared}"
                )))
            }
        })
    }
}

fn empty_column(dtype: DataType) -> ColumnVec {
    let nulls = NullMask::all_valid(0);
    match dtype {
        DataType::Int => ColumnVec::Int {
            data: Vec::new(),
            nulls,
        },
        DataType::Float => ColumnVec::Float {
            data: Vec::new(),
            nulls,
        },
        DataType::Bool => ColumnVec::Bool {
            data: Vec::new(),
            nulls,
        },
        DataType::Str => ColumnVec::Str {
            data: Vec::new(),
            nulls,
        },
    }
}

fn read_runs(cur: &mut Cursor<'_>, n: usize) -> crate::Result<usize> {
    let n_runs = cur.u32()? as usize;
    if n_runs > n {
        return Err(cur.corrupt(format!("{n_runs} runs for {n} values")));
    }
    Ok(n_runs)
}

fn decode_int(
    cur: &mut Cursor<'_>,
    enc: Encoding,
    n: usize,
    out: &mut Vec<i64>,
) -> crate::Result<()> {
    match enc {
        Encoding::Plain => {
            for _ in 0..n {
                out.push(cur.i64()?);
            }
        }
        Encoding::BitPack => {
            let min = cur.i64()?;
            let width = cur.u8()? as u32;
            let deltas = unpack_bits(cur, n, width)?;
            out.extend(deltas.into_iter().map(|d| min.wrapping_add(d as i64)));
        }
        Encoding::Rle => {
            let mut remaining = n;
            for _ in 0..read_runs(cur, n)? {
                let count = cur.u32()? as usize;
                let v = cur.i64()?;
                if count > remaining {
                    return Err(cur.corrupt("run overflows chunk"));
                }
                remaining -= count;
                out.extend(std::iter::repeat_n(v, count));
            }
            if remaining != 0 {
                return Err(cur.corrupt("runs cover fewer values than chunk declares"));
            }
        }
        other => return Err(cur.corrupt(format!("encoding {other:?} invalid for Int"))),
    }
    Ok(())
}

fn decode_float(
    cur: &mut Cursor<'_>,
    enc: Encoding,
    n: usize,
    out: &mut Vec<f64>,
) -> crate::Result<()> {
    match enc {
        Encoding::Plain => {
            for _ in 0..n {
                out.push(f64::from_bits(cur.u64()?));
            }
        }
        Encoding::Rle => {
            let mut remaining = n;
            for _ in 0..read_runs(cur, n)? {
                let count = cur.u32()? as usize;
                let v = f64::from_bits(cur.u64()?);
                if count > remaining {
                    return Err(cur.corrupt("run overflows chunk"));
                }
                remaining -= count;
                out.extend(std::iter::repeat_n(v, count));
            }
            if remaining != 0 {
                return Err(cur.corrupt("runs cover fewer values than chunk declares"));
            }
        }
        other => return Err(cur.corrupt(format!("encoding {other:?} invalid for Float"))),
    }
    Ok(())
}

fn decode_bool(
    cur: &mut Cursor<'_>,
    enc: Encoding,
    n: usize,
    out: &mut Vec<bool>,
) -> crate::Result<()> {
    match enc {
        Encoding::Plain => {
            let bytes = cur.bytes(n.div_ceil(8))?;
            out.extend((0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1));
        }
        Encoding::Rle => {
            let mut remaining = n;
            for _ in 0..read_runs(cur, n)? {
                let count = cur.u32()? as usize;
                let v = cur.u8()? != 0;
                if count > remaining {
                    return Err(cur.corrupt("run overflows chunk"));
                }
                remaining -= count;
                out.extend(std::iter::repeat_n(v, count));
            }
            if remaining != 0 {
                return Err(cur.corrupt("runs cover fewer values than chunk declares"));
            }
        }
        other => return Err(cur.corrupt(format!("encoding {other:?} invalid for Bool"))),
    }
    Ok(())
}

fn decode_str(
    cur: &mut Cursor<'_>,
    enc: Encoding,
    n: usize,
    out: &mut Vec<Arc<str>>,
) -> crate::Result<()> {
    match enc {
        Encoding::Plain => {
            for _ in 0..n {
                out.push(Arc::from(cur.str()?.as_str()));
            }
        }
        Encoding::Dict => {
            let n_dict = cur.u32()? as usize;
            if n_dict > n {
                return Err(cur.corrupt(format!("{n_dict} dictionary entries for {n} values")));
            }
            let mut dict: Vec<Arc<str>> = Vec::with_capacity(n_dict);
            for _ in 0..n_dict {
                dict.push(Arc::from(cur.str()?.as_str()));
            }
            let width = cur.u8()? as u32;
            for idx in unpack_bits(cur, n, width)? {
                let d = dict
                    .get(idx as usize)
                    .ok_or_else(|| cur.corrupt(format!("dictionary index {idx} out of range")))?;
                out.push(Arc::clone(d));
            }
        }
        Encoding::Rle => {
            let mut remaining = n;
            for _ in 0..read_runs(cur, n)? {
                let count = cur.u32()? as usize;
                let v: Arc<str> = Arc::from(cur.str()?.as_str());
                if count > remaining {
                    return Err(cur.corrupt("run overflows chunk"));
                }
                remaining -= count;
                out.extend(std::iter::repeat_n(Arc::clone(&v), count));
            }
            if remaining != 0 {
                return Err(cur.corrupt("runs cover fewer values than chunk declares"));
            }
        }
        other => return Err(cur.corrupt(format!("encoding {other:?} invalid for Str"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn round_trip(col: &ColumnVec) -> (Encoding, ColumnVec) {
        let mut body = Vec::new();
        let enc = encode_page_body(col, 0, col.len(), &mut body);
        let mut asm = ColumnAssembler::new(col.len());
        let mut cur = Cursor::new(&body, "mem", 0);
        asm.push_page(&mut cur, col.len()).unwrap();
        let declared = col.dtype().unwrap_or(DataType::Int);
        (enc, asm.finish(declared, "mem").unwrap())
    }

    #[test]
    fn int_encodings_round_trip_exactly() {
        // Dense ascending ints → bit-pack wins.
        let c = ColumnVec::from_values((0..500).map(Value::from).collect()).unwrap();
        let (enc, back) = round_trip(&c);
        assert_eq!(enc, Encoding::BitPack);
        assert_eq!(back, c);
        // Constant ints → zero-width bit-pack wins (9 bytes total).
        let c = ColumnVec::from_values(vec![Value::from(42); 300]).unwrap();
        let (enc, back) = round_trip(&c);
        assert_eq!(enc, Encoding::BitPack);
        assert_eq!(back, c);
        // Long runs of widely spread values → RLE wins.
        let mut vals = vec![Value::from(0i64); 150];
        vals.extend(vec![Value::from(i64::MAX / 2); 150]);
        let c = ColumnVec::from_values(vals).unwrap();
        let (enc, back) = round_trip(&c);
        assert_eq!(enc, Encoding::Rle);
        assert_eq!(back, c);
        // Extremes survive frame-of-reference packing.
        let c = ColumnVec::from_values(vec![
            Value::from(i64::MIN),
            Value::from(i64::MAX),
            Value::Null,
            Value::from(0),
        ])
        .unwrap();
        let (_, back) = round_trip(&c);
        assert_eq!(back, c);
    }

    #[test]
    fn float_bits_survive_including_negative_zero() {
        let c = ColumnVec::from_values(vec![
            Value::from(-0.0),
            Value::from(0.0),
            Value::from(f64::INFINITY),
            Value::Null,
            Value::from(1.5e-300),
        ])
        .unwrap();
        let (_, back) = round_trip(&c);
        // PartialEq on f64 treats -0.0 == 0.0; check bits explicitly.
        match (&back, &c) {
            (ColumnVec::Float { data: a, .. }, ColumnVec::Float { data: b, .. }) => {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            _ => panic!("expected float columns"),
        }
        assert_eq!(back, c);
    }

    #[test]
    fn strings_pick_dictionary_on_low_cardinality() {
        let vals: Vec<Value> = (0..400)
            .map(|i| Value::str(["alpha", "beta", "gamma"][i % 3]))
            .collect();
        let c = ColumnVec::from_values(vals).unwrap();
        let (enc, back) = round_trip(&c);
        assert_eq!(enc, Encoding::Dict);
        assert_eq!(back, c);
    }

    #[test]
    fn bools_and_all_null_round_trip() {
        let c = ColumnVec::from_values(
            (0..130)
                .map(|i| {
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::from(i % 2 == 0)
                    }
                })
                .collect(),
        )
        .unwrap();
        let (_, back) = round_trip(&c);
        assert_eq!(back, c);

        let c = ColumnVec::AllNull { len: 64 };
        let (enc, back) = round_trip(&c);
        assert_eq!(enc, Encoding::AllNull);
        assert_eq!(back, c);
    }

    #[test]
    fn null_mask_reproduced_verbatim() {
        // No nulls → decoded mask must be the un-materialized fast path
        // (PartialEq distinguishes None from Some(all-zero)).
        let c = ColumnVec::from_values((0..10).map(Value::from).collect()).unwrap();
        let (_, back) = round_trip(&c);
        assert_eq!(back, c);
        match back {
            ColumnVec::Int { nulls, .. } => assert!(nulls.words().is_none()),
            _ => panic!(),
        }
    }

    #[test]
    fn multi_page_assembly_spans_word_boundaries() {
        let vals: Vec<Value> = (0..200)
            .map(|i| {
                if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::from(i)
                }
            })
            .collect();
        let c = ColumnVec::from_values(vals).unwrap();
        // Split at a non-multiple-of-64 boundary.
        let mut b1 = Vec::new();
        let mut b2 = Vec::new();
        encode_page_body(&c, 0, 77, &mut b1);
        encode_page_body(&c, 77, 123, &mut b2);
        let mut asm = ColumnAssembler::new(200);
        asm.push_page(&mut Cursor::new(&b1, "mem", 0), 77).unwrap();
        asm.push_page(&mut Cursor::new(&b2, "mem", 1), 123).unwrap();
        assert_eq!(asm.finish(DataType::Int, "mem").unwrap(), c);
    }

    #[test]
    fn corrupt_bodies_surface_typed_errors() {
        let c = ColumnVec::from_values((0..50).map(Value::from).collect()).unwrap();
        let mut body = Vec::new();
        encode_page_body(&c, 0, 50, &mut body);
        // Truncated body.
        let mut asm = ColumnAssembler::new(50);
        let short = &body[..body.len() - 3];
        let err = asm
            .push_page(&mut Cursor::new(short, "mem", 0), 50)
            .unwrap_err();
        assert!(matches!(err, crate::McdbError::PageCorrupt { .. }));
        // Unknown encoding tag.
        let mut bad = body.clone();
        bad[1] = 99;
        let mut asm = ColumnAssembler::new(50);
        let err = asm
            .push_page(&mut Cursor::new(&bad, "mem", 0), 50)
            .unwrap_err();
        assert!(matches!(err, crate::McdbError::PageCorrupt { .. }));
    }
}
