//! Grace-style spill partitions for hash joins and group-by.
//!
//! When a build side or group-by input exceeds the configured row
//! threshold, the executor hash-partitions the input by its key columns
//! (deterministic FNV-1a over the key values — never the process-seeded
//! `SipHash`, so partition assignment is identical across runs and
//! thread counts) and writes each partition through the page codec to a
//! temp file. Partitions are then processed one at a time, bounding the
//! in-memory hash table to one partition's share while their frames flow
//! through the shared buffer pool. Each partition preserves the global
//! row order of its lanes and every key lives wholly in one partition,
//! so per-group aggregation order — and therefore floating-point sums —
//! is bit-identical to the unspilled path.

use super::pager::{PagedStore, DEFAULT_PAGE_SIZE};
use super::pool::BufferPool;
use crate::query::batch::Batch;
use crate::value::GroupKey;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Spill policy for hash join build sides and group-by hash tables.
///
/// `threshold_rows` is the admission point: inputs at or under it are
/// processed fully in memory (the fast path); larger inputs degrade to
/// out-of-core partitioning instead of aborting. The pool handle is
/// where spilled frames are cached on read-back — typically the same
/// pool backing the catalog's paged tables, so one frame budget governs
/// the whole query.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Rows a hash build side / group-by input may hold before spilling.
    pub threshold_rows: usize,
    /// Number of hash partitions when spilling.
    pub partitions: usize,
    /// Directory for partition files (`None` = [`std::env::temp_dir`]).
    pub dir: Option<PathBuf>,
    /// Frame size of partition files.
    pub page_size: usize,
    /// Buffer pool spilled frames are read back through.
    pub pool: Arc<BufferPool>,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            threshold_rows: 1 << 20,
            partitions: 8,
            dir: None,
            page_size: DEFAULT_PAGE_SIZE,
            pool: BufferPool::new(64),
        }
    }
}

impl SpillConfig {
    /// A config that spills once inputs exceed `threshold_rows`, with the
    /// default partition fan-out, directory, and pool.
    pub fn with_threshold(threshold_rows: usize) -> Self {
        SpillConfig {
            threshold_rows,
            ..SpillConfig::default()
        }
    }

    fn partition_dir(&self) -> PathBuf {
        self.dir.clone().unwrap_or_else(std::env::temp_dir)
    }
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of spill partitions written so far. Monotonic;
/// snapshot it around a workload to measure its spill volume (the
/// `storage.spills` ledger counter).
pub fn spill_count() -> u64 {
    SPILL_SEQ.load(Ordering::Relaxed)
}

/// Deterministic partition assignment: FNV-1a over the key's values.
/// A pure function of the key — independent of process, thread count,
/// and hash-map seeding — so spilled and unspilled runs shard work
/// identically every time.
pub(crate) fn partition_of(keys: &[GroupKey], partitions: usize) -> usize {
    let mut hash = super::codec::FNV_OFFSET;
    for key in keys {
        let (tag, payload): (u8, Vec<u8>) = match key {
            GroupKey::Null => (0, Vec::new()),
            GroupKey::Int(v) => (1, v.to_le_bytes().to_vec()),
            GroupKey::Float(bits) => (2, bits.to_le_bytes().to_vec()),
            GroupKey::Bool(b) => (3, vec![*b as u8]),
            GroupKey::Str(s) => (4, s.as_bytes().to_vec()),
        };
        hash = super::codec::fnv1a(hash, &[tag]);
        hash = super::codec::fnv1a(hash, &(payload.len() as u32).to_le_bytes());
        hash = super::codec::fnv1a(hash, &payload);
    }
    (hash % partitions.max(1) as u64) as usize
}

/// One on-disk spill partition: a gathered sub-batch written through the
/// page codec. The temp file is deleted on drop.
pub(crate) struct SpilledBatch {
    path: PathBuf,
    pool: Arc<BufferPool>,
    n_rows: usize,
}

impl SpilledBatch {
    /// Gather `sel` out of `batch` and persist it as a partition file.
    pub(crate) fn write(
        batch: &Batch,
        sel: &[u32],
        cfg: &SpillConfig,
        label: &str,
    ) -> crate::Result<SpilledBatch> {
        let sub = batch.gather(sel)?;
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = cfg.partition_dir().join(format!(
            "mde_spill_{}_{seq}_{label}.mdet",
            std::process::id()
        ));
        PagedStore::write(&path, label, &sub, cfg.page_size)?;
        Ok(SpilledBatch {
            path,
            pool: Arc::clone(&cfg.pool),
            n_rows: sel.len(),
        })
    }

    /// Rows in this partition.
    pub(crate) fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Read the partition back through the pool. The transient store is
    /// retired (its frames released) when the returned batch has been
    /// decoded.
    pub(crate) fn read(&self) -> crate::Result<Batch> {
        let store = PagedStore::open(&self.path, Arc::clone(&self.pool))?;
        store.read_batch()
    }
}

impl Drop for SpilledBatch {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use crate::table::Table;
    use crate::value::Value;

    #[test]
    fn partition_assignment_is_deterministic_and_spread() {
        let keys: Vec<Vec<GroupKey>> = (0..64)
            .map(|i| {
                vec![
                    Value::from(i as i64).group_key(),
                    Value::str("k").group_key(),
                ]
            })
            .collect();
        let parts: Vec<usize> = keys.iter().map(|k| partition_of(k, 8)).collect();
        let again: Vec<usize> = keys.iter().map(|k| partition_of(k, 8)).collect();
        assert_eq!(parts, again);
        assert!(parts.iter().collect::<std::collections::HashSet<_>>().len() > 1);
        assert!(parts.iter().all(|&p| p < 8));
        // Nulls get a stable partition too.
        assert_eq!(
            partition_of(&[GroupKey::Null], 8),
            partition_of(&[GroupKey::Null], 8)
        );
    }

    #[test]
    fn spilled_batch_round_trips_and_cleans_up() {
        let t = Table::build("s", &[("a", DataType::Int), ("s", DataType::Str)])
            .rows((0..100).map(|i| vec![Value::from(i as i64), Value::str(format!("v{}", i % 5))]))
            .finish()
            .unwrap();
        let batch = Batch::from_table(&t);
        let cfg = SpillConfig {
            page_size: 256,
            ..SpillConfig::default()
        };
        let sel: Vec<u32> = (0..100).filter(|i| i % 3 == 0).collect();
        let spilled = SpilledBatch::write(&batch, &sel, &cfg, "p0").unwrap();
        let path = spilled.path.clone();
        assert!(path.exists());
        assert_eq!(spilled.n_rows(), sel.len());
        let back = spilled.read().unwrap();
        assert_eq!(back, batch.gather(&sel).unwrap());
        drop(spilled);
        assert!(!path.exists(), "spill file must be deleted on drop");
    }
}
