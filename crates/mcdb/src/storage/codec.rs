//! Little-endian byte codec shared by the page format, the table-file
//! header, and spill partitions.
//!
//! Deliberately mirrors the style of the `MDECKPT` checkpoint codec in
//! `mde-numeric`: explicit little-endian put/get helpers plus a
//! bounds-checked cursor whose every read can fail with a typed
//! corruption error instead of panicking on a truncated or damaged file.

use crate::McdbError;

/// FNV-1a offset basis (same constants as the checkpoint codec).
pub(crate) const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime.
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Fold `bytes` into a running FNV-1a hash.
pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked reader over a byte slice. Every accessor returns a
/// typed [`McdbError::PageCorrupt`] on overrun or malformed content; the
/// caller stamps in the file path and page index via [`Cursor::new`].
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a str,
    page: u64,
}

impl<'a> Cursor<'a> {
    /// A cursor over `buf`, attributing failures to `path` / `page`
    /// (`u64::MAX` for the file header).
    pub(crate) fn new(buf: &'a [u8], path: &'a str, page: u64) -> Self {
        Cursor {
            buf,
            pos: 0,
            path,
            page,
        }
    }

    /// The file path failures are attributed to.
    #[cfg(test)]
    pub(crate) fn path(&self) -> &'a str {
        self.path
    }

    /// The page number failures are attributed to.
    #[cfg(test)]
    pub(crate) fn page(&self) -> u64 {
        self.page
    }

    /// Typed corruption error at the cursor's location.
    pub(crate) fn corrupt(&self, reason: impl Into<String>) -> McdbError {
        McdbError::PageCorrupt {
            path: self.path.to_string(),
            page: self.page,
            reason: reason.into(),
        }
    }

    pub(crate) fn bytes(&mut self, n: usize) -> crate::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                self.corrupt(format!(
                    "truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len().saturating_sub(self.pos)
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> crate::Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> crate::Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> crate::Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> crate::Result<i64> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> crate::Result<String> {
        let n = self.u32()? as usize;
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| self.corrupt("string is not valid UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_bounds() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX);
        put_i64(&mut buf, -3);
        put_str(&mut buf, "héllo");
        let mut c = Cursor::new(&buf, "test", 0);
        assert_eq!(c.u32().unwrap(), 7);
        assert_eq!(c.u64().unwrap(), u64::MAX);
        assert_eq!(c.i64().unwrap(), -3);
        assert_eq!(c.str().unwrap(), "héllo");
        assert!(matches!(
            c.u8(),
            Err(McdbError::PageCorrupt { page: 0, .. })
        ));
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a("a") from the reference implementation.
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xAF63_DC4C_8601_EC8C);
    }
}
