//! Monte Carlo query estimation — the outer loop of MCDB.
//!
//! "Generating a sample of each uncertain data value creates a database
//! instance … Running an SQL query over the database instance generates a
//! sample from the query-result distribution. Iteration of this process
//! yields a collection of samples … that can then be used to estimate
//! distribution features of interest such as moments and quantiles."
//!
//! [`MonteCarloQuery`] packages the stochastic-table specs with an
//! aggregate query and runs `N` iterations (optionally across threads,
//! standing in for MCDB's parallel-database backend). The result object
//! answers the paper's analysis patterns:
//!
//! * moments and confidence intervals (plain MCDB);
//! * **extreme quantiles** for risk analysis (MCDB-R, Arumugam et al.);
//! * **threshold queries** — "Which regions will see more than a 2% decline
//!   in sales with at least 50% probability?" (Perez et al.) — via
//!   [`McResult::prob_above`]/[`McResult::threshold_decision`].

use crate::query::{Catalog, Plan};
use crate::random_table::RandomTableSpec;
use mde_numeric::rng::StreamFactory;
use mde_numeric::stats::{
    mean_confidence_interval, proportion_confidence_interval, quantile, ConfidenceInterval,
    Summary,
};

/// A Monte Carlo estimation task: realize the stochastic tables, run the
/// query, collect the scalar result; repeat.
#[derive(Debug, Clone)]
pub struct MonteCarloQuery {
    specs: Vec<RandomTableSpec>,
    query: Plan,
}

impl MonteCarloQuery {
    /// Create a task from stochastic-table specs and an aggregate query
    /// whose result must be a single scalar per realization.
    pub fn new(specs: Vec<RandomTableSpec>, query: Plan) -> Self {
        MonteCarloQuery { specs, query }
    }

    /// The query plan.
    pub fn query(&self) -> &Plan {
        &self.query
    }

    /// Run `n` Monte Carlo iterations sequentially.
    ///
    /// Iteration `i` draws from stream `i` of a [`StreamFactory`] seeded
    /// with `seed`, so results are identical to a parallel run with the
    /// same seed.
    pub fn run(&self, catalog: &Catalog, n: usize, seed: u64) -> crate::Result<McResult> {
        let factory = StreamFactory::new(seed);
        let mut scratch = catalog.clone();
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            samples.push(self.one_iteration(&mut scratch, &factory, i as u64)?);
        }
        Ok(McResult::new(samples))
    }

    /// Run `n` iterations across `threads` worker threads.
    ///
    /// Deterministic: iteration `i` uses stream `i` regardless of which
    /// thread executes it, so `run_parallel(.., seed)` equals
    /// `run(.., seed)` sample-for-sample.
    pub fn run_parallel(
        &self,
        catalog: &Catalog,
        n: usize,
        seed: u64,
        threads: usize,
    ) -> crate::Result<McResult> {
        let threads = threads.max(1).min(n.max(1));
        let factory = StreamFactory::new(seed);
        let mut results: Vec<Option<crate::Result<Vec<(usize, f64)>>>> =
            (0..threads).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let spec = &*self;
                let cat = catalog;
                handles.push(scope.spawn(move |_| {
                    let mut scratch = cat.clone();
                    let mut out = Vec::new();
                    // Static round-robin iteration assignment.
                    let mut i = t;
                    while i < n {
                        match spec.one_iteration(&mut scratch, &factory, i as u64) {
                            Ok(v) => out.push((i, v)),
                            Err(e) => return Err(e),
                        }
                        i += threads;
                    }
                    Ok(out)
                }));
            }
            for (slot, h) in results.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("worker thread panicked"));
            }
        })
        .expect("crossbeam scope panicked");

        let mut indexed = Vec::with_capacity(n);
        for r in results.into_iter().flatten() {
            indexed.extend(r?);
        }
        indexed.sort_by_key(|(i, _)| *i);
        Ok(McResult::new(indexed.into_iter().map(|(_, v)| v).collect()))
    }

    /// Run `n` iterations through the tuple-bundle engine: realize every
    /// stochastic table as bundles and execute the plan **once**.
    ///
    /// Requirements (checked, with a descriptive error): the query must be
    /// bundle-executable (no Sort/Limit; joins and grouping on
    /// deterministic columns). The Monte Carlo sample is statistically
    /// equivalent to [`MonteCarloQuery::run`] but uses a different RNG
    /// layout, so the two are not sample-for-sample identical; the bundle
    /// engine's per-iteration equivalence with naive execution is what the
    /// property tests pin down.
    pub fn run_bundled(
        &self,
        catalog: &Catalog,
        n: usize,
        seed: u64,
    ) -> crate::Result<McResult> {
        use crate::bundle::{execute_bundled, BundledCatalog, BundledTable};
        let factory = StreamFactory::new(seed);
        let mut bc = BundledCatalog::new(n);
        // Deterministic base tables are visible to the bundled plan too.
        for name in catalog.table_names() {
            bc.insert_const(catalog.get(name)?);
        }
        // Stochastic tables realize sequentially (later specs may read
        // earlier realizations only in their deterministic parts; the
        // bundled generator reads parameters from the *deterministic*
        // catalog, so cross-stochastic parametrization requires `run`).
        for (k, spec) in self.specs.iter().enumerate() {
            let mut rng = factory.stream(k as u64);
            let bt = BundledTable::from_spec(spec, catalog, n, &mut rng)?;
            bc.insert(bt)?;
        }
        let result = execute_bundled(&self.query, &bc)?;
        Ok(McResult::new(result.scalar_samples()?))
    }

    fn one_iteration(
        &self,
        scratch: &mut Catalog,
        factory: &StreamFactory,
        iteration: u64,
    ) -> crate::Result<f64> {
        let iter_factory = factory.child(iteration);
        for (k, spec) in self.specs.iter().enumerate() {
            let mut rng = iter_factory.stream(k as u64);
            let t = spec.realize(scratch, &mut rng)?;
            scratch.insert(t);
        }
        let result = scratch.query(&self.query)?;
        let v = result.scalar()?;
        if v.is_null() {
            // SQL aggregates over empty inputs yield NULL; represent as NaN?
            // No — surface it, the analyst must handle empty events.
            return Err(crate::McdbError::invalid_plan(
                "Monte Carlo query produced NULL; guard the aggregate with COUNT or COALESCE-style logic",
            ));
        }
        v.as_f64()
    }
}

/// The Monte Carlo sample of a query result, with estimation helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct McResult {
    samples: Vec<f64>,
    summary: Summary,
}

impl McResult {
    /// Wrap a sample vector.
    pub fn new(samples: Vec<f64>) -> Self {
        let summary = Summary::from_slice(&samples);
        McResult { samples, summary }
    }

    /// The raw samples, in iteration order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of Monte Carlo iterations.
    pub fn n(&self) -> usize {
        self.samples.len()
    }

    /// Sample mean — the MCDB estimate of the expected query result.
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// Sample variance of the query result distribution.
    pub fn variance(&self) -> f64 {
        self.summary.sample_variance()
    }

    /// Normal-theory confidence interval for the expected query result.
    pub fn mean_ci(&self, level: f64) -> crate::Result<ConfidenceInterval> {
        Ok(mean_confidence_interval(&self.summary, level)?)
    }

    /// Empirical quantile of the query-result distribution — including the
    /// extreme quantiles MCDB-R targets for risk analysis (e.g. `p = 0.99`
    /// for value-at-risk).
    pub fn quantile(&self, p: f64) -> crate::Result<f64> {
        Ok(quantile(&self.samples, p)?)
    }

    /// Estimated `P(result > x)` with a Wilson confidence interval.
    pub fn prob_above(&self, x: f64, level: f64) -> crate::Result<ConfidenceInterval> {
        let successes = self.samples.iter().filter(|&&v| v > x).count() as u64;
        Ok(proportion_confidence_interval(
            successes,
            self.samples.len() as u64,
            level,
        )?)
    }

    /// Estimated `P(result < x)` with a Wilson confidence interval.
    pub fn prob_below(&self, x: f64, level: f64) -> crate::Result<ConfidenceInterval> {
        let successes = self.samples.iter().filter(|&&v| v < x).count() as u64;
        Ok(proportion_confidence_interval(
            successes,
            self.samples.len() as u64,
            level,
        )?)
    }

    /// Threshold decision: is `P(result > x) >= p_min`?
    ///
    /// Returns `Some(true)`/`Some(false)` when the Wilson interval at the
    /// given confidence level lies entirely on one side of `p_min`, and
    /// `None` when the evidence is inconclusive (more iterations needed) —
    /// the decision procedure behind "Which regions will see more than a 2%
    /// decline in sales with at least 50% probability?".
    pub fn threshold_decision(
        &self,
        x: f64,
        p_min: f64,
        level: f64,
    ) -> crate::Result<Option<bool>> {
        let ci = self.prob_above(x, level)?;
        Ok(if ci.lo >= p_min {
            Some(true)
        } else if ci.hi < p_min {
            Some(false)
        } else {
            None
        })
    }
}

/// A grouped Monte Carlo estimation task, for queries of the paper's shape
/// "**Which regions** will see more than a 2% decline in sales with at
/// least 50% probability?" — the query produces one `(group, value)` row
/// per group per realization, and estimation runs per group.
#[derive(Debug, Clone)]
pub struct GroupedMonteCarloQuery {
    specs: Vec<RandomTableSpec>,
    query: Plan,
    group_col: String,
    value_col: String,
}

impl GroupedMonteCarloQuery {
    /// Create a grouped task. The query must return, per realization, one
    /// row per group with a `group_col` key and a numeric `value_col`.
    pub fn new(
        specs: Vec<RandomTableSpec>,
        query: Plan,
        group_col: impl Into<String>,
        value_col: impl Into<String>,
    ) -> Self {
        GroupedMonteCarloQuery {
            specs,
            query,
            group_col: group_col.into(),
            value_col: value_col.into(),
        }
    }

    /// Run `n` iterations, producing a per-group Monte Carlo sample.
    ///
    /// Every group must appear exactly once in every realization (the
    /// natural outcome of a `GROUP BY` over a fixed dimension); anything
    /// else is surfaced as an error rather than silently averaged.
    pub fn run(&self, catalog: &Catalog, n: usize, seed: u64) -> crate::Result<McGroupedResult> {
        let factory = StreamFactory::new(seed);
        let mut scratch = catalog.clone();
        let mut groups: Vec<(crate::value::Value, Vec<f64>)> = Vec::new();
        for i in 0..n {
            let iter_factory = factory.child(i as u64);
            for (k, spec) in self.specs.iter().enumerate() {
                let mut rng = iter_factory.stream(k as u64);
                let t = spec.realize(&scratch, &mut rng)?;
                scratch.insert(t);
            }
            let result = scratch.query(&self.query)?;
            let gi = result.schema().index_of(&self.group_col)?;
            let vi = result.schema().index_of(&self.value_col)?;
            if i == 0 {
                for row in result.rows() {
                    groups.push((row[gi].clone(), Vec::with_capacity(n)));
                }
            }
            if result.len() != groups.len() {
                return Err(crate::McdbError::invalid_plan(format!(
                    "iteration {i} produced {} groups, expected {}",
                    result.len(),
                    groups.len()
                )));
            }
            for row in result.rows() {
                let slot = groups
                    .iter_mut()
                    .find(|(g, _)| g.group_eq(&row[gi]))
                    .ok_or_else(|| {
                        crate::McdbError::invalid_plan(format!(
                            "iteration {i} produced unseen group `{}`",
                            row[gi]
                        ))
                    })?;
                slot.1.push(row[vi].as_f64()?);
            }
        }
        Ok(McGroupedResult {
            groups: groups
                .into_iter()
                .map(|(g, samples)| (g, McResult::new(samples)))
                .collect(),
        })
    }
}

/// Per-group Monte Carlo results.
#[derive(Debug, Clone)]
pub struct McGroupedResult {
    /// `(group key, per-group sample)` in first-seen order.
    pub groups: Vec<(crate::value::Value, McResult)>,
}

impl McGroupedResult {
    /// The result for one group, if present.
    pub fn group(&self, key: &crate::value::Value) -> Option<&McResult> {
        self.groups
            .iter()
            .find(|(g, _)| g.group_eq(key))
            .map(|(_, r)| r)
    }

    /// The paper's selection: groups whose `P(value < threshold) ≥ p_min`
    /// is *confidently true* at the given confidence level (e.g. "regions
    /// with a >2% decline with ≥50% probability" after projecting decline
    /// as a value). Returns `(group, decision)` per group, where `None`
    /// means inconclusive.
    pub fn threshold_below(
        &self,
        threshold: f64,
        p_min: f64,
        level: f64,
    ) -> crate::Result<Vec<(crate::value::Value, Option<bool>)>> {
        self.groups
            .iter()
            .map(|(g, r)| {
                let ci = r.prob_below(threshold, level)?;
                let decision = if ci.lo >= p_min {
                    Some(true)
                } else if ci.hi < p_min {
                    Some(false)
                } else {
                    None
                };
                Ok((g.clone(), decision))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::AggSpec;
    use crate::schema::DataType;
    use crate::table::Table;
    use crate::value::Value;
    use crate::vg::NormalVg;
    use std::sync::Arc;

    fn demand_catalog() -> Catalog {
        let mut db = Catalog::new();
        db.insert(
            Table::build("ITEMS", &[("IID", DataType::Int)])
                .rows((0..20).map(|i| vec![Value::from(i)]))
                .finish()
                .unwrap(),
        );
        db.insert(
            Table::build(
                "PARAMS",
                &[("MEAN", DataType::Float), ("STD", DataType::Float)],
            )
            .row(vec![Value::from(10.0), Value::from(2.0)])
            .finish()
            .unwrap(),
        );
        db
    }

    fn revenue_query() -> MonteCarloQuery {
        // Total "revenue" = sum over 20 items of N(10, 2) draws; true mean
        // is 200, true std is 2*sqrt(20) ≈ 8.94.
        let spec = RandomTableSpec::builder("SALES")
            .for_each(Plan::scan("ITEMS"))
            .with_vg(Arc::new(NormalVg))
            .vg_params_query(Plan::scan("PARAMS"))
            .select(&[("IID", Expr::col("IID")), ("AMT", Expr::col("VALUE"))])
            .build()
            .unwrap();
        let q = Plan::scan("SALES").aggregate(
            &[],
            vec![AggSpec::new(
                "TOTAL",
                crate::query::AggFunc::Sum,
                Expr::col("AMT"),
            )],
        );
        MonteCarloQuery::new(vec![spec], q)
    }

    #[test]
    fn estimates_query_result_distribution() {
        let db = demand_catalog();
        let res = revenue_query().run(&db, 500, 7).unwrap();
        assert_eq!(res.n(), 500);
        // Mean within 5 standard errors of 200.
        let se = res.variance().sqrt() / (res.n() as f64).sqrt();
        assert!((res.mean() - 200.0).abs() < 5.0 * se + 1e-9);
        // Std close to 8.94.
        assert!((res.variance().sqrt() - 8.94).abs() < 1.5);
        // CI covers the truth.
        assert!(res.mean_ci(0.99).unwrap().contains(200.0));
    }

    #[test]
    fn quantiles_and_risk() {
        let db = demand_catalog();
        let res = revenue_query().run(&db, 1000, 8).unwrap();
        let q50 = res.quantile(0.5).unwrap();
        let q99 = res.quantile(0.99).unwrap();
        assert!((q50 - 200.0).abs() < 2.0);
        // 99% quantile of N(200, 8.94) ≈ 200 + 2.33*8.94 ≈ 220.8.
        assert!((q99 - 220.8).abs() < 5.0, "q99 = {q99}");
        assert!(q99 > q50);
    }

    #[test]
    fn threshold_queries() {
        let db = demand_catalog();
        let res = revenue_query().run(&db, 400, 9).unwrap();
        // P(total > 150) is essentially 1.
        assert_eq!(res.threshold_decision(150.0, 0.5, 0.95).unwrap(), Some(true));
        // P(total > 250) is essentially 0.
        assert_eq!(res.threshold_decision(250.0, 0.5, 0.95).unwrap(), Some(false));
        // The decision is always consistent with the Wilson interval.
        let ci = res.prob_above(200.0, 0.95).unwrap();
        let decision = res.threshold_decision(200.0, 0.5, 0.95).unwrap();
        match decision {
            Some(true) => assert!(ci.lo >= 0.5),
            Some(false) => assert!(ci.hi < 0.5),
            None => assert!(ci.contains(0.5)),
        }
        let below = res.prob_below(200.0, 0.95).unwrap();
        assert!((below.estimate + ci.estimate - 1.0).abs() < 1e-12);

        // A deterministic inconclusive case: 50/100 successes straddles 0.5.
        let balanced = McResult::new(
            (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect(),
        );
        assert_eq!(balanced.threshold_decision(0.0, 0.5, 0.95).unwrap(), None);
    }

    #[test]
    fn bundled_run_is_statistically_equivalent() {
        let db = demand_catalog();
        let q = revenue_query();
        let naive = q.run(&db, 400, 21).unwrap();
        let bundled = q.run_bundled(&db, 400, 22).unwrap();
        assert_eq!(bundled.n(), 400);
        // Same distribution (mean 200, sd ~8.94): means within combined
        // standard errors.
        let se = (naive.variance() / 400.0 + bundled.variance() / 400.0).sqrt();
        assert!(
            (naive.mean() - bundled.mean()).abs() < 5.0 * se,
            "naive {} vs bundled {}",
            naive.mean(),
            bundled.mean()
        );
        assert!((bundled.variance().sqrt() - 8.94).abs() < 1.5);
    }

    #[test]
    fn bundled_run_rejects_unbundleable_plans() {
        let db = demand_catalog();
        let spec = revenue_query().specs[0].clone();
        let q = MonteCarloQuery::new(
            vec![spec],
            Plan::scan("SALES")
                .aggregate(
                    &[],
                    vec![AggSpec::new(
                        "TOTAL",
                        crate::query::AggFunc::Sum,
                        Expr::col("AMT"),
                    )],
                )
                .limit(1),
        );
        assert!(q.run_bundled(&db, 10, 1).is_err());
    }

    #[test]
    fn parallel_equals_sequential() {
        let db = demand_catalog();
        let q = revenue_query();
        let seq = q.run(&db, 64, 13).unwrap();
        let par = q.run_parallel(&db, 64, 13, 4).unwrap();
        assert_eq!(seq.samples(), par.samples());
        // Thread count must not change results.
        let par2 = q.run_parallel(&db, 64, 13, 7).unwrap();
        assert_eq!(seq.samples(), par2.samples());
    }

    #[test]
    fn non_scalar_query_rejected() {
        let db = demand_catalog();
        let spec = revenue_query();
        let bad = MonteCarloQuery::new(
            vec![spec.specs[0].clone()],
            Plan::scan("SALES"), // multi-row, multi-column
        );
        assert!(bad.run(&db, 2, 1).is_err());
    }

    #[test]
    fn grouped_query_answers_the_which_regions_question() {
        // Two regions with different demand means; ask which will fall
        // below a sales threshold with >= 50% probability.
        let mut db = Catalog::new();
        db.insert(
            Table::build(
                "REGIONS",
                &[("NAME", DataType::Str), ("MEAN", DataType::Float)],
            )
            .row(vec![Value::from("east"), Value::from(100.0)])
            .row(vec![Value::from("west"), Value::from(80.0)])
            .finish()
            .unwrap(),
        );
        let spec = RandomTableSpec::builder("SALES")
            .for_each(Plan::scan("REGIONS"))
            .with_vg(std::sync::Arc::new(crate::vg::NormalVg))
            .vg_params_exprs(&[Expr::col("MEAN"), Expr::lit(5.0)])
            .select(&[
                ("REGION", Expr::col("NAME")),
                ("AMT", Expr::col("VALUE")),
            ])
            .build()
            .unwrap();
        let q = Plan::scan("SALES").aggregate(
            &["REGION"],
            vec![AggSpec::new("TOTAL", crate::query::AggFunc::Sum, Expr::col("AMT"))],
        );
        let grouped = GroupedMonteCarloQuery::new(vec![spec], q, "REGION", "TOTAL");
        let res = grouped.run(&db, 300, 5).unwrap();
        assert_eq!(res.groups.len(), 2);
        // East ~ N(100, 5), west ~ N(80, 5): below 90 is a near-certain NO
        // for east, YES for west.
        let decisions = res.threshold_below(90.0, 0.5, 0.95).unwrap();
        let by_name = |n: &str| {
            decisions
                .iter()
                .find(|(g, _)| g.group_eq(&Value::from(n)))
                .unwrap()
                .1
        };
        assert_eq!(by_name("east"), Some(false));
        assert_eq!(by_name("west"), Some(true));
        // Per-group results are real MC samples.
        let east = res.group(&Value::from("east")).unwrap();
        assert_eq!(east.n(), 300);
        assert!((east.mean() - 100.0).abs() < 2.0);
    }

    #[test]
    fn mc_result_on_known_samples() {
        let r = McResult::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(r.mean(), 3.0);
        assert_eq!(r.quantile(0.5).unwrap(), 3.0);
        let ci = r.prob_above(2.5, 0.95).unwrap();
        assert!((ci.estimate - 0.6).abs() < 1e-12);
    }
}
