//! Monte Carlo query estimation — the outer loop of MCDB.
//!
//! "Generating a sample of each uncertain data value creates a database
//! instance … Running an SQL query over the database instance generates a
//! sample from the query-result distribution. Iteration of this process
//! yields a collection of samples … that can then be used to estimate
//! distribution features of interest such as moments and quantiles."
//!
//! [`MonteCarloQuery`] packages the stochastic-table specs with an
//! aggregate query and runs `N` iterations (optionally across threads,
//! standing in for MCDB's parallel-database backend). The result object
//! answers the paper's analysis patterns:
//!
//! * moments and confidence intervals (plain MCDB);
//! * **extreme quantiles** for risk analysis (MCDB-R, Arumugam et al.);
//! * **threshold queries** — "Which regions will see more than a 2% decline
//!   in sales with at least 50% probability?" (Perez et al.) — via
//!   [`McResult::prob_above`]/[`McResult::threshold_decision`].

//!
//! Runs are **supervised**: per-replicate execution is wrapped in
//! `catch_unwind`, panics and non-finite samples become typed
//! [`McdbError::ReplicateFailed`](crate::McdbError::ReplicateFailed)
//! failures, and a [`RunPolicy`] decides whether a failing replicate
//! aborts the run, retries on a fresh deterministic sub-seed, or is
//! dropped best-effort with the damage recorded in a [`RunReport`]. See
//! [`MonteCarloQuery::run_with_options`].
//!
//! Runs are also **durable campaigns**: attach a
//! [`CheckpointSpec`](mde_numeric::CheckpointSpec) and the run persists a
//! crash-consistent [`CampaignState`] every `k` replicates (and always at
//! stop/completion); attach a [`Deadline`](mde_numeric::Deadline) or
//! [`CancelToken`](mde_numeric::CancelToken) and the run stops at the next
//! replicate boundary with a partial [`McRun`] — samples so far, partial
//! ledger, final checkpoint — rather than an error. A preempted or
//! expired campaign resumed via [`MonteCarloQuery::resume_from`] is
//! bit-identical to one that was never interrupted, sequentially and in
//! parallel.

use crate::query::{Catalog, Plan, PreparedQuery};
use crate::random_table::{PreparedRandomTable, RandomTableSpec};
use crate::table::Table;
use mde_numeric::cache::{CacheEntry, CacheKey, Provenance};
use mde_numeric::checkpoint::{CampaignState, Fingerprint};
use mde_numeric::resilience::{
    catch_panic, retry_seed, supervise_replicate, AttemptFailure, FaultKind, ReplicateOutcome,
    RunOptions, RunReport, StopCause,
};
use mde_numeric::rng::StreamFactory;
use mde_numeric::stats::{
    mean_confidence_interval, proportion_confidence_interval, quantile, ConfidenceInterval, Summary,
};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Campaign tag written into every Monte Carlo checkpoint.
const CAMPAIGN_MC: &str = "mcdb.monte-carlo";

/// A Monte Carlo estimation task: realize the stochastic tables, run the
/// query, collect the scalar result; repeat.
#[derive(Debug, Clone)]
pub struct MonteCarloQuery {
    specs: Vec<RandomTableSpec>,
    query: Plan,
}

impl MonteCarloQuery {
    /// Create a task from stochastic-table specs and an aggregate query
    /// whose result must be a single scalar per realization.
    pub fn new(specs: Vec<RandomTableSpec>, query: Plan) -> Self {
        MonteCarloQuery { specs, query }
    }

    /// The query plan.
    pub fn query(&self) -> &Plan {
        &self.query
    }

    /// Run `n` Monte Carlo iterations sequentially.
    ///
    /// Iteration `i` draws from stream `i` of a [`StreamFactory`] seeded
    /// with `seed`, so results are identical to a parallel run with the
    /// same seed. Equivalent to [`MonteCarloQuery::run_with_options`]
    /// under [`RunPolicy::FailFast`]: the first failing replicate aborts
    /// the run with a typed error (a panicking VG function surfaces as
    /// [`McdbError::ReplicateFailed`](crate::McdbError::ReplicateFailed),
    /// never as a panic in the caller).
    pub fn run(&self, catalog: &Catalog, n: usize, seed: u64) -> crate::Result<McResult> {
        Ok(self
            .run_with_options(catalog, n, seed, &RunOptions::default())?
            .result)
    }

    /// Run `n` iterations across `threads` worker threads.
    ///
    /// Deterministic: iteration `i` uses stream `i` regardless of which
    /// thread executes it, so `run_parallel(.., seed)` equals
    /// `run(.., seed)` sample-for-sample. Supervision is as in
    /// [`MonteCarloQuery::run`] (fail-fast with typed errors).
    pub fn run_parallel(
        &self,
        catalog: &Catalog,
        n: usize,
        seed: u64,
        threads: usize,
    ) -> crate::Result<McResult> {
        Ok(self
            .run_parallel_with_options(catalog, n, seed, threads, &RunOptions::default())?
            .result)
    }

    /// Run `n` supervised Monte Carlo iterations sequentially under a
    /// [`RunPolicy`].
    ///
    /// Each replicate executes inside `catch_unwind`; panics, typed
    /// errors, and non-finite samples are classified and handled per the
    /// policy:
    ///
    /// * [`RunPolicy::FailFast`] — abort on the first failure with the
    ///   replicate's typed error.
    /// * [`RunPolicy::Retry`] — re-execute the replicate on a fresh
    ///   deterministic sub-seed ([`retry_seed`]) up to `max_attempts`.
    /// * [`RunPolicy::BestEffort`] — drop failing replicates; the run
    ///   succeeds as long as at least `min_fraction` of replicates
    ///   produce a sample, and the returned [`RunReport`] carries the
    ///   complete failure ledger.
    ///
    /// Fatal errors (unknown columns, invalid plans, bad parameters —
    /// anything that would fail identically on every attempt) abort the
    /// run under every policy. Deterministic given `(seed, policy)`:
    /// identical to [`MonteCarloQuery::run_parallel_with_options`] at any
    /// thread count, including which replicates are retried or dropped.
    pub fn run_with_options(
        &self,
        catalog: &Catalog,
        n: usize,
        seed: u64,
        opts: &RunOptions,
    ) -> crate::Result<McRun> {
        if let Some(hit) = self.replay_cached(n, seed, opts)? {
            return Ok(hit);
        }
        let state = CampaignState::new(CAMPAIGN_MC, self.fingerprint(n, seed), seed, n as u64);
        let run = self.campaign(catalog, n, seed, opts, state)?;
        self.cache_completed(n, seed, opts, &run);
        Ok(run)
    }

    /// Resume a sequential supervised run from an in-memory
    /// [`CampaignState`] (as returned in [`McRun::checkpoint`]). The state
    /// must carry this campaign's tag and seed/spec fingerprint —
    /// anything else is a typed
    /// [`McdbError::Checkpoint`](crate::McdbError::Checkpoint) — and the
    /// run continues from the state's cursor, producing a final [`McRun`]
    /// bit-identical to an uninterrupted run.
    pub fn resume_with_options(
        &self,
        catalog: &Catalog,
        n: usize,
        seed: u64,
        opts: &RunOptions,
        state: CampaignState,
    ) -> crate::Result<McRun> {
        state.validate(CAMPAIGN_MC, self.fingerprint(n, seed))?;
        let run = self.campaign(catalog, n, seed, opts, state)?;
        self.cache_completed(n, seed, opts, &run);
        Ok(run)
    }

    /// Resume a sequential supervised run from a checkpoint file written
    /// by a previous (interrupted) run. Validates the checksum and the
    /// campaign fingerprint before continuing from the cursor.
    pub fn resume_from(
        &self,
        catalog: &Catalog,
        n: usize,
        seed: u64,
        opts: &RunOptions,
        path: &Path,
    ) -> crate::Result<McRun> {
        let state = CampaignState::load(path)?;
        self.resume_with_options(catalog, n, seed, opts, state)
    }

    /// The digest that ties a checkpoint to this exact campaign: tag,
    /// master seed, replicate count, and the debug shape of the specs and
    /// query plan. Resuming with a different query, spec set, seed, or
    /// `n` is refused.
    fn fingerprint(&self, n: usize, seed: u64) -> u64 {
        Fingerprint::new(CAMPAIGN_MC)
            .push_u64(seed)
            .push_u64(n as u64)
            .push_str(&format!("{:?}", self.specs))
            .push_str(&format!("{:?}", self.query))
            .finish()
    }

    /// Content address of a *completed* run of this campaign in the
    /// cross-campaign result cache: the campaign fingerprint plus the
    /// run-shaping options. Policy and fault plan participate because
    /// they change which replicates survive (and therefore the bits of
    /// the result); deadline/cancel/checkpoint/threads do not — a
    /// completed run is the same completed run regardless of how it was
    /// scheduled or persisted.
    fn cache_key(&self, n: usize, seed: u64, opts: &RunOptions) -> CacheKey {
        let spec_fingerprint = Fingerprint::new("mcdb.mc-cache")
            .push_u64(self.fingerprint(n, seed))
            .push_str(&format!("{:?}", opts.policy))
            .push_str(&format!("{:?}", opts.faults))
            .finish();
        CacheKey::for_campaign(spec_fingerprint, n as u64, seed)
    }

    /// Replay a cached completed run, if `opts.cache` holds one for this
    /// exact campaign. Reconstructs the full [`McRun`] — samples,
    /// deterministic report, resumable final state — bit-identically to
    /// a recompute, honoring the final-checkpoint contract when a
    /// [`CheckpointSpec`](mde_numeric::CheckpointSpec) is attached. A
    /// structurally implausible entry is treated as a miss (recompute),
    /// never an error.
    fn replay_cached(
        &self,
        n: usize,
        seed: u64,
        opts: &RunOptions,
    ) -> crate::Result<Option<McRun>> {
        let Some(cache) = &opts.cache else {
            return Ok(None);
        };
        let entry = match cache.get(&self.cache_key(n, seed, opts)) {
            Some(e) => e,
            None => return Ok(None),
        };
        let Some(report) = entry.report else {
            return Ok(None);
        };
        if entry.values.len() != entry.ints.len() || entry.values.len() > n {
            return Ok(None);
        }
        let mut state = CampaignState::new(CAMPAIGN_MC, self.fingerprint(n, seed), seed, n as u64);
        state.cursor = n as u64;
        state.completed = entry
            .ints
            .iter()
            .zip(&entry.values)
            .map(|(&i, &v)| (i, vec![v]))
            .collect();
        state.report = report;
        if let Some(spec) = &opts.checkpoint {
            let stats = state
                .save_stats(&spec.path)
                .map_err(crate::McdbError::from)?;
            stats.record_into(&mut state.report.metrics);
        }
        let samples = state.completed.iter().map(|(_, v)| v[0]).collect();
        Ok(Some(McRun {
            result: McResult::new(samples),
            report: state.report.clone(),
            stopped: None,
            checkpoint: Some(state),
        }))
    }

    /// Store a *completed* run in `opts.cache` (stopped/partial runs are
    /// never cached — they are checkpoints, not answers). Best-effort
    /// durable: a failed persist is counted, never surfaced.
    fn cache_completed(&self, n: usize, seed: u64, opts: &RunOptions, run: &McRun) {
        let Some(cache) = &opts.cache else { return };
        if run.stopped.is_some() {
            return;
        }
        let Some(state) = &run.checkpoint else { return };
        let key = self.cache_key(n, seed, opts);
        let spec_fingerprint = key.spec_fingerprint;
        cache.insert_durable(CacheEntry {
            key,
            values: state.completed.iter().map(|(_, v)| v[0]).collect(),
            ints: state.completed.iter().map(|(i, _)| *i).collect(),
            report: Some(run.report.clone()),
            provenance: Provenance {
                campaign: CAMPAIGN_MC.to_string(),
                spec_fingerprint,
                upstream: Vec::new(),
            },
        });
    }

    /// The sequential campaign loop: continue from `state.cursor`, check
    /// for deadline/cancel/preempt before each replicate, absorb outcomes
    /// into the state, and persist periodic checkpoints at the
    /// [`CheckpointSpec`](mde_numeric::CheckpointSpec) cadence.
    fn campaign(
        &self,
        catalog: &Catalog,
        n: usize,
        seed: u64,
        opts: &RunOptions,
        mut state: CampaignState,
    ) -> crate::Result<McRun> {
        // Plan once: specs and the aggregate query are prepared against the
        // base catalog (plus placeholder schemas for the stochastic
        // tables), then executed per replicate. Prepare-time errors are
        // structural — they would fail identically on every attempt — so
        // they abort under every policy, exactly as fatal runtime errors
        // did when planning happened inside each replicate.
        let prepared = prepare_task(&self.specs, &self.query, catalog)?;
        let factory = StreamFactory::new(seed);
        let mut scratch = catalog.clone();
        let mut stopped = None;
        for i in state.cursor..n as u64 {
            if let Some(cause) = opts.stop_cause(i) {
                stopped = Some(cause);
                break;
            }
            let t0 = std::time::Instant::now();
            let outcome = self.supervised_iteration(
                &prepared,
                catalog,
                &mut scratch,
                &factory,
                seed,
                i,
                opts,
            );
            state.report.absorb(&outcome);
            state
                .report
                .metrics
                .observe_duration("mc.replicate", t0.elapsed());
            match outcome {
                ReplicateOutcome::Success { value, .. } => {
                    state.report.metrics.observe("mc.sample", value);
                    state.completed.push((i, vec![value]))
                }
                ReplicateOutcome::Dropped { .. } => {}
                ReplicateOutcome::Abort { error, failures } => {
                    return Err(abort_error(error, &failures));
                }
            }
            state.cursor = i + 1;
            if let Some(spec) = &opts.checkpoint {
                if spec.due(state.cursor) {
                    let stats = state
                        .save_stats(&spec.path)
                        .map_err(crate::McdbError::from)?;
                    stats.record_into(&mut state.report.metrics);
                }
            }
        }
        seal(state, n, opts, stopped)
    }

    /// Run `n` supervised iterations across `threads` worker threads under
    /// a [`RunPolicy`]. Policy semantics are those of
    /// [`MonteCarloQuery::run_with_options`], and the result — samples,
    /// retries, drops, and the [`RunReport`] ledger — is bit-identical to
    /// the sequential run at any thread count: retry sub-seeds are a pure
    /// function of `(seed, replicate, attempt)`, so a retried replicate
    /// produces the same sample no matter which worker re-executes it.
    pub fn run_parallel_with_options(
        &self,
        catalog: &Catalog,
        n: usize,
        seed: u64,
        threads: usize,
        opts: &RunOptions,
    ) -> crate::Result<McRun> {
        // The cache key excludes the thread count on purpose: parallel
        // and sequential runs are bit-identical, so either may replay a
        // result the other computed.
        if let Some(hit) = self.replay_cached(n, seed, opts)? {
            return Ok(hit);
        }
        let state = CampaignState::new(CAMPAIGN_MC, self.fingerprint(n, seed), seed, n as u64);
        let run = self.campaign_parallel(catalog, n, seed, threads, opts, state)?;
        self.cache_completed(n, seed, opts, &run);
        Ok(run)
    }

    /// Resume a parallel supervised run from an in-memory
    /// [`CampaignState`]. Checkpoints are interchangeable between the
    /// sequential and parallel paths: a sequentially written checkpoint
    /// resumes in parallel (and vice versa) with bit-identical results.
    pub fn resume_parallel_with_options(
        &self,
        catalog: &Catalog,
        n: usize,
        seed: u64,
        threads: usize,
        opts: &RunOptions,
        state: CampaignState,
    ) -> crate::Result<McRun> {
        state.validate(CAMPAIGN_MC, self.fingerprint(n, seed))?;
        let run = self.campaign_parallel(catalog, n, seed, threads, opts, state)?;
        self.cache_completed(n, seed, opts, &run);
        Ok(run)
    }

    /// Resume a parallel supervised run from a checkpoint file.
    pub fn resume_parallel_from(
        &self,
        catalog: &Catalog,
        n: usize,
        seed: u64,
        threads: usize,
        opts: &RunOptions,
        path: &Path,
    ) -> crate::Result<McRun> {
        let state = CampaignState::load(path)?;
        self.resume_parallel_with_options(catalog, n, seed, threads, opts, state)
    }

    /// The parallel campaign loop. Workers claim replicates round-robin
    /// from the resume cursor; a shared `stop_at` watermark (lowered with
    /// `fetch_min` by whichever worker first observes a stop condition or
    /// an abort) makes every worker halt at its next boundary, and the
    /// merge keeps only replicates below the final watermark — so a
    /// stopped parallel run commits exactly the same contiguous prefix a
    /// sequential run would, at any thread count.
    fn campaign_parallel(
        &self,
        catalog: &Catalog,
        n: usize,
        seed: u64,
        threads: usize,
        opts: &RunOptions,
        mut state: CampaignState,
    ) -> crate::Result<McRun> {
        type Entry = (
            u64,
            ReplicateOutcome<f64, crate::McdbError>,
            std::time::Duration,
        );
        type WorkerOut = (Vec<Entry>, Option<(u64, StopCause)>);
        let start = state.cursor;
        let remaining = (n as u64).saturating_sub(start) as usize;
        let threads = threads.clamp(1, remaining.max(1));
        // Plan once, before any worker starts; every thread executes the
        // same shared prepared plans against its own scratch catalog.
        let prepared = prepare_task(&self.specs, &self.query, catalog)?;
        let factory = StreamFactory::new(seed);
        let stop_at = AtomicU64::new(n as u64);
        let mut results: Vec<Option<WorkerOut>> = (0..threads).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let spec = &*self;
                let cat = catalog;
                let prepared = &prepared;
                let stop_at = &stop_at;
                handles.push(scope.spawn(move |_| {
                    let mut scratch = cat.clone();
                    let mut entries: Vec<Entry> = Vec::new();
                    let mut local_stop: Option<(u64, StopCause)> = None;
                    // Static round-robin iteration assignment from the
                    // resume cursor.
                    let mut i = start + t as u64;
                    while i < n as u64 {
                        if i >= stop_at.load(Ordering::Acquire) {
                            break;
                        }
                        if let Some(cause) = opts.stop_cause(i) {
                            stop_at.fetch_min(i, Ordering::AcqRel);
                            local_stop = Some((i, cause));
                            break;
                        }
                        let t0 = std::time::Instant::now();
                        let outcome = spec.supervised_iteration(
                            prepared,
                            cat,
                            &mut scratch,
                            &factory,
                            seed,
                            i,
                            opts,
                        );
                        let aborts = matches!(outcome, ReplicateOutcome::Abort { .. });
                        entries.push((i, outcome, t0.elapsed()));
                        if aborts {
                            // No worker needs to proceed past an abort; the
                            // merge decides whether it survives a stop.
                            stop_at.fetch_min(i, Ordering::AcqRel);
                            break;
                        }
                        i += threads as u64;
                    }
                    (entries, local_stop)
                }));
            }
            for (slot, h) in results.iter_mut().zip(handles) {
                // A join failure is a panic outside the supervised
                // per-replicate region — infrastructure loss, surfaced as
                // a typed fatal error rather than propagated.
                match h.join() {
                    Ok(out) => *slot = Some(out),
                    Err(_) => {
                        return Err(crate::McdbError::worker_lost(
                            "Monte Carlo worker panicked outside the supervised region",
                        ))
                    }
                }
            }
            Ok(())
        })
        .map_err(|_| crate::McdbError::worker_lost("Monte Carlo scoped worker pool panicked"))??;

        // Merge: earliest stop boundary vs earliest abort decides the
        // outcome, exactly as the sequential loop encountering them in
        // replicate order would.
        let mut entries: Vec<Entry> = Vec::new();
        let mut stop: Option<(u64, StopCause)> = None;
        for (chunk, local_stop) in results.into_iter().flatten() {
            entries.extend(chunk);
            if let Some((b, cause)) = local_stop {
                stop = Some(match stop {
                    Some((sb, sc)) if sb <= b => (sb, sc),
                    _ => (b, cause),
                });
            }
        }
        entries.sort_by_key(|(i, _, _)| *i);
        let abort_at = entries
            .iter()
            .find(|(_, o, _)| matches!(o, ReplicateOutcome::Abort { .. }))
            .map(|(i, _, _)| *i);
        if let Some(a) = abort_at {
            if stop.map(|(s, _)| a < s).unwrap_or(true) {
                // The abort happens before any stop boundary: the
                // sequential loop would have hit it and surfaced the error.
                let (_, outcome, _) = match entries.into_iter().find(|(i, _, _)| *i == a) {
                    Some(entry) => entry,
                    None => {
                        return Err(crate::McdbError::worker_lost(
                            "abort bookkeeping lost its ledger entry during merge",
                        ))
                    }
                };
                if let ReplicateOutcome::Abort { error, failures } = outcome {
                    return Err(abort_error(error, &failures));
                }
                return Err(crate::McdbError::worker_lost(
                    "abort index does not point at an abort outcome",
                ));
            }
        }
        let cut = stop.map(|(b, _)| b).unwrap_or(n as u64);
        for (i, outcome, elapsed) in entries {
            // Replicates at or past the stop boundary were executed by
            // workers that had not yet observed the stop; the sequential
            // run never reaches them, so they are discarded unabsorbed.
            if i >= cut {
                continue;
            }
            state.report.absorb(&outcome);
            state
                .report
                .metrics
                .observe_duration("mc.replicate", elapsed);
            if let ReplicateOutcome::Success { value, .. } = outcome {
                state.report.metrics.observe("mc.sample", value);
                state.completed.push((i, vec![value]));
            }
        }
        state.cursor = cut;
        seal(state, n, opts, stop.map(|(_, c)| c))
    }

    /// Supervise one replicate to completion: run the attempt loop under
    /// the policy, executing each attempt inside `catch_unwind`, injecting
    /// any scheduled fault, deriving fresh sub-seeds for reseeding
    /// retries, and resetting the scratch catalog after a failed attempt
    /// (a panic can leave partially realized tables behind).
    #[allow(clippy::too_many_arguments)]
    fn supervised_iteration(
        &self,
        prepared: &PreparedMc,
        catalog: &Catalog,
        scratch: &mut Catalog,
        factory: &StreamFactory,
        master_seed: u64,
        i: u64,
        opts: &RunOptions,
    ) -> ReplicateOutcome<f64, crate::McdbError> {
        supervise_replicate(i, &opts.policy, |a| {
            // Attempt 0 keeps the legacy stream layout (bit-compatible
            // with unsupervised runs); reseeding retries derive a fresh
            // deterministic sub-seed so they never replay the failing
            // stream.
            let iter_factory = if a == 0 || !opts.policy.reseeds() {
                factory.child(i)
            } else {
                StreamFactory::new(retry_seed(master_seed, i, a))
            };
            let injected = opts.fault(i, a);
            if injected == Some(FaultKind::Error) {
                return Err(AttemptFailure::from_error(crate::McdbError::Numeric(
                    mde_numeric::NumericError::NoConvergence {
                        context: "injected fault",
                        iterations: 0,
                    },
                )));
            }
            let run = catch_panic(|| -> crate::Result<f64> {
                if injected == Some(FaultKind::Panic) {
                    panic!("injected fault: panic in replicate {i} attempt {a}");
                }
                let v = realize_and_query(prepared, scratch, &iter_factory)?;
                Ok(if injected == Some(FaultKind::Nan) {
                    f64::NAN
                } else {
                    v
                })
            });
            match run {
                Err(panic_msg) => {
                    *scratch = catalog.clone();
                    Err(AttemptFailure::from_panic(panic_msg))
                }
                Ok(Err(e)) => {
                    *scratch = catalog.clone();
                    Err(AttemptFailure::from_error(e))
                }
                Ok(Ok(v)) if !v.is_finite() => Err(AttemptFailure::non_finite(v)),
                Ok(Ok(v)) => Ok(v),
            }
        })
    }

    /// Run `n` iterations through the tuple-bundle engine: realize every
    /// stochastic table as bundles and execute the plan **once**.
    ///
    /// Requirements (checked, with a descriptive error): the query must be
    /// bundle-executable (no Sort/Limit; joins and grouping on
    /// deterministic columns). The Monte Carlo sample is statistically
    /// equivalent to [`MonteCarloQuery::run`] but uses a different RNG
    /// layout, so the two are not sample-for-sample identical; the bundle
    /// engine's per-iteration equivalence with naive execution is what the
    /// property tests pin down.
    pub fn run_bundled(&self, catalog: &Catalog, n: usize, seed: u64) -> crate::Result<McResult> {
        use crate::bundle::{execute_bundled, BundledCatalog, BundledTable};
        let factory = StreamFactory::new(seed);
        let mut bc = BundledCatalog::new(n);
        // Deterministic base tables are visible to the bundled plan too.
        for name in catalog.table_names() {
            bc.insert_const(catalog.get(name)?);
        }
        // Stochastic tables realize sequentially (later specs may read
        // earlier realizations only in their deterministic parts; the
        // bundled generator reads parameters from the *deterministic*
        // catalog, so cross-stochastic parametrization requires `run`).
        for (k, spec) in self.specs.iter().enumerate() {
            let mut rng = factory.stream(k as u64);
            let bt = BundledTable::from_spec(spec, catalog, n, &mut rng)?;
            bc.insert(bt)?;
        }
        let result = execute_bundled(&self.query, &bc)?;
        Ok(McResult::new(result.scalar_samples()?))
    }
}

/// A Monte Carlo task lowered to prepared form: every spec's driver and
/// parameter query planned, every expression bound, and the aggregate
/// query planned against the realized-table schemas — all exactly once per
/// run, shared by every replicate (and every worker thread).
#[derive(Debug, Clone)]
struct PreparedMc {
    specs: Vec<PreparedRandomTable>,
    query: PreparedQuery,
}

/// Prepare the specs and query against the base catalog. Specs prepare in
/// realization order against a planning catalog that accumulates empty
/// placeholder tables for each spec's output, so later specs and the final
/// query can reference earlier stochastic tables by schema.
fn prepare_task(
    specs: &[RandomTableSpec],
    query: &Plan,
    catalog: &Catalog,
) -> crate::Result<PreparedMc> {
    let mut planning = catalog.clone();
    let mut prepared = Vec::with_capacity(specs.len());
    for spec in specs {
        let p = spec.prepare(&planning)?;
        planning.insert(Table::new(p.name(), p.output_schema().clone()));
        prepared.push(p);
    }
    let query = PreparedQuery::prepare(query, &planning)?;
    Ok(PreparedMc {
        specs: prepared,
        query,
    })
}

/// Realize every stochastic table from `iter_factory`'s streams and
/// evaluate the aggregate query. The attempt body of a supervised
/// replicate: the caller chooses the factory (legacy `child(i)` on
/// attempt 0, a [`retry_seed`]-derived one on reseeding retries).
fn realize_and_query(
    prepared: &PreparedMc,
    scratch: &mut Catalog,
    iter_factory: &StreamFactory,
) -> crate::Result<f64> {
    for (k, spec) in prepared.specs.iter().enumerate() {
        let mut rng = iter_factory.stream(k as u64);
        let t = spec.realize(scratch, &mut rng)?;
        scratch.insert(t);
    }
    let result = prepared.query.execute(scratch)?;
    let v = result.scalar()?;
    if v.is_null() {
        // SQL aggregates over empty inputs yield NULL; represent as NaN?
        // No — surface it, the analyst must handle empty events.
        return Err(crate::McdbError::invalid_plan(
            "Monte Carlo query produced NULL; guard the aggregate with COUNT or COALESCE-style logic",
        ));
    }
    v.as_f64()
}

/// A supervised Monte Carlo run: the estimation result over the surviving
/// replicates plus the failure ledger, and — for durable campaigns — the
/// stop cause and final campaign state.
#[derive(Debug, Clone)]
pub struct McRun {
    /// The Monte Carlo sample (dropped replicates simply absent).
    pub result: McResult,
    /// Attempted/succeeded/retried/dropped counts and per-failure causes;
    /// [`RunReport::ci_widened`] is set whenever the estimate rests on
    /// fewer samples than requested.
    pub report: RunReport,
    /// Why the run stopped before completing all replicates, when it did
    /// (deadline expiry, cancellation, or an injected preemption); `None`
    /// for a run that completed.
    pub stopped: Option<StopCause>,
    /// The final campaign state — resume a stopped run by passing it to
    /// [`MonteCarloQuery::resume_with_options`] (it is also what
    /// [`MonteCarloQuery::resume_from`] reads back from disk when a
    /// [`CheckpointSpec`](mde_numeric::CheckpointSpec) is attached).
    pub checkpoint: Option<CampaignState>,
}

/// The error surfaced when a replicate aborts the run: the replicate's own
/// typed error when it produced one, otherwise a
/// [`ReplicateFailed`](crate::McdbError::ReplicateFailed) synthesized from
/// the terminal failure record (panics and non-finite samples).
fn abort_error(
    error: Option<crate::McdbError>,
    failures: &[mde_numeric::resilience::FailureRecord],
) -> crate::McdbError {
    if let Some(e) = error {
        return e;
    }
    match failures.last() {
        Some(f) => crate::McdbError::ReplicateFailed {
            replicate: f.replicate,
            attempt: f.attempt,
            message: f.message.clone(),
        },
        None => crate::McdbError::invalid_plan("replicate aborted without a failure record"),
    }
}

/// Seal a supervised run: normalize the ledger, enforce the best-effort
/// success floor (completed runs only — a stopped run is partial by
/// design and is returned with whatever it has, plus its checkpoint),
/// persist the final checkpoint, and package the surviving samples.
fn seal(
    mut state: CampaignState,
    n: usize,
    opts: &RunOptions,
    stopped: Option<StopCause>,
) -> crate::Result<McRun> {
    state.report.normalize();
    state.completed.sort_by_key(|(i, _)| *i);
    if stopped.is_none() {
        let required = opts.policy.required_successes(n);
        if state.report.succeeded < required {
            return Err(crate::McdbError::TooManyFailures {
                succeeded: state.report.succeeded,
                attempted: state.report.attempted,
                required,
            });
        }
    }
    if let Some(spec) = &opts.checkpoint {
        let stats = state
            .save_stats(&spec.path)
            .map_err(crate::McdbError::from)?;
        stats.record_into(&mut state.report.metrics);
    }
    let samples = state.completed.iter().map(|(_, v)| v[0]).collect();
    Ok(McRun {
        result: McResult::new(samples),
        report: state.report.clone(),
        stopped,
        checkpoint: Some(state),
    })
}

/// The Monte Carlo sample of a query result, with estimation helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct McResult {
    samples: Vec<f64>,
    summary: Summary,
}

impl McResult {
    /// Wrap a sample vector.
    pub fn new(samples: Vec<f64>) -> Self {
        let summary = Summary::from_slice(&samples);
        McResult { samples, summary }
    }

    /// The raw samples, in iteration order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of Monte Carlo iterations.
    pub fn n(&self) -> usize {
        self.samples.len()
    }

    /// Sample mean — the MCDB estimate of the expected query result.
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// Sample variance of the query result distribution.
    pub fn variance(&self) -> f64 {
        self.summary.sample_variance()
    }

    /// Normal-theory confidence interval for the expected query result.
    pub fn mean_ci(&self, level: f64) -> crate::Result<ConfidenceInterval> {
        Ok(mean_confidence_interval(&self.summary, level)?)
    }

    /// Empirical quantile of the query-result distribution — including the
    /// extreme quantiles MCDB-R targets for risk analysis (e.g. `p = 0.99`
    /// for value-at-risk).
    pub fn quantile(&self, p: f64) -> crate::Result<f64> {
        Ok(quantile(&self.samples, p)?)
    }

    /// Estimated `P(result > x)` with a Wilson confidence interval.
    pub fn prob_above(&self, x: f64, level: f64) -> crate::Result<ConfidenceInterval> {
        let successes = self.samples.iter().filter(|&&v| v > x).count() as u64;
        Ok(proportion_confidence_interval(
            successes,
            self.samples.len() as u64,
            level,
        )?)
    }

    /// Estimated `P(result < x)` with a Wilson confidence interval.
    pub fn prob_below(&self, x: f64, level: f64) -> crate::Result<ConfidenceInterval> {
        let successes = self.samples.iter().filter(|&&v| v < x).count() as u64;
        Ok(proportion_confidence_interval(
            successes,
            self.samples.len() as u64,
            level,
        )?)
    }

    /// Threshold decision: is `P(result > x) >= p_min`?
    ///
    /// Returns `Some(true)`/`Some(false)` when the Wilson interval at the
    /// given confidence level lies entirely on one side of `p_min`, and
    /// `None` when the evidence is inconclusive (more iterations needed) —
    /// the decision procedure behind "Which regions will see more than a 2%
    /// decline in sales with at least 50% probability?".
    pub fn threshold_decision(
        &self,
        x: f64,
        p_min: f64,
        level: f64,
    ) -> crate::Result<Option<bool>> {
        let ci = self.prob_above(x, level)?;
        Ok(if ci.lo >= p_min {
            Some(true)
        } else if ci.hi < p_min {
            Some(false)
        } else {
            None
        })
    }
}

/// A grouped Monte Carlo estimation task, for queries of the paper's shape
/// "**Which regions** will see more than a 2% decline in sales with at
/// least 50% probability?" — the query produces one `(group, value)` row
/// per group per realization, and estimation runs per group.
#[derive(Debug, Clone)]
pub struct GroupedMonteCarloQuery {
    specs: Vec<RandomTableSpec>,
    query: Plan,
    group_col: String,
    value_col: String,
}

impl GroupedMonteCarloQuery {
    /// Create a grouped task. The query must return, per realization, one
    /// row per group with a `group_col` key and a numeric `value_col`.
    pub fn new(
        specs: Vec<RandomTableSpec>,
        query: Plan,
        group_col: impl Into<String>,
        value_col: impl Into<String>,
    ) -> Self {
        GroupedMonteCarloQuery {
            specs,
            query,
            group_col: group_col.into(),
            value_col: value_col.into(),
        }
    }

    /// Run `n` iterations, producing a per-group Monte Carlo sample.
    ///
    /// Every group must appear exactly once in every realization (the
    /// natural outcome of a `GROUP BY` over a fixed dimension); anything
    /// else is surfaced as an error rather than silently averaged.
    pub fn run(&self, catalog: &Catalog, n: usize, seed: u64) -> crate::Result<McGroupedResult> {
        let prepared = prepare_task(&self.specs, &self.query, catalog)?;
        let gi = prepared.query.schema().index_of(&self.group_col)?;
        let vi = prepared.query.schema().index_of(&self.value_col)?;
        let factory = StreamFactory::new(seed);
        let mut scratch = catalog.clone();
        let mut groups: Vec<(crate::value::Value, Vec<f64>)> = Vec::new();
        for i in 0..n {
            let iter_factory = factory.child(i as u64);
            for (k, spec) in prepared.specs.iter().enumerate() {
                let mut rng = iter_factory.stream(k as u64);
                let t = spec.realize(&scratch, &mut rng)?;
                scratch.insert(t);
            }
            let result = prepared.query.execute(&scratch)?;
            if i == 0 {
                for row in result.rows() {
                    groups.push((row[gi].clone(), Vec::with_capacity(n)));
                }
            }
            if result.len() != groups.len() {
                return Err(crate::McdbError::invalid_plan(format!(
                    "iteration {i} produced {} groups, expected {}",
                    result.len(),
                    groups.len()
                )));
            }
            for row in result.rows() {
                let slot = groups
                    .iter_mut()
                    .find(|(g, _)| g.group_eq(&row[gi]))
                    .ok_or_else(|| {
                        crate::McdbError::invalid_plan(format!(
                            "iteration {i} produced unseen group `{}`",
                            row[gi]
                        ))
                    })?;
                slot.1.push(row[vi].as_f64()?);
            }
        }
        Ok(McGroupedResult {
            groups: groups
                .into_iter()
                .map(|(g, samples)| (g, McResult::new(samples)))
                .collect(),
        })
    }
}

/// Per-group Monte Carlo results.
#[derive(Debug, Clone)]
pub struct McGroupedResult {
    /// `(group key, per-group sample)` in first-seen order.
    pub groups: Vec<(crate::value::Value, McResult)>,
}

impl McGroupedResult {
    /// The result for one group, if present.
    pub fn group(&self, key: &crate::value::Value) -> Option<&McResult> {
        self.groups
            .iter()
            .find(|(g, _)| g.group_eq(key))
            .map(|(_, r)| r)
    }

    /// The paper's selection: groups whose `P(value < threshold) ≥ p_min`
    /// is *confidently true* at the given confidence level (e.g. "regions
    /// with a >2% decline with ≥50% probability" after projecting decline
    /// as a value). Returns `(group, decision)` per group, where `None`
    /// means inconclusive.
    pub fn threshold_below(
        &self,
        threshold: f64,
        p_min: f64,
        level: f64,
    ) -> crate::Result<Vec<(crate::value::Value, Option<bool>)>> {
        self.groups
            .iter()
            .map(|(g, r)| {
                let ci = r.prob_below(threshold, level)?;
                let decision = if ci.lo >= p_min {
                    Some(true)
                } else if ci.hi < p_min {
                    Some(false)
                } else {
                    None
                };
                Ok((g.clone(), decision))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::AggSpec;
    use crate::schema::DataType;
    use crate::table::Table;
    use crate::value::Value;
    use crate::vg::NormalVg;
    use mde_numeric::resilience::RunPolicy;
    use std::sync::Arc;

    fn demand_catalog() -> Catalog {
        let mut db = Catalog::new();
        db.insert(
            Table::build("ITEMS", &[("IID", DataType::Int)])
                .rows((0..20).map(|i| vec![Value::from(i)]))
                .finish()
                .unwrap(),
        );
        db.insert(
            Table::build(
                "PARAMS",
                &[("MEAN", DataType::Float), ("STD", DataType::Float)],
            )
            .row(vec![Value::from(10.0), Value::from(2.0)])
            .finish()
            .unwrap(),
        );
        db
    }

    fn revenue_query() -> MonteCarloQuery {
        // Total "revenue" = sum over 20 items of N(10, 2) draws; true mean
        // is 200, true std is 2*sqrt(20) ≈ 8.94.
        let spec = RandomTableSpec::builder("SALES")
            .for_each(Plan::scan("ITEMS"))
            .with_vg(Arc::new(NormalVg))
            .vg_params_query(Plan::scan("PARAMS"))
            .select(&[("IID", Expr::col("IID")), ("AMT", Expr::col("VALUE"))])
            .build()
            .unwrap();
        let q = Plan::scan("SALES").aggregate(
            &[],
            vec![AggSpec::new(
                "TOTAL",
                crate::query::AggFunc::Sum,
                Expr::col("AMT"),
            )],
        );
        MonteCarloQuery::new(vec![spec], q)
    }

    #[test]
    fn estimates_query_result_distribution() {
        let db = demand_catalog();
        let res = revenue_query().run(&db, 500, 7).unwrap();
        assert_eq!(res.n(), 500);
        // Mean within 5 standard errors of 200.
        let se = res.variance().sqrt() / (res.n() as f64).sqrt();
        assert!((res.mean() - 200.0).abs() < 5.0 * se + 1e-9);
        // Std close to 8.94.
        assert!((res.variance().sqrt() - 8.94).abs() < 1.5);
        // CI covers the truth.
        assert!(res.mean_ci(0.99).unwrap().contains(200.0));
    }

    #[test]
    fn quantiles_and_risk() {
        let db = demand_catalog();
        let res = revenue_query().run(&db, 1000, 8).unwrap();
        let q50 = res.quantile(0.5).unwrap();
        let q99 = res.quantile(0.99).unwrap();
        assert!((q50 - 200.0).abs() < 2.0);
        // 99% quantile of N(200, 8.94) ≈ 200 + 2.33*8.94 ≈ 220.8.
        assert!((q99 - 220.8).abs() < 5.0, "q99 = {q99}");
        assert!(q99 > q50);
    }

    #[test]
    fn threshold_queries() {
        let db = demand_catalog();
        let res = revenue_query().run(&db, 400, 9).unwrap();
        // P(total > 150) is essentially 1.
        assert_eq!(
            res.threshold_decision(150.0, 0.5, 0.95).unwrap(),
            Some(true)
        );
        // P(total > 250) is essentially 0.
        assert_eq!(
            res.threshold_decision(250.0, 0.5, 0.95).unwrap(),
            Some(false)
        );
        // The decision is always consistent with the Wilson interval.
        let ci = res.prob_above(200.0, 0.95).unwrap();
        let decision = res.threshold_decision(200.0, 0.5, 0.95).unwrap();
        match decision {
            Some(true) => assert!(ci.lo >= 0.5),
            Some(false) => assert!(ci.hi < 0.5),
            None => assert!(ci.contains(0.5)),
        }
        let below = res.prob_below(200.0, 0.95).unwrap();
        assert!((below.estimate + ci.estimate - 1.0).abs() < 1e-12);

        // A deterministic inconclusive case: 50/100 successes straddles 0.5.
        let balanced = McResult::new(
            (0..100)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect(),
        );
        assert_eq!(balanced.threshold_decision(0.0, 0.5, 0.95).unwrap(), None);
    }

    #[test]
    fn bundled_run_is_statistically_equivalent() {
        let db = demand_catalog();
        let q = revenue_query();
        let naive = q.run(&db, 400, 21).unwrap();
        let bundled = q.run_bundled(&db, 400, 22).unwrap();
        assert_eq!(bundled.n(), 400);
        // Same distribution (mean 200, sd ~8.94): means within combined
        // standard errors.
        let se = (naive.variance() / 400.0 + bundled.variance() / 400.0).sqrt();
        assert!(
            (naive.mean() - bundled.mean()).abs() < 5.0 * se,
            "naive {} vs bundled {}",
            naive.mean(),
            bundled.mean()
        );
        assert!((bundled.variance().sqrt() - 8.94).abs() < 1.5);
    }

    #[test]
    fn bundled_run_rejects_unbundleable_plans() {
        let db = demand_catalog();
        let spec = revenue_query().specs[0].clone();
        let q = MonteCarloQuery::new(
            vec![spec],
            Plan::scan("SALES")
                .aggregate(
                    &[],
                    vec![AggSpec::new(
                        "TOTAL",
                        crate::query::AggFunc::Sum,
                        Expr::col("AMT"),
                    )],
                )
                .limit(1),
        );
        assert!(q.run_bundled(&db, 10, 1).is_err());
    }

    #[test]
    fn parallel_equals_sequential() {
        let db = demand_catalog();
        let q = revenue_query();
        let seq = q.run(&db, 64, 13).unwrap();
        let par = q.run_parallel(&db, 64, 13, 4).unwrap();
        assert_eq!(seq.samples(), par.samples());
        // Thread count must not change results.
        let par2 = q.run_parallel(&db, 64, 13, 7).unwrap();
        assert_eq!(seq.samples(), par2.samples());
    }

    #[test]
    fn non_scalar_query_rejected() {
        let db = demand_catalog();
        let spec = revenue_query();
        let bad = MonteCarloQuery::new(
            vec![spec.specs[0].clone()],
            Plan::scan("SALES"), // multi-row, multi-column
        );
        assert!(bad.run(&db, 2, 1).is_err());
    }

    #[test]
    fn grouped_query_answers_the_which_regions_question() {
        // Two regions with different demand means; ask which will fall
        // below a sales threshold with >= 50% probability.
        let mut db = Catalog::new();
        db.insert(
            Table::build(
                "REGIONS",
                &[("NAME", DataType::Str), ("MEAN", DataType::Float)],
            )
            .row(vec![Value::from("east"), Value::from(100.0)])
            .row(vec![Value::from("west"), Value::from(80.0)])
            .finish()
            .unwrap(),
        );
        let spec = RandomTableSpec::builder("SALES")
            .for_each(Plan::scan("REGIONS"))
            .with_vg(std::sync::Arc::new(crate::vg::NormalVg))
            .vg_params_exprs(&[Expr::col("MEAN"), Expr::lit(5.0)])
            .select(&[("REGION", Expr::col("NAME")), ("AMT", Expr::col("VALUE"))])
            .build()
            .unwrap();
        let q = Plan::scan("SALES").aggregate(
            &["REGION"],
            vec![AggSpec::new(
                "TOTAL",
                crate::query::AggFunc::Sum,
                Expr::col("AMT"),
            )],
        );
        let grouped = GroupedMonteCarloQuery::new(vec![spec], q, "REGION", "TOTAL");
        let res = grouped.run(&db, 300, 5).unwrap();
        assert_eq!(res.groups.len(), 2);
        // East ~ N(100, 5), west ~ N(80, 5): below 90 is a near-certain NO
        // for east, YES for west.
        let decisions = res.threshold_below(90.0, 0.5, 0.95).unwrap();
        let by_name = |n: &str| {
            decisions
                .iter()
                .find(|(g, _)| g.group_eq(&Value::from(n)))
                .unwrap()
                .1
        };
        assert_eq!(by_name("east"), Some(false));
        assert_eq!(by_name("west"), Some(true));
        // Per-group results are real MC samples.
        let east = res.group(&Value::from("east")).unwrap();
        assert_eq!(east.n(), 300);
        assert!((east.mean() - 100.0).abs() < 2.0);
    }

    #[test]
    fn supervised_fail_fast_matches_legacy_run() {
        let db = demand_catalog();
        let q = revenue_query();
        let legacy = q.run(&db, 64, 13).unwrap();
        let supervised = q
            .run_with_options(&db, 64, 13, &RunOptions::default())
            .unwrap();
        assert_eq!(legacy.samples(), supervised.result.samples());
        assert_eq!(supervised.report.attempted, 64);
        assert_eq!(supervised.report.succeeded, 64);
        assert_eq!(supervised.report.retried, 0);
        assert_eq!(supervised.report.dropped, 0);
        assert!(!supervised.report.ci_widened);
        assert!(supervised.report.failures.is_empty());
    }

    #[test]
    fn injected_panic_is_contained_and_retried() {
        use mde_numeric::resilience::FaultPlan;
        let db = demand_catalog();
        let q = revenue_query();
        let opts = RunOptions::policy(RunPolicy::Retry {
            max_attempts: 3,
            reseed: true,
        })
        .with_faults(FaultPlan::new().fail_on(5, 0, FaultKind::Panic));
        let run = q.run_with_options(&db, 32, 13, &opts).unwrap();
        assert_eq!(run.result.n(), 32, "retried replicate still contributes");
        assert_eq!(run.report.retried, 1);
        assert_eq!(run.report.dropped, 0);
        assert_eq!(
            run.report.failure_keys(),
            vec![(5, 0, mde_numeric::resilience::FailureKind::Panic)]
        );
        // The retried sample differs from the unfaulted one (fresh
        // sub-seed), everything else is untouched.
        let clean = q.run(&db, 32, 13).unwrap();
        for (i, (a, b)) in clean.samples().iter().zip(run.result.samples()).enumerate() {
            if i == 5 {
                assert_ne!(a, b);
            } else {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn retry_recovery_is_identical_across_thread_counts() {
        use mde_numeric::resilience::FaultPlan;
        let db = demand_catalog();
        let q = revenue_query();
        let opts = RunOptions::policy(RunPolicy::Retry {
            max_attempts: 2,
            reseed: true,
        })
        .with_faults(FaultPlan::new().fail_on(2, 0, FaultKind::Panic).fail_on(
            9,
            0,
            FaultKind::Nan,
        ));
        let seq = q.run_with_options(&db, 24, 17, &opts).unwrap();
        for threads in [1, 3, 8] {
            let par = q
                .run_parallel_with_options(&db, 24, 17, threads, &opts)
                .unwrap();
            assert_eq!(seq.result.samples(), par.result.samples());
            assert_eq!(seq.report, par.report);
        }
    }

    #[test]
    fn best_effort_ledger_matches_fault_plan() {
        use mde_numeric::resilience::FaultPlan;
        let db = demand_catalog();
        let q = revenue_query();
        let policy = RunPolicy::BestEffort { min_fraction: 0.8 };
        let plan = FaultPlan::new()
            .fail_on(1, 0, FaultKind::Nan)
            .fail_on(7, 0, FaultKind::Panic)
            .fail_on(11, 0, FaultKind::Error);
        let opts = RunOptions::policy(policy).with_faults(plan.clone());
        let run = q.run_with_options(&db, 20, 3, &opts).unwrap();
        assert_eq!(run.result.n(), 17);
        assert_eq!(run.report.dropped, 3);
        assert!(run.report.ci_widened);
        assert_eq!(
            run.report.failure_keys(),
            plan.expected_failure_keys(&policy)
        );
        // Degrading below the floor is a typed error.
        let strict =
            RunOptions::policy(RunPolicy::BestEffort { min_fraction: 0.95 }).with_faults(plan);
        match q.run_with_options(&db, 20, 3, &strict) {
            Err(crate::McdbError::TooManyFailures {
                succeeded,
                attempted,
                required,
            }) => {
                assert_eq!((succeeded, attempted, required), (17, 20, 19));
            }
            other => panic!("expected TooManyFailures, got {other:?}"),
        }
    }

    #[test]
    fn fatal_errors_abort_under_every_policy() {
        // A structurally broken query (unknown table) must abort even
        // under the most forgiving policies — retrying cannot help.
        let db = demand_catalog();
        let q = MonteCarloQuery::new(vec![], Plan::scan("NO_SUCH_TABLE"));
        for policy in [
            RunPolicy::FailFast,
            RunPolicy::Retry {
                max_attempts: 5,
                reseed: true,
            },
            RunPolicy::BestEffort { min_fraction: 0.0 },
        ] {
            match q.run_with_options(&db, 4, 1, &RunOptions::policy(policy)) {
                Err(crate::McdbError::UnknownTable { name }) => {
                    assert_eq!(name, "NO_SUCH_TABLE")
                }
                other => panic!("expected UnknownTable under {policy:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn preempted_run_resumes_bit_identically() {
        use mde_numeric::resilience::FaultPlan;
        let db = demand_catalog();
        let q = revenue_query();
        let clean = q
            .run_with_options(&db, 24, 13, &RunOptions::default())
            .unwrap();
        assert!(clean.stopped.is_none());
        // Preempt at replicate 9, then resume with a clean plan.
        let opts = RunOptions::default().with_faults(FaultPlan::new().preempt_at(9));
        let partial = q.run_with_options(&db, 24, 13, &opts).unwrap();
        assert_eq!(partial.stopped, Some(StopCause::Preempted));
        assert_eq!(partial.result.n(), 9);
        assert_eq!(partial.result.samples(), &clean.result.samples()[..9]);
        let state = partial.checkpoint.unwrap();
        assert_eq!(state.cursor, 9);
        let resumed = q
            .resume_with_options(&db, 24, 13, &RunOptions::default(), state.clone())
            .unwrap();
        assert!(resumed.stopped.is_none());
        assert_eq!(resumed.result.samples(), clean.result.samples());
        assert_eq!(resumed.report, clean.report);
        // A sequential checkpoint resumes in parallel identically.
        let par = q
            .resume_parallel_with_options(&db, 24, 13, 4, &RunOptions::default(), state.clone())
            .unwrap();
        assert_eq!(par.result.samples(), clean.result.samples());
        // Resuming under a different (seed, n) is refused with a typed
        // error, never a silent wrong resume.
        match q.resume_with_options(&db, 24, 14, &RunOptions::default(), state) {
            Err(crate::McdbError::Checkpoint(mde_numeric::CheckpointError::Mismatch {
                field,
                ..
            })) => assert_eq!(field, "fingerprint"),
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_returns_partial_run_not_error() {
        use mde_numeric::Deadline;
        let db = demand_catalog();
        let q = revenue_query();
        let opts = RunOptions::default().with_deadline(Deadline::at(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        ));
        let run = q.run_with_options(&db, 16, 5, &opts).unwrap();
        assert_eq!(run.stopped, Some(StopCause::Deadline));
        assert_eq!(run.result.n(), 0);
        let state = run.checkpoint.unwrap();
        assert_eq!(state.cursor, 0);
        // The partial state resumes to the full run.
        let resumed = q
            .resume_with_options(&db, 16, 5, &RunOptions::default(), state)
            .unwrap();
        let clean = q.run(&db, 16, 5).unwrap();
        assert_eq!(resumed.result.samples(), clean.samples());
        // Parallel deadline expiry is equally graceful.
        let par = q.run_parallel_with_options(&db, 16, 5, 3, &opts).unwrap();
        assert_eq!(par.stopped, Some(StopCause::Deadline));
        assert_eq!(par.result.n(), 0);
    }

    #[test]
    fn mc_result_on_known_samples() {
        let r = McResult::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(r.mean(), 3.0);
        assert_eq!(r.quantile(0.5).unwrap(), 3.0);
        let ci = r.prob_above(2.5, 0.95).unwrap();
        assert!((ci.estimate - 0.6).abs() < 1e-12);
    }
}
