//! Tuple-bundle query execution.
//!
//! "To ensure acceptable performance, MCDB employs query processing
//! techniques that execute a query plan only once, processing 'tuple
//! bundles' rather than ordinary tuples. A tuple bundle encapsulates the
//! instantiations of a tuple over a set of Monte Carlo iterations."
//!
//! A [`BundledTable`] stores, per logical row, either a single shared value
//! per column ([`BundledValue::Const`]) or one value per Monte Carlo
//! iteration ([`BundledValue::Varying`]), plus a presence mask recording in
//! which iterations the row exists. [`execute_bundled`] runs a plan over
//! bundled inputs **once**:
//!
//! * expressions touching only constant columns are evaluated once per row
//!   (this is where the speedup over naive `N`-fold execution comes from);
//! * filters on constant predicates keep or drop whole bundles; varying
//!   predicates just narrow the presence mask;
//! * joins require constant keys (join structure shared by all
//!   iterations), intersecting presence masks;
//! * aggregation produces per-iteration results, yielding the Monte Carlo
//!   sample of the query answer in one pass.
//!
//! The invariant that makes all this trustworthy — *instantiating iteration
//! `i` of the bundled result equals running the ordinary executor on
//! iteration `i` of the inputs* — is enforced by tests here and by a
//! property test in the crate's test suite.

use crate::expr::BoundExpr;
use crate::query::{AggFunc, Catalog, Plan};
use crate::random_table::RandomTableSpec;
use crate::schema::Schema;
use crate::table::{Row, Table};
use crate::value::{GroupKey, Value};
use crate::vg::OutputCardinality;
use crate::McdbError;
use mde_numeric::rng::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// A column value within a tuple bundle.
#[derive(Debug, Clone, PartialEq)]
pub enum BundledValue {
    /// The same value in every Monte Carlo iteration.
    Const(Value),
    /// One value per iteration (length = bundle's iteration count).
    Varying(Arc<Vec<Value>>),
}

impl BundledValue {
    /// The value at iteration `i`.
    pub fn at(&self, i: usize) -> &Value {
        match self {
            BundledValue::Const(v) => v,
            BundledValue::Varying(vs) => &vs[i],
        }
    }

    /// Whether this value is iteration-independent.
    pub fn is_const(&self) -> bool {
        matches!(self, BundledValue::Const(_))
    }
}

/// Row-presence across iterations.
#[derive(Debug, Clone, PartialEq)]
pub enum Presence {
    /// Present in every iteration.
    All,
    /// Present exactly where the mask is true (length = iteration count).
    Mask(Arc<Vec<bool>>),
}

impl Presence {
    /// Present at iteration `i`?
    pub fn at(&self, i: usize) -> bool {
        match self {
            Presence::All => true,
            Presence::Mask(m) => m[i],
        }
    }

    /// Present in at least one iteration?
    pub fn any(&self) -> bool {
        match self {
            Presence::All => true,
            Presence::Mask(m) => m.iter().any(|&b| b),
        }
    }
}

/// One tuple bundle: a row whose values may vary per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BundledRow {
    /// Per-column bundled values.
    pub values: Vec<BundledValue>,
    /// Presence mask.
    pub present: Presence,
}

/// A table of tuple bundles over `n_iters` Monte Carlo iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct BundledTable {
    name: String,
    schema: Schema,
    n_iters: usize,
    rows: Vec<BundledRow>,
}

impl BundledTable {
    /// Bundle a deterministic table: every value constant, present in all
    /// iterations.
    pub fn from_table(table: &Table, n_iters: usize) -> Self {
        BundledTable {
            name: table.name().to_string(),
            schema: table.schema().clone(),
            n_iters,
            rows: table
                .rows()
                .iter()
                .map(|r| BundledRow {
                    values: r.iter().cloned().map(BundledValue::Const).collect(),
                    present: Presence::All,
                })
                .collect(),
        }
    }

    /// Realize a stochastic table as tuple bundles over `n_iters`
    /// iterations.
    ///
    /// VG functions with [`OutputCardinality::Fixed`] produce dense bundles:
    /// one bundle per (driver row × output row), with driver-derived columns
    /// constant and VG-derived columns varying. Variable-cardinality
    /// functions fall back to one bundle per generated row, present only in
    /// its own iteration — MCDB's general case.
    pub fn from_spec(
        spec: &RandomTableSpec,
        catalog: &Catalog,
        n_iters: usize,
        rng: &mut Rng,
    ) -> crate::Result<Self> {
        let driver = catalog.query(spec.driver())?;
        let combined = spec.combined_schema(catalog)?;
        let out_schema = spec.output_schema(catalog)?;

        match spec.vg().cardinality() {
            OutputCardinality::Fixed(k) => Self::from_spec_fixed(
                spec,
                catalog,
                &driver,
                &combined,
                &out_schema,
                k,
                n_iters,
                rng,
            ),
            OutputCardinality::Variable => {
                Self::from_spec_variable(spec, catalog, &out_schema, n_iters, rng)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn from_spec_fixed(
        spec: &RandomTableSpec,
        catalog: &Catalog,
        driver: &Table,
        combined: &Schema,
        out_schema: &Schema,
        rows_per_call: usize,
        n_iters: usize,
        rng: &mut Rng,
    ) -> crate::Result<Self> {
        // Reuse `realize`'s parameter logic but keep the per-(driver-row,
        // output-row) structure by driving the VG function directly.
        let base_params = spec.base_params_values(catalog)?;
        let bound_param_exprs = spec.bind_param_exprs(driver.schema())?;
        let select = spec.bind_select(combined)?;

        let vg_width = spec.vg().output_schema().len();
        let mut rows: Vec<BundledRow> = Vec::with_capacity(driver.len() * rows_per_call);
        for drow in driver.rows() {
            let mut params = base_params.clone();
            for be in &bound_param_exprs {
                params.push(be.eval(drow)?);
            }
            spec.vg().check_arity(&params)?;
            // Draw all iterations for this driver row: per output-row slot,
            // per VG column, a vector of n_iters values.
            let mut slots: Vec<Vec<Vec<Value>>> =
                vec![vec![Vec::with_capacity(n_iters); vg_width]; rows_per_call];
            for _ in 0..n_iters {
                let generated = spec.vg().generate(&params, rng)?;
                if generated.len() != rows_per_call {
                    return Err(McdbError::invalid_plan(format!(
                        "VG `{}` declared Fixed({rows_per_call}) cardinality but produced {} rows",
                        spec.vg().name(),
                        generated.len()
                    )));
                }
                for (slot, grow) in slots.iter_mut().zip(generated) {
                    for (col, v) in slot.iter_mut().zip(grow) {
                        col.push(v);
                    }
                }
            }
            for slot in slots {
                // Combined bundled row: driver columns Const, VG columns
                // Varying (collapsed to Const if the VG happens to be
                // degenerate — skipped: correctness first).
                let mut values: Vec<BundledValue> =
                    drow.iter().cloned().map(BundledValue::Const).collect();
                values.extend(
                    slot.into_iter()
                        .map(|vs| BundledValue::Varying(Arc::new(vs))),
                );
                let combined_row = BundledRow {
                    values,
                    present: Presence::All,
                };
                // Apply the SELECT projection in bundle space.
                let mut out_values = Vec::with_capacity(select.len());
                for (be, col) in select.iter().zip(out_schema.columns()) {
                    out_values.push(eval_bundled(be, &combined_row, n_iters, col.dtype)?);
                }
                rows.push(BundledRow {
                    values: out_values,
                    present: Presence::All,
                });
            }
        }
        Ok(BundledTable {
            name: spec.name().to_string(),
            schema: out_schema.clone(),
            n_iters,
            rows,
        })
    }

    fn from_spec_variable(
        spec: &RandomTableSpec,
        catalog: &Catalog,
        out_schema: &Schema,
        n_iters: usize,
        rng: &mut Rng,
    ) -> crate::Result<Self> {
        // Plan the spec once; only realization repeats per iteration.
        let prepared = spec.prepare(catalog)?;
        let mut rows = Vec::new();
        for i in 0..n_iters {
            let t = prepared.realize(catalog, rng)?;
            for r in t.rows() {
                let mut mask = vec![false; n_iters];
                mask[i] = true;
                rows.push(BundledRow {
                    values: r.iter().cloned().map(BundledValue::Const).collect(),
                    present: Presence::Mask(Arc::new(mask)),
                });
            }
        }
        Ok(BundledTable {
            name: spec.name().to_string(),
            schema: out_schema.clone(),
            n_iters,
            rows,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of Monte Carlo iterations in the bundle.
    pub fn n_iters(&self) -> usize {
        self.n_iters
    }

    /// The bundled rows.
    pub fn rows(&self) -> &[BundledRow] {
        &self.rows
    }

    /// Materialize iteration `i` as an ordinary table.
    pub fn instantiate(&self, i: usize) -> crate::Result<Table> {
        if i >= self.n_iters {
            return Err(McdbError::invalid_plan(format!(
                "iteration {i} out of range (bundle has {})",
                self.n_iters
            )));
        }
        let mut t = Table::new(self.name.clone(), self.schema.clone());
        for row in &self.rows {
            if row.present.at(i) {
                t.push_row(row.values.iter().map(|v| v.at(i).clone()).collect())?;
            }
        }
        Ok(t)
    }

    /// For a bundled result with exactly one row and one column, the Monte
    /// Carlo sample of the scalar result (NaN-free; errors if any
    /// iteration's value is missing or non-numeric).
    pub fn scalar_samples(&self) -> crate::Result<Vec<f64>> {
        if self.rows.len() != 1 || self.schema.len() != 1 {
            return Err(McdbError::NonScalarResult {
                rows: self.rows.len(),
                cols: self.schema.len(),
            });
        }
        (0..self.n_iters)
            .map(|i| self.rows[0].values[0].at(i).as_f64())
            .collect()
    }
}

/// A catalog of bundled tables, all over the same iteration count.
#[derive(Debug, Clone, Default)]
pub struct BundledCatalog {
    n_iters: usize,
    tables: HashMap<String, BundledTable>,
}

impl BundledCatalog {
    /// Create an empty bundled catalog for `n_iters` iterations.
    pub fn new(n_iters: usize) -> Self {
        BundledCatalog {
            n_iters,
            tables: HashMap::new(),
        }
    }

    /// The iteration count.
    pub fn n_iters(&self) -> usize {
        self.n_iters
    }

    /// Insert a bundled table (must match the catalog's iteration count).
    pub fn insert(&mut self, table: BundledTable) -> crate::Result<()> {
        if table.n_iters != self.n_iters {
            return Err(McdbError::invalid_plan(format!(
                "bundled table `{}` has {} iterations, catalog expects {}",
                table.name, table.n_iters, self.n_iters
            )));
        }
        self.tables.insert(table.name.clone(), table);
        Ok(())
    }

    /// Insert a deterministic table (bundled as all-constant).
    pub fn insert_const(&mut self, table: &Table) {
        self.tables.insert(
            table.name().to_string(),
            BundledTable::from_table(table, self.n_iters),
        );
    }

    /// Look up a bundled table.
    pub fn get(&self, name: &str) -> crate::Result<&BundledTable> {
        self.tables
            .get(name)
            .ok_or_else(|| McdbError::UnknownTable {
                name: name.to_string(),
            })
    }
}

/// Execute a plan over tuple bundles — once, for all iterations.
///
/// Supported operators: `Scan`, `Values` (bundled as constant), `Filter`,
/// `Project`, `Join` (constant keys only), and `Aggregate`. `Sort`/`Limit`
/// are rejected: their row selection is iteration-dependent, which defeats
/// bundling (MCDB handles them after the Monte Carlo loop, and so should
/// callers here).
pub fn execute_bundled(plan: &Plan, catalog: &BundledCatalog) -> crate::Result<BundledTable> {
    let n = catalog.n_iters();
    match plan {
        Plan::Scan { table } => Ok(catalog.get(table)?.clone()),
        Plan::Values { table } => Ok(BundledTable::from_table(table, n)),
        Plan::Filter { input, predicate } => {
            let t = execute_bundled(input, catalog)?;
            let bound = predicate.bind(&t.schema)?;
            let mut rows = Vec::with_capacity(t.rows.len());
            for row in &t.rows {
                if bundle_is_const(&bound, row) {
                    // Constant predicate: decide the whole bundle at once.
                    let v = eval_at(&bound, row, 0)?;
                    if truthy(&v) {
                        rows.push(row.clone());
                    }
                } else {
                    let mut mask = Vec::with_capacity(n);
                    for i in 0..n {
                        mask.push(row.present.at(i) && truthy(&eval_at(&bound, row, i)?));
                    }
                    if mask.iter().any(|&b| b) {
                        rows.push(BundledRow {
                            values: row.values.clone(),
                            present: Presence::Mask(Arc::new(mask)),
                        });
                    }
                }
            }
            Ok(BundledTable {
                name: "filter".to_string(),
                schema: t.schema.clone(),
                n_iters: n,
                rows,
            })
        }
        Plan::Project { input, exprs } => {
            let t = execute_bundled(input, catalog)?;
            // Output schema: reuse ordinary inference against a throwaway
            // catalog holding the input schema shape.
            let out_schema = project_schema(exprs, &t.schema)?;
            let bound: Vec<BoundExpr> = exprs
                .iter()
                .map(|(_, e)| e.bind(&t.schema))
                .collect::<crate::Result<_>>()?;
            let mut rows = Vec::with_capacity(t.rows.len());
            for row in &t.rows {
                let mut values = Vec::with_capacity(bound.len());
                for (be, col) in bound.iter().zip(out_schema.columns()) {
                    values.push(eval_bundled(be, row, n, col.dtype)?);
                }
                rows.push(BundledRow {
                    values,
                    present: row.present.clone(),
                });
            }
            Ok(BundledTable {
                name: "project".to_string(),
                schema: out_schema,
                n_iters: n,
                rows,
            })
        }
        Plan::Join {
            left,
            right,
            on,
            right_prefix,
        } => {
            let lt = execute_bundled(left, catalog)?;
            let rt = execute_bundled(right, catalog)?;
            if on.is_empty() {
                return Err(McdbError::invalid_plan("join requires key pairs"));
            }
            let l_idx: Vec<usize> = on
                .iter()
                .map(|(l, _)| lt.schema.index_of(l))
                .collect::<crate::Result<_>>()?;
            let r_idx: Vec<usize> = on
                .iter()
                .map(|(_, r)| rt.schema.index_of(r))
                .collect::<crate::Result<_>>()?;
            // Bundled joins require iteration-independent keys.
            for row in lt.rows.iter() {
                if l_idx.iter().any(|&j| !row.values[j].is_const()) {
                    return Err(McdbError::invalid_plan(
                        "bundled join requires constant join keys on the left input",
                    ));
                }
            }
            for row in rt.rows.iter() {
                if r_idx.iter().any(|&j| !row.values[j].is_const()) {
                    return Err(McdbError::invalid_plan(
                        "bundled join requires constant join keys on the right input",
                    ));
                }
            }
            let mut index: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
            for (i, row) in rt.rows.iter().enumerate() {
                if r_idx.iter().any(|&j| row.values[j].at(0).is_null()) {
                    continue;
                }
                let key: Vec<GroupKey> = r_idx
                    .iter()
                    .map(|&j| row.values[j].at(0).group_key())
                    .collect();
                index.entry(key).or_default().push(i);
            }
            let out_schema = lt.schema.concat(&rt.schema, right_prefix)?;
            let mut rows = Vec::new();
            for lrow in &lt.rows {
                if l_idx.iter().any(|&j| lrow.values[j].at(0).is_null()) {
                    continue;
                }
                let key: Vec<GroupKey> = l_idx
                    .iter()
                    .map(|&j| lrow.values[j].at(0).group_key())
                    .collect();
                if let Some(matches) = index.get(&key) {
                    for &ri in matches {
                        let rrow = &rt.rows[ri];
                        let present = intersect(&lrow.present, &rrow.present, n);
                        if !present.any() {
                            continue;
                        }
                        let mut values = lrow.values.clone();
                        values.extend(rrow.values.iter().cloned());
                        rows.push(BundledRow { values, present });
                    }
                }
            }
            Ok(BundledTable {
                name: "join".to_string(),
                schema: out_schema,
                n_iters: n,
                rows,
            })
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let t = execute_bundled(input, catalog)?;
            let group_idx: Vec<usize> = group_by
                .iter()
                .map(|g| t.schema.index_of(g))
                .collect::<crate::Result<_>>()?;
            for row in &t.rows {
                if group_idx.iter().any(|&j| !row.values[j].is_const()) {
                    return Err(McdbError::invalid_plan(
                        "bundled group-by requires constant grouping columns",
                    ));
                }
            }
            let bound_args: Vec<Option<BoundExpr>> = aggs
                .iter()
                .map(|a| a.arg.as_ref().map(|e| e.bind(&t.schema)).transpose())
                .collect::<crate::Result<_>>()?;
            let out_schema = aggregate_schema(&t.schema, group_by, aggs)?;

            // Group bundles by constant keys.
            let mut groups: HashMap<Vec<GroupKey>, (Row, Vec<usize>)> = HashMap::new();
            let mut order: Vec<Vec<GroupKey>> = Vec::new();
            for (ri, row) in t.rows.iter().enumerate() {
                let key: Vec<GroupKey> = group_idx
                    .iter()
                    .map(|&j| row.values[j].at(0).group_key())
                    .collect();
                groups
                    .entry(key.clone())
                    .or_insert_with(|| {
                        order.push(key);
                        (
                            group_idx
                                .iter()
                                .map(|&j| row.values[j].at(0).clone())
                                .collect(),
                            Vec::new(),
                        )
                    })
                    .1
                    .push(ri);
            }
            let no_groups = groups.is_empty() && group_by.is_empty();
            let mut rows = Vec::new();
            let group_iter: Vec<(Row, Vec<usize>)> = if no_groups {
                vec![(Vec::new(), Vec::new())]
            } else {
                order
                    .into_iter()
                    .map(|k| groups.remove(&k).expect("recorded"))
                    .collect()
            };
            for (gvals, members) in group_iter {
                let mut agg_columns: Vec<Vec<Value>> = vec![Vec::with_capacity(n); aggs.len()];
                for i in 0..n {
                    for (a_idx, (spec, barg)) in aggs.iter().zip(&bound_args).enumerate() {
                        let mut state = BundleAggState::new(spec.func);
                        for &ri in &members {
                            let row = &t.rows[ri];
                            if !row.present.at(i) {
                                continue;
                            }
                            let v = match barg {
                                Some(b) => Some(eval_at(b, row, i)?),
                                None => None,
                            };
                            state.update(v)?;
                        }
                        agg_columns[a_idx].push(state.finish());
                    }
                }
                let mut values: Vec<BundledValue> =
                    gvals.into_iter().map(BundledValue::Const).collect();
                for (col, schema_col) in agg_columns
                    .into_iter()
                    .zip(out_schema.columns().iter().skip(group_by.len()))
                {
                    let col: Vec<Value> = col
                        .into_iter()
                        .map(|v| coerce_value(v, schema_col.dtype))
                        .collect();
                    // Collapse to Const when every iteration agrees.
                    if col.windows(2).all(|w| {
                        w[0] == w[1] && !w[0].is_null() || (w[0].is_null() && w[1].is_null())
                    }) {
                        values.push(BundledValue::Const(col[0].clone()));
                    } else {
                        values.push(BundledValue::Varying(Arc::new(col)));
                    }
                }
                rows.push(BundledRow {
                    values,
                    present: Presence::All,
                });
            }
            Ok(BundledTable {
                name: "aggregate".to_string(),
                schema: out_schema,
                n_iters: n,
                rows,
            })
        }
        Plan::Sort { .. } | Plan::Limit { .. } => Err(McdbError::invalid_plan(
            "Sort/Limit are not bundle-executable; apply them per-iteration after instantiation",
        )),
    }
}

fn project_schema(exprs: &[(String, crate::expr::Expr)], input: &Schema) -> crate::Result<Schema> {
    let mut cols = Vec::with_capacity(exprs.len());
    for (name, e) in exprs {
        let dt = crate::query::infer_type(e, input)?.unwrap_or(crate::schema::DataType::Float);
        cols.push(crate::schema::Column::new(name.clone(), dt));
    }
    Schema::new(cols)
}

fn aggregate_schema(
    input: &Schema,
    group_by: &[String],
    aggs: &[crate::query::AggSpec],
) -> crate::Result<Schema> {
    let mut cols = Vec::new();
    for g in group_by {
        let i = input.index_of(g)?;
        cols.push(input.columns()[i].clone());
    }
    for a in aggs {
        let dt = match (a.func, &a.arg) {
            (AggFunc::Count, _) => crate::schema::DataType::Int,
            (_, None) => {
                return Err(McdbError::invalid_plan(format!(
                    "aggregate `{}` requires an argument",
                    a.name
                )))
            }
            (AggFunc::Avg, Some(_)) => crate::schema::DataType::Float,
            (AggFunc::Sum, Some(e)) | (AggFunc::Min, Some(e)) | (AggFunc::Max, Some(e)) => {
                crate::query::infer_type(e, input)?.unwrap_or(crate::schema::DataType::Float)
            }
        };
        cols.push(crate::schema::Column::new(a.name.clone(), dt));
    }
    Schema::new(cols)
}

fn coerce_value(v: Value, dtype: crate::schema::DataType) -> Value {
    match (&v, dtype) {
        (Value::Int(i), crate::schema::DataType::Float) => Value::Float(*i as f64),
        _ => v,
    }
}

/// Does this bound expression depend only on constant columns of the row?
fn bundle_is_const(e: &BoundExpr, row: &BundledRow) -> bool {
    match e {
        BoundExpr::Col(i) => row.values.get(*i).map(|v| v.is_const()).unwrap_or(true),
        BoundExpr::Lit(_) => true,
        BoundExpr::Binary { left, right, .. } => {
            bundle_is_const(left, row) && bundle_is_const(right, row)
        }
        BoundExpr::Unary { expr, .. } => bundle_is_const(expr, row),
        BoundExpr::Func { arg, .. } => bundle_is_const(arg, row),
    }
}

/// Evaluate a bound expression against iteration `i` of a bundled row.
fn eval_at(e: &BoundExpr, row: &BundledRow, i: usize) -> crate::Result<Value> {
    // Materialize lazily: only referenced columns are touched via Col eval,
    // so build a view row on demand. BoundExpr::eval needs a slice; for
    // simplicity materialize the full row (widths here are small).
    let materialized: Row = row.values.iter().map(|v| v.at(i).clone()).collect();
    e.eval(&materialized)
}

/// Bundle-space expression evaluation: once if constant, per-iteration
/// otherwise.
fn eval_bundled(
    e: &BoundExpr,
    row: &BundledRow,
    n: usize,
    dtype: crate::schema::DataType,
) -> crate::Result<BundledValue> {
    if bundle_is_const(e, row) {
        Ok(BundledValue::Const(coerce_value(
            eval_at(e, row, 0)?,
            dtype,
        )))
    } else {
        let mut vs = Vec::with_capacity(n);
        for i in 0..n {
            vs.push(coerce_value(eval_at(e, row, i)?, dtype));
        }
        Ok(BundledValue::Varying(Arc::new(vs)))
    }
}

fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

fn intersect(a: &Presence, b: &Presence, n: usize) -> Presence {
    match (a, b) {
        (Presence::All, Presence::All) => Presence::All,
        (Presence::All, m @ Presence::Mask(_)) | (m @ Presence::Mask(_), Presence::All) => {
            m.clone()
        }
        (Presence::Mask(x), Presence::Mask(y)) => {
            Presence::Mask(Arc::new((0..n).map(|i| x[i] && y[i]).collect()))
        }
    }
}

/// Minimal per-iteration aggregate state (mirrors the ordinary executor's
/// accumulators; kept separate because it runs per iteration).
enum BundleAggState {
    Count(i64),
    Sum { acc: f64, any: bool, int: bool },
    Avg { acc: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl BundleAggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => BundleAggState::Count(0),
            AggFunc::Sum => BundleAggState::Sum {
                acc: 0.0,
                any: false,
                int: true,
            },
            AggFunc::Avg => BundleAggState::Avg { acc: 0.0, n: 0 },
            AggFunc::Min => BundleAggState::Min(None),
            AggFunc::Max => BundleAggState::Max(None),
        }
    }

    fn update(&mut self, v: Option<Value>) -> crate::Result<()> {
        use std::cmp::Ordering;
        match self {
            BundleAggState::Count(c) => match v {
                None => *c += 1,
                Some(val) if !val.is_null() => *c += 1,
                _ => {}
            },
            BundleAggState::Sum { acc, any, int } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        if !matches!(val, Value::Int(_)) {
                            *int = false;
                        }
                        *acc += val.as_f64()?;
                        *any = true;
                    }
                }
            }
            BundleAggState::Avg { acc, n } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *acc += val.as_f64()?;
                        *n += 1;
                    }
                }
            }
            BundleAggState::Min(best) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && best
                            .as_ref()
                            .map(|b| val.sql_cmp(b) == Some(Ordering::Less))
                            .unwrap_or(true)
                    {
                        *best = Some(val);
                    }
                }
            }
            BundleAggState::Max(best) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && best
                            .as_ref()
                            .map(|b| val.sql_cmp(b) == Some(Ordering::Greater))
                            .unwrap_or(true)
                    {
                        *best = Some(val);
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            BundleAggState::Count(c) => Value::Int(c),
            BundleAggState::Sum { acc, any, int } => {
                if !any {
                    Value::Null
                } else if int && acc.fract() == 0.0 && acc.abs() < 9e15 {
                    Value::Int(acc as i64)
                } else {
                    Value::Float(acc)
                }
            }
            BundleAggState::Avg { acc, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(acc / n as f64)
                }
            }
            BundleAggState::Min(v) => v.unwrap_or(Value::Null),
            BundleAggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::AggSpec;
    use crate::schema::DataType;
    use crate::vg::{BackwardWalkVg, NormalVg};
    use mde_numeric::rng::rng_from_seed;

    fn base_catalog() -> Catalog {
        let mut db = Catalog::new();
        db.insert(
            Table::build(
                "ITEMS",
                &[("IID", DataType::Int), ("REGION", DataType::Str)],
            )
            .rows((0..10).map(|i| {
                vec![
                    Value::from(i),
                    Value::from(if i % 2 == 0 { "east" } else { "west" }),
                ]
            }))
            .finish()
            .unwrap(),
        );
        db.insert(
            Table::build(
                "PARAMS",
                &[("MEAN", DataType::Float), ("STD", DataType::Float)],
            )
            .row(vec![Value::from(10.0), Value::from(2.0)])
            .finish()
            .unwrap(),
        );
        db
    }

    fn sales_spec() -> RandomTableSpec {
        RandomTableSpec::builder("SALES")
            .for_each(Plan::scan("ITEMS"))
            .with_vg(std::sync::Arc::new(NormalVg))
            .vg_params_query(Plan::scan("PARAMS"))
            .select(&[
                ("IID", Expr::col("IID")),
                ("REGION", Expr::col("REGION")),
                ("AMT", Expr::col("VALUE")),
            ])
            .build()
            .unwrap()
    }

    fn bundled_catalog(n: usize, seed: u64) -> BundledCatalog {
        let db = base_catalog();
        let mut rng = rng_from_seed(seed);
        let bundled = BundledTable::from_spec(&sales_spec(), &db, n, &mut rng).unwrap();
        let mut bc = BundledCatalog::new(n);
        bc.insert(bundled).unwrap();
        bc.insert_const(db.get("ITEMS").unwrap());
        bc
    }

    /// The fundamental invariant: bundled execution instantiated at
    /// iteration i equals ordinary execution over inputs instantiated at i.
    fn assert_bundle_equiv(plan: &Plan, bc: &BundledCatalog) {
        let bundled_result = execute_bundled(plan, bc).unwrap();
        for i in 0..bc.n_iters() {
            // Instantiate every input table at iteration i.
            let mut cat = Catalog::new();
            for name in ["SALES", "ITEMS"] {
                if let Ok(bt) = bc.get(name) {
                    cat.insert(bt.instantiate(i).unwrap());
                }
            }
            let naive = cat.query_unoptimized(plan).unwrap();
            let inst = bundled_result.instantiate(i).unwrap();
            assert_eq!(
                inst.rows(),
                naive.rows(),
                "bundle/naive divergence at iteration {i} for {plan:?}"
            );
        }
    }

    #[test]
    fn bundled_scan_instantiates_correctly() {
        let bc = bundled_catalog(5, 1);
        let bt = bc.get("SALES").unwrap();
        assert_eq!(bt.n_iters(), 5);
        for i in 0..5 {
            let t = bt.instantiate(i).unwrap();
            assert_eq!(t.len(), 10);
        }
        // Different iterations differ in the random column.
        let a = bt.instantiate(0).unwrap().column_f64("AMT").unwrap();
        let b = bt.instantiate(1).unwrap().column_f64("AMT").unwrap();
        assert_ne!(a, b);
        // But share the deterministic columns.
        assert_eq!(
            bt.instantiate(0).unwrap().column("IID").unwrap(),
            bt.instantiate(1).unwrap().column("IID").unwrap()
        );
    }

    #[test]
    fn filter_on_const_column_keeps_whole_bundles() {
        let bc = bundled_catalog(4, 2);
        let plan = Plan::scan("SALES").filter(Expr::col("REGION").eq(Expr::lit("east")));
        let out = execute_bundled(&plan, &bc).unwrap();
        assert_eq!(out.rows().len(), 5);
        assert!(out.rows().iter().all(|r| r.present == Presence::All));
        assert_bundle_equiv(&plan, &bc);
    }

    #[test]
    fn filter_on_varying_column_masks() {
        let bc = bundled_catalog(8, 3);
        let plan = Plan::scan("SALES").filter(Expr::col("AMT").gt(Expr::lit(10.0)));
        let out = execute_bundled(&plan, &bc).unwrap();
        // Some bundle should be present in a strict subset of iterations.
        assert!(out
            .rows()
            .iter()
            .any(|r| matches!(&r.present, Presence::Mask(m) if m.iter().any(|&x| x) && !m.iter().all(|&x| x))));
        assert_bundle_equiv(&plan, &bc);
    }

    #[test]
    fn projection_mixes_const_and_varying() {
        let bc = bundled_catalog(6, 4);
        let plan = Plan::scan("SALES").project(&[
            ("IID2", Expr::col("IID").mul(Expr::lit(2))),
            ("AMT_TAXED", Expr::col("AMT").mul(Expr::lit(1.1))),
        ]);
        let out = execute_bundled(&plan, &bc).unwrap();
        assert!(out.rows()[0].values[0].is_const());
        assert!(!out.rows()[0].values[1].is_const());
        assert_bundle_equiv(&plan, &bc);
    }

    #[test]
    fn global_aggregate_yields_mc_sample() {
        let bc = bundled_catalog(50, 5);
        let plan = Plan::scan("SALES").aggregate(
            &[],
            vec![AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("AMT"))],
        );
        let out = execute_bundled(&plan, &bc).unwrap();
        let samples = out.scalar_samples().unwrap();
        assert_eq!(samples.len(), 50);
        // True mean 100 (10 items × mean 10), std 2*sqrt(10) ≈ 6.3.
        let mean = samples.iter().sum::<f64>() / 50.0;
        assert!((mean - 100.0).abs() < 5.0, "mean {mean}");
        assert_bundle_equiv(&plan, &bc);
    }

    #[test]
    fn group_by_on_const_columns() {
        let bc = bundled_catalog(10, 6);
        let plan = Plan::scan("SALES").aggregate(
            &["REGION"],
            vec![
                AggSpec::count_star("N"),
                AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("AMT")),
            ],
        );
        let out = execute_bundled(&plan, &bc).unwrap();
        assert_eq!(out.rows().len(), 2);
        // COUNT is iteration-independent here and collapses to Const.
        assert!(out.rows()[0].values[1].is_const());
        assert!(!out.rows()[0].values[2].is_const());
        assert_bundle_equiv(&plan, &bc);
    }

    #[test]
    fn group_by_on_varying_column_rejected() {
        let bc = bundled_catalog(3, 7);
        let plan = Plan::scan("SALES").aggregate(&["AMT"], vec![AggSpec::count_star("N")]);
        assert!(execute_bundled(&plan, &bc).is_err());
    }

    #[test]
    fn join_on_const_keys() {
        let bc = bundled_catalog(6, 8);
        let plan = Plan::scan("SALES")
            .join(Plan::scan("ITEMS"), &[("IID", "IID")])
            .aggregate(
                &[],
                vec![AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("AMT"))],
            );
        assert_bundle_equiv(&plan, &bc);
    }

    #[test]
    fn join_on_varying_keys_rejected() {
        let bc = bundled_catalog(3, 9);
        let plan = Plan::scan("SALES").join(Plan::scan("ITEMS"), &[("AMT", "IID")]);
        assert!(execute_bundled(&plan, &bc).is_err());
    }

    #[test]
    fn sort_and_limit_rejected() {
        let bc = bundled_catalog(3, 10);
        let plan = Plan::scan("SALES").limit(3);
        assert!(execute_bundled(&plan, &bc).is_err());
        let plan = Plan::scan("SALES").sort(vec![crate::query::SortKey::asc(Expr::col("AMT"))]);
        assert!(execute_bundled(&plan, &bc).is_err());
    }

    #[test]
    fn variable_cardinality_vg_uses_presence_masks() {
        let db = base_catalog();
        let spec = RandomTableSpec::builder("WALK")
            .for_each(Plan::scan("PARAMS"))
            .with_vg(std::sync::Arc::new(BackwardWalkVg))
            .vg_params_exprs(&[Expr::lit(100.0), Expr::lit(5.0), Expr::lit(3.0)])
            .select(&[("LAG", Expr::col("LAG")), ("PRICE", Expr::col("PRICE"))])
            .build()
            .unwrap();
        let mut rng = rng_from_seed(11);
        let bt = BundledTable::from_spec(&spec, &db, 4, &mut rng).unwrap();
        // 4 iterations x 3 lags = 12 single-iteration bundles.
        assert_eq!(bt.rows().len(), 12);
        for i in 0..4 {
            assert_eq!(bt.instantiate(i).unwrap().len(), 3);
        }
    }

    #[test]
    fn mismatched_iteration_counts_rejected() {
        let db = base_catalog();
        let mut rng = rng_from_seed(12);
        let bt = BundledTable::from_spec(&sales_spec(), &db, 3, &mut rng).unwrap();
        let mut bc = BundledCatalog::new(5);
        assert!(bc.insert(bt).is_err());
    }
}
