//! Table schemas: ordered, named, typed columns.

pub use crate::value::DataType;
use crate::value::Value;
use crate::McdbError;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within a schema, case-sensitive).
    pub name: String,
    /// Column type. `Null` values are admitted in any column.
    pub dtype: DataType,
}

impl Column {
    /// Create a column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered collection of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Create a schema from columns; names must be unique.
    pub fn new(columns: Vec<Column>) -> crate::Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(McdbError::invalid_plan(format!(
                    "duplicate column name `{}` in schema",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> crate::Result<Self> {
        Schema::new(pairs.iter().map(|(n, t)| Column::new(*n, *t)).collect())
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> crate::Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| McdbError::UnknownColumn {
                column: name.to_string(),
                available: self.names(),
            })
    }

    /// Whether the schema has a column with this name.
    pub fn contains(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c.name == name)
    }

    /// Validate that a row conforms to this schema (arity + per-column
    /// type, with `Null` always admitted).
    pub fn validate_row(&self, row: &[Value]) -> crate::Result<()> {
        if row.len() != self.columns.len() {
            return Err(McdbError::ArityMismatch {
                context: "Schema::validate_row".to_string(),
                expected: self.columns.len(),
                found: row.len(),
            });
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if let Some(t) = v.data_type() {
                if t != c.dtype {
                    return Err(McdbError::type_mismatch(
                        format!("column `{}`", c.name),
                        c.dtype.to_string(),
                        t.to_string(),
                    ));
                }
            }
            if let Value::Float(f) = v {
                if f.is_nan() {
                    return Err(McdbError::type_mismatch(
                        format!("column `{}`", c.name),
                        "finite float or NULL".to_string(),
                        "NaN".to_string(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Concatenate two schemas (for joins). Collisions on the right side
    /// are disambiguated with the given prefix (`prefix.name`).
    pub fn concat(&self, other: &Schema, collision_prefix: &str) -> crate::Result<Schema> {
        let mut cols = self.columns.clone();
        for c in &other.columns {
            let name = if self.contains(&c.name) {
                format!("{collision_prefix}.{}", c.name)
            } else {
                c.name.clone()
            };
            cols.push(Column::new(name, c.dtype));
        }
        Schema::new(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_rejected() {
        assert!(Schema::from_pairs(&[("a", DataType::Int), ("a", DataType::Float)]).is_err());
    }

    #[test]
    fn index_and_contains() {
        let s = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]).unwrap();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.contains("a"));
        assert!(!s.contains("c"));
        assert!(matches!(
            s.index_of("c"),
            Err(McdbError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn validate_row_checks_arity_and_types() {
        let s = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]).unwrap();
        assert!(s.validate_row(&[Value::from(1), Value::from("x")]).is_ok());
        assert!(s.validate_row(&[Value::from(1)]).is_err());
        assert!(s
            .validate_row(&[Value::from("x"), Value::from("y")])
            .is_err());
        // Nulls always allowed.
        assert!(s.validate_row(&[Value::Null, Value::Null]).is_ok());
    }

    #[test]
    fn validate_row_rejects_nan() {
        let s = Schema::from_pairs(&[("a", DataType::Float)]).unwrap();
        assert!(s.validate_row(&[Value::from(f64::NAN)]).is_err());
        assert!(s.validate_row(&[Value::from(1.5)]).is_ok());
    }

    #[test]
    fn concat_disambiguates_collisions() {
        let a = Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap();
        let b = Schema::from_pairs(&[("id", DataType::Int), ("y", DataType::Float)]).unwrap();
        let c = a.concat(&b, "r").unwrap();
        assert_eq!(c.names(), vec!["id", "x", "r.id", "y"]);
    }
}
