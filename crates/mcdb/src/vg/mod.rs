//! VG (variable generation) functions.
//!
//! In MCDB, "uncertain data are not represented by specific data values,
//! but rather by stochastic models … implemented as user- and
//! system-defined libraries of external C++ programs called Variable
//! Generation functions". A call to a VG function generates a realization
//! of uncertain values as a pseudorandom sample; the sample can be a single
//! element or a set of correlated elements.
//!
//! This module defines the [`VgFunction`] trait and implements the paper's
//! own examples:
//!
//! * [`NormalVg`] — "simple generation of a sample from a normal
//!   distribution" (the SBP example);
//! * [`BackwardWalkVg`] — "executing a backward random walk starting at a
//!   given current price in order to estimate missing prior prices";
//! * [`StockOptionVg`] — "simulating a sequence of stock prices in order to
//!   return a sample of the value of a stock option one week from now";
//! * [`BayesianDemandVg`] — "a customer's random demand for an item, given
//!   its price … fitting a parametric global demand model … and then
//!   computing a customized demand distribution for each customer using the
//!   customer's individual purchase history together with Bayes' Theorem";
//! * plus the general-purpose [`UniformVg`], [`PoissonVg`], and
//!   [`DiscreteChoiceVg`].

mod library;

pub use library::{
    BackwardWalkVg, BayesianDemandVg, BernoulliVg, BetaVg, DiscreteChoiceVg, ExponentialVg,
    NormalVg, PoissonVg, StockOptionVg, UniformVg,
};

use crate::schema::Schema;
use crate::table::Row;
use crate::value::Value;
use mde_numeric::rng::Rng;

/// How many rows a VG function emits per invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputCardinality {
    /// Exactly this many rows per call — enables dense tuple-bundle
    /// layouts where every Monte Carlo iteration shares row structure.
    Fixed(usize),
    /// Row count varies by call (e.g. a Poisson number of rows); bundling
    /// falls back to presence bitmaps.
    Variable,
}

/// A variable-generation function: the pluggable stochastic model of a
/// random table.
///
/// `generate` receives parameter values (produced by a SQL-like parameter
/// query and/or per-driver-row expressions — see
/// [`crate::random_table::RandomTableSpec`]) and must return rows matching
/// [`VgFunction::output_schema`].
pub trait VgFunction: Send + Sync {
    /// Name, for error messages and registry display.
    fn name(&self) -> &str;

    /// Schema of the rows this function produces.
    fn output_schema(&self) -> Schema;

    /// Number of parameters expected, or `None` for variadic functions.
    fn arity(&self) -> Option<usize>;

    /// Rows emitted per call.
    fn cardinality(&self) -> OutputCardinality;

    /// Generate one realization.
    fn generate(&self, params: &[Value], rng: &mut Rng) -> crate::Result<Vec<Row>>;

    /// Validate parameter count against [`VgFunction::arity`].
    fn check_arity(&self, params: &[Value]) -> crate::Result<()> {
        if let Some(n) = self.arity() {
            if params.len() != n {
                return Err(crate::McdbError::ArityMismatch {
                    context: format!("VG function `{}`", self.name()),
                    expected: n,
                    found: params.len(),
                });
            }
        }
        Ok(())
    }
}

/// Extract a required float parameter with a descriptive error.
pub(crate) fn float_param(
    params: &[Value],
    idx: usize,
    vg: &str,
    what: &str,
) -> crate::Result<f64> {
    params
        .get(idx)
        .ok_or_else(|| crate::McdbError::ArityMismatch {
            context: format!("VG function `{vg}` ({what})"),
            expected: idx + 1,
            found: params.len(),
        })?
        .as_f64()
        .map_err(|_| {
            crate::McdbError::type_mismatch(
                format!("VG function `{vg}` parameter {idx} ({what})"),
                "numeric",
                format!("{}", params[idx]),
            )
        })
}
