//! The built-in VG function library — the paper's worked examples plus
//! general-purpose generators.

use super::{float_param, OutputCardinality, VgFunction};
use crate::schema::{DataType, Schema};
use crate::table::Row;
use crate::value::Value;
use mde_numeric::dist::{Bernoulli, Beta, Distribution, Exponential, Gamma, Normal, Poisson};
use mde_numeric::rng::Rng;

fn value_schema(dtype: DataType) -> Schema {
    Schema::from_pairs(&[("VALUE", dtype)]).expect("static schema")
}

/// `Normal(mean, std)` → one row `(VALUE: Float)`.
///
/// The VG function of the paper's SBP example.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalVg;

impl VgFunction for NormalVg {
    fn name(&self) -> &str {
        "Normal"
    }

    fn output_schema(&self) -> Schema {
        value_schema(DataType::Float)
    }

    fn arity(&self) -> Option<usize> {
        Some(2)
    }

    fn cardinality(&self) -> OutputCardinality {
        OutputCardinality::Fixed(1)
    }

    fn generate(&self, params: &[Value], rng: &mut Rng) -> crate::Result<Vec<Row>> {
        self.check_arity(params)?;
        let mean = float_param(params, 0, self.name(), "mean")?;
        let std = float_param(params, 1, self.name(), "std")?;
        let d = Normal::new(mean, std)?;
        Ok(vec![vec![Value::Float(d.sample(rng))]])
    }
}

/// `Uniform(lo, hi)` → one row `(VALUE: Float)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformVg;

impl VgFunction for UniformVg {
    fn name(&self) -> &str {
        "Uniform"
    }

    fn output_schema(&self) -> Schema {
        value_schema(DataType::Float)
    }

    fn arity(&self) -> Option<usize> {
        Some(2)
    }

    fn cardinality(&self) -> OutputCardinality {
        OutputCardinality::Fixed(1)
    }

    fn generate(&self, params: &[Value], rng: &mut Rng) -> crate::Result<Vec<Row>> {
        self.check_arity(params)?;
        let lo = float_param(params, 0, self.name(), "lo")?;
        let hi = float_param(params, 1, self.name(), "hi")?;
        let d = mde_numeric::dist::Uniform::new(lo, hi)?;
        Ok(vec![vec![Value::Float(d.sample(rng))]])
    }
}

/// `Poisson(lambda)` → one row `(VALUE: Int)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoissonVg;

impl VgFunction for PoissonVg {
    fn name(&self) -> &str {
        "Poisson"
    }

    fn output_schema(&self) -> Schema {
        value_schema(DataType::Int)
    }

    fn arity(&self) -> Option<usize> {
        Some(1)
    }

    fn cardinality(&self) -> OutputCardinality {
        OutputCardinality::Fixed(1)
    }

    fn generate(&self, params: &[Value], rng: &mut Rng) -> crate::Result<Vec<Row>> {
        self.check_arity(params)?;
        let lambda = float_param(params, 0, self.name(), "lambda")?;
        let d = Poisson::new(lambda)?;
        Ok(vec![vec![Value::Int(d.sample_count(rng) as i64)]])
    }
}

/// `DiscreteChoice(w_0, …, w_{k−1})` over fixed labels → one row
/// `(VALUE: Str)`. The labels are supplied at construction; the weights
/// arrive as parameters so they can come from data.
#[derive(Debug, Clone)]
pub struct DiscreteChoiceVg {
    labels: Vec<String>,
}

impl DiscreteChoiceVg {
    /// Create with the category labels.
    pub fn new(labels: &[&str]) -> Self {
        DiscreteChoiceVg {
            labels: labels.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl VgFunction for DiscreteChoiceVg {
    fn name(&self) -> &str {
        "DiscreteChoice"
    }

    fn output_schema(&self) -> Schema {
        value_schema(DataType::Str)
    }

    fn arity(&self) -> Option<usize> {
        Some(self.labels.len())
    }

    fn cardinality(&self) -> OutputCardinality {
        OutputCardinality::Fixed(1)
    }

    fn generate(&self, params: &[Value], rng: &mut Rng) -> crate::Result<Vec<Row>> {
        self.check_arity(params)?;
        let weights: Vec<f64> = (0..params.len())
            .map(|i| float_param(params, i, self.name(), "weight"))
            .collect::<crate::Result<_>>()?;
        let cat = mde_numeric::dist::Categorical::new(&weights)?;
        let idx = cat.sample_index(rng);
        Ok(vec![vec![Value::str(&self.labels[idx])]])
    }
}

/// `BackwardWalk(current_price, step_std, n_steps)` → `n_steps` rows
/// `(LAG: Int, PRICE: Float)`.
///
/// The paper's "backward random walk starting at a given current price in
/// order to estimate missing prior prices": `LAG = 1` is one step into the
/// past, and prices follow a Gaussian random walk backwards from the
/// current price, floored at zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct BackwardWalkVg;

impl VgFunction for BackwardWalkVg {
    fn name(&self) -> &str {
        "BackwardWalk"
    }

    fn output_schema(&self) -> Schema {
        Schema::from_pairs(&[("LAG", DataType::Int), ("PRICE", DataType::Float)])
            .expect("static schema")
    }

    fn arity(&self) -> Option<usize> {
        Some(3)
    }

    fn cardinality(&self) -> OutputCardinality {
        OutputCardinality::Variable
    }

    fn generate(&self, params: &[Value], rng: &mut Rng) -> crate::Result<Vec<Row>> {
        self.check_arity(params)?;
        let current = float_param(params, 0, self.name(), "current_price")?;
        let step_std = float_param(params, 1, self.name(), "step_std")?;
        let n_steps = float_param(params, 2, self.name(), "n_steps")? as usize;
        let noise = Normal::new(0.0, step_std)?;
        let mut price = current;
        let mut rows = Vec::with_capacity(n_steps);
        for lag in 1..=n_steps {
            price = (price + noise.sample(rng)).max(0.0);
            rows.push(vec![Value::Int(lag as i64), Value::Float(price)]);
        }
        Ok(rows)
    }
}

/// `StockOption(s0, strike, mu, sigma, horizon_days)` → one row
/// `(VALUE: Float)`: the payoff `max(S_T − strike, 0)` of a European call
/// after simulating a geometric-Brownian-motion price path day by day.
///
/// The paper's "simulating a sequence of stock prices in order to return a
/// sample of the value of a stock option one week from now" — the whole
/// path is simulated (not just the terminal lognormal draw) because real VG
/// functions do arbitrary work per sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct StockOptionVg;

impl VgFunction for StockOptionVg {
    fn name(&self) -> &str {
        "StockOption"
    }

    fn output_schema(&self) -> Schema {
        value_schema(DataType::Float)
    }

    fn arity(&self) -> Option<usize> {
        Some(5)
    }

    fn cardinality(&self) -> OutputCardinality {
        OutputCardinality::Fixed(1)
    }

    fn generate(&self, params: &[Value], rng: &mut Rng) -> crate::Result<Vec<Row>> {
        self.check_arity(params)?;
        let s0 = float_param(params, 0, self.name(), "s0")?;
        let strike = float_param(params, 1, self.name(), "strike")?;
        let mu = float_param(params, 2, self.name(), "mu (annualized drift)")?;
        let sigma = float_param(params, 3, self.name(), "sigma (annualized vol)")?;
        let days = float_param(params, 4, self.name(), "horizon_days")? as usize;
        if s0 <= 0.0 || sigma <= 0.0 {
            return Err(crate::McdbError::type_mismatch(
                "StockOption",
                "positive s0 and sigma",
                format!("s0={s0}, sigma={sigma}"),
            ));
        }
        const TRADING_DAYS: f64 = 252.0;
        let dt = 1.0 / TRADING_DAYS;
        let mut s = s0;
        for _ in 0..days {
            let z = Normal::sample_standard(rng);
            s *= ((mu - 0.5 * sigma * sigma) * dt + sigma * dt.sqrt() * z).exp();
        }
        Ok(vec![vec![Value::Float((s - strike).max(0.0))]])
    }
}

/// `BayesianDemand(alpha, beta, hist_periods, hist_units, price, ref_price,
/// elasticity)` → one row `(VALUE: Int)`.
///
/// The paper's Bayesian demand example. A global parametric demand model
/// gives a Gamma(`alpha`, rate `beta`) prior on a customer's base demand
/// rate per period. The customer's own purchase history (`hist_units`
/// units over `hist_periods` periods) updates it by conjugacy to
/// Gamma(`alpha + hist_units`, rate `beta + hist_periods`) — Bayes'
/// Theorem, exactly as the paper sketches. The realized rate is then
/// scaled by a log-linear price response
/// `exp(−elasticity · (price − ref_price) / ref_price)` and demand is drawn
/// Poisson. Asking "how would revenue have been affected by a 5% price
/// increase" is then a query with a different `price` parameter.
#[derive(Debug, Clone, Copy, Default)]
pub struct BayesianDemandVg;

impl VgFunction for BayesianDemandVg {
    fn name(&self) -> &str {
        "BayesianDemand"
    }

    fn output_schema(&self) -> Schema {
        value_schema(DataType::Int)
    }

    fn arity(&self) -> Option<usize> {
        Some(7)
    }

    fn cardinality(&self) -> OutputCardinality {
        OutputCardinality::Fixed(1)
    }

    fn generate(&self, params: &[Value], rng: &mut Rng) -> crate::Result<Vec<Row>> {
        self.check_arity(params)?;
        let alpha = float_param(params, 0, self.name(), "prior shape alpha")?;
        let beta = float_param(params, 1, self.name(), "prior rate beta")?;
        let hist_periods = float_param(params, 2, self.name(), "history periods")?;
        let hist_units = float_param(params, 3, self.name(), "history units")?;
        let price = float_param(params, 4, self.name(), "price")?;
        let ref_price = float_param(params, 5, self.name(), "reference price")?;
        let elasticity = float_param(params, 6, self.name(), "elasticity")?;

        // Conjugate posterior for a Poisson rate under a Gamma prior.
        let post_shape = alpha + hist_units;
        let post_rate = beta + hist_periods;
        let rate_dist = Gamma::new(post_shape, 1.0 / post_rate)?;
        let base_rate = rate_dist.sample(rng);
        let price_factor = (-elasticity * (price - ref_price) / ref_price).exp();
        let lambda = (base_rate * price_factor).max(1e-12);
        let demand = Poisson::new(lambda)?.sample_count(rng);
        Ok(vec![vec![Value::Int(demand as i64)]])
    }
}

/// `Exponential(rate)` → one row `(VALUE: Float)` — used by calibration
/// examples (the paper's §3.1 worked example distribution).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExponentialVg;

impl VgFunction for ExponentialVg {
    fn name(&self) -> &str {
        "Exponential"
    }

    fn output_schema(&self) -> Schema {
        value_schema(DataType::Float)
    }

    fn arity(&self) -> Option<usize> {
        Some(1)
    }

    fn cardinality(&self) -> OutputCardinality {
        OutputCardinality::Fixed(1)
    }

    fn generate(&self, params: &[Value], rng: &mut Rng) -> crate::Result<Vec<Row>> {
        self.check_arity(params)?;
        let rate = float_param(params, 0, self.name(), "rate")?;
        let d = Exponential::new(rate)?;
        Ok(vec![vec![Value::Float(d.sample(rng))]])
    }
}

/// `Beta(a, b)` → one row `(VALUE: Float)` in `[0, 1]` — conjugate
/// posterior draws for the SimSQL-style Bayesian chains (§2.1: "well
/// suited to scalable Bayesian machine learning").
#[derive(Debug, Clone, Copy, Default)]
pub struct BetaVg;

impl VgFunction for BetaVg {
    fn name(&self) -> &str {
        "Beta"
    }

    fn output_schema(&self) -> Schema {
        value_schema(DataType::Float)
    }

    fn arity(&self) -> Option<usize> {
        Some(2)
    }

    fn cardinality(&self) -> OutputCardinality {
        OutputCardinality::Fixed(1)
    }

    fn generate(&self, params: &[Value], rng: &mut Rng) -> crate::Result<Vec<Row>> {
        self.check_arity(params)?;
        let a = float_param(params, 0, self.name(), "alpha")?;
        let b = float_param(params, 1, self.name(), "beta")?;
        let d = Beta::new(a, b)?;
        Ok(vec![vec![Value::Float(d.sample(rng))]])
    }
}

/// `Bernoulli(p)` → one row `(VALUE: Int)` ∈ {0, 1}.
#[derive(Debug, Clone, Copy, Default)]
pub struct BernoulliVg;

impl VgFunction for BernoulliVg {
    fn name(&self) -> &str {
        "Bernoulli"
    }

    fn output_schema(&self) -> Schema {
        value_schema(DataType::Int)
    }

    fn arity(&self) -> Option<usize> {
        Some(1)
    }

    fn cardinality(&self) -> OutputCardinality {
        OutputCardinality::Fixed(1)
    }

    fn generate(&self, params: &[Value], rng: &mut Rng) -> crate::Result<Vec<Row>> {
        self.check_arity(params)?;
        let p = float_param(params, 0, self.name(), "p")?;
        let d = Bernoulli::new(p.clamp(0.0, 1.0))?;
        Ok(vec![vec![Value::Int(if d.sample_bool(rng) {
            1
        } else {
            0
        })]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mde_numeric::rng::rng_from_seed;
    use mde_numeric::stats::Summary;

    #[test]
    fn normal_vg_moments() {
        let vg = NormalVg;
        let mut rng = rng_from_seed(1);
        let mut s = Summary::new();
        for _ in 0..20_000 {
            let rows = vg
                .generate(&[Value::from(120.0), Value::from(15.0)], &mut rng)
                .unwrap();
            s.push(rows[0][0].as_f64().unwrap());
        }
        assert!((s.mean() - 120.0).abs() < 0.5);
        assert!((s.sample_std_dev() - 15.0).abs() < 0.5);
    }

    #[test]
    fn normal_vg_arity_and_types() {
        let vg = NormalVg;
        let mut rng = rng_from_seed(1);
        assert!(vg.generate(&[Value::from(1.0)], &mut rng).is_err());
        assert!(vg
            .generate(&[Value::from("x"), Value::from(1.0)], &mut rng)
            .is_err());
        assert!(vg
            .generate(&[Value::from(0.0), Value::from(-1.0)], &mut rng)
            .is_err());
    }

    #[test]
    fn poisson_vg_is_integer_and_unbiased() {
        let vg = PoissonVg;
        let mut rng = rng_from_seed(2);
        let mut s = Summary::new();
        for _ in 0..20_000 {
            let rows = vg.generate(&[Value::from(4.0)], &mut rng).unwrap();
            s.push(rows[0][0].as_i64().unwrap() as f64);
        }
        assert!((s.mean() - 4.0).abs() < 0.1);
    }

    #[test]
    fn discrete_choice_respects_weights() {
        let vg = DiscreteChoiceVg::new(&["A", "B"]);
        assert_eq!(vg.arity(), Some(2));
        let mut rng = rng_from_seed(3);
        let mut count_a = 0;
        let n = 10_000;
        for _ in 0..n {
            let rows = vg
                .generate(&[Value::from(3.0), Value::from(1.0)], &mut rng)
                .unwrap();
            if rows[0][0].as_str().unwrap() == "A" {
                count_a += 1;
            }
        }
        let frac = count_a as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "P(A) estimate {frac}");
    }

    #[test]
    fn backward_walk_structure() {
        let vg = BackwardWalkVg;
        let mut rng = rng_from_seed(4);
        let rows = vg
            .generate(
                &[Value::from(100.0), Value::from(2.0), Value::from(5.0)],
                &mut rng,
            )
            .unwrap();
        assert_eq!(rows.len(), 5);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0].as_i64().unwrap(), (i + 1) as i64);
            assert!(row[1].as_f64().unwrap() >= 0.0, "prices floored at zero");
        }
        assert_eq!(vg.cardinality(), OutputCardinality::Variable);
    }

    #[test]
    fn stock_option_payoff_nonnegative_and_sane() {
        let vg = StockOptionVg;
        let mut rng = rng_from_seed(5);
        let mut s = Summary::new();
        for _ in 0..5_000 {
            let rows = vg
                .generate(
                    &[
                        Value::from(100.0),
                        Value::from(100.0),
                        Value::from(0.05),
                        Value::from(0.2),
                        Value::from(5.0),
                    ],
                    &mut rng,
                )
                .unwrap();
            let payoff = rows[0][0].as_f64().unwrap();
            assert!(payoff >= 0.0);
            s.push(payoff);
        }
        // At-the-money call over 5 trading days with sigma=0.2:
        // E ≈ S0·sigma·sqrt(T/2pi) ≈ 100·0.2·sqrt(5/252)/sqrt(2pi) ≈ 1.12.
        assert!(
            (s.mean() - 1.12).abs() < 0.15,
            "ATM payoff mean {}",
            s.mean()
        );
    }

    #[test]
    fn stock_option_rejects_bad_params() {
        let vg = StockOptionVg;
        let mut rng = rng_from_seed(5);
        let bad = vg.generate(
            &[
                Value::from(-1.0),
                Value::from(100.0),
                Value::from(0.0),
                Value::from(0.2),
                Value::from(5.0),
            ],
            &mut rng,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn bayesian_demand_posterior_shifts_with_history() {
        let vg = BayesianDemandVg;
        let mut rng = rng_from_seed(6);
        // Prior mean alpha/beta = 2. A heavy purchase history (100 units in
        // 10 periods) should pull expected demand toward 10.
        let mut s_prior = Summary::new();
        let mut s_heavy = Summary::new();
        for _ in 0..5_000 {
            let r = vg
                .generate(
                    &[
                        Value::from(2.0),
                        Value::from(1.0),
                        Value::from(0.0),
                        Value::from(0.0),
                        Value::from(10.0),
                        Value::from(10.0),
                        Value::from(1.0),
                    ],
                    &mut rng,
                )
                .unwrap();
            s_prior.push(r[0][0].as_i64().unwrap() as f64);
            let r = vg
                .generate(
                    &[
                        Value::from(2.0),
                        Value::from(1.0),
                        Value::from(10.0),
                        Value::from(100.0),
                        Value::from(10.0),
                        Value::from(10.0),
                        Value::from(1.0),
                    ],
                    &mut rng,
                )
                .unwrap();
            s_heavy.push(r[0][0].as_i64().unwrap() as f64);
        }
        assert!((s_prior.mean() - 2.0).abs() < 0.2);
        assert!((s_heavy.mean() - 102.0 / 11.0).abs() < 0.4);
    }

    #[test]
    fn bayesian_demand_price_elasticity() {
        let vg = BayesianDemandVg;
        let mut rng = rng_from_seed(7);
        let demand_at = |price: f64, rng: &mut mde_numeric::rng::Rng| {
            let mut s = Summary::new();
            for _ in 0..4_000 {
                let r = vg
                    .generate(
                        &[
                            Value::from(5.0),
                            Value::from(1.0),
                            Value::from(0.0),
                            Value::from(0.0),
                            Value::from(price),
                            Value::from(10.0),
                            Value::from(2.0),
                        ],
                        rng,
                    )
                    .unwrap();
                s.push(r[0][0].as_i64().unwrap() as f64);
            }
            s.mean()
        };
        let base = demand_at(10.0, &mut rng);
        let raised = demand_at(10.5, &mut rng); // the paper's 5% price increase
                                                // Expected multiplier exp(-2 * 0.05) ≈ 0.905.
        let ratio = raised / base;
        assert!(
            (ratio - 0.905).abs() < 0.05,
            "5% price increase demand ratio {ratio}"
        );
    }

    #[test]
    fn exponential_vg() {
        let vg = ExponentialVg;
        let mut rng = rng_from_seed(8);
        let mut s = Summary::new();
        for _ in 0..20_000 {
            let r = vg.generate(&[Value::from(0.5)], &mut rng).unwrap();
            s.push(r[0][0].as_f64().unwrap());
        }
        assert!((s.mean() - 2.0).abs() < 0.05);
    }
}
