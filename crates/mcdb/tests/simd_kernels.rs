//! Property suite for the query-path SIMD kernels (`query::simd`).
//!
//! Contract: every dispatched kernel is **bit-identical** to its
//! portable scalar oracle — full `assert_eq!`, no tolerance — because
//! comparisons, mask logic, and integer hashing are exact. The inputs
//! here are deliberately adversarial: NaN, ±0.0, ±infinity, subnormals,
//! extreme integers, all-null and no-null masks, and lengths 0, 1, and
//! every misalignment around the 4-lane (f64/i64) and 32-lane (bool)
//! SIMD widths so the scalar tail path is exercised on both sides.

use mde_mcdb::query::simd::{
    cmp_f64_lit, cmp_f64_lit_portable, cmp_i64_lit, cmp_i64_lit_portable, compact_bool_lanes,
    compact_bool_lanes_portable, hash_i64_batch, hash_i64_batch_portable, hash_i64_one, CmpOp,
};
use proptest::prelude::*;

const OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

/// Adversarial f64 palette: the values most likely to split an IEEE
/// predicate from a scalar `==`/`<` chain. `alt` fills the final slot
/// with an arbitrary finite float.
fn hostile_f64(pick: usize, alt: f64) -> f64 {
    match pick {
        0 => f64::NAN,
        1 => -f64::NAN,
        2 => 0.0,
        3 => -0.0,
        4 => f64::INFINITY,
        5 => f64::NEG_INFINITY,
        6 => f64::MIN_POSITIVE,
        7 => -f64::MIN_POSITIVE / 2.0, // subnormal
        8 => f64::MAX,
        9 => f64::MIN,
        _ => alt,
    }
}

fn hostile_i64(pick: usize, alt: u64) -> i64 {
    match pick {
        0 => i64::MIN,
        1 => i64::MIN + 1,
        2 => i64::MAX,
        3 => i64::MAX - 1,
        4 => 0,
        5 => -1,
        6 => 1,
        _ => alt as i64,
    }
}

/// Lengths straddling both SIMD widths: 0, 1, the widths themselves,
/// and every off-by-one around them (non-multiple-of-lane-width tails);
/// the final slot is an arbitrary length.
fn edge_len(pick: usize, rand: usize) -> usize {
    const TABLE: [usize; 11] = [0, 1, 3, 4, 5, 31, 32, 33, 63, 64, 65];
    if pick < TABLE.len() {
        TABLE[pick]
    } else {
        rand
    }
}

/// A null-mask covering `len` lanes: kind 0 = absent, 1 = no nulls,
/// 2 = every lane null, 3 = arbitrary words.
fn mask_for(kind: usize, words_src: &[u64], len: usize) -> Option<Vec<u64>> {
    let words = len.div_ceil(64).max(1);
    match kind {
        0 => None,
        1 => Some(vec![0u64; words]),
        2 => Some(vec![!0u64; words]),
        _ => Some(
            (0..words)
                .map(|i| words_src.get(i).copied().unwrap_or(0xdead_beef_cafe_f00d))
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// f64 literal comparison: dispatched == portable on hostile data,
    /// for all six predicates and every mask shape.
    #[test]
    fn cmp_f64_dispatched_equals_portable(
        len_pick in 0usize..13,
        len_rand in 0usize..130,
        picks in proptest::collection::vec(0usize..12, 1..131),
        alts in proptest::collection::vec(any::<f64>(), 1..131),
        lit_pick in 0usize..12,
        lit_alt in any::<f64>(),
        kind in 0usize..4,
        words in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        let len = edge_len(len_pick, len_rand);
        let data: Vec<f64> = (0..len)
            .map(|i| hostile_f64(picks[i % picks.len()], alts[i % alts.len()]))
            .collect();
        let lit = hostile_f64(lit_pick, lit_alt);
        let mask = mask_for(kind, &words, len);
        for op in OPS {
            let got = cmp_f64_lit(op, &data, lit, mask.as_deref());
            let want = cmp_f64_lit_portable(op, &data, lit, mask.as_deref());
            prop_assert_eq!(&got, &want, "op {:?} len {} lit {:?}", op, len, lit);
            // Selection vectors are strictly increasing local lanes.
            prop_assert!(got.windows(2).all(|w| w[0] < w[1]));
            if kind == 2 {
                prop_assert!(got.is_empty(), "all-null input selects nothing");
            }
        }
    }

    /// i64 literal comparison: dispatched == portable across the
    /// derived-predicate table (eq/gt + operand swap + mask negate).
    #[test]
    fn cmp_i64_dispatched_equals_portable(
        len_pick in 0usize..13,
        len_rand in 0usize..130,
        picks in proptest::collection::vec(0usize..8, 1..131),
        alts in proptest::collection::vec(any::<u64>(), 1..131),
        lit_pick in 0usize..8,
        lit_alt in any::<u64>(),
        kind in 0usize..4,
        words in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        let len = edge_len(len_pick, len_rand);
        let data: Vec<i64> = (0..len)
            .map(|i| hostile_i64(picks[i % picks.len()], alts[i % alts.len()]))
            .collect();
        let lit = hostile_i64(lit_pick, lit_alt);
        let mask = mask_for(kind, &words, len);
        for op in OPS {
            let got = cmp_i64_lit(op, &data, lit, mask.as_deref());
            let want = cmp_i64_lit_portable(op, &data, lit, mask.as_deref());
            prop_assert_eq!(&got, &want, "op {:?} len {} lit {}", op, len, lit);
            if kind == 2 {
                prop_assert!(got.is_empty());
            }
        }
    }

    /// Boolean compaction: dispatched == portable, incl. the 32-lane
    /// half-word null extraction inside the AVX2 path, plus a
    /// first-principles semantic check independent of the oracle.
    #[test]
    fn compact_bool_dispatched_equals_portable(
        len_pick in 0usize..13,
        len_rand in 0usize..130,
        fill in proptest::collection::vec(any::<bool>(), 1..131),
        kind in 0usize..4,
        words in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        let len = edge_len(len_pick, len_rand);
        let data: Vec<bool> = (0..len).map(|i| fill[i % fill.len()]).collect();
        let mask = mask_for(kind, &words, len);
        let got = compact_bool_lanes(&data, mask.as_deref());
        let want = compact_bool_lanes_portable(&data, mask.as_deref());
        prop_assert_eq!(&got, &want);
        for &lane in &got {
            let lane = lane as usize;
            prop_assert!(data[lane], "selected lane must be true");
            if let Some(w) = &mask {
                prop_assert_eq!(
                    w[lane / 64] >> (lane % 64) & 1,
                    0,
                    "selected lane must be non-null"
                );
            }
        }
        if kind == 2 {
            prop_assert!(got.is_empty());
        }
    }

    /// Batched splitmix64: dispatched == portable == the one-key scalar,
    /// lane for lane (the 32×32 partial-product 64-bit multiply must be
    /// exact on extreme keys).
    #[test]
    fn hash_i64_batch_equals_scalar(
        len_pick in 0usize..13,
        len_rand in 0usize..130,
        picks in proptest::collection::vec(0usize..8, 1..131),
        alts in proptest::collection::vec(any::<u64>(), 1..131),
    ) {
        let len = edge_len(len_pick, len_rand);
        let keys: Vec<i64> = (0..len)
            .map(|i| hostile_i64(picks[i % picks.len()], alts[i % alts.len()]))
            .collect();
        let got = hash_i64_batch(&keys);
        prop_assert_eq!(&got, &hash_i64_batch_portable(&keys));
        prop_assert_eq!(got.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            prop_assert_eq!(got[i], hash_i64_one(k));
        }
    }
}

/// NaN semantics pinned explicitly: every predicate except `Ne` is
/// false against NaN (both as data and as literal); `Ne` is true —
/// on the dispatched and the portable path alike.
#[test]
fn nan_comparison_semantics_are_ieee() {
    let data = [f64::NAN, 1.0, -f64::NAN, f64::INFINITY, -0.0];
    for op in OPS {
        for lit in [f64::NAN, 0.0, f64::INFINITY] {
            let got = cmp_f64_lit(op, &data, lit, None);
            let want = cmp_f64_lit_portable(op, &data, lit, None);
            assert_eq!(got, want, "op {op:?} lit {lit:?}");
        }
    }
    // NaN data, finite literal: only Ne selects the NaN lanes.
    assert_eq!(cmp_f64_lit(CmpOp::Ne, &data, 0.0, None), vec![0, 1, 2, 3]);
    assert_eq!(cmp_f64_lit(CmpOp::Eq, &data, 0.0, None), vec![4]); // -0.0 == 0.0
                                                                   // NaN literal: Ne selects everything, everything else nothing.
    assert_eq!(
        cmp_f64_lit(CmpOp::Ne, &data, f64::NAN, None),
        vec![0, 1, 2, 3, 4]
    );
    for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
        assert_eq!(cmp_f64_lit(op, &data, f64::NAN, None), Vec::<u32>::new());
    }
}

/// Signed-zero equality: -0.0 == 0.0 in IEEE and in both paths.
#[test]
fn signed_zero_compares_equal() {
    let data = [0.0f64, -0.0, 1.0, -1.0];
    for lit in [0.0f64, -0.0] {
        assert_eq!(cmp_f64_lit(CmpOp::Eq, &data, lit, None), vec![0, 1]);
        assert_eq!(
            cmp_f64_lit(CmpOp::Eq, &data, lit, None),
            cmp_f64_lit_portable(CmpOp::Eq, &data, lit, None)
        );
        assert_eq!(cmp_f64_lit(CmpOp::Ge, &data, lit, None), vec![0, 1, 2]);
        assert_eq!(cmp_f64_lit(CmpOp::Lt, &data, lit, None), vec![3]);
    }
}

/// Empty and single-lane inputs hit only the scalar tail; they must
/// still agree and never index a null word out of range.
#[test]
fn zero_and_one_lane_inputs() {
    let no_f: [f64; 0] = [];
    let no_i: [i64; 0] = [];
    let no_b: [bool; 0] = [];
    for op in OPS {
        assert_eq!(cmp_f64_lit(op, &no_f, 1.0, None), Vec::<u32>::new());
        assert_eq!(cmp_i64_lit(op, &no_i, 1, Some(&[0])), Vec::<u32>::new());
        assert_eq!(
            cmp_f64_lit(op, &[2.5], 1.0, Some(&[0])),
            cmp_f64_lit_portable(op, &[2.5], 1.0, Some(&[0]))
        );
        assert_eq!(
            cmp_i64_lit(op, &[-9], -9, Some(&[1])),
            Vec::<u32>::new(),
            "single null lane selects nothing"
        );
    }
    assert_eq!(compact_bool_lanes(&no_b, None), Vec::<u32>::new());
    assert_eq!(compact_bool_lanes(&[true], Some(&[0])), vec![0]);
    assert_eq!(compact_bool_lanes(&[true], Some(&[1])), Vec::<u32>::new());
    assert_eq!(hash_i64_batch(&no_i), Vec::<u64>::new());
    assert_eq!(hash_i64_batch(&[i64::MIN]), vec![hash_i64_one(i64::MIN)]);
}
