//! Budget-constrained execution.
//!
//! §2.3: "suppose that we are given a large but finite computing budget c.
//! … Under a budget c, the number of M₂ outputs that can be generated is
//! N(c) = sup{n ≥ 0 : C_n ≤ c}, resulting in the estimate U(c) = θ_{N(c)}.
//! … U(c) → θ with probability 1 and c^{1/2}[U(c) − θ] ⇒ √g(α)·N(0,1)."
//!
//! `C_n = ⌈αn⌉·c₁ + n·c₂` under RC; `n_max(c, α)` inverts it.

use crate::component::SeriesComposite;
use crate::efficiency::Statistics;
use crate::rc::{run_rc, RcConfig, RcEstimate};
use crate::SimoptError;

/// The RC cost of `n` replications: `C_n = ⌈αn⌉·c₁ + n·c₂`.
pub fn cost_of(n: usize, alpha: f64, c1: f64, c2: f64) -> f64 {
    (alpha * n as f64).ceil().max(1.0) * c1 + n as f64 * c2
}

/// Validate the `(alpha, c1, c2)` preconditions shared by the budget
/// functions. Bad inputs are a caller's configuration error, surfaced as
/// [`SimoptError::InvalidBudget`] so that budget planning degrades into a
/// typed failure instead of aborting the process.
fn check_budget_inputs(alpha: f64, c1: f64, c2: f64) -> Result<(), SimoptError> {
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(SimoptError::budget(format!(
            "alpha must be in (0, 1], got {alpha}"
        )));
    }
    if !(c1 > 0.0 && c2 > 0.0) {
        return Err(SimoptError::budget(format!(
            "costs must be positive, got c1 = {c1}, c2 = {c2}"
        )));
    }
    Ok(())
}

/// `N(c) = sup{n ≥ 0 : C_n ≤ c}` — the replication count affordable under
/// budget `c` at replication fraction `α`. Returns `Ok(0)` when even
/// `n = 1` is unaffordable, and [`SimoptError::InvalidBudget`] when `α`
/// or the costs are out of range.
pub fn n_max(budget: f64, alpha: f64, c1: f64, c2: f64) -> Result<usize, SimoptError> {
    check_budget_inputs(alpha, c1, c2)?;
    if cost_of(1, alpha, c1, c2) > budget {
        return Ok(0);
    }
    // C_n is nondecreasing in n: binary search the boundary.
    let mut lo = 1usize;
    let mut hi = 2usize;
    while cost_of(hi, alpha, c1, c2) <= budget {
        lo = hi;
        hi *= 2;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if cost_of(mid, alpha, c1, c2) <= budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// Run the budget-constrained RC estimator `U(c)`.
///
/// Returns `Ok(None)` when the budget cannot afford a single replication,
/// and [`SimoptError::InvalidBudget`] when the configuration is invalid.
pub fn run_under_budget(
    composite: &SeriesComposite,
    budget: f64,
    alpha: f64,
    seed: u64,
) -> Result<Option<RcEstimate>, SimoptError> {
    let n = n_max(budget, alpha, composite.m1.cost(), composite.m2.cost())?;
    if n == 0 {
        return Ok(None);
    }
    Ok(Some(run_rc(composite, &RcConfig { n, alpha, seed })))
}

/// [`run_under_budget`] through the production result cache
/// ([`run_rc_cached`](crate::rc::run_rc_cached)): bit-identical estimates,
/// but `M₁` outputs shared with every other campaign using the same
/// `(spec_fingerprint, seed)` — the α-sweep's common-random-numbers
/// discipline becomes actual cross-campaign reuse.
pub fn run_under_budget_cached(
    composite: &SeriesComposite,
    budget: f64,
    alpha: f64,
    seed: u64,
    spec_fingerprint: u64,
    cache: &mde_numeric::cache::CacheHandle,
) -> Result<Option<RcEstimate>, SimoptError> {
    let n = n_max(budget, alpha, composite.m1.cost(), composite.m2.cost())?;
    if n == 0 {
        return Ok(None);
    }
    Ok(Some(crate::rc::run_rc_cached(
        composite,
        &RcConfig { n, alpha, seed },
        spec_fingerprint,
        cache,
    )))
}

/// Plan the asymptotically optimal budget-constrained run: pick
/// `α* = optimal_alpha(𝒮, n_max)` (the paper's truncation "at 1/n or 1"),
/// then size `n` to the budget.
pub fn plan_optimal(budget: f64, stats: &Statistics) -> Result<(f64, usize), SimoptError> {
    // The 1/n truncation is self-referential (α depends on n, n on α);
    // resolve with the untruncated α to size n, then truncate.
    let a_raw = crate::efficiency::optimal_alpha(stats, usize::MAX);
    let n = n_max(budget, a_raw.clamp(1e-12, 1.0), stats.c1, stats.c2)?.max(1);
    let alpha = crate::efficiency::optimal_alpha(stats, n);
    let n = n_max(budget, alpha, stats.c1, stats.c2)?;
    Ok((alpha, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::FnModel;
    use mde_numeric::dist::{Distribution, Normal};
    use mde_numeric::rng::Rng;
    use mde_numeric::stats::Summary;
    use std::sync::Arc;

    fn composite() -> SeriesComposite {
        let m1 = Arc::new(FnModel::new("m1", 10.0, |_: &[f64], rng: &mut Rng| {
            vec![5.0 + Normal::standard().sample(rng)]
        }));
        let m2 = Arc::new(FnModel::new("m2", 1.0, |x: &[f64], rng: &mut Rng| {
            vec![x[0] + Normal::standard().sample(rng)]
        }));
        SeriesComposite::new(m1, m2)
    }

    fn stats() -> Statistics {
        Statistics {
            c1: 10.0,
            c2: 1.0,
            v1: 2.0,
            v2: 1.0,
        }
    }

    #[test]
    fn cost_and_nmax_are_consistent() {
        for &alpha in &[0.1, 0.3, 0.5, 1.0] {
            for &budget in &[15.0, 100.0, 1234.0] {
                let n = n_max(budget, alpha, 10.0, 1.0).unwrap();
                if n > 0 {
                    assert!(cost_of(n, alpha, 10.0, 1.0) <= budget, "n affordable");
                }
                assert!(
                    cost_of(n + 1, alpha, 10.0, 1.0) > budget,
                    "n+1 unaffordable (α={alpha}, c={budget}, n={n})"
                );
            }
        }
    }

    #[test]
    fn nmax_zero_when_budget_too_small() {
        assert_eq!(n_max(5.0, 1.0, 10.0, 1.0).unwrap(), 0);
        assert!(run_under_budget(&composite(), 5.0, 1.0, 1)
            .unwrap()
            .is_none());
    }

    #[test]
    fn bad_budget_inputs_are_typed_errors() {
        // The former `assert!` preconditions, now recoverable.
        for (alpha, c1, c2) in [
            (0.0, 10.0, 1.0),
            (-0.5, 10.0, 1.0),
            (1.5, 10.0, 1.0),
            (f64::NAN, 10.0, 1.0),
            (0.5, 0.0, 1.0),
            (0.5, 10.0, -1.0),
        ] {
            match n_max(1000.0, alpha, c1, c2) {
                Err(SimoptError::InvalidBudget { .. }) => {}
                other => panic!("expected InvalidBudget for α={alpha}, got {other:?}"),
            }
        }
        assert!(matches!(
            run_under_budget(&composite(), 500.0, 2.0, 1),
            Err(SimoptError::InvalidBudget { .. })
        ));
        assert!(n_max(1000.0, 2.0, 10.0, 1.0)
            .unwrap_err()
            .to_string()
            .contains("(0, 1]"));
    }

    #[test]
    fn budgeted_run_respects_budget() {
        let est = run_under_budget(&composite(), 500.0, 0.3162, 1)
            .unwrap()
            .unwrap();
        assert!(est.cost <= 500.0);
        // And it shouldn't leave more than one replication of slack.
        assert!(est.cost + 10.0 + 1.0 + 1.0 > 500.0 * 0.9);
    }

    #[test]
    fn optimal_alpha_beats_naive_under_equal_budget() {
        // The headline claim: at α*, the budget-constrained estimator has
        // lower variance than at α = 1.
        let c = composite();
        let budget = 600.0;
        let (a_star, _) = plan_optimal(budget, &stats()).unwrap();
        let var_at = |alpha: f64| {
            let mut acc = Summary::new();
            for seed in 0..400 {
                if let Some(est) = run_under_budget(&c, budget, alpha, seed).unwrap() {
                    acc.push(est.theta_hat);
                }
            }
            acc.sample_variance()
        };
        let v_opt = var_at(a_star);
        let v_naive = var_at(1.0);
        // g predicts g(1)/g(α*) ≈ 22/ (α*c1+c2)(V1+..): with α*=0.3162,
        // r=3: bracket = 2 + (6 − 0.3162*12)*1 = 4.2056; cost = 4.162;
        // g(α*) ≈ 17.5 vs g(1) = 22 → ~20% variance reduction.
        assert!(
            v_opt < v_naive,
            "α* variance {v_opt} not below naive {v_naive}"
        );
    }

    #[test]
    fn clt_scale_matches_g() {
        // c·Var(U(c)) ≈ g(α): check at α = 1 where g = (c1+c2)V1 = 22.
        let c = composite();
        let budget = 2000.0;
        let mut acc = Summary::new();
        for seed in 0..500 {
            let est = run_under_budget(&c, budget, 1.0, seed).unwrap().unwrap();
            acc.push(est.theta_hat);
        }
        let scaled = budget * acc.sample_variance();
        assert!(
            (scaled - 22.0).abs() < 6.0,
            "c·Var(U(c)) = {scaled}, expected ≈ 22"
        );
    }

    #[test]
    fn plan_optimal_produces_feasible_plan() {
        let (alpha, n) = plan_optimal(1000.0, &stats()).unwrap();
        assert!((alpha - (0.1f64).sqrt()).abs() < 0.05);
        assert!(n > 0);
        assert!(cost_of(n, alpha, 10.0, 1.0) <= 1000.0);
    }
}
