//! The asymptotic-efficiency theory of result caching.
//!
//! From the paper (§2.3): with replication fraction `α`, expected costs
//! `c₁, c₂`, output variance `V₁`, and shared-input covariance `V₂ ≥ 0`,
//! the budget-constrained estimator satisfies
//! `c^{1/2}[U(c) − θ] ⇒ √g(α)·N(0,1)` where
//!
//! ```text
//! g(α) = (α·c₁ + c₂) · (V₁ + [2r_α − α·r_α(r_α + 1)]·V₂),   r_α = ⌊1/α⌋
//! ```
//!
//! Efficiency is `1/g(α)` — Hammersley & Handscomb's cost-times-variance
//! product — and approximating `r_α ≈ 1/α` gives
//! `g̃(α) = (α·c₁ + c₂)(V₁ + (α⁻¹ − 1)V₂)`, minimized at
//!
//! ```text
//! α* = √( (c₂/c₁) / (V₁/V₂ − 1) )
//! ```
//!
//! truncated into `[1/n, 1]` for feasibility. `V₁/V₂ ≥ 1` always holds by
//! Cauchy–Schwarz.

/// The statistics 𝒮 = (c₁, c₂, V₁, V₂) that drive the optimization —
/// estimated by pilot runs and refined online, like RDBMS catalog
/// statistics (see [`crate::pilot`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Statistics {
    /// Expected cost of one `M₁` run (including transform + store).
    pub c1: f64,
    /// Expected cost of one `M₂` run.
    pub c2: f64,
    /// Variance of an `M₂` output.
    pub v1: f64,
    /// Covariance of two `M₂` outputs sharing an `M₁` input (≥ 0).
    pub v2: f64,
}

impl Statistics {
    /// Validate basic sanity (positive costs, `0 ≤ V₂ ≤ V₁`).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.c1 > 0.0 && self.c2 > 0.0) {
            return Err(format!(
                "costs must be positive: c1={}, c2={}",
                self.c1, self.c2
            ));
        }
        if self.v1 < 0.0 {
            return Err(format!("V1 must be non-negative: {}", self.v1));
        }
        if self.v2 < 0.0 || self.v2 > self.v1 + 1e-12 {
            return Err(format!(
                "require 0 <= V2 <= V1 (Cauchy-Schwarz): V1={}, V2={}",
                self.v1, self.v2
            ));
        }
        Ok(())
    }
}

/// `r_α = ⌊1/α⌋`.
pub fn r_alpha(alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    (1.0 / alpha).floor()
}

/// The exact asymptotic variance constant `g(α)`.
pub fn g_exact(alpha: f64, s: &Statistics) -> f64 {
    let r = r_alpha(alpha);
    (alpha * s.c1 + s.c2) * (s.v1 + (2.0 * r - alpha * r * (r + 1.0)) * s.v2)
}

/// The smooth approximation `g̃(α)` with `r_α ≈ 1/α`.
pub fn g_tilde(alpha: f64, s: &Statistics) -> f64 {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    (alpha * s.c1 + s.c2) * (s.v1 + (1.0 / alpha - 1.0) * s.v2)
}

/// Asymptotic efficiency `1/g(α)` (Glynn–Whitt / Hammersley–Handscomb).
pub fn asymptotic_efficiency(alpha: f64, s: &Statistics) -> f64 {
    1.0 / g_exact(alpha, s)
}

/// The closed-form minimizer `α*` of `g̃`, truncated into `[1/n, 1]`.
///
/// Degenerate regimes match the paper's discussion:
/// * `V₂ = 0` (`M₂` insensitive to `M₁`, or `M₁` deterministic): run `M₁`
///   as rarely as allowed — `α* = 1/n`;
/// * `V₁ = V₂` (`M₂` a deterministic transformer of `M₁`): fresh `M₁`
///   every time — `α* = 1`.
pub fn optimal_alpha(s: &Statistics, n: usize) -> f64 {
    let lo = 1.0 / n.max(1) as f64;
    if s.v2 <= 0.0 {
        return lo.min(1.0);
    }
    let ratio = s.v1 / s.v2;
    if ratio <= 1.0 {
        return 1.0;
    }
    let a = ((s.c2 / s.c1) / (ratio - 1.0)).sqrt();
    a.clamp(lo, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> Statistics {
        Statistics {
            c1: 10.0,
            c2: 1.0,
            v1: 2.0,
            v2: 1.0,
        }
    }

    #[test]
    fn validate_checks_cauchy_schwarz() {
        assert!(stats().validate().is_ok());
        assert!(Statistics { v2: 3.0, ..stats() }.validate().is_err());
        assert!(Statistics { c1: 0.0, ..stats() }.validate().is_err());
        assert!(Statistics {
            v1: -1.0,
            ..stats()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn alpha_one_recovers_classic_monte_carlo() {
        // α = 1 → r = 1 → bracket = V1 + (2 − 2)V2 = V1, so
        // g = (c1 + c2)·V1: cost per replication times output variance.
        let s = stats();
        assert!((g_exact(1.0, &s) - 11.0 * 2.0).abs() < 1e-12);
        assert!((g_tilde(1.0, &s) - 11.0 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn g_exact_piecewise_structure() {
        // For α = 1/k (integer k), r = k and g_exact = g_tilde.
        let s = stats();
        for k in 1..=10 {
            let a = 1.0 / k as f64;
            assert!(
                (g_exact(a, &s) - g_tilde(a, &s)).abs() < 1e-9,
                "at α = 1/{k}"
            );
        }
        // Between the 1/k points they differ (r_α is a step function).
        let a = 0.4; // r = 2, 1/α = 2.5
        assert!((g_exact(a, &s) - g_tilde(a, &s)).abs() > 1e-6);
    }

    #[test]
    fn optimal_alpha_closed_form() {
        // α* = sqrt((c2/c1)/((V1/V2)−1)) = sqrt(0.1/1) ≈ 0.3162.
        let s = stats();
        let a = optimal_alpha(&s, 10_000);
        assert!((a - (0.1f64).sqrt()).abs() < 1e-12);
        // It indeed beats the endpoints on g̃ and on g_exact nearby.
        assert!(g_tilde(a, &s) < g_tilde(1.0, &s));
        assert!(g_tilde(a, &s) < g_tilde(0.05, &s));
    }

    #[test]
    fn optimal_alpha_is_a_true_minimum_of_g_tilde() {
        let s = stats();
        let a = optimal_alpha(&s, 100_000);
        let g0 = g_tilde(a, &s);
        for k in 1..=99 {
            let x = k as f64 / 100.0;
            assert!(
                g_tilde(x, &s) >= g0 - 1e-9,
                "g̃({x}) = {} below g̃(α*) = {g0}",
                g_tilde(x, &s)
            );
        }
    }

    #[test]
    fn degenerate_regimes() {
        // V2 = 0: M1 effectively deterministic → α* at the floor.
        let s = Statistics { v2: 0.0, ..stats() };
        assert_eq!(optimal_alpha(&s, 50), 1.0 / 50.0);
        // V1 = V2: M2 a deterministic transformer → α* = 1.
        let s = Statistics { v2: 2.0, ..stats() };
        assert_eq!(optimal_alpha(&s, 50), 1.0);
    }

    #[test]
    fn truncation_bounds() {
        // A tiny closed-form α gets floored at 1/n.
        let s = Statistics {
            c1: 1e6,
            c2: 1.0,
            v1: 100.0,
            v2: 0.01,
        };
        assert_eq!(optimal_alpha(&s, 10), 0.1);
        // A huge one is capped at 1.
        let s = Statistics {
            c1: 1.0,
            c2: 1e6,
            v1: 1.1,
            v2: 1.0,
        };
        assert_eq!(optimal_alpha(&s, 10), 1.0);
    }

    #[test]
    fn efficiency_gains_can_be_large() {
        // "arbitrarily large efficiency improvements are possible": expensive
        // M1 with weak coupling.
        let s = Statistics {
            c1: 1000.0,
            c2: 1.0,
            v1: 1.0,
            v2: 0.001,
        };
        let a = optimal_alpha(&s, 1_000_000);
        let gain = asymptotic_efficiency(a, &s) / asymptotic_efficiency(1.0, &s);
        assert!(gain > 100.0, "efficiency gain only {gain}");
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn g_rejects_bad_alpha() {
        g_exact(0.0, &stats());
    }
}
