//! Pilot-run estimation of the statistics 𝒮 = (c₁, c₂, V₁, V₂), and the
//! metadata store that amortizes it.
//!
//! §2.3: "A key issue is how to estimate the statistics 𝒮 … a composite
//! modeling system such as Splash is oriented toward re-use of models, and
//! important performance characteristics of a model can be stored as part
//! of the model's metadata. Thus the cost of executing pilot runs … can be
//! amortized over multiple model executions. Moreover, as the component
//! models are used in production runs, their behavior can be observed and
//! used to continually refine the statistics … analogous to … estimating
//! catalog statistics for a relational database system."
//!
//! `V₂` is estimated from *paired* `M₂` runs sharing one `M₁` output;
//! `V₁` from all `M₂` outputs. The [`MetadataStore`] keeps per-composite
//! statistics and merges in new observations (online refinement).

use crate::component::SeriesComposite;
use crate::efficiency::Statistics;
use mde_numeric::rng::StreamFactory;
use mde_numeric::stats::{BivariateSummary, Summary};
use std::collections::HashMap;

/// Pilot-run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PilotConfig {
    /// Number of `M₁` pilot runs; each feeds a *pair* of `M₂` runs (so the
    /// pilot performs `pairs` M₁ runs and `2·pairs` M₂ runs).
    pub pairs: usize,
    /// Master seed.
    pub seed: u64,
}

/// Run the pilot and estimate 𝒮.
pub fn estimate_statistics(composite: &SeriesComposite, cfg: &PilotConfig) -> Statistics {
    assert!(cfg.pairs >= 2, "need at least 2 pilot pairs");
    let factory = StreamFactory::new(cfg.seed);
    let m1_streams = factory.child(0);
    let m2_streams = factory.child(1);

    let mut all = Summary::new();
    let mut paired = BivariateSummary::new();
    for j in 0..cfg.pairs {
        let mut rng1 = m1_streams.stream(j as u64);
        let y1 = composite.run_m1(&mut rng1);
        let mut rng_a = m2_streams.stream(2 * j as u64);
        let mut rng_b = m2_streams.stream(2 * j as u64 + 1);
        let ya = composite.run_m2(&y1, &mut rng_a);
        let yb = composite.run_m2(&y1, &mut rng_b);
        all.push(ya);
        all.push(yb);
        paired.push(ya, yb);
    }

    // V2 >= 0 by assumption in the theory; clamp the estimate.
    let v1 = all.sample_variance();
    let v2 = paired.sample_covariance().clamp(0.0, v1);
    Statistics {
        c1: composite.m1.cost(),
        c2: composite.m2.cost(),
        v1,
        v2,
    }
}

/// Per-composite statistics metadata with online refinement — the
/// "catalog statistics" of the simulation optimizer.
#[derive(Debug, Clone, Default)]
pub struct MetadataStore {
    entries: HashMap<String, StoredStats>,
}

/// A stored statistics record with its observation weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredStats {
    /// The statistics.
    pub stats: Statistics,
    /// Number of pilot pairs (or production observations) behind them.
    pub weight: u64,
}

impl MetadataStore {
    /// Create an empty store.
    pub fn new() -> Self {
        MetadataStore::default()
    }

    /// Look up statistics for a composite by key.
    pub fn get(&self, key: &str) -> Option<&StoredStats> {
        self.entries.get(key)
    }

    /// Record fresh observations, merging with any existing record by
    /// weighted averaging (a simple, monotone-weight online refinement).
    pub fn observe(&mut self, key: impl Into<String>, stats: Statistics, weight: u64) {
        let key = key.into();
        match self.entries.get_mut(&key) {
            None => {
                self.entries.insert(key, StoredStats { stats, weight });
            }
            Some(existing) => {
                let w0 = existing.weight as f64;
                let w1 = weight as f64;
                let t = w0 + w1;
                let blend = |a: f64, b: f64| (a * w0 + b * w1) / t;
                existing.stats = Statistics {
                    c1: blend(existing.stats.c1, stats.c1),
                    c2: blend(existing.stats.c2, stats.c2),
                    v1: blend(existing.stats.v1, stats.v1),
                    v2: blend(existing.stats.v2, stats.v2),
                };
                existing.weight += weight;
            }
        }
    }

    /// Statistics for a composite, running a pilot only on a cache miss —
    /// the amortization the paper describes.
    pub fn get_or_pilot(
        &mut self,
        key: impl Into<String>,
        composite: &SeriesComposite,
        cfg: &PilotConfig,
    ) -> Statistics {
        let key = key.into();
        if let Some(s) = self.entries.get(&key) {
            return s.stats;
        }
        let stats = estimate_statistics(composite, cfg);
        self.observe(key, stats, cfg.pairs as u64);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::FnModel;
    use mde_numeric::dist::{Distribution, Normal};
    use mde_numeric::rng::Rng;
    use std::sync::Arc;

    /// M1 ~ N(0, σ₁²) cost 10; M2 = input + N(0, σ₂²) cost 1.
    /// V1 = σ₁² + σ₂², V2 = σ₁².
    fn composite(s1: f64, s2: f64) -> SeriesComposite {
        let m1 = Arc::new(FnModel::new("m1", 10.0, move |_: &[f64], rng: &mut Rng| {
            vec![s1 * Normal::standard().sample(rng)]
        }));
        let m2 = Arc::new(FnModel::new("m2", 1.0, move |x: &[f64], rng: &mut Rng| {
            vec![x[0] + s2 * Normal::standard().sample(rng)]
        }));
        SeriesComposite::new(m1, m2)
    }

    #[test]
    fn pilot_recovers_known_statistics() {
        let c = composite(1.0, 1.0);
        let s = estimate_statistics(
            &c,
            &PilotConfig {
                pairs: 4000,
                seed: 1,
            },
        );
        assert_eq!(s.c1, 10.0);
        assert_eq!(s.c2, 1.0);
        assert!((s.v1 - 2.0).abs() < 0.15, "V1 = {}", s.v1);
        assert!((s.v2 - 1.0).abs() < 0.15, "V2 = {}", s.v2);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn pilot_detects_weak_coupling() {
        // σ₁ tiny: V2 ≈ 0 → the optimizer will choose small α.
        let c = composite(0.05, 1.0);
        let s = estimate_statistics(
            &c,
            &PilotConfig {
                pairs: 3000,
                seed: 2,
            },
        );
        assert!(s.v2 < 0.05, "V2 = {}", s.v2);
        assert!((s.v1 - 1.0).abs() < 0.1);
    }

    #[test]
    fn pilot_detects_deterministic_m2() {
        // σ₂ = 0: V1 = V2 → α* = 1.
        let c = composite(1.0, 0.0);
        let s = estimate_statistics(
            &c,
            &PilotConfig {
                pairs: 3000,
                seed: 3,
            },
        );
        assert!((s.v1 - s.v2).abs() < 0.02, "V1 = {}, V2 = {}", s.v1, s.v2);
        let a = crate::efficiency::optimal_alpha(&s, 1000);
        assert!(a > 0.9, "α* = {a}");
    }

    #[test]
    fn store_caches_and_amortizes() {
        let mut store = MetadataStore::new();
        let c = composite(1.0, 1.0);
        let cfg = PilotConfig {
            pairs: 500,
            seed: 4,
        };
        let s1 = store.get_or_pilot("demand|queue", &c, &cfg);
        // Second call must be served from the store (same values, no rerun
        // — verified by identity of the stored record).
        let s2 = store.get_or_pilot("demand|queue", &c, &cfg);
        assert_eq!(s1, s2);
        assert_eq!(store.get("demand|queue").unwrap().weight, 500);
    }

    #[test]
    fn online_refinement_blends_by_weight() {
        let mut store = MetadataStore::new();
        let a = Statistics {
            c1: 10.0,
            c2: 1.0,
            v1: 2.0,
            v2: 1.0,
        };
        let b = Statistics {
            c1: 20.0,
            c2: 3.0,
            v1: 4.0,
            v2: 2.0,
        };
        store.observe("k", a, 100);
        store.observe("k", b, 300);
        let got = store.get("k").unwrap();
        assert_eq!(got.weight, 400);
        assert!((got.stats.c1 - 17.5).abs() < 1e-12);
        assert!((got.stats.v1 - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn pilot_requires_pairs() {
        estimate_statistics(&composite(1.0, 1.0), &PilotConfig { pairs: 1, seed: 1 });
    }
}
