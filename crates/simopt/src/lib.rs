//! Optimizing simulation runs — §2.3 of Haas, *Model-Data Ecosystems*
//! (PODS 2014), which presents the result-caching (RC) technique of Haas
//! (2014, "Improving the efficiency of stochastic composite simulation
//! models via result caching").
//!
//! The setting (the paper's Figure 2): a composite model `M = M₂ ∘ M₁`
//! where `M₁` writes a random output `Y₁` to disk and `M₂` consumes it,
//! producing `Y₂ ~ F₂(· | Y₁)`. The goal is to estimate `θ = E[Y₂]` with
//! maximal *asymptotic efficiency* `1/g(α)` under a compute budget, where
//! `α` is the **replication fraction**: for `n` runs of `M₂`, only
//! `m_n = ⌈αn⌉` runs of `M₁` execute and their cached outputs are reused
//! by **deterministic cycling** (a stratified reuse pattern that minimizes
//! estimator variance).
//!
//! | module | paper concept |
//! |---|---|
//! | [`component`] | stochastic component models and the two-model series composite |
//! | [`rc`] | the RC execution strategy with deterministic cycling |
//! | [`efficiency`] | `g(α)`, `g̃(α)`, the closed-form `α*`, asymptotic efficiency |
//! | [`pilot`] | pilot-run estimation of 𝒮 = (c₁, c₂, V₁, V₂) and the metadata store |
//! | [`budget`] | budget-constrained execution `N(c) = sup{n : C_n ≤ c}` |
//! | [`chain`] | nested caching for 3-stage chains (the paper's open question) |
//!
//! # Example: pick α* and run under a budget
//!
//! ```
//! use mde_simopt::{optimal_alpha, Statistics};
//! use mde_simopt::budget::n_max;
//!
//! // Pilot-estimated statistics: M1 is 10x as expensive, half the output
//! // variance comes through the shared input.
//! let stats = Statistics { c1: 10.0, c2: 1.0, v1: 2.0, v2: 1.0 };
//! let alpha = optimal_alpha(&stats, 10_000);
//! assert!((alpha - 0.3162).abs() < 1e-3);
//! // Under a budget of 1000 cost units, caching affords 2.4x the
//! // downstream replications of the naive strategy.
//! assert_eq!(n_max(1000.0, alpha, 10.0, 1.0).unwrap(), 240);
//! assert_eq!(n_max(1000.0, 1.0, 10.0, 1.0).unwrap(), 90);
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod chain;
pub mod component;
pub mod efficiency;
pub mod error;
pub mod pilot;
pub mod rc;

pub use component::{FnModel, SeriesComposite, StochModel};
pub use efficiency::{asymptotic_efficiency, g_exact, g_tilde, optimal_alpha, Statistics};
pub use error::SimoptError;
pub use pilot::{MetadataStore, PilotConfig};
pub use rc::{RcConfig, RcEstimate};
