//! Error type for the run-optimization crate.

use std::fmt;

/// Errors produced by budget planning and result-caching execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimoptError {
    /// A budget computation was configured with invalid inputs (a
    /// replication fraction outside `(0, 1]`, non-positive component
    /// costs, or a non-finite budget).
    InvalidBudget {
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
}

impl SimoptError {
    /// Shorthand for [`SimoptError::InvalidBudget`].
    pub fn budget(reason: impl Into<String>) -> Self {
        SimoptError::InvalidBudget {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SimoptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimoptError::InvalidBudget { reason } => {
                write!(f, "invalid budget configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for SimoptError {}

impl mde_numeric::ErrorClass for SimoptError {
    /// Budget misconfiguration is a caller error that would fail
    /// identically on every attempt.
    fn severity(&self) -> mde_numeric::Severity {
        mde_numeric::Severity::Fatal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mde_numeric::{ErrorClass as _, Severity};

    #[test]
    fn display_and_severity() {
        let e = SimoptError::budget("alpha must be in (0, 1], got 2");
        assert!(e.to_string().contains("alpha"));
        assert_eq!(e.severity(), Severity::Fatal);
    }
}
