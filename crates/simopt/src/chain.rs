//! Result caching for longer chains — the paper's stated open question.
//!
//! §2.3 closes its setup with: "The general question, then, is how to
//! optimally reuse results for a general composite model in which each
//! component model might be stochastic." This module takes the first step
//! past the two-model theory: a three-stage chain `M₃ ∘ M₂ ∘ M₁` with
//! *nested* result caching —
//!
//! * `m₁ = ⌈α₁·n⌉` cached `M₁` outputs,
//! * `m₂ = ⌈α₂·n⌉` cached `M₂` outputs, each computed from a cached `M₁`
//!   output by deterministic cycling,
//! * `n` runs of `M₃`, cycling through the `M₂` cache.
//!
//! The estimator stays strongly consistent for any `(α₁, α₂)` (it is an
//! average of identically distributed `Y₃`s); what changes is variance per
//! unit cost. [`ChainComposite::sweep_alphas`] measures exactly that, so experiments can
//! locate the empirical optimum the two-model closed form no longer gives.

use crate::component::StochModel;
use crate::rc::RcEstimate;
use mde_numeric::rng::StreamFactory;
use mde_numeric::stats::Summary;
use std::sync::Arc;

/// A three-stage series composite.
pub struct ChainComposite {
    /// Source model (no input).
    pub m1: Arc<dyn StochModel>,
    /// Middle model.
    pub m2: Arc<dyn StochModel>,
    /// Sink model (first output coordinate is the scalar `Y₃`).
    pub m3: Arc<dyn StochModel>,
}

/// Configuration of a nested-RC run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainRcConfig {
    /// Number of `M₃` replications.
    pub n: usize,
    /// Replication fraction of `M₁` (relative to `n`).
    pub alpha1: f64,
    /// Replication fraction of `M₂` (relative to `n`).
    pub alpha2: f64,
    /// Master seed.
    pub seed: u64,
}

impl ChainComposite {
    /// Execute nested result caching and estimate `θ = E[Y₃]`.
    pub fn run_rc(&self, cfg: &ChainRcConfig) -> RcEstimate {
        assert!(cfg.n > 0, "need at least one replication");
        for (name, a) in [("alpha1", cfg.alpha1), ("alpha2", cfg.alpha2)] {
            assert!(a > 0.0 && a <= 1.0, "{name} must be in (0, 1], got {a}");
        }
        let m1_count = ((cfg.alpha1 * cfg.n as f64).ceil() as usize).clamp(1, cfg.n);
        let m2_count = ((cfg.alpha2 * cfg.n as f64).ceil() as usize).clamp(1, cfg.n);
        let factory = StreamFactory::new(cfg.seed);
        let s1 = factory.child(0);
        let s2 = factory.child(1);
        let s3 = factory.child(2);

        // Level-1 cache.
        let cache1: Vec<Vec<f64>> = (0..m1_count)
            .map(|j| {
                let mut rng = s1.stream(j as u64);
                self.m1.run(&[], &mut rng)
            })
            .collect();
        // Level-2 cache, cycling deterministically through level 1.
        let cache2: Vec<Vec<f64>> = (0..m2_count)
            .map(|j| {
                let mut rng = s2.stream(j as u64);
                self.m2.run(&cache1[j % m1_count], &mut rng)
            })
            .collect();
        // Final stage.
        let mut samples = Vec::with_capacity(cfg.n);
        let mut summary = Summary::new();
        for i in 0..cfg.n {
            let mut rng = s3.stream(i as u64);
            let out = self.m3.run(&cache2[i % m2_count], &mut rng);
            let y = out.first().copied().unwrap_or(f64::NAN);
            summary.push(y);
            samples.push(y);
        }
        RcEstimate {
            theta_hat: summary.mean(),
            sample_variance: summary.sample_variance(),
            n: cfg.n,
            m: m1_count, // level-1 runs; level-2 runs recoverable from cost
            cost: m1_count as f64 * self.m1.cost()
                + m2_count as f64 * self.m2.cost()
                + cfg.n as f64 * self.m3.cost(),
            samples,
        }
    }

    /// Measure empirical `cost × Var(θ̂)` (the Hammersley–Handscomb
    /// inefficiency, lower is better) over a grid of `(α₁, α₂)` at fixed
    /// `n`, with `reps` independent estimates per grid point. Returns
    /// `(α₁, α₂, cost·variance)` rows.
    pub fn sweep_alphas(
        &self,
        n: usize,
        alphas: &[f64],
        reps: u64,
        seed: u64,
    ) -> Vec<(f64, f64, f64)> {
        let mut rows = Vec::new();
        for &a1 in alphas {
            for &a2 in alphas {
                let mut acc = Summary::new();
                let mut cost = 0.0;
                for r in 0..reps {
                    let est = self.run_rc(&ChainRcConfig {
                        n,
                        alpha1: a1,
                        alpha2: a2,
                        seed: seed ^ (r.wrapping_mul(0x9E37_79B9)),
                    });
                    acc.push(est.theta_hat);
                    cost = est.cost;
                }
                rows.push((a1, a2, cost * acc.sample_variance()));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::FnModel;
    use mde_numeric::dist::Normal;
    use mde_numeric::rng::Rng;

    /// M1 ~ N(5,1) (cost 50), M2 = in + N(0,0.5) (cost 5),
    /// M3 = in + N(0,1) (cost 1). θ = 5.
    fn chain() -> ChainComposite {
        ChainComposite {
            m1: Arc::new(FnModel::new("src", 50.0, |_: &[f64], rng: &mut Rng| {
                vec![5.0 + Normal::sample_standard(rng)]
            })),
            m2: Arc::new(FnModel::new("mid", 5.0, |x: &[f64], rng: &mut Rng| {
                vec![x[0] + 0.5 * Normal::sample_standard(rng)]
            })),
            m3: Arc::new(FnModel::new("sink", 1.0, |x: &[f64], rng: &mut Rng| {
                vec![x[0] + Normal::sample_standard(rng)]
            })),
        }
    }

    #[test]
    fn cost_accounting() {
        let est = chain().run_rc(&ChainRcConfig {
            n: 100,
            alpha1: 0.1,
            alpha2: 0.5,
            seed: 1,
        });
        assert_eq!(est.n, 100);
        assert_eq!(est.m, 10);
        assert_eq!(est.cost, 10.0 * 50.0 + 50.0 * 5.0 + 100.0);
        assert_eq!(est.samples.len(), 100);
    }

    #[test]
    fn estimator_unbiased_across_fractions() {
        for &(a1, a2) in &[(0.1, 0.3), (0.5, 0.5), (1.0, 1.0)] {
            let mut acc = Summary::new();
            for seed in 0..300 {
                let est = chain().run_rc(&ChainRcConfig {
                    n: 30,
                    alpha1: a1,
                    alpha2: a2,
                    seed,
                });
                acc.push(est.theta_hat);
            }
            let se = acc.sample_std_dev() / (acc.count() as f64).sqrt();
            assert!(
                (acc.mean() - 5.0).abs() < 5.0 * se,
                "({a1},{a2}): mean {} se {se}",
                acc.mean()
            );
        }
    }

    #[test]
    fn caching_beats_naive_per_unit_cost() {
        // With M1 50x the cost of M3 and most variance downstream, some
        // (alpha1, alpha2) < (1,1) must dominate the no-caching corner on
        // the cost x variance product.
        let rows = chain().sweep_alphas(40, &[0.1, 0.5, 1.0], 250, 9);
        let at = |a1: f64, a2: f64| {
            rows.iter()
                .find(|(x, y, _)| (*x - a1).abs() < 1e-12 && (*y - a2).abs() < 1e-12)
                .expect("grid point")
                .2
        };
        let naive = at(1.0, 1.0);
        let best = rows.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
        assert!(
            best < naive * 0.8,
            "nested caching gains missing: best {best} vs naive {naive}"
        );
        // And the best point caches M1 aggressively (alpha1 < 1).
        let best_row = rows
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
            .expect("non-empty");
        assert!(best_row.0 < 1.0, "best alpha1 should be < 1: {best_row:?}");
    }

    #[test]
    fn reproducible_given_seed() {
        let cfg = ChainRcConfig {
            n: 20,
            alpha1: 0.3,
            alpha2: 0.6,
            seed: 4,
        };
        assert_eq!(chain().run_rc(&cfg).samples, chain().run_rc(&cfg).samples);
    }

    #[test]
    #[should_panic(expected = "alpha2 must be in")]
    fn rejects_bad_fractions() {
        chain().run_rc(&ChainRcConfig {
            n: 10,
            alpha1: 0.5,
            alpha2: 0.0,
            seed: 1,
        });
    }
}
