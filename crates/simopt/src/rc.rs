//! The result-caching (RC) execution strategy.
//!
//! §2.3: "For n simulation replications of M₂, only m_n = ⌈αn⌉
//! replications of M₁ are executed … We write the output of M₁ to disk
//! after each of the first m_n simulation replications and then repeatedly
//! cycle through these outputs in a fixed order to obtain inputs to M₂.
//! Thus each M₁ output is used in approximately n/m_n executions of M₂.
//! The deterministic cycling scheme produces a stratified sample of the
//! outputs of M₁ and helps minimize estimator variance. Finally, θ is
//! estimated as θ_n = (1/n) Σ Y₂ᵢ."

use crate::component::SeriesComposite;
use mde_numeric::cache::{CacheHandle, ObjectiveScope};
use mde_numeric::rng::StreamFactory;
use mde_numeric::stats::Summary;

/// Provenance campaign tag for RC cache entries.
pub const CAMPAIGN_RC: &str = "simopt.rc";

/// Configuration of an RC run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcConfig {
    /// Number of `M₂` replications `n`.
    pub n: usize,
    /// Replication fraction `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Master seed.
    pub seed: u64,
}

/// The outcome of an RC run.
#[derive(Debug, Clone, PartialEq)]
pub struct RcEstimate {
    /// `θ_n = (1/n) Σ Y₂ᵢ`.
    pub theta_hat: f64,
    /// Sample variance of the `Y₂` outputs (descriptive; the estimator's
    /// own variance follows `g(α)`, not this, because outputs sharing an
    /// `M₁` input are correlated).
    pub sample_variance: f64,
    /// Number of `M₂` runs executed.
    pub n: usize,
    /// Number of `M₁` runs executed (`⌈αn⌉`).
    pub m: usize,
    /// Total nominal cost `C_n = m·c₁ + n·c₂`.
    pub cost: f64,
    /// The raw `Y₂` samples in execution order.
    pub samples: Vec<f64>,
}

/// Execute the RC strategy on a two-model series composite.
///
/// RNG discipline: `M₁` run `j` uses stream `(0, j)`; `M₂` run `i` uses
/// stream `(1, i)` — so estimates with different `α` but the same seed
/// share `M₁` randomness where possible (common random numbers, which
/// sharpens the α-sweep experiments).
pub fn run_rc(composite: &SeriesComposite, cfg: &RcConfig) -> RcEstimate {
    assert!(cfg.n > 0, "need at least one replication");
    assert!(
        cfg.alpha > 0.0 && cfg.alpha <= 1.0,
        "alpha must be in (0, 1], got {}",
        cfg.alpha
    );
    let m = ((cfg.alpha * cfg.n as f64).ceil() as usize).clamp(1, cfg.n);
    let factory = StreamFactory::new(cfg.seed);
    let m1_streams = factory.child(0);
    let m2_streams = factory.child(1);

    // Phase 1: run and "cache to disk" the m M₁ outputs.
    let cache: Vec<Vec<f64>> = (0..m)
        .map(|j| {
            let mut rng = m1_streams.stream(j as u64);
            composite.run_m1(&mut rng)
        })
        .collect();

    // Phase 2: n M₂ runs, cycling deterministically through the cache.
    let mut samples = Vec::with_capacity(cfg.n);
    let mut summary = Summary::new();
    for i in 0..cfg.n {
        let y1 = &cache[i % m];
        let mut rng = m2_streams.stream(i as u64);
        let y2 = composite.run_m2(y1, &mut rng);
        summary.push(y2);
        samples.push(y2);
    }

    RcEstimate {
        theta_hat: summary.mean(),
        sample_variance: summary.sample_variance(),
        n: cfg.n,
        m,
        cost: m as f64 * composite.m1.cost() + cfg.n as f64 * composite.m2.cost(),
        samples,
    }
}

/// [`run_rc`] with phase 1 backed by the production content-addressed
/// [`ResultCache`](mde_numeric::cache::ResultCache) instead of a transient
/// in-run vector.
///
/// Each `M₁` replication `j` is keyed by
/// `(spec_fingerprint, [j], replicates = 1, cfg.seed)` and memoized
/// through an [`ObjectiveScope`], so runs that share a seed — e.g. the
/// §2.3 α-sweep, which uses common random numbers across α — pay for each
/// `M₁` output exactly once per cache, however many campaigns revisit it.
/// Because `M₁` run `j` draws from its own stream `(0, j)`, a cache hit
/// consumes no randomness and the estimate is bit-identical to
/// [`run_rc`]'s at every `(n, α, seed)`, cold or warm.
///
/// `spec_fingerprint` must identify the composite (the cache cannot hash
/// closures); distinct composites sharing a fingerprint would cross-hit.
pub fn run_rc_cached(
    composite: &SeriesComposite,
    cfg: &RcConfig,
    spec_fingerprint: u64,
    cache: &CacheHandle,
) -> RcEstimate {
    assert!(cfg.n > 0, "need at least one replication");
    assert!(
        cfg.alpha > 0.0 && cfg.alpha <= 1.0,
        "alpha must be in (0, 1], got {}",
        cfg.alpha
    );
    let mut scope = ObjectiveScope::new(
        cache.clone(),
        CAMPAIGN_RC,
        spec_fingerprint,
        1,
        cfg.seed,
    );
    let m = ((cfg.alpha * cfg.n as f64).ceil() as usize).clamp(1, cfg.n);
    let factory = StreamFactory::new(cfg.seed);
    let m1_streams = factory.child(0);
    let m2_streams = factory.child(1);

    // Phase 1: the m M₁ outputs, each a content-addressed cache entry.
    let cached: Vec<Vec<f64>> = (0..m)
        .map(|j| {
            scope.memoize(&[j as f64], || {
                let mut rng = m1_streams.stream(j as u64);
                composite.run_m1(&mut rng)
            })
        })
        .collect();

    // Phase 2: n M₂ runs, cycling deterministically through the cache.
    let mut samples = Vec::with_capacity(cfg.n);
    let mut summary = Summary::new();
    for i in 0..cfg.n {
        let y1 = &cached[i % m];
        let mut rng = m2_streams.stream(i as u64);
        let y2 = composite.run_m2(y1, &mut rng);
        summary.push(y2);
        samples.push(y2);
    }

    RcEstimate {
        theta_hat: summary.mean(),
        sample_variance: summary.sample_variance(),
        n: cfg.n,
        m,
        cost: m as f64 * composite.m1.cost() + cfg.n as f64 * composite.m2.cost(),
        samples,
    }
}

/// Ablation of the deterministic cycling scheme: reuse cached `M₁` outputs
/// by *uniform random* selection instead of cycling.
///
/// The paper: "The deterministic cycling scheme produces a stratified
/// sample of the outputs of M₁ and helps minimize estimator variance."
/// Random reuse gives each cached output a binomial (rather than fixed)
/// usage count, adding between-cache-entry variance; this function exists
/// so experiments can measure that penalty directly.
pub fn run_rc_random_reuse(composite: &SeriesComposite, cfg: &RcConfig) -> RcEstimate {
    use rand::Rng as _;
    assert!(cfg.n > 0, "need at least one replication");
    assert!(
        cfg.alpha > 0.0 && cfg.alpha <= 1.0,
        "alpha must be in (0, 1], got {}",
        cfg.alpha
    );
    let m = ((cfg.alpha * cfg.n as f64).ceil() as usize).clamp(1, cfg.n);
    let factory = StreamFactory::new(cfg.seed);
    let m1_streams = factory.child(0);
    let m2_streams = factory.child(1);
    let mut pick_rng = factory.child(2).stream(0);

    let cache: Vec<Vec<f64>> = (0..m)
        .map(|j| {
            let mut rng = m1_streams.stream(j as u64);
            composite.run_m1(&mut rng)
        })
        .collect();

    let mut samples = Vec::with_capacity(cfg.n);
    let mut summary = Summary::new();
    for i in 0..cfg.n {
        let y1 = &cache[pick_rng.gen_range(0..m)];
        let mut rng = m2_streams.stream(i as u64);
        let y2 = composite.run_m2(y1, &mut rng);
        summary.push(y2);
        samples.push(y2);
    }
    RcEstimate {
        theta_hat: summary.mean(),
        sample_variance: summary.sample_variance(),
        n: cfg.n,
        m,
        cost: m as f64 * composite.m1.cost() + cfg.n as f64 * composite.m2.cost(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::FnModel;
    use mde_numeric::dist::{Distribution, Normal};
    use mde_numeric::rng::Rng;
    use std::sync::Arc;

    /// M1 ~ N(5, 1) (cost 10); M2 = input + N(0, 1) (cost 1).
    /// θ = 5, V1 = 2, V2 = 1.
    fn composite() -> SeriesComposite {
        let m1 = Arc::new(FnModel::new("demand", 10.0, |_: &[f64], rng: &mut Rng| {
            vec![5.0 + Normal::standard().sample(rng)]
        }));
        let m2 = Arc::new(FnModel::new("queue", 1.0, |x: &[f64], rng: &mut Rng| {
            vec![x[0] + Normal::standard().sample(rng)]
        }));
        SeriesComposite::new(m1, m2)
    }

    #[test]
    fn replication_counts_and_cost() {
        let c = composite();
        let est = run_rc(
            &c,
            &RcConfig {
                n: 100,
                alpha: 0.25,
                seed: 1,
            },
        );
        assert_eq!(est.n, 100);
        assert_eq!(est.m, 25);
        assert_eq!(est.cost, 25.0 * 10.0 + 100.0 * 1.0);
        assert_eq!(est.samples.len(), 100);
    }

    #[test]
    fn alpha_one_runs_m1_every_time() {
        let est = run_rc(
            &composite(),
            &RcConfig {
                n: 40,
                alpha: 1.0,
                seed: 2,
            },
        );
        assert_eq!(est.m, 40);
    }

    #[test]
    fn tiny_alpha_floors_at_one_m1_run() {
        let est = run_rc(
            &composite(),
            &RcConfig {
                n: 40,
                alpha: 1e-9,
                seed: 2,
            },
        );
        assert_eq!(est.m, 1);
    }

    #[test]
    fn estimator_is_unbiased_across_alphas() {
        // θ = 5 regardless of α (the paper: "estimates are asymptotically
        // valid for any value of α").
        for &alpha in &[0.1, 0.3162, 1.0] {
            let mut acc = Summary::new();
            for seed in 0..300 {
                let est = run_rc(&composite(), &RcConfig { n: 50, alpha, seed });
                acc.push(est.theta_hat);
            }
            let se = acc.sample_std_dev() / (acc.count() as f64).sqrt();
            assert!(
                (acc.mean() - 5.0).abs() < 5.0 * se,
                "α={alpha}: mean {} (se {se})",
                acc.mean()
            );
        }
    }

    #[test]
    fn estimator_variance_scales_with_g() {
        // For fixed n, Var(θ_n) = (1/n)(V1 + [2r − αr(r+1)]V2) — the
        // variance factor of g(α). Compare α = 1 (factor V1 = 2) with
        // α = 0.5 (r = 2, factor V1 + (4 − 3)V2 = 3).
        let var_at = |alpha: f64| {
            let mut acc = Summary::new();
            for seed in 1000..2200 {
                let est = run_rc(&composite(), &RcConfig { n: 40, alpha, seed });
                acc.push(est.theta_hat);
            }
            acc.sample_variance()
        };
        let v_full = var_at(1.0);
        let v_half = var_at(0.5);
        let ratio = v_half / v_full;
        // Expected ratio 3/2 = 1.5; allow Monte Carlo slack.
        assert!(
            (ratio - 1.5).abs() < 0.35,
            "variance ratio {ratio}, expected ≈ 1.5"
        );
    }

    #[test]
    fn caching_actually_reuses_outputs() {
        // With a *deterministic* M2 (pure pass-through), samples must repeat
        // with period m.
        let m1 = Arc::new(FnModel::new("src", 1.0, |_: &[f64], rng: &mut Rng| {
            vec![Normal::standard().sample(rng)]
        }));
        let m2 = Arc::new(FnModel::new("id", 1.0, |x: &[f64], _: &mut Rng| vec![x[0]]));
        let c = SeriesComposite::new(m1, m2);
        let est = run_rc(
            &c,
            &RcConfig {
                n: 9,
                alpha: 1.0 / 3.0,
                seed: 7,
            },
        );
        assert_eq!(est.m, 3);
        for i in 0..9 {
            assert_eq!(est.samples[i], est.samples[i % 3], "cycling broken at {i}");
        }
    }

    #[test]
    fn common_random_numbers_across_alphas() {
        // Same seed ⇒ the first cached M1 outputs coincide across α values.
        let c = composite();
        let a = run_rc(
            &c,
            &RcConfig {
                n: 12,
                alpha: 0.5,
                seed: 3,
            },
        );
        let b = run_rc(
            &c,
            &RcConfig {
                n: 12,
                alpha: 1.0,
                seed: 3,
            },
        );
        // M2 run 0 consumes M1 output 0 in both cases with the same M2
        // stream, so the first samples agree exactly.
        assert_eq!(a.samples[0], b.samples[0]);
    }

    #[test]
    fn deterministic_cycling_beats_random_reuse() {
        // The paper's variance claim, ablated: at a mid-range alpha, the
        // cycling estimator's variance is at most the random-reuse one's
        // (strictly lower in expectation; allow MC slack via many seeds).
        let c = composite();
        let var_of = |random: bool| {
            let mut acc = Summary::new();
            for seed in 0..800 {
                let cfg = RcConfig {
                    n: 30,
                    alpha: 0.2,
                    seed,
                };
                let est = if random {
                    run_rc_random_reuse(&c, &cfg)
                } else {
                    run_rc(&c, &cfg)
                };
                acc.push(est.theta_hat);
            }
            acc.sample_variance()
        };
        let cycling = var_of(false);
        let random = var_of(true);
        assert!(
            cycling < random,
            "cycling variance {cycling} should beat random reuse {random}"
        );
    }

    #[test]
    fn random_reuse_same_cost_model() {
        let est = run_rc_random_reuse(
            &composite(),
            &RcConfig {
                n: 100,
                alpha: 0.25,
                seed: 1,
            },
        );
        assert_eq!(est.m, 25);
        assert_eq!(est.cost, 25.0 * 10.0 + 100.0);
    }

    #[test]
    fn cached_rc_is_bit_identical_and_shares_m1_across_alphas() {
        let c = composite();
        let handle = CacheHandle::in_memory();
        let fp = 0xFEED_F00D;
        // Cold pass at α = 0.5 must equal the uncached runner exactly.
        let cfg_half = RcConfig {
            n: 12,
            alpha: 0.5,
            seed: 3,
        };
        let plain = run_rc(&c, &cfg_half);
        let cold = run_rc_cached(&c, &cfg_half, fp, &handle);
        assert_eq!(plain, cold);
        let after_cold = handle.stats();
        assert_eq!(after_cold.misses, 6);
        assert_eq!(after_cold.hits, 0);

        // Same seed at α = 1 shares the first 6 M₁ outputs (CRN → real
        // cross-campaign hits) and still matches the uncached runner.
        let cfg_full = RcConfig {
            n: 12,
            alpha: 1.0,
            seed: 3,
        };
        let warm = run_rc_cached(&c, &cfg_full, fp, &handle);
        assert_eq!(run_rc(&c, &cfg_full), warm);
        let after_warm = handle.stats();
        assert_eq!(after_warm.hits, 6);
        assert_eq!(after_warm.misses, 12);

        // A foreign fingerprint or a stale seed never hits.
        run_rc_cached(&c, &cfg_half, fp ^ 1, &handle);
        let foreign = handle.stats();
        assert_eq!(foreign.hits, 6, "foreign fingerprint must miss");
        run_rc_cached(
            &c,
            &RcConfig {
                seed: 4,
                ..cfg_half
            },
            fp,
            &handle,
        );
        assert_eq!(handle.stats().hits, 6, "stale seed must miss");
    }

    #[test]
    fn cached_budget_runner_matches_uncached() {
        use crate::budget::{run_under_budget, run_under_budget_cached};
        let c = composite();
        let handle = CacheHandle::in_memory();
        for seed in 0..5 {
            let plain = run_under_budget(&c, 400.0, 0.3162, seed).unwrap();
            let cached = run_under_budget_cached(&c, 400.0, 0.3162, seed, 7, &handle).unwrap();
            assert_eq!(plain, cached);
            // Rerun warm: every M₁ output is a hit, result unchanged.
            let warm = run_under_budget_cached(&c, 400.0, 0.3162, seed, 7, &handle).unwrap();
            assert_eq!(plain, warm);
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn rejects_bad_alpha() {
        run_rc(
            &composite(),
            &RcConfig {
                n: 10,
                alpha: 1.5,
                seed: 1,
            },
        );
    }
}
