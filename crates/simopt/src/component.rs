//! Stochastic component models and series composition.

use mde_numeric::rng::Rng;
use std::sync::Arc;

/// A stochastic component model: consumes an input vector, produces an
/// output vector, and carries a nominal per-run compute cost in abstract
/// units (the paper's `c₁`, `c₂` are expectations of this).
///
/// Cost is declared rather than measured so that experiments are
/// deterministic; the pilot estimator ([`crate::pilot`]) treats it as an
/// observable like any other.
pub trait StochModel: Send + Sync {
    /// Model name, for registries and error messages.
    fn name(&self) -> &str;

    /// Execute one run.
    fn run(&self, input: &[f64], rng: &mut Rng) -> Vec<f64>;

    /// Nominal compute cost of one run (abstract units, must be positive).
    fn cost(&self) -> f64;
}

/// A model built from a closure plus a declared cost.
pub struct FnModel<F> {
    name: String,
    cost: f64,
    f: F,
}

impl<F> FnModel<F>
where
    F: Fn(&[f64], &mut Rng) -> Vec<f64> + Send + Sync,
{
    /// Create a closure-backed model.
    pub fn new(name: impl Into<String>, cost: f64, f: F) -> Self {
        assert!(cost > 0.0, "model cost must be positive");
        FnModel {
            name: name.into(),
            cost,
            f,
        }
    }
}

impl<F> StochModel for FnModel<F>
where
    F: Fn(&[f64], &mut Rng) -> Vec<f64> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, input: &[f64], rng: &mut Rng) -> Vec<f64> {
        (self.f)(input, rng)
    }

    fn cost(&self) -> f64 {
        self.cost
    }
}

/// An inter-model transformation applied between composed models.
pub type TransformFn = Arc<dyn Fn(&[f64]) -> Vec<f64> + Send + Sync>;

/// The paper's Figure 2 composite: `M₁ → (transform) → M₂` in series. The
/// transformation step is an optional deterministic function standing in
/// for the Splash data-transformation stage; its cost is folded into `c₁`
/// per the paper ("the costs of transforming and storing the output from
/// M₁ are included").
pub struct SeriesComposite {
    /// Upstream model.
    pub m1: Arc<dyn StochModel>,
    /// Downstream model (its first output coordinate is the scalar `Y₂`).
    pub m2: Arc<dyn StochModel>,
    /// Optional inter-model transformation.
    pub transform: Option<TransformFn>,
}

impl SeriesComposite {
    /// Compose two models with no transformation.
    pub fn new(m1: Arc<dyn StochModel>, m2: Arc<dyn StochModel>) -> Self {
        SeriesComposite {
            m1,
            m2,
            transform: None,
        }
    }

    /// Add an inter-model transformation.
    pub fn with_transform(mut self, t: TransformFn) -> Self {
        self.transform = Some(t);
        self
    }

    /// Run `M₁` once on an empty input, applying the transformation.
    pub fn run_m1(&self, rng: &mut Rng) -> Vec<f64> {
        let y1 = self.m1.run(&[], rng);
        match &self.transform {
            Some(t) => t(&y1),
            None => y1,
        }
    }

    /// Run `M₂` on a (cached or fresh) `M₁` output; returns scalar `Y₂`.
    pub fn run_m2(&self, y1: &[f64], rng: &mut Rng) -> f64 {
        let out = self.m2.run(y1, rng);
        out.first().copied().unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mde_numeric::dist::{Distribution, Normal};
    use mde_numeric::rng::rng_from_seed;

    #[test]
    fn fn_model_runs_and_costs() {
        let m = FnModel::new("double", 2.5, |x: &[f64], _rng: &mut Rng| {
            vec![x.iter().sum::<f64>() * 2.0]
        });
        let mut rng = rng_from_seed(1);
        assert_eq!(m.run(&[1.0, 2.0], &mut rng), vec![6.0]);
        assert_eq!(m.cost(), 2.5);
        assert_eq!(m.name(), "double");
    }

    #[test]
    #[should_panic(expected = "cost must be positive")]
    fn zero_cost_rejected() {
        let _ = FnModel::new("bad", 0.0, |_: &[f64], _: &mut Rng| vec![]);
    }

    #[test]
    fn series_composite_threads_data_through_transform() {
        let m1 = Arc::new(FnModel::new("src", 1.0, |_: &[f64], rng: &mut Rng| {
            vec![Normal::standard().sample(rng)]
        }));
        let m2 = Arc::new(FnModel::new("sink", 1.0, |x: &[f64], _: &mut Rng| {
            vec![x[0] * 10.0]
        }));
        let comp =
            SeriesComposite::new(m1, m2).with_transform(Arc::new(|y: &[f64]| vec![y[0] + 100.0]));
        let mut rng = rng_from_seed(2);
        let y1 = comp.run_m1(&mut rng);
        assert!(y1[0] > 90.0, "transform applied: {}", y1[0]);
        let y2 = comp.run_m2(&y1, &mut rng);
        assert!((y2 - y1[0] * 10.0).abs() < 1e-12);
    }
}
