//! What-if analytics over data + models — the paper's opening thesis.
//!
//! "Data is dead … without what-if models" (§1): descriptive analytics
//! over existing data reflects only the past; robust decisions need
//! stochastic models attached to the data, simulated forward, and queried.
//! [`WhatIfSession`] packages that workflow over the Monte Carlo database:
//! load data tables, attach stochastic (VG-function) models, pose an
//! aggregate query, and get a query-result *distribution* with risk and
//! threshold decisions — plus the Figure 1 cautionary baseline, a
//! shallow trend extrapolation for comparison.

use mde_mcdb::mc::{McResult, MonteCarloQuery};
use mde_mcdb::prelude::*;
use mde_numeric::stats::TrendAr1Model;

/// A what-if analysis session: deterministic data plus attached stochastic
/// models.
#[derive(Debug, Clone, Default)]
pub struct WhatIfSession {
    catalog: Catalog,
    specs: Vec<RandomTableSpec>,
}

impl WhatIfSession {
    /// Start an empty session.
    pub fn new() -> Self {
        WhatIfSession::default()
    }

    /// Load a deterministic data table.
    pub fn add_data(&mut self, table: Table) -> &mut Self {
        self.catalog.insert(table);
        self
    }

    /// Attach a stochastic model (a random-table spec) to the session —
    /// "the analyst can specify … 'stochastic' tables that contain
    /// 'uncertain' data".
    pub fn attach_stochastic(&mut self, spec: RandomTableSpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// The current deterministic catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Run a descriptive (deterministic) query over the data alone.
    pub fn describe(&self, plan: &Plan) -> crate::Result<Table> {
        Ok(self.catalog.query(plan)?)
    }

    /// Run a what-if query: realize all attached stochastic models `n`
    /// times, executing the scalar aggregate query per realization.
    pub fn what_if(&self, plan: &Plan, n: usize, seed: u64) -> crate::Result<McResult> {
        let q = MonteCarloQuery::new(self.specs.clone(), plan.clone());
        Ok(q.run(&self.catalog, n, seed)?)
    }

    /// The parallel variant of [`WhatIfSession::what_if`].
    pub fn what_if_parallel(
        &self,
        plan: &Plan,
        n: usize,
        seed: u64,
        threads: usize,
    ) -> crate::Result<McResult> {
        let q = MonteCarloQuery::new(self.specs.clone(), plan.clone());
        Ok(q.run_parallel(&self.catalog, n, seed, threads)?)
    }
}

/// The Figure 1 cautionary baseline: fit a shallow trend+AR(1) model to a
/// history column (ordered by a time column) and extrapolate `horizon`
/// steps. The Figure 1 experiment contrasts this against a
/// regime-aware simulation.
pub fn shallow_extrapolation(
    history: &Table,
    time_col: &str,
    value_col: &str,
    horizon: u32,
) -> crate::Result<f64> {
    let ts = history.column_f64(time_col)?;
    let ys = history.column_f64(value_col)?;
    let model = TrendAr1Model::fit(&ts, &ys)?;
    Ok(model.extrapolate(horizon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mde_mcdb::vg::NormalVg;
    use std::sync::Arc;

    fn session() -> WhatIfSession {
        let mut s = WhatIfSession::new();
        s.add_data(
            Table::build("STORES", &[("SID", DataType::Int)])
                .rows((0..10).map(|i| vec![Value::from(i)]))
                .finish()
                .unwrap(),
        );
        s.add_data(
            Table::build(
                "MODEL",
                &[("MEAN", DataType::Float), ("STD", DataType::Float)],
            )
            .row(vec![Value::from(50.0), Value::from(10.0)])
            .finish()
            .unwrap(),
        );
        let spec = RandomTableSpec::builder("SALES")
            .for_each(Plan::scan("STORES"))
            .with_vg(Arc::new(NormalVg))
            .vg_params_query(Plan::scan("MODEL"))
            .select(&[("SID", Expr::col("SID")), ("AMT", Expr::col("VALUE"))])
            .build()
            .unwrap();
        s.attach_stochastic(spec);
        s
    }

    #[test]
    fn descriptive_query_over_data() {
        let s = session();
        let t = s
            .describe(
                &Plan::scan("STORES")
                    .aggregate(&[], vec![mde_mcdb::query::AggSpec::count_star("n")]),
            )
            .unwrap();
        assert_eq!(t.scalar().unwrap(), Value::from(10));
    }

    #[test]
    fn what_if_produces_distribution() {
        let s = session();
        let plan = Plan::scan("SALES").aggregate(
            &[],
            vec![mde_mcdb::query::AggSpec::new(
                "TOTAL",
                mde_mcdb::query::AggFunc::Sum,
                Expr::col("AMT"),
            )],
        );
        let res = s.what_if(&plan, 300, 4).unwrap();
        // Total sales across 10 stores ~ N(500, 10√10).
        assert!((res.mean() - 500.0).abs() < 10.0);
        assert!(res.quantile(0.95).unwrap() > res.mean());
        // Threshold decision: P(total > 400) is essentially certain.
        assert_eq!(
            res.threshold_decision(400.0, 0.5, 0.95).unwrap(),
            Some(true)
        );
        // Parallel agrees exactly.
        let par = s.what_if_parallel(&plan, 300, 4, 4).unwrap();
        assert_eq!(res.samples(), par.samples());
    }

    #[test]
    fn shallow_extrapolation_over_table() {
        // Linear history: extrapolation continues the line.
        let t = Table::build("H", &[("T", DataType::Float), ("V", DataType::Float)])
            .rows((0..20).map(|i| vec![Value::from(i as f64), Value::from(3.0 + 2.0 * i as f64)]))
            .finish()
            .unwrap();
        let f = shallow_extrapolation(&t, "T", "V", 5).unwrap();
        assert!((f - (3.0 + 2.0 * 24.0)).abs() < 1e-6);
    }
}
