//! Overload-resilient campaign scheduler: admission control over bounded
//! per-tenant queues, deadline-aware (EDF) dispatch, a deterministic
//! retry ladder with seeded-jitter backoff, per-resource circuit
//! breakers, and graceful load shedding.
//!
//! # Model
//!
//! Work arrives as [`Campaign`] boxes (any execution surface adapted to
//! the slice protocol of [`mde_numeric::resilience::sched`]) tagged with
//! a [`CampaignSpec`] — tenant, resource, [`Priority`], cost, optional
//! [`Deadline`], and a fingerprint that seeds the campaign's backoff
//! jitter. [`Scheduler::submit`] is the admission controller: it either
//! accepts the campaign into its tenant's bounded queue or rejects it
//! with a typed [`Overloaded`] error. Under queue pressure it prefers
//! shedding already-queued lower-priority work over rejecting the
//! incoming submission; when no victim outranks the newcomer, the
//! newcomer is rejected.
//!
//! [`Scheduler::run`] drains the admitted queue over a worker pool.
//! Dispatch is earliest-deadline-first (deadlined campaigns before
//! undeadlined ones, then higher priority, then submission order). Every
//! slice runs under a fresh [`CampaignCtl`]; the scheduler triggers
//! [`CancelReason::Shed`] / [`CancelReason::Preempt`] through the control
//! block, so campaigns stop at their own replicate boundaries — never
//! mid-replicate.
//!
//! # Determinism
//!
//! The scheduler's ledger splits the same way every run report does:
//! admission decisions, shed/preempt/retry counts, retry backoff
//! schedules, and terminal statuses are pure functions of the submission
//! sequence and the fault plan — bit-identical at any worker count —
//! while queue-wait and latency measurements ride out-of-band in the
//! metrics ledger, excluded from deterministic equality.
//!
//! # Chaos faults
//!
//! A [`FaultPlan`] in [`SchedConfig::faults`] drives the overload chaos
//! harness: `stall_worker`/`slow_worker` delay the dispatching worker
//! (timing only), `queue_full_at` forces an admission rejection,
//! `shed_campaign_at`/`preempt_campaign_at` trigger mid-run control
//! signals before a keyed dispatch slice.

use crate::resilience::{CancelToken, Deadline, ErrorClass, FaultPlan};
use mde_numeric::obs::RunMetrics;
use mde_numeric::resilience::CancelReason;
use mde_numeric::{
    Backoff, BackoffConfig, BreakerConfig, Campaign, CampaignCtl, CampaignOutput, CampaignStep,
    CircuitBreaker, Fingerprint, Overloaded, Priority,
};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A sampled external pressure signal for admission control — typically
/// the occupancy of a storage buffer pool (`resident / budget` in
/// `[0, 1]`). The probe is polled at each [`Scheduler::submit`]; when it
/// reads above [`SchedConfig::pressure_limit`], admission rejects with
/// [`Overloaded::PoolPressure`] so the campaign can be retried once the
/// pool drains rather than queued onto a memory-starved system.
#[derive(Clone)]
pub struct PressureProbe(Arc<dyn Fn() -> f64 + Send + Sync>);

impl PressureProbe {
    /// Wrap a sampling closure. The closure should be cheap and
    /// lock-light: it runs inline on every admission decision.
    pub fn new(f: impl Fn() -> f64 + Send + Sync + 'static) -> Self {
        PressureProbe(Arc::new(f))
    }

    /// Sample the current pressure. Non-finite readings are treated as
    /// zero (a broken probe must not wedge admission shut).
    pub fn sample(&self) -> f64 {
        let v = (self.0)();
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }
}

impl std::fmt::Debug for PressureProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PressureProbe").finish_non_exhaustive()
    }
}

/// Scheduler configuration: queue bounds, budgets, the retry ladder, and
/// breaker thresholds.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Bound on each tenant's waiting queue; admission beyond it sheds a
    /// lower-priority queued campaign or rejects with
    /// [`Overloaded::QueueFull`].
    pub queue_capacity: usize,
    /// Bound on the summed [`CampaignSpec::cost`] of admitted,
    /// not-yet-finished campaigns; admission beyond it rejects with
    /// [`Overloaded::CostBudget`].
    pub cost_budget: u64,
    /// When the total waiting depth exceeds this at dispatch time, the
    /// scheduler sheds lowest-priority waiting campaigns (typed
    /// [`Overloaded::Shed`]) until the depth is back under the line.
    pub pressure_depth: usize,
    /// Terminal attempt bound for the retry ladder: a campaign whose
    /// slice fails retryably is re-dispatched with backoff until it has
    /// consumed this many attempts.
    pub max_attempts: u32,
    /// Backoff ladder shape; jitter is seeded per-campaign from the spec
    /// fingerprint, so schedules are deterministic and de-synchronized.
    pub backoff: BackoffConfig,
    /// Per-resource circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// How long a [`FaultKind::StalledWorker`](crate::resilience::FaultKind)
    /// fault blocks the dispatching worker, in milliseconds.
    pub stall_ms: u64,
    /// Deterministic chaos injection (tests only; `None` in production).
    pub faults: Option<FaultPlan>,
    /// Optional external pressure signal (e.g. buffer pool occupancy)
    /// polled at admission; `None` disables the check.
    pub pressure_probe: Option<PressureProbe>,
    /// Admission ceiling for the probe reading, in `[0, 1]`. Readings
    /// strictly above it reject with [`Overloaded::PoolPressure`].
    pub pressure_limit: f64,
    /// Master drain signal for graceful shutdown. Every dispatched
    /// slice's control token is a [`CancelToken::child_of`] this token,
    /// so cancelling it (typically with
    /// [`CancelReason::Preempt`]) stops in-flight campaigns at their
    /// next boundary and terminally preempts everything still waiting —
    /// campaign boxes are retained so [`SchedRun::reclaim`] can recover
    /// checkpointed work for a later resume. `None` disables draining.
    pub drain: Option<CancelToken>,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            queue_capacity: 8,
            cost_budget: u64::MAX,
            pressure_depth: usize::MAX,
            max_attempts: 3,
            backoff: BackoffConfig::default(),
            breaker: BreakerConfig::default(),
            stall_ms: 25,
            faults: None,
            pressure_probe: None,
            pressure_limit: 1.0,
            drain: None,
        }
    }
}

/// Identity and placement metadata for one submitted campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Owning tenant (its queue bound applies).
    pub tenant: String,
    /// Human-readable campaign name (appears in typed rejections).
    pub name: String,
    /// The resource the campaign executes against; one circuit breaker
    /// per distinct resource.
    pub resource: String,
    /// Dispatch priority class.
    pub priority: Priority,
    /// Admission cost against [`SchedConfig::cost_budget`].
    pub cost: u64,
    /// Wall-clock deadline: EDF-ordered at dispatch, expired campaigns
    /// are rejected with [`Overloaded::DeadlineExpired`] instead of run.
    pub deadline: Option<Deadline>,
    /// Seeds the campaign's backoff jitter; defaults to a digest of
    /// tenant and name.
    pub fingerprint: u64,
}

impl CampaignSpec {
    /// A batch-priority, cost-1 spec on the `"default"` resource.
    pub fn new(tenant: impl Into<String>, name: impl Into<String>) -> Self {
        let tenant = tenant.into();
        let name = name.into();
        let fingerprint = Fingerprint::new("sched.campaign")
            .push_str(&tenant)
            .push_str(&name)
            .finish();
        CampaignSpec {
            tenant,
            name,
            resource: "default".to_string(),
            priority: Priority::Batch,
            cost: 1,
            deadline: None,
            fingerprint,
        }
    }

    /// Set the resource (breaker key).
    pub fn on_resource(mut self, resource: impl Into<String>) -> Self {
        self.resource = resource.into();
        self
    }

    /// Set the priority class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set the admission cost.
    pub fn with_cost(mut self, cost: u64) -> Self {
        self.cost = cost;
        self
    }

    /// Attach a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Override the backoff-jitter fingerprint.
    pub fn with_fingerprint(mut self, fingerprint: u64) -> Self {
        self.fingerprint = fingerprint;
        self
    }
}

/// How one admitted campaign terminated.
#[derive(Debug)]
pub enum CampaignStatus {
    /// Ran to completion (possibly degraded — the output's report says).
    Completed(CampaignOutput),
    /// Admitted but never completed: shed from the queue under pressure,
    /// or its deadline expired before dispatch.
    Rejected(Overloaded),
    /// Shed mid-run under a strict policy: the campaign stopped at a
    /// boundary and, when `resumable`, retains its checkpoint — reclaim
    /// the campaign box with [`SchedRun::reclaim`] and resubmit to
    /// continue from where it stopped.
    Preempted {
        /// Whether the campaign checkpointed and resumes at its cursor.
        resumable: bool,
    },
    /// The retry ladder was exhausted or the campaign failed fatally.
    Failed {
        /// Terminal failure message.
        message: String,
    },
}

/// Per-campaign accounting for one scheduler run.
#[derive(Debug)]
pub struct CampaignReport {
    /// Submission id (as returned by [`Scheduler::submit`]).
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Campaign name.
    pub name: String,
    /// Priority class it was scheduled under.
    pub priority: Priority,
    /// Terminal status.
    pub status: CampaignStatus,
    /// Failed attempts consumed on the retry ladder.
    pub attempts: u32,
    /// Dispatch slices executed (re-dispatches after preemption and
    /// retries each count one).
    pub slices: u32,
    /// Times the campaign was preempted and re-queued.
    pub preemptions: u32,
    /// The deterministic backoff delays scheduled between retries, in
    /// ladder order.
    pub retry_schedule: Vec<Duration>,
}

/// The result of draining a scheduler queue: per-campaign reports (in
/// submission order) plus the scheduler's own metrics ledger.
pub struct SchedRun {
    /// One report per admitted campaign, ordered by submission id.
    pub reports: Vec<CampaignReport>,
    /// Scheduler ledger: deterministic counters (`sched.admitted`,
    /// `sched.shed`, `sched.preempted`, `sched.retries`,
    /// `sched.breaker_trips`, `sched.completed`, `sched.failed`, and
    /// per-tenant variants) plus out-of-band queue-wait and slice
    /// latency histograms.
    pub metrics: RunMetrics,
    resumable: HashMap<u64, Box<dyn Campaign>>,
}

impl SchedRun {
    /// The report for submission `id`.
    pub fn report(&self, id: u64) -> Option<&CampaignReport> {
        self.reports.iter().find(|r| r.id == id)
    }

    /// Take back the campaign box of a mid-run-shed campaign (status
    /// [`CampaignStatus::Preempted`] with `resumable: true`) so it can be
    /// resubmitted; it resumes from its retained checkpoint.
    pub fn reclaim(&mut self, id: u64) -> Option<Box<dyn Campaign>> {
        self.resumable.remove(&id)
    }
}

impl std::fmt::Debug for SchedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedRun")
            .field("reports", &self.reports)
            .field("metrics", &self.metrics)
            .field("resumable", &self.resumable.keys().collect::<Vec<_>>())
            .finish()
    }
}

enum EntryState {
    Waiting { not_before: Option<Instant> },
    Running,
    Terminal(CampaignStatus),
}

struct Entry {
    id: u64,
    spec: CampaignSpec,
    campaign: Option<Box<dyn Campaign>>,
    state: EntryState,
    attempts: u32,
    slices: u32,
    preemptions: u32,
    retry_schedule: Vec<Duration>,
    backoff: Backoff,
    ready_at: Instant,
}

impl Entry {
    fn is_waiting(&self) -> bool {
        matches!(self.state, EntryState::Waiting { .. })
    }
}

/// The admission-controlled, overload-resilient campaign scheduler.
///
/// Lifecycle: [`Scheduler::submit`] campaigns (admission control runs
/// synchronously, in submission order), then [`Scheduler::run`] to drain
/// the queue over a worker pool. Circuit breakers persist across runs, so
/// a resource that tripped during one run fast-rejects admissions in the
/// next until its cooldown elapses.
pub struct Scheduler {
    cfg: SchedConfig,
    entries: Vec<Entry>,
    submissions: u64,
    admitted_cost: u64,
    breakers: HashMap<String, CircuitBreaker>,
    metrics: RunMetrics,
}

impl Scheduler {
    /// A scheduler with the given configuration.
    pub fn new(cfg: SchedConfig) -> Self {
        Scheduler {
            cfg,
            entries: Vec::new(),
            submissions: 0,
            admitted_cost: 0,
            breakers: HashMap::new(),
            metrics: RunMetrics::new(),
        }
    }

    /// Campaigns currently admitted and waiting.
    pub fn queued(&self) -> usize {
        self.entries.iter().filter(|e| e.is_waiting()).count()
    }

    /// Summed [`CampaignSpec::cost`] of admitted, not-yet-finished
    /// campaigns (the in-flight figure admission charges against
    /// [`SchedConfig::cost_budget`]).
    pub fn admitted_cost(&self) -> u64 {
        self.admitted_cost
    }

    /// Split the admitted queue into a scheduler that can be drained on
    /// its own thread while this one keeps admitting new work.
    ///
    /// The detached scheduler takes the waiting entries, the breaker
    /// state, and the metrics accumulated so far; the submission counter
    /// is shared forward so ids stay unique across the pair. This
    /// scheduler keeps charging the detached batch's cost against its
    /// budget until [`Scheduler::reabsorb`] releases it — in-flight work
    /// still counts while it runs elsewhere.
    pub fn detach_for_drain(&mut self) -> Scheduler {
        Scheduler {
            cfg: self.cfg.clone(),
            entries: std::mem::take(&mut self.entries),
            submissions: self.submissions,
            admitted_cost: self.admitted_cost,
            breakers: std::mem::take(&mut self.breakers),
            metrics: std::mem::take(&mut self.metrics),
        }
    }

    /// Fold a drained detachment back in: restores breaker state (so
    /// trips observed during the drain gate future admissions here),
    /// merges any metrics left on the detachment, and releases
    /// `batch_cost` (the detachment's [`Scheduler::admitted_cost`] as
    /// captured at detach time) from the in-flight budget.
    pub fn reabsorb(&mut self, drained: Scheduler, batch_cost: u64) {
        for (resource, breaker) in drained.breakers {
            self.breakers.insert(resource, breaker);
        }
        self.metrics.merge(&drained.metrics);
        self.admitted_cost = self.admitted_cost.saturating_sub(batch_cost);
    }

    /// Admit a campaign or reject it with a typed [`Overloaded`] error.
    ///
    /// Admission checks run in order: injected queue-full faults, the
    /// tenant's queue bound (shedding a strictly lower-priority queued
    /// victim when one exists), the global cost budget, and the
    /// resource's circuit breaker. Decisions are deterministic in the
    /// submission sequence.
    pub fn submit(
        &mut self,
        spec: CampaignSpec,
        campaign: Box<dyn Campaign>,
    ) -> Result<u64, Overloaded> {
        let seq = self.submissions;
        self.submissions += 1;

        let injected_full = self.cfg.faults.as_ref().is_some_and(|f| f.queue_full(seq));
        let tenant_depth = self
            .entries
            .iter()
            .filter(|e| e.is_waiting() && e.spec.tenant == spec.tenant)
            .count();
        if injected_full || tenant_depth >= self.cfg.queue_capacity {
            // Prefer shedding queued work that the newcomer outranks over
            // bouncing the newcomer; an injected fault brooks no victim.
            let victim = if injected_full {
                None
            } else {
                self.entries
                    .iter_mut()
                    .filter(|e| {
                        e.is_waiting()
                            && e.spec.tenant == spec.tenant
                            && e.spec.priority < spec.priority
                    })
                    .min_by_key(|e| (e.spec.priority, std::cmp::Reverse(e.id)))
            };
            match victim {
                Some(v) => {
                    let cost = v.spec.cost;
                    let tenant = v.spec.tenant.clone();
                    v.state = EntryState::Terminal(CampaignStatus::Rejected(Overloaded::Shed {
                        tenant: v.spec.tenant.clone(),
                        campaign: v.spec.name.clone(),
                    }));
                    v.campaign = None;
                    self.admitted_cost = self.admitted_cost.saturating_sub(cost);
                    self.metrics.inc("sched.shed");
                    self.metrics.inc(&format!("sched.tenant.{tenant}.shed"));
                }
                None => {
                    self.metrics.inc("sched.rejected");
                    return Err(Overloaded::QueueFull {
                        tenant: spec.tenant,
                        depth: tenant_depth,
                        capacity: self.cfg.queue_capacity,
                    });
                }
            }
        }

        if self.admitted_cost.saturating_add(spec.cost) > self.cfg.cost_budget {
            self.metrics.inc("sched.rejected");
            return Err(Overloaded::CostBudget {
                cost: spec.cost,
                in_flight: self.admitted_cost,
                budget: self.cfg.cost_budget,
            });
        }

        if let Some(probe) = &self.cfg.pressure_probe {
            let pressure = probe.sample();
            if pressure > self.cfg.pressure_limit {
                self.metrics.inc("sched.rejected");
                self.metrics.inc("sched.pool_pressure_rejected");
                return Err(Overloaded::PoolPressure {
                    pressure_pct: (pressure * 100.0).round() as u32,
                    limit_pct: (self.cfg.pressure_limit * 100.0).round() as u32,
                });
            }
        }

        if let Some(b) = self.breakers.get(&spec.resource) {
            if b.state() == mde_numeric::BreakerState::Open {
                self.metrics.inc("sched.rejected");
                return Err(Overloaded::BreakerOpen {
                    resource: spec.resource,
                });
            }
        }

        let id = seq;
        self.admitted_cost += spec.cost;
        self.metrics.inc("sched.admitted");
        self.metrics
            .inc(&format!("sched.tenant.{}.admitted", spec.tenant));
        let backoff = Backoff::new(self.cfg.backoff, spec.fingerprint);
        self.entries.push(Entry {
            id,
            spec,
            campaign: Some(campaign),
            state: EntryState::Waiting { not_before: None },
            attempts: 0,
            slices: 0,
            preemptions: 0,
            retry_schedule: Vec::new(),
            backoff,
            ready_at: Instant::now(),
        });
        Ok(id)
    }

    /// Drain the admitted queue over `threads` workers and return the
    /// per-campaign reports and the scheduler ledger. Never deadlocks:
    /// every worker wait is bounded, stalled/slow workers only delay their
    /// own slice, and every admitted campaign terminates in one of the
    /// [`CampaignStatus`] arms.
    pub fn run(&mut self, threads: usize) -> SchedRun {
        // Pressure shedding: the cheapest place to relieve overload is
        // before dispatch ever starts — drop lowest-priority (then
        // newest) waiting work until the backlog fits.
        while self.queued() > self.cfg.pressure_depth {
            let victim = self
                .entries
                .iter_mut()
                .filter(|e| e.is_waiting())
                .min_by_key(|e| (e.spec.priority, std::cmp::Reverse(e.id)));
            match victim {
                Some(v) => {
                    let tenant = v.spec.tenant.clone();
                    v.state = EntryState::Terminal(CampaignStatus::Rejected(Overloaded::Shed {
                        tenant: v.spec.tenant.clone(),
                        campaign: v.spec.name.clone(),
                    }));
                    v.campaign = None;
                    self.metrics.inc("sched.shed");
                    self.metrics.inc(&format!("sched.tenant.{tenant}.shed"));
                }
                None => break,
            }
        }

        let pool = Pool {
            state: Mutex::new(PoolState {
                entries: std::mem::take(&mut self.entries),
                running: 0,
                breakers: std::mem::take(&mut self.breakers),
                metrics: std::mem::take(&mut self.metrics),
            }),
            cv: Condvar::new(),
            cfg: self.cfg.clone(),
        };

        let workers = threads.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| pool.worker());
            }
        });

        let state = pool.state.into_inner().unwrap_or_else(|p| p.into_inner());
        self.breakers = state.breakers;
        self.admitted_cost = 0;
        let mut entries = state.entries;
        entries.sort_by_key(|e| e.id);
        let mut resumable = HashMap::new();
        let reports = entries
            .into_iter()
            .map(|mut e| {
                let status = match e.state {
                    EntryState::Terminal(s) => s,
                    // Unreachable for well-formed runs: workers only exit
                    // once nothing is waiting or running.
                    _ => CampaignStatus::Failed {
                        message: "campaign left unfinished by worker pool".to_string(),
                    },
                };
                if let (CampaignStatus::Preempted { resumable: true }, Some(c)) =
                    (&status, e.campaign.take())
                {
                    resumable.insert(e.id, c);
                }
                CampaignReport {
                    id: e.id,
                    tenant: e.spec.tenant,
                    name: e.spec.name,
                    priority: e.spec.priority,
                    status,
                    attempts: e.attempts,
                    slices: e.slices,
                    preemptions: e.preemptions,
                    retry_schedule: e.retry_schedule,
                }
            })
            .collect();
        SchedRun {
            reports,
            metrics: state.metrics,
            resumable,
        }
    }
}

struct PoolState {
    entries: Vec<Entry>,
    running: usize,
    breakers: HashMap<String, CircuitBreaker>,
    metrics: RunMetrics,
}

struct Pool {
    state: Mutex<PoolState>,
    cv: Condvar,
    cfg: SchedConfig,
}

/// What the dispatcher decided to do with the slice it picked.
struct Dispatch {
    idx: usize,
    campaign: Box<dyn Campaign>,
    ctl: CampaignCtl,
    shed_issued: bool,
    stall: Option<Duration>,
}

impl Pool {
    /// Worker loop: pick a slice under the lock, execute it outside the
    /// lock, settle the outcome under the lock again. All waits are
    /// bounded (`wait_timeout`), so a stalled peer can never wedge the
    /// pool.
    fn worker(&self) {
        let mut guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            let now = Instant::now();
            match self.pick(&mut guard, now) {
                Pick::Dispatch(mut d) => {
                    guard.running += 1;
                    drop(guard);
                    let outcome = Self::execute(&mut d);
                    guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
                    self.settle(&mut guard, d, outcome);
                    guard.running -= 1;
                    self.cv.notify_all();
                }
                Pick::Wait(timeout) => {
                    let (g, _) = self
                        .cv
                        .wait_timeout(guard, timeout)
                        .unwrap_or_else(|p| p.into_inner());
                    guard = g;
                }
                Pick::Done => {
                    self.cv.notify_all();
                    return;
                }
            }
        }
    }

    /// EDF dispatch under the lock: deadlined entries first (earliest
    /// expiry), then priority (highest first), then submission order.
    /// Expired deadlines terminate the entry instead of dispatching it;
    /// an open breaker skips its entries (each skip serves cooldown).
    fn pick(&self, st: &mut PoolState, now: Instant) -> Pick {
        // A cancelled drain token stops dispatch entirely: everything
        // still waiting is terminally preempted with its campaign box
        // retained, so checkpointed work can be reclaimed and resumed
        // after the restart. In-flight slices observe the same signal
        // through their child control tokens and settle at their next
        // boundary.
        if self.cfg.drain.as_ref().is_some_and(|d| d.is_cancelled()) {
            let mut drained = 0u64;
            for e in st.entries.iter_mut() {
                if e.is_waiting() {
                    e.state = EntryState::Terminal(CampaignStatus::Preempted { resumable: true });
                    drained += 1;
                }
            }
            if drained > 0 {
                st.metrics.add("sched.drained", drained);
            }
        }

        // Terminate waiting entries whose deadline has already expired.
        for e in st.entries.iter_mut() {
            if e.is_waiting() && e.spec.deadline.is_some_and(|d| d.expired()) {
                e.state =
                    EntryState::Terminal(CampaignStatus::Rejected(Overloaded::DeadlineExpired {
                        campaign: e.spec.name.clone(),
                    }));
                e.campaign = None;
                st.metrics.inc("sched.deadline_expired");
            }
        }

        let mut order: Vec<usize> = (0..st.entries.len())
            .filter(|&i| st.entries[i].is_waiting())
            .collect();
        if order.is_empty() {
            return if st.running == 0 {
                Pick::Done
            } else {
                Pick::Wait(Duration::from_millis(5))
            };
        }
        order.sort_by(|&a, &b| {
            let (ea, eb) = (&st.entries[a], &st.entries[b]);
            let da = ea.spec.deadline.and_then(|d| d.expires_at());
            let db = eb.spec.deadline.and_then(|d| d.expires_at());
            match (da, db) {
                (Some(x), Some(y)) => x.cmp(&y),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            }
            .then(eb.spec.priority.cmp(&ea.spec.priority))
            .then(ea.id.cmp(&eb.id))
        });

        let mut earliest_retry: Option<Instant> = None;
        for idx in order {
            let ready = match st.entries[idx].state {
                EntryState::Waiting { not_before: None } => true,
                EntryState::Waiting {
                    not_before: Some(t),
                } => {
                    if t <= now {
                        true
                    } else {
                        earliest_retry = Some(earliest_retry.map_or(t, |e: Instant| e.min(t)));
                        false
                    }
                }
                _ => false,
            };
            if !ready {
                continue;
            }
            let resource = st.entries[idx].spec.resource.clone();
            let breaker = st
                .breakers
                .entry(resource)
                .or_insert_with(|| CircuitBreaker::new(self.cfg.breaker));
            if !breaker.try_acquire() {
                continue;
            }
            let e = &mut st.entries[idx];
            let campaign = match e.campaign.take() {
                Some(c) => c,
                None => {
                    // Defensive: a waiting entry always owns its box; if
                    // the invariant ever breaks, fail the campaign rather
                    // than poison the pool with a panic.
                    e.state = EntryState::Terminal(CampaignStatus::Failed {
                        message: "campaign box missing at dispatch".to_string(),
                    });
                    continue;
                }
            };
            let slice = e.slices;
            e.slices += 1;
            e.state = EntryState::Running;
            st.metrics.observe_duration(
                "sched.queue_wait",
                now.saturating_duration_since(e.ready_at),
            );
            let ctl = CampaignCtl {
                // Linked under the drain token (when configured) so a
                // graceful shutdown reaches every in-flight slice.
                cancel: match &self.cfg.drain {
                    Some(master) => CancelToken::child_of(master),
                    None => CancelToken::new(),
                },
                deadline: e.spec.deadline,
            };
            let mut shed_issued = false;
            let mut stall = None;
            if let Some(f) = &self.cfg.faults {
                if f.sheds_campaign(e.id, slice) {
                    ctl.cancel.cancel_for(CancelReason::Shed);
                    shed_issued = true;
                } else if f.preempts_campaign(e.id, slice) {
                    ctl.cancel.cancel_for(CancelReason::Preempt);
                }
                if f.stalls_worker(e.id) {
                    stall = Some(Duration::from_millis(self.cfg.stall_ms));
                } else if let Some(ms) = f.slow_worker_ms(e.id) {
                    stall = Some(Duration::from_millis(ms as u64));
                }
            }
            return Pick::Dispatch(Dispatch {
                idx,
                campaign,
                ctl,
                shed_issued,
                stall,
            });
        }
        // Nothing dispatchable right now: retries pending, breakers
        // cooling down, or peers still running. Bounded wait, re-scan.
        let timeout = earliest_retry
            .map(|t| {
                t.saturating_duration_since(now)
                    .max(Duration::from_millis(1))
            })
            .unwrap_or(Duration::from_millis(5))
            .min(Duration::from_millis(50));
        Pick::Wait(timeout)
    }

    /// Execute one slice outside the lock. Panics escaping the campaign
    /// (outside any supervised region it manages internally) are caught
    /// and fed to the retry ladder like any retryable failure.
    fn execute(d: &mut Dispatch) -> Result<CampaignStep, mde_numeric::CampaignError> {
        if let Some(pause) = d.stall {
            std::thread::sleep(pause);
        }
        let campaign = &mut d.campaign;
        let ctl = &d.ctl;
        match mde_numeric::resilience::catch_panic(move || campaign.run(ctl)) {
            Ok(step) => step,
            Err(msg) => Err(mde_numeric::CampaignError::retryable(format!(
                "campaign panicked outside its supervised region: {msg}"
            ))),
        }
    }

    /// Settle a finished slice back into the pool state.
    fn settle(
        &self,
        st: &mut PoolState,
        d: Dispatch,
        outcome: Result<CampaignStep, mde_numeric::CampaignError>,
    ) {
        let e = &mut st.entries[d.idx];
        let tenant = e.spec.tenant.clone();
        // The breaker was created at dispatch, but settle must not trust
        // that invariant with a panic: a missing breaker only skips its
        // own bookkeeping, never poisons the pool.
        let breaker = st.breakers.get_mut(&e.spec.resource);
        let draining = self.cfg.drain.as_ref().is_some_and(|t| t.is_cancelled());
        match outcome {
            Ok(CampaignStep::Done(out)) => {
                if let Some(b) = breaker {
                    b.on_success();
                }
                e.state = EntryState::Terminal(CampaignStatus::Completed(out));
                st.metrics.inc("sched.completed");
                st.metrics.inc(&format!("sched.tenant.{tenant}.completed"));
            }
            Ok(CampaignStep::Boundary { resumable }) => {
                if d.shed_issued {
                    e.campaign = Some(d.campaign);
                    e.state = EntryState::Terminal(CampaignStatus::Preempted { resumable });
                    st.metrics.inc("sched.shed");
                    st.metrics.inc(&format!("sched.tenant.{tenant}.shed"));
                } else if draining {
                    // Drain-induced boundary: terminal, box retained for
                    // reclaim/resume — requeueing would spin against the
                    // cancelled drain token forever.
                    e.campaign = Some(d.campaign);
                    e.state = EntryState::Terminal(CampaignStatus::Preempted { resumable });
                    st.metrics.inc("sched.drained");
                } else {
                    e.campaign = Some(d.campaign);
                    e.preemptions += 1;
                    e.ready_at = Instant::now();
                    e.state = EntryState::Waiting { not_before: None };
                    st.metrics.inc("sched.preempted");
                }
            }
            Err(err) => {
                if breaker.is_some_and(|b| b.on_failure()) {
                    st.metrics.inc("sched.breaker_trips");
                }
                e.attempts += 1;
                if err.is_retryable() && e.attempts < self.cfg.max_attempts {
                    let delay = e.backoff.delay(e.attempts);
                    e.retry_schedule.push(delay);
                    e.campaign = Some(d.campaign);
                    e.ready_at = Instant::now();
                    e.state = EntryState::Waiting {
                        not_before: Some(Instant::now() + delay),
                    };
                    st.metrics.inc("sched.retries");
                } else {
                    e.campaign = None;
                    drop(d.campaign);
                    e.state = EntryState::Terminal(CampaignStatus::Failed {
                        message: err.message,
                    });
                    st.metrics.inc("sched.failed");
                    st.metrics.inc(&format!("sched.tenant.{tenant}.failed"));
                }
            }
        }
    }
}

enum Pick {
    Dispatch(Dispatch),
    Wait(Duration),
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{CampaignError, RunReport};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn fast_cfg() -> SchedConfig {
        SchedConfig {
            backoff: BackoffConfig {
                base: Duration::from_millis(1),
                cap: Duration::from_millis(4),
                jitter: 0.0,
            },
            ..SchedConfig::default()
        }
    }

    fn done(value: f64) -> CampaignStep {
        CampaignStep::Done(CampaignOutput {
            value: Some(value),
            report: RunReport::new(),
        })
    }

    /// Completes immediately unless its control block is cancelled, in
    /// which case it stops at a resumable boundary.
    struct Pausable {
        value: f64,
        slices: Arc<AtomicU32>,
    }

    impl Pausable {
        fn new(value: f64) -> (Self, Arc<AtomicU32>) {
            let slices = Arc::new(AtomicU32::new(0));
            (
                Pausable {
                    value,
                    slices: slices.clone(),
                },
                slices,
            )
        }
    }

    impl Campaign for Pausable {
        fn run(&mut self, ctl: &CampaignCtl) -> Result<CampaignStep, CampaignError> {
            self.slices.fetch_add(1, Ordering::SeqCst);
            if ctl.cancel.is_cancelled() {
                return Ok(CampaignStep::Boundary { resumable: true });
            }
            Ok(done(self.value))
        }
    }

    /// Fails retryably `failures` times, then completes.
    struct Flaky {
        failures: u32,
    }

    impl Campaign for Flaky {
        fn run(&mut self, _ctl: &CampaignCtl) -> Result<CampaignStep, CampaignError> {
            if self.failures > 0 {
                self.failures -= 1;
                return Err(CampaignError::retryable("transient sim failure"));
            }
            Ok(done(1.0))
        }
    }

    struct Panicky {
        panics: u32,
    }

    impl Campaign for Panicky {
        fn run(&mut self, _ctl: &CampaignCtl) -> Result<CampaignStep, CampaignError> {
            if self.panics > 0 {
                self.panics -= 1;
                panic!("worker blew up");
            }
            Ok(done(2.0))
        }
    }

    #[test]
    fn admission_bounds_tenant_queue() {
        let mut s = Scheduler::new(SchedConfig {
            queue_capacity: 2,
            ..fast_cfg()
        });
        for i in 0..2 {
            let (c, _) = Pausable::new(i as f64);
            s.submit(CampaignSpec::new("acme", format!("c{i}")), Box::new(c))
                .expect("under capacity");
        }
        let (c, _) = Pausable::new(9.0);
        let err = s
            .submit(CampaignSpec::new("acme", "c2"), Box::new(c))
            .expect_err("over capacity");
        assert!(matches!(
            err,
            Overloaded::QueueFull {
                depth: 2,
                capacity: 2,
                ..
            }
        ));
        // A different tenant still has room.
        let (c, _) = Pausable::new(3.0);
        s.submit(CampaignSpec::new("globex", "g0"), Box::new(c))
            .expect("separate tenant queue");
    }

    #[test]
    fn admission_rejects_on_pool_pressure_and_recovers() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // A stand-in for `BufferPool::pressure()`: occupancy in [0, 1]
        // that the test drives up and back down.
        let occupancy = Arc::new(AtomicU64::new(90));
        let probe_view = Arc::clone(&occupancy);
        let mut s = Scheduler::new(SchedConfig {
            pressure_probe: Some(PressureProbe::new(move || {
                probe_view.load(Ordering::Relaxed) as f64 / 100.0
            })),
            pressure_limit: 0.75,
            ..fast_cfg()
        });
        let (c, _) = Pausable::new(1.0);
        let err = s
            .submit(CampaignSpec::new("acme", "hot"), Box::new(c))
            .expect_err("pool too full");
        assert!(matches!(
            err,
            Overloaded::PoolPressure {
                pressure_pct: 90,
                limit_pct: 75,
            }
        ));
        assert!(err.to_string().contains("90%"), "{err}");
        // Overload is a state of the system, not the request: once the
        // pool drains the same submission is admitted.
        occupancy.store(40, Ordering::Relaxed);
        let (c, _) = Pausable::new(1.0);
        s.submit(CampaignSpec::new("acme", "hot"), Box::new(c))
            .expect("admitted after pressure drained");
        let run = s.run(1);
        assert_eq!(run.metrics.counter("sched.pool_pressure_rejected"), 1);
        assert_eq!(run.metrics.counter("sched.admitted"), 1);
    }

    #[test]
    fn admission_sheds_lower_priority_victim() {
        let mut s = Scheduler::new(SchedConfig {
            queue_capacity: 1,
            ..fast_cfg()
        });
        let (c, _) = Pausable::new(0.0);
        let victim_id = s
            .submit(
                CampaignSpec::new("acme", "cheap").with_priority(Priority::BestEffort),
                Box::new(c),
            )
            .unwrap();
        let (c, _) = Pausable::new(1.0);
        let vip_id = s
            .submit(
                CampaignSpec::new("acme", "urgent").with_priority(Priority::Interactive),
                Box::new(c),
            )
            .expect("admitted by shedding the best-effort victim");
        let run = s.run(1);
        let victim = run.report(victim_id).unwrap();
        assert!(matches!(
            victim.status,
            CampaignStatus::Rejected(Overloaded::Shed { .. })
        ));
        let vip = run.report(vip_id).unwrap();
        assert!(matches!(vip.status, CampaignStatus::Completed(_)));
        assert_eq!(run.metrics.counter("sched.shed"), 1);
        assert_eq!(run.metrics.counter("sched.tenant.acme.shed"), 1);
    }

    #[test]
    fn admission_enforces_cost_budget() {
        let mut s = Scheduler::new(SchedConfig {
            cost_budget: 10,
            ..fast_cfg()
        });
        let (c, _) = Pausable::new(0.0);
        s.submit(CampaignSpec::new("t", "big").with_cost(8), Box::new(c))
            .unwrap();
        let (c, _) = Pausable::new(0.0);
        let err = s
            .submit(CampaignSpec::new("t", "too-big").with_cost(3), Box::new(c))
            .expect_err("budget breach");
        assert!(matches!(
            err,
            Overloaded::CostBudget {
                cost: 3,
                in_flight: 8,
                budget: 10
            }
        ));
    }

    #[test]
    fn injected_queue_full_rejects_regardless_of_depth() {
        let mut s = Scheduler::new(SchedConfig {
            faults: Some(FaultPlan::new().queue_full_at(0)),
            ..fast_cfg()
        });
        let (c, _) = Pausable::new(0.0);
        let err = s
            .submit(CampaignSpec::new("t", "c"), Box::new(c))
            .expect_err("fault-injected rejection");
        assert!(matches!(err, Overloaded::QueueFull { .. }));
        // The next submission (no fault) is admitted.
        let (c, _) = Pausable::new(0.0);
        s.submit(CampaignSpec::new("t", "c2"), Box::new(c)).unwrap();
    }

    #[test]
    fn retry_ladder_is_deterministic_and_bounded() {
        let mut s = Scheduler::new(SchedConfig {
            max_attempts: 4,
            ..fast_cfg()
        });
        let spec = CampaignSpec::new("t", "flaky");
        let fp = spec.fingerprint;
        let id = s.submit(spec, Box::new(Flaky { failures: 2 })).unwrap();
        let run = s.run(1);
        let r = run.report(id).unwrap();
        assert!(matches!(r.status, CampaignStatus::Completed(_)));
        assert_eq!(r.attempts, 2);
        let ladder = Backoff::new(
            BackoffConfig {
                base: Duration::from_millis(1),
                cap: Duration::from_millis(4),
                jitter: 0.0,
            },
            fp,
        );
        assert_eq!(r.retry_schedule, vec![ladder.delay(1), ladder.delay(2)]);
        assert_eq!(run.metrics.counter("sched.retries"), 2);
    }

    #[test]
    fn retry_ladder_exhaustion_fails_campaign() {
        let mut s = Scheduler::new(SchedConfig {
            max_attempts: 2,
            ..fast_cfg()
        });
        let id = s
            .submit(
                CampaignSpec::new("t", "doomed"),
                Box::new(Flaky { failures: 10 }),
            )
            .unwrap();
        let run = s.run(1);
        let r = run.report(id).unwrap();
        assert!(matches!(r.status, CampaignStatus::Failed { .. }));
        assert_eq!(r.attempts, 2);
        assert_eq!(r.retry_schedule.len(), 1, "one retry before exhaustion");
        assert_eq!(run.metrics.counter("sched.failed"), 1);
    }

    #[test]
    fn fatal_error_skips_the_ladder() {
        struct Broken;
        impl Campaign for Broken {
            fn run(&mut self, _ctl: &CampaignCtl) -> Result<CampaignStep, CampaignError> {
                Err(CampaignError::fatal("bad configuration"))
            }
        }
        let mut s = Scheduler::new(fast_cfg());
        let id = s
            .submit(CampaignSpec::new("t", "broken"), Box::new(Broken))
            .unwrap();
        let run = s.run(1);
        let r = run.report(id).unwrap();
        assert!(matches!(r.status, CampaignStatus::Failed { .. }));
        assert_eq!(r.retry_schedule.len(), 0);
        assert_eq!(run.metrics.counter("sched.retries"), 0);
    }

    #[test]
    fn escaped_panic_climbs_the_ladder() {
        let mut s = Scheduler::new(fast_cfg());
        let id = s
            .submit(
                CampaignSpec::new("t", "panicky"),
                Box::new(Panicky { panics: 1 }),
            )
            .unwrap();
        let run = s.run(1);
        let r = run.report(id).unwrap();
        assert!(matches!(r.status, CampaignStatus::Completed(_)));
        assert_eq!(r.attempts, 1);
    }

    #[test]
    fn preempt_fault_requeues_and_completes() {
        let (c, slices) = Pausable::new(5.0);
        let mut s = Scheduler::new(SchedConfig {
            faults: Some(FaultPlan::new().preempt_campaign_at(0, 0)),
            ..fast_cfg()
        });
        let id = s.submit(CampaignSpec::new("t", "c"), Box::new(c)).unwrap();
        let run = s.run(1);
        let r = run.report(id).unwrap();
        assert!(matches!(r.status, CampaignStatus::Completed(_)));
        assert_eq!(r.preemptions, 1);
        assert_eq!(r.slices, 2);
        assert_eq!(slices.load(Ordering::SeqCst), 2);
        assert_eq!(run.metrics.counter("sched.preempted"), 1);
    }

    #[test]
    fn mid_run_shed_is_terminal_and_reclaimable() {
        let (c, _) = Pausable::new(5.0);
        let mut s = Scheduler::new(SchedConfig {
            faults: Some(FaultPlan::new().shed_campaign_at(0, 0)),
            ..fast_cfg()
        });
        let id = s.submit(CampaignSpec::new("t", "c"), Box::new(c)).unwrap();
        let mut run = s.run(1);
        let r = run.report(id).unwrap();
        assert!(matches!(
            r.status,
            CampaignStatus::Preempted { resumable: true }
        ));
        assert_eq!(run.metrics.counter("sched.shed"), 1);

        // The shed campaign is reclaimable and finishes on resubmission.
        let reclaimed = run.reclaim(id).expect("resumable campaign box");
        let mut s2 = Scheduler::new(fast_cfg());
        let id2 = s2.submit(CampaignSpec::new("t", "c"), reclaimed).unwrap();
        let run2 = s2.run(1);
        assert!(matches!(
            run2.report(id2).unwrap().status,
            CampaignStatus::Completed(_)
        ));
    }

    #[test]
    fn pressure_shedding_drops_lowest_priority_first() {
        let mut s = Scheduler::new(SchedConfig {
            pressure_depth: 2,
            ..fast_cfg()
        });
        let (c, _) = Pausable::new(0.0);
        let be = s
            .submit(
                CampaignSpec::new("t", "be").with_priority(Priority::BestEffort),
                Box::new(c),
            )
            .unwrap();
        let mut others = Vec::new();
        for i in 0..2 {
            let (c, _) = Pausable::new(0.0);
            others.push(
                s.submit(CampaignSpec::new("t", format!("b{i}")), Box::new(c))
                    .unwrap(),
            );
        }
        let run = s.run(2);
        assert!(matches!(
            run.report(be).unwrap().status,
            CampaignStatus::Rejected(Overloaded::Shed { .. })
        ));
        for id in others {
            assert!(matches!(
                run.report(id).unwrap().status,
                CampaignStatus::Completed(_)
            ));
        }
    }

    #[test]
    fn expired_deadline_rejects_before_dispatch() {
        let mut s = Scheduler::new(fast_cfg());
        let (c, slices) = Pausable::new(0.0);
        let id = s
            .submit(
                CampaignSpec::new("t", "late").with_deadline(Deadline::after(Duration::ZERO)),
                Box::new(c),
            )
            .unwrap();
        let run = s.run(1);
        assert!(matches!(
            run.report(id).unwrap().status,
            CampaignStatus::Rejected(Overloaded::DeadlineExpired { .. })
        ));
        assert_eq!(slices.load(Ordering::SeqCst), 0, "never dispatched");
    }

    #[test]
    fn edf_orders_deadlined_work_first() {
        let order = Arc::new(Mutex::new(Vec::new()));
        struct Tracker {
            label: u32,
            order: Arc<Mutex<Vec<u32>>>,
        }
        impl Campaign for Tracker {
            fn run(&mut self, _ctl: &CampaignCtl) -> Result<CampaignStep, CampaignError> {
                self.order.lock().unwrap().push(self.label);
                Ok(CampaignStep::Done(CampaignOutput {
                    value: None,
                    report: RunReport::new(),
                }))
            }
        }
        let mut s = Scheduler::new(fast_cfg());
        // Submitted first, no deadline, highest priority.
        s.submit(
            CampaignSpec::new("t", "nodeadline").with_priority(Priority::Interactive),
            Box::new(Tracker {
                label: 0,
                order: order.clone(),
            }),
        )
        .unwrap();
        // Later deadline.
        s.submit(
            CampaignSpec::new("t", "loose")
                .with_deadline(Deadline::after(Duration::from_secs(600))),
            Box::new(Tracker {
                label: 1,
                order: order.clone(),
            }),
        )
        .unwrap();
        // Earliest deadline: dispatched first despite being submitted last.
        s.submit(
            CampaignSpec::new("t", "tight").with_deadline(Deadline::after(Duration::from_secs(60))),
            Box::new(Tracker {
                label: 2,
                order: order.clone(),
            }),
        )
        .unwrap();
        s.run(1);
        assert_eq!(*order.lock().unwrap(), vec![2, 1, 0]);
    }

    #[test]
    fn breaker_trips_on_streak_and_gates_admission() {
        let mut s = Scheduler::new(SchedConfig {
            max_attempts: 1, // every failure is terminal: three failing campaigns = a streak of 3
            breaker: BreakerConfig {
                trip_after: 3,
                cooldown: 1_000_000, // effectively never half-opens during the test
            },
            ..fast_cfg()
        });
        for i in 0..3 {
            s.submit(
                CampaignSpec::new("t", format!("f{i}")).on_resource("sim"),
                Box::new(Flaky { failures: 10 }),
            )
            .unwrap();
        }
        let run = s.run(1);
        assert_eq!(run.metrics.counter("sched.breaker_trips"), 1);
        // The tripped breaker now fast-rejects admission to that resource…
        let (c, _) = Pausable::new(0.0);
        let err = s
            .submit(
                CampaignSpec::new("t", "next").on_resource("sim"),
                Box::new(c),
            )
            .expect_err("breaker open");
        assert!(matches!(err, Overloaded::BreakerOpen { .. }));
        // …while other resources are unaffected.
        let (c, _) = Pausable::new(0.0);
        s.submit(CampaignSpec::new("t", "ok").on_resource("gp"), Box::new(c))
            .unwrap();
    }

    #[test]
    fn deterministic_half_is_thread_count_invariant() {
        let run_once = |threads: usize| {
            let mut s = Scheduler::new(SchedConfig {
                max_attempts: 4,
                faults: Some(
                    FaultPlan::new()
                        .preempt_campaign_at(1, 0)
                        .shed_campaign_at(2, 0),
                ),
                ..fast_cfg()
            });
            let mut ids = Vec::new();
            for i in 0..6u32 {
                let spec = CampaignSpec::new(format!("t{}", i % 2), format!("c{i}"));
                let c: Box<dyn Campaign> = if i == 3 {
                    Box::new(Flaky { failures: 2 })
                } else {
                    Box::new(Pausable::new(i as f64).0)
                };
                ids.push(s.submit(spec, c).unwrap());
            }
            let run = s.run(threads);
            let counters = [
                "sched.admitted",
                "sched.completed",
                "sched.shed",
                "sched.preempted",
                "sched.retries",
                "sched.failed",
                "sched.breaker_trips",
            ]
            .iter()
            .map(|k| run.metrics.counter(k))
            .collect::<Vec<_>>();
            let shape = run
                .reports
                .iter()
                .map(|r| {
                    (
                        r.id,
                        r.attempts,
                        r.preemptions,
                        r.retry_schedule.clone(),
                        match &r.status {
                            CampaignStatus::Completed(_) => 0u8,
                            CampaignStatus::Rejected(_) => 1,
                            CampaignStatus::Preempted { .. } => 2,
                            CampaignStatus::Failed { .. } => 3,
                        },
                    )
                })
                .collect::<Vec<_>>();
            (counters, shape)
        };
        let single = run_once(1);
        assert_eq!(single, run_once(2));
        assert_eq!(single, run_once(8));
    }

    #[test]
    fn drain_token_preempts_waiting_work_resumably() {
        let drain = CancelToken::new();
        let mut s = Scheduler::new(SchedConfig {
            drain: Some(drain.clone()),
            ..fast_cfg()
        });
        let mut ids = Vec::new();
        for i in 0..3 {
            let (c, _) = Pausable::new(i as f64);
            ids.push(
                s.submit(CampaignSpec::new("acme", format!("c{i}")), Box::new(c))
                    .expect("admitted"),
            );
        }
        drain.cancel_for(CancelReason::Preempt);
        let mut run = s.run(2);
        assert_eq!(run.metrics.counter("sched.drained"), 3);
        for id in ids {
            assert!(
                matches!(
                    run.report(id).expect("report").status,
                    CampaignStatus::Preempted { resumable: true }
                ),
                "drained campaigns must be terminally preempted"
            );
            assert!(run.reclaim(id).is_some(), "box retained for resume");
        }
    }

    /// A campaign that needs several slices (boundary each time) before
    /// finishing, stopping resumably whenever its token is cancelled.
    struct Stepper {
        left: u32,
    }

    impl Campaign for Stepper {
        fn run(&mut self, ctl: &CampaignCtl) -> Result<CampaignStep, CampaignError> {
            if ctl.cancel.is_cancelled() {
                return Ok(CampaignStep::Boundary { resumable: true });
            }
            std::thread::sleep(Duration::from_millis(2));
            if self.left > 1 {
                self.left -= 1;
                return Ok(CampaignStep::Boundary { resumable: true });
            }
            Ok(done(42.0))
        }
    }

    #[test]
    fn drain_mid_run_stops_inflight_slices_at_boundaries() {
        let drain = CancelToken::new();
        let mut s = Scheduler::new(SchedConfig {
            drain: Some(drain.clone()),
            ..fast_cfg()
        });
        let id = s
            .submit(
                CampaignSpec::new("acme", "long"),
                Box::new(Stepper { left: 10_000 }),
            )
            .expect("admitted");
        let stopper = std::thread::spawn({
            let drain = drain.clone();
            move || {
                std::thread::sleep(Duration::from_millis(10));
                drain.cancel_for(CancelReason::Preempt);
            }
        });
        let mut run = s.run(2);
        stopper.join().expect("stopper thread");
        assert!(
            matches!(
                run.report(id).expect("report").status,
                CampaignStatus::Preempted { resumable: true }
            ),
            "in-flight campaign must stop at a boundary under drain: {:?}",
            run.report(id)
        );
        assert!(run.reclaim(id).is_some());
    }

    #[test]
    fn detach_for_drain_splits_admission_from_draining() {
        let mut s = Scheduler::new(SchedConfig {
            cost_budget: 10,
            ..fast_cfg()
        });
        let (c0, _) = Pausable::new(1.0);
        let (c1, _) = Pausable::new(2.0);
        let a = s
            .submit(CampaignSpec::new("acme", "a").with_cost(4), Box::new(c0))
            .expect("admitted");
        let b = s
            .submit(CampaignSpec::new("acme", "b").with_cost(4), Box::new(c1))
            .expect("admitted");

        let mut batch = s.detach_for_drain();
        let batch_cost = batch.admitted_cost();
        assert_eq!(batch_cost, 8);
        assert_eq!(s.queued(), 0, "waiting entries moved to the detachment");

        // The front keeps charging the detached batch against its
        // budget: a 4-cost submission must still bounce while the batch
        // is in flight.
        let (c2, _) = Pausable::new(3.0);
        let err = s
            .submit(CampaignSpec::new("acme", "c").with_cost(4), Box::new(c2))
            .expect_err("budget still holds the in-flight batch");
        assert!(matches!(err, Overloaded::CostBudget { .. }));

        let run = batch.run(2);
        assert!(matches!(
            run.report(a).expect("a").status,
            CampaignStatus::Completed(_)
        ));
        assert!(matches!(
            run.report(b).expect("b").status,
            CampaignStatus::Completed(_)
        ));

        s.reabsorb(batch, batch_cost);
        let (c3, _) = Pausable::new(4.0);
        let c = s
            .submit(CampaignSpec::new("acme", "c").with_cost(4), Box::new(c3))
            .expect("budget released after reabsorb");
        assert!(c > b, "submission ids stay unique across the pair");
    }
}
