//! Composite models: the DAG, mismatch detection, auto-harmonization, and
//! Monte Carlo execution.
//!
//! The Splash workflow reproduced here: compose registered models by
//! drawing edges; the platform *detects* data mismatches from metadata
//! (schema/channel discrepancies and time-granularity discrepancies),
//! *compiles* the needed transformations (schema mappings from
//! `mde-harmonize::schema_map`, time alignment from
//! `mde-harmonize::align`), and *executes* them at every Monte Carlo
//! repetition.

use crate::registry::{Registry, SimModel};
use crate::CoreError;
use mde_harmonize::align::auto_align;
use mde_harmonize::schema_map::SchemaMapping;
use mde_harmonize::series::TimeSeries;
use mde_numeric::resilience::{
    catch_panic, retry_seed, supervise_replicate, AttemptFailure, FaultKind, ReplicateOutcome,
    RunOptions, RunReport,
};
use mde_numeric::rng::StreamFactory;
use mde_numeric::stats::Summary;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An edge: upstream node's output feeds one input port of a downstream
/// node, optionally through an explicit schema mapping.
#[derive(Clone)]
pub struct Edge {
    /// Upstream node index.
    pub from: usize,
    /// Downstream node index.
    pub to: usize,
    /// Downstream input-port index.
    pub to_port: usize,
    /// Explicit schema mapping; `None` requests automatic resolution
    /// (identity projection onto the target channels).
    pub mapping: Option<SchemaMapping>,
}

/// A composite model: registered model names plus data-exchange edges.
#[derive(Clone, Default)]
pub struct CompositeModel {
    nodes: Vec<String>,
    edges: Vec<Edge>,
}

/// A detected data mismatch on an edge (the registration-time diagnostics
/// Splash surfaces in its GUI).
#[derive(Debug, Clone, PartialEq)]
pub enum Mismatch {
    /// The downstream port needs a channel the upstream output lacks.
    MissingChannel {
        /// Edge index.
        edge: usize,
        /// The missing channel name.
        channel: String,
    },
    /// Tick granularities differ; resolvable by time alignment.
    TickMismatch {
        /// Edge index.
        edge: usize,
        /// Upstream tick.
        source_tick: f64,
        /// Downstream tick.
        target_tick: f64,
    },
}

impl CompositeModel {
    /// Start an empty composite.
    pub fn new() -> Self {
        CompositeModel::default()
    }

    /// Add a model node by registry name; returns its node index.
    pub fn add_model(&mut self, name: impl Into<String>) -> usize {
        self.nodes.push(name.into());
        self.nodes.len() - 1
    }

    /// Connect `from`'s output to input port `to_port` of `to`.
    pub fn connect(&mut self, from: usize, to: usize, to_port: usize) -> &mut Self {
        self.edges.push(Edge {
            from,
            to,
            to_port,
            mapping: None,
        });
        self
    }

    /// Connect with an explicit schema mapping.
    pub fn connect_mapped(
        &mut self,
        from: usize,
        to: usize,
        to_port: usize,
        mapping: SchemaMapping,
    ) -> &mut Self {
        self.edges.push(Edge {
            from,
            to,
            to_port,
            mapping: Some(mapping),
        });
        self
    }

    /// Node names in insertion order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Detect mismatches from registry metadata, per edge.
    pub fn detect_mismatches(&self, registry: &Registry) -> crate::Result<Vec<Mismatch>> {
        let mut out = Vec::new();
        for (i, e) in self.edges.iter().enumerate() {
            let src = registry
                .model(&self.nodes[e.from])?
                .metadata()
                .output
                .clone();
            let dst_meta = registry.model(&self.nodes[e.to])?.metadata().clone();
            let port = dst_meta.inputs.get(e.to_port).ok_or_else(|| {
                CoreError::invalid(format!(
                    "edge {i}: model `{}` has no input port {}",
                    dst_meta.name, e.to_port
                ))
            })?;
            // Channel coverage: through the explicit mapping if present,
            // else by name.
            match &e.mapping {
                Some(m) => {
                    for needed in m.required_channels() {
                        if !src.channels.iter().any(|c| c == needed) {
                            out.push(Mismatch::MissingChannel {
                                edge: i,
                                channel: needed.to_string(),
                            });
                        }
                    }
                    for target in &port.channels {
                        if !m.target_fields().contains(&target.as_str()) {
                            out.push(Mismatch::MissingChannel {
                                edge: i,
                                channel: target.clone(),
                            });
                        }
                    }
                }
                None => {
                    for needed in &port.channels {
                        if !src.channels.iter().any(|c| c == needed) {
                            out.push(Mismatch::MissingChannel {
                                edge: i,
                                channel: needed.clone(),
                            });
                        }
                    }
                }
            }
            if (src.tick - port.tick).abs() > 1e-9 * port.tick.max(1.0) {
                out.push(Mismatch::TickMismatch {
                    edge: i,
                    source_tick: src.tick,
                    target_tick: port.tick,
                });
            }
        }
        Ok(out)
    }

    /// Topological order of nodes; errors on cycles.
    fn topo_order(&self) -> crate::Result<Vec<usize>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if e.from >= n || e.to >= n {
                return Err(CoreError::invalid(format!(
                    "edge references missing node ({} -> {})",
                    e.from, e.to
                )));
            }
            indeg[e.to] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(i);
            for e in &self.edges {
                if e.from == i {
                    indeg[e.to] -= 1;
                    if indeg[e.to] == 0 {
                        queue.push(e.to);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(CoreError::invalid("composite contains a cycle"));
        }
        Ok(order)
    }

    /// Validate against the registry and compile into an executable plan.
    ///
    /// Tick mismatches are resolved automatically by time alignment (they
    /// remain *reported* by [`CompositeModel::detect_mismatches`], matching
    /// Splash's "detect, then compile transformations" flow); missing
    /// channels are fatal unless an explicit mapping supplies them.
    pub fn plan<'r>(&self, registry: &'r Registry) -> crate::Result<ExecutablePlan<'r>> {
        // Structural validation first: cycles and dangling edges are more
        // fundamental than data mismatches.
        let order = self.topo_order()?;
        let unresolved: Vec<String> = self
            .detect_mismatches(registry)?
            .into_iter()
            .filter_map(|m| match m {
                Mismatch::MissingChannel { edge, channel } => {
                    Some(format!("edge {edge}: missing channel `{channel}`"))
                }
                Mismatch::TickMismatch { .. } => None, // auto-resolved
            })
            .collect();
        if !unresolved.is_empty() {
            return Err(CoreError::UnresolvedMismatch {
                mismatches: unresolved,
            });
        }
        let models: Vec<&Arc<dyn SimModel>> = self
            .nodes
            .iter()
            .map(|n| registry.model(n))
            .collect::<crate::Result<_>>()?;
        // Exactly one sink defines the composite output.
        let sinks: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.edges.iter().all(|e| e.from != i))
            .collect();
        if sinks.len() != 1 {
            return Err(CoreError::invalid(format!(
                "composite must have exactly one sink, found {}",
                sinks.len()
            )));
        }
        Ok(ExecutablePlan {
            composite: self.clone(),
            models,
            order,
            sink: sinks[0],
        })
    }
}

/// Parameter assignment: model name → parameter values (defaults apply for
/// absent models).
pub type ParamAssignment = BTreeMap<String, Vec<f64>>;

/// A validated, executable composite.
pub struct ExecutablePlan<'r> {
    composite: CompositeModel,
    models: Vec<&'r Arc<dyn SimModel>>,
    order: Vec<usize>,
    sink: usize,
}

impl ExecutablePlan<'_> {
    /// The sink node index (composite output).
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Execute one Monte Carlo repetition: run models in topological
    /// order, harmonizing data along every edge (schema mapping + time
    /// alignment) — "data transformations must be performed at every Monte
    /// Carlo repetition".
    pub fn run_once(
        &self,
        params: &ParamAssignment,
        rep_streams: &StreamFactory,
    ) -> crate::Result<TimeSeries> {
        let mut outputs: Vec<Option<TimeSeries>> = vec![None; self.models.len()];
        for &node in &self.order {
            let model = self.models[node];
            let meta = model.metadata();
            // Gather inputs per port.
            let mut inputs: Vec<TimeSeries> = Vec::with_capacity(meta.inputs.len());
            for (port_idx, port) in meta.inputs.iter().enumerate() {
                let edge = self
                    .composite
                    .edges
                    .iter()
                    .find(|e| e.to == node && e.to_port == port_idx)
                    .ok_or_else(|| {
                        CoreError::invalid(format!(
                            "input port `{}` of `{}` is unconnected",
                            port.name, meta.name
                        ))
                    })?;
                let upstream = outputs[edge.from]
                    .as_ref()
                    .expect("topological order guarantees upstream ran");

                // 1. Schema transformation.
                let mapped = match &edge.mapping {
                    Some(m) => m.apply(upstream)?,
                    None => {
                        // Identity projection onto the port's channels.
                        let mut m = SchemaMapping::new();
                        for c in &port.channels {
                            m = m.field(
                                c.clone(),
                                mde_harmonize::schema_map::FieldSource::Copy { channel: c.clone() },
                            );
                        }
                        m.apply(upstream)?
                    }
                };

                // 2. Time alignment onto the port's tick grid over the
                // upstream span.
                let aligned = if let (Some(start), Some(end)) = (mapped.start(), mapped.end()) {
                    let need_align = mapped
                        .typical_spacing()
                        .map(|s| (s - port.tick).abs() > 1e-9 * port.tick.max(1.0))
                        .unwrap_or(false);
                    if need_align {
                        let mut t = start + port.tick;
                        let mut targets = Vec::new();
                        while t <= end + 1e-9 {
                            targets.push(t);
                            t += port.tick;
                        }
                        if targets.is_empty() {
                            targets.push(end);
                        }
                        auto_align(&mapped, &targets, 1)?
                    } else {
                        mapped
                    }
                } else {
                    mapped
                };
                inputs.push(aligned);
            }

            let param_values: Vec<f64> = params
                .get(&meta.name)
                .cloned()
                .unwrap_or_else(|| meta.params.iter().map(|p| p.default).collect());
            let mut rng = rep_streams.stream(node as u64);
            outputs[node] = Some(model.run(&inputs, &param_values, &mut rng)?);
        }
        Ok(outputs[self.sink].take().expect("sink ran"))
    }

    /// Run `reps` Monte Carlo repetitions, reducing each output series to a
    /// scalar with `scalarize`.
    ///
    /// Equivalent to [`ExecutablePlan::run_monte_carlo_supervised`] under
    /// [`mde_numeric::RunPolicy::FailFast`]: the first failing repetition
    /// aborts with a typed error (a panicking model surfaces as
    /// [`CoreError::ReplicateFailed`], never as a panic in the caller).
    pub fn run_monte_carlo(
        &self,
        params: &ParamAssignment,
        reps: usize,
        seed: u64,
        scalarize: impl Fn(&TimeSeries) -> f64,
    ) -> crate::Result<McOutput> {
        Ok(self
            .run_monte_carlo_supervised(params, reps, seed, scalarize, &RunOptions::default())?
            .0)
    }

    /// Run `reps` supervised Monte Carlo repetitions under a
    /// [`mde_numeric::RunPolicy`].
    ///
    /// Each repetition — the full topological sweep over the composite,
    /// harmonization included — executes inside `catch_unwind`. Panics,
    /// typed errors, and non-finite scalarized samples are classified and
    /// handled per the policy: fail-fast aborts with the repetition's
    /// typed error, retry re-runs the repetition on a fresh deterministic
    /// sub-seed derived from `(seed, repetition, attempt)`, and
    /// best-effort drops it and estimates from the survivors (recording
    /// the damage in the returned [`RunReport`]). Fatal errors —
    /// structural composite problems that would fail identically on every
    /// attempt — abort under every policy.
    pub fn run_monte_carlo_supervised(
        &self,
        params: &ParamAssignment,
        reps: usize,
        seed: u64,
        scalarize: impl Fn(&TimeSeries) -> f64,
        opts: &RunOptions,
    ) -> crate::Result<(McOutput, RunReport)> {
        let factory = StreamFactory::new(seed);
        let mut samples = Vec::with_capacity(reps);
        let mut report = RunReport::new();
        for r in 0..reps {
            let outcome = supervise_replicate(r as u64, &opts.policy, |a| {
                // Attempt 0 keeps the legacy stream layout; reseeding
                // retries never replay the failing stream.
                let rep_streams = if a == 0 || !opts.policy.reseeds() {
                    factory.child(r as u64)
                } else {
                    StreamFactory::new(retry_seed(seed, r as u64, a))
                };
                let injected = opts.fault(r as u64, a);
                if injected == Some(FaultKind::Error) {
                    return Err(AttemptFailure::from_error(CoreError::Numeric(
                        mde_numeric::NumericError::NoConvergence {
                            context: "injected fault",
                            iterations: 0,
                        },
                    )));
                }
                let run = catch_panic(|| -> crate::Result<f64> {
                    if injected == Some(FaultKind::Panic) {
                        panic!("injected fault: panic in repetition {r} attempt {a}");
                    }
                    let out = self.run_once(params, &rep_streams)?;
                    Ok(if injected == Some(FaultKind::Nan) {
                        f64::NAN
                    } else {
                        scalarize(&out)
                    })
                });
                match run {
                    Err(panic_msg) => Err(AttemptFailure::from_panic(panic_msg)),
                    Ok(Err(e)) => Err(AttemptFailure::from_error(e)),
                    Ok(Ok(v)) if !v.is_finite() => Err(AttemptFailure::non_finite(v)),
                    Ok(Ok(v)) => Ok(v),
                }
            });
            report.absorb(&outcome);
            match outcome {
                ReplicateOutcome::Success { value, .. } => samples.push(value),
                ReplicateOutcome::Dropped { .. } => {}
                ReplicateOutcome::Abort { error, failures } => {
                    return Err(error.unwrap_or_else(|| match failures.last() {
                        Some(f) => CoreError::ReplicateFailed {
                            replicate: f.replicate,
                            attempt: f.attempt,
                            message: f.message.clone(),
                        },
                        None => CoreError::invalid("repetition aborted without a failure record"),
                    }));
                }
            }
        }
        report.normalize();
        let required = opts.policy.required_successes(reps);
        if report.succeeded < required {
            return Err(CoreError::TooManyFailures {
                succeeded: report.succeeded,
                attempted: report.attempted,
                required,
            });
        }
        let mut summary = Summary::new();
        for &v in &samples {
            summary.push(v);
        }
        Ok((McOutput { samples, summary }, report))
    }
}

/// Monte Carlo output of a composite run.
#[derive(Debug, Clone, PartialEq)]
pub struct McOutput {
    /// Per-repetition scalar outputs.
    pub samples: Vec<f64>,
    /// Streaming summary of the samples.
    pub summary: Summary,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::testutil::{demand_model, revenue_model};
    use mde_numeric::resilience::RunPolicy;

    fn registry() -> Registry {
        let mut reg = Registry::new();
        reg.register_model(demand_model());
        reg.register_model(revenue_model());
        reg
    }

    fn chain() -> CompositeModel {
        let mut c = CompositeModel::new();
        let d = c.add_model("demand");
        let r = c.add_model("revenue");
        c.connect(d, r, 0);
        c
    }

    #[test]
    fn detects_tick_mismatch() {
        let reg = registry();
        let mismatches = chain().detect_mismatches(&reg).unwrap();
        assert_eq!(mismatches.len(), 1);
        assert!(matches!(
            mismatches[0],
            Mismatch::TickMismatch {
                source_tick,
                target_tick,
                ..
            } if source_tick == 1.0 && target_tick == 7.0
        ));
    }

    #[test]
    fn detects_missing_channels() {
        let reg = registry();
        let mut c = CompositeModel::new();
        // Revenue feeding revenue: its output channel `revenue` does not
        // cover the `demand` input channel.
        let r1 = c.add_model("revenue");
        let r2 = c.add_model("revenue");
        c.connect(r1, r2, 0);
        let mismatches = c.detect_mismatches(&reg).unwrap();
        assert!(mismatches.iter().any(|m| matches!(
            m,
            Mismatch::MissingChannel { channel, .. } if channel == "demand"
        )));
        assert!(matches!(
            c.plan(&reg),
            Err(CoreError::UnresolvedMismatch { .. })
        ));
    }

    #[test]
    fn explicit_mapping_resolves_channel_mismatch() {
        use mde_harmonize::schema_map::FieldSource;
        let reg = registry();
        let mut c = CompositeModel::new();
        let r1 = c.add_model("revenue");
        let r2 = c.add_model("revenue");
        // Treat upstream revenue as demand (a unit reinterpretation).
        c.connect_mapped(
            r1,
            r2,
            0,
            SchemaMapping::new().field(
                "demand",
                FieldSource::Copy {
                    channel: "revenue".into(),
                },
            ),
        );
        assert!(c
            .detect_mismatches(&reg)
            .unwrap()
            .iter()
            .all(|m| !matches!(m, Mismatch::MissingChannel { .. })));
        // Still fails planning for a different reason? No: r1 has an
        // unconnected input, caught at run time — but planning succeeds
        // structurally only if exactly one sink exists; r1's input is
        // unconnected so run_once errors.
        let plan = c.plan(&reg).unwrap();
        let params = ParamAssignment::new();
        assert!(plan.run_once(&params, &StreamFactory::new(1)).is_err());
    }

    #[test]
    fn executes_chain_with_auto_harmonization() {
        let reg = registry();
        let plan = chain().plan(&reg).unwrap();
        let params = ParamAssignment::new(); // defaults: base 100, noise 5, price 2
        let out = plan.run_once(&params, &StreamFactory::new(42)).unwrap();
        // Weekly revenue over a 28-day horizon (days 0..=27): weekly ticks
        // at 7, 14, 21, values near price × mean daily demand = 2 × 100.
        assert_eq!(out.channels(), &["revenue"]);
        assert_eq!(out.len(), 3);
        assert_eq!(out.times(), &[7.0, 14.0, 21.0]);
        for v in out.channel("revenue").unwrap() {
            assert!((150.0..250.0).contains(&v), "weekly revenue {v}");
        }
    }

    #[test]
    fn monte_carlo_over_composite() {
        let reg = registry();
        let plan = chain().plan(&reg).unwrap();
        let mut params = ParamAssignment::new();
        params.insert("demand".into(), vec![100.0, 5.0]);
        params.insert("revenue".into(), vec![2.0]);
        let mc = plan
            .run_monte_carlo(&params, 100, 7, |ts| {
                let v = ts.channel("revenue").expect("revenue channel");
                v.iter().sum::<f64>() / v.len() as f64
            })
            .unwrap();
        assert_eq!(mc.samples.len(), 100);
        // E[mean weekly revenue] = 200; SE ≈ 2·(5/√7)/√100·... loose band.
        assert!(
            (mc.summary.mean() - 200.0).abs() < 2.0,
            "mean {}",
            mc.summary.mean()
        );
        assert!(mc.summary.sample_variance() > 0.0);
    }

    #[test]
    fn supervised_composite_run_retries_and_reports() {
        use mde_numeric::resilience::FaultPlan;
        let reg = registry();
        let plan = chain().plan(&reg).unwrap();
        let params = ParamAssignment::new();
        let mean_rev = |ts: &TimeSeries| {
            let v = ts.channel("revenue").expect("revenue channel");
            v.iter().sum::<f64>() / v.len() as f64
        };

        // Injected panic + NaN under Retry: all repetitions recover, the
        // ledger records both failures, unfaulted repetitions are
        // untouched relative to the unsupervised run.
        let opts = RunOptions::policy(RunPolicy::Retry {
            max_attempts: 2,
            reseed: true,
        })
        .with_faults(FaultPlan::new().fail_on(4, 0, FaultKind::Panic).fail_on(
            9,
            0,
            FaultKind::Nan,
        ));
        let (mc, report) = plan
            .run_monte_carlo_supervised(&params, 20, 7, mean_rev, &opts)
            .unwrap();
        assert_eq!(mc.samples.len(), 20);
        assert_eq!(report.retried, 2);
        assert_eq!(report.dropped, 0);
        let clean = plan.run_monte_carlo(&params, 20, 7, mean_rev).unwrap();
        for (i, (a, b)) in clean.samples.iter().zip(&mc.samples).enumerate() {
            if i == 4 || i == 9 {
                assert_ne!(a, b, "retried repetition {i} uses a fresh sub-seed");
            } else {
                assert_eq!(a, b, "unfaulted repetition {i} is bit-identical");
            }
        }

        // BestEffort drops the faulted repetition and flags the CI.
        let policy = RunPolicy::BestEffort { min_fraction: 0.9 };
        let fault_plan = FaultPlan::new().fail_on(3, 0, FaultKind::Panic);
        let opts = RunOptions::policy(policy).with_faults(fault_plan.clone());
        let (mc, report) = plan
            .run_monte_carlo_supervised(&params, 20, 7, mean_rev, &opts)
            .unwrap();
        assert_eq!(mc.samples.len(), 19);
        assert!(report.ci_widened);
        assert_eq!(
            report.failure_keys(),
            fault_plan.expected_failure_keys(&policy)
        );
    }

    #[test]
    fn parameters_flow_to_models() {
        let reg = registry();
        let plan = chain().plan(&reg).unwrap();
        let mut params = ParamAssignment::new();
        params.insert("demand".into(), vec![50.0, 0.1]);
        params.insert("revenue".into(), vec![4.0]);
        let out = plan.run_once(&params, &StreamFactory::new(3)).unwrap();
        for v in out.channel("revenue").unwrap() {
            assert!(
                (v - 200.0).abs() < 5.0,
                "revenue {v} with base 50 × price 4"
            );
        }
    }

    #[test]
    fn reproducible_given_seed() {
        let reg = registry();
        let plan = chain().plan(&reg).unwrap();
        let params = ParamAssignment::new();
        let a = plan.run_once(&params, &StreamFactory::new(9)).unwrap();
        let b = plan.run_once(&params, &StreamFactory::new(9)).unwrap();
        assert_eq!(a, b);
        let c = plan.run_once(&params, &StreamFactory::new(10)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn cycles_rejected() {
        let reg = registry();
        let mut c = CompositeModel::new();
        let a = c.add_model("revenue");
        let b = c.add_model("revenue");
        c.connect(a, b, 0);
        c.connect(b, a, 0);
        assert!(matches!(
            c.plan(&reg),
            Err(CoreError::InvalidComposite { .. })
        ));
    }

    #[test]
    fn multiple_sinks_rejected() {
        let reg = registry();
        let mut c = CompositeModel::new();
        c.add_model("demand");
        c.add_model("demand");
        assert!(c.plan(&reg).is_err());
    }
}
