//! Error type for the ecosystem platform.

use std::fmt;

/// Errors produced by the composite-modeling platform.
#[derive(Debug)]
pub enum CoreError {
    /// A registry lookup failed.
    NotRegistered {
        /// What kind of artifact (model/dataset).
        kind: &'static str,
        /// The missing name.
        name: String,
    },
    /// A composite model is structurally invalid (cycles, dangling ports,
    /// arity problems).
    InvalidComposite {
        /// Human-readable description.
        reason: String,
    },
    /// Data mismatches were detected and could not be auto-resolved.
    UnresolvedMismatch {
        /// Human-readable descriptions of each unresolved mismatch.
        mismatches: Vec<String>,
    },
    /// An error bubbled up from the harmonization layer.
    Harmonize(mde_harmonize::HarmonizeError),
    /// An error bubbled up from the database engine.
    Mcdb(mde_mcdb::McdbError),
    /// An error bubbled up from the numeric substrate.
    Numeric(mde_numeric::NumericError),
    /// Metadata (de)serialization failed.
    Metadata(String),
    /// A supervised Monte Carlo repetition failed (panic caught by the
    /// worker, or a non-finite scalarized sample) and the run policy had
    /// no recovery left.
    ReplicateFailed {
        /// Zero-based repetition index.
        replicate: u64,
        /// Zero-based attempt on which the terminal failure occurred.
        attempt: u32,
        /// Human-readable cause.
        message: String,
    },
    /// A best-effort run dropped so many repetitions that the estimate
    /// fell below the policy's minimum success fraction.
    TooManyFailures {
        /// Repetitions that produced a sample.
        succeeded: usize,
        /// Repetitions attempted.
        attempted: usize,
        /// Minimum successes the policy required.
        required: usize,
    },
}

impl CoreError {
    /// Shorthand for [`CoreError::InvalidComposite`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        CoreError::InvalidComposite {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotRegistered { kind, name } => {
                write!(f, "{kind} `{name}` is not registered")
            }
            CoreError::InvalidComposite { reason } => {
                write!(f, "invalid composite model: {reason}")
            }
            CoreError::UnresolvedMismatch { mismatches } => {
                write!(f, "unresolved data mismatches: {}", mismatches.join("; "))
            }
            CoreError::Harmonize(e) => write!(f, "harmonization error: {e}"),
            CoreError::Mcdb(e) => write!(f, "database error: {e}"),
            CoreError::Numeric(e) => write!(f, "numeric error: {e}"),
            CoreError::Metadata(m) => write!(f, "metadata error: {m}"),
            CoreError::ReplicateFailed {
                replicate,
                attempt,
                message,
            } => write!(
                f,
                "repetition {replicate} failed on attempt {attempt}: {message}"
            ),
            CoreError::TooManyFailures {
                succeeded,
                attempted,
                required,
            } => write!(
                f,
                "best-effort run degraded below its floor: {succeeded}/{attempted} repetitions \
                 succeeded, policy required {required}"
            ),
        }
    }
}

impl mde_numeric::ErrorClass for CoreError {
    /// Wrapped lower-layer errors delegate to their own classification;
    /// replicate-level failures are retryable; structural errors
    /// (registry lookups, invalid composites, unresolved mismatches,
    /// metadata problems, an exhausted best-effort floor) would fail
    /// identically on every attempt and are fatal.
    fn severity(&self) -> mde_numeric::Severity {
        match self {
            CoreError::ReplicateFailed { .. } => mde_numeric::Severity::Retryable,
            CoreError::Harmonize(e) => e.severity(),
            CoreError::Mcdb(e) => e.severity(),
            CoreError::Numeric(e) => e.severity(),
            _ => mde_numeric::Severity::Fatal,
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Harmonize(e) => Some(e),
            CoreError::Mcdb(e) => Some(e),
            CoreError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mde_harmonize::HarmonizeError> for CoreError {
    fn from(e: mde_harmonize::HarmonizeError) -> Self {
        CoreError::Harmonize(e)
    }
}

impl From<mde_mcdb::McdbError> for CoreError {
    fn from(e: mde_mcdb::McdbError) -> Self {
        CoreError::Mcdb(e)
    }
}

impl From<mde_numeric::NumericError> for CoreError {
    fn from(e: mde_numeric::NumericError) -> Self {
        CoreError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::NotRegistered {
            kind: "model",
            name: "demand".into(),
        };
        assert!(e.to_string().contains("demand"));
        let e = CoreError::invalid("cycle detected");
        assert!(e.to_string().contains("cycle"));
        let e = CoreError::UnresolvedMismatch {
            mismatches: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("a; b"));
    }
}
