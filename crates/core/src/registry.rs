//! The model & dataset registry.
//!
//! Splash contributors "provide metadata" at registration time; that
//! metadata drives composite assembly (port/channel matching), mismatch
//! detection (tick granularities), experiment management (parameter
//! descriptions with ranges and defaults), and run optimization
//! (cost/variance performance statistics, amortized across uses). The
//! metadata is plain serde-serializable data, so a registry round-trips
//! through JSON — the honest equivalent of Splash's metadata store.

use crate::CoreError;
use mde_harmonize::series::TimeSeries;
use mde_numeric::rng::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named channel bundle flowing between models at a given tick
/// granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortSpec {
    /// Port name.
    pub name: String,
    /// Channel names the port carries (order matters).
    pub channels: Vec<String>,
    /// Tick spacing in simulated time units.
    pub tick: f64,
}

/// A tunable model parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Parameter name.
    pub name: String,
    /// Default value.
    pub default: f64,
    /// Lower bound for experiments/calibration.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

/// Performance statistics stored as model metadata (the §2.3 catalog
/// analogy: "important performance characteristics of a model can be
/// stored as part of the model's metadata").
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PerfStats {
    /// Expected cost per run (abstract units).
    pub cost: f64,
    /// Output variance observed in pilot/production runs.
    pub output_variance: f64,
    /// Observation weight behind the stats.
    pub weight: u64,
}

/// Registered model metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelMetadata {
    /// Unique model name.
    pub name: String,
    /// Human description.
    pub description: String,
    /// Input ports (empty for source models).
    pub inputs: Vec<PortSpec>,
    /// The single output port.
    pub output: PortSpec,
    /// Tunable parameters.
    pub params: Vec<ParamSpec>,
    /// Performance statistics, refined over time.
    pub perf: PerfStats,
}

/// Registered dataset metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetMetadata {
    /// Unique dataset name.
    pub name: String,
    /// Human description.
    pub description: String,
    /// Channels and granularity, like a port.
    pub port: PortSpec,
    /// Provenance note (source model, collection process, …).
    pub provenance: String,
}

/// A simulation model runnable by the platform: consumes one series per
/// input port, produces the output series.
pub trait SimModel: Send + Sync {
    /// The model's metadata.
    fn metadata(&self) -> &ModelMetadata;

    /// Execute one stochastic replication.
    fn run(
        &self,
        inputs: &[TimeSeries],
        params: &[f64],
        rng: &mut Rng,
    ) -> crate::Result<TimeSeries>;
}

/// The registry: models (metadata + executable) and datasets (metadata +
/// data).
#[derive(Default)]
pub struct Registry {
    models: BTreeMap<String, Arc<dyn SimModel>>,
    datasets: BTreeMap<String, (DatasetMetadata, TimeSeries)>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a model under its metadata name.
    pub fn register_model(&mut self, model: Arc<dyn SimModel>) {
        self.models.insert(model.metadata().name.clone(), model);
    }

    /// Register a dataset.
    pub fn register_dataset(&mut self, meta: DatasetMetadata, data: TimeSeries) {
        self.datasets.insert(meta.name.clone(), (meta, data));
    }

    /// Look up a model.
    pub fn model(&self, name: &str) -> crate::Result<&Arc<dyn SimModel>> {
        self.models
            .get(name)
            .ok_or_else(|| CoreError::NotRegistered {
                kind: "model",
                name: name.to_string(),
            })
    }

    /// Look up a dataset.
    pub fn dataset(&self, name: &str) -> crate::Result<(&DatasetMetadata, &TimeSeries)> {
        self.datasets
            .get(name)
            .map(|(m, d)| (m, d))
            .ok_or_else(|| CoreError::NotRegistered {
                kind: "dataset",
                name: name.to_string(),
            })
    }

    /// Registered model names, sorted.
    pub fn model_names(&self) -> Vec<&str> {
        self.models.keys().map(|s| s.as_str()).collect()
    }

    /// Registered dataset names, sorted.
    pub fn dataset_names(&self) -> Vec<&str> {
        self.datasets.keys().map(|s| s.as_str()).collect()
    }

    /// Serialize all metadata (not executables or data) to JSON — the
    /// shareable registry manifest.
    pub fn metadata_json(&self) -> crate::Result<String> {
        #[derive(Serialize)]
        struct Manifest<'a> {
            // Read only through the Serialize impl.
            #[allow(dead_code)]
            models: Vec<&'a ModelMetadata>,
            #[allow(dead_code)]
            datasets: Vec<&'a DatasetMetadata>,
        }
        let manifest = Manifest {
            models: self.models.values().map(|m| m.metadata()).collect(),
            datasets: self.datasets.values().map(|(m, _)| m).collect(),
        };
        serde_json::to_string_pretty(&manifest).map_err(|e| CoreError::Metadata(e.to_string()))
    }

    /// Parse a metadata manifest produced by [`Registry::metadata_json`].
    pub fn parse_manifest(json: &str) -> crate::Result<(Vec<ModelMetadata>, Vec<DatasetMetadata>)> {
        #[derive(Deserialize)]
        struct Manifest {
            models: Vec<ModelMetadata>,
            datasets: Vec<DatasetMetadata>,
        }
        let m: Manifest =
            serde_json::from_str(json).map_err(|e| CoreError::Metadata(e.to_string()))?;
        Ok((m.models, m.datasets))
    }
}

/// A [`SimModel`] built from a closure plus metadata — how example models
/// and tests register behaviors.
pub struct FnSimModel<F> {
    meta: ModelMetadata,
    f: F,
}

impl<F> FnSimModel<F>
where
    F: Fn(&[TimeSeries], &[f64], &mut Rng) -> crate::Result<TimeSeries> + Send + Sync,
{
    /// Wrap a closure.
    pub fn new(meta: ModelMetadata, f: F) -> Self {
        FnSimModel { meta, f }
    }
}

impl<F> SimModel for FnSimModel<F>
where
    F: Fn(&[TimeSeries], &[f64], &mut Rng) -> crate::Result<TimeSeries> + Send + Sync,
{
    fn metadata(&self) -> &ModelMetadata {
        &self.meta
    }

    fn run(
        &self,
        inputs: &[TimeSeries],
        params: &[f64],
        rng: &mut Rng,
    ) -> crate::Result<TimeSeries> {
        if inputs.len() != self.meta.inputs.len() {
            return Err(CoreError::invalid(format!(
                "model `{}` expects {} inputs, got {}",
                self.meta.name,
                self.meta.inputs.len(),
                inputs.len()
            )));
        }
        if params.len() != self.meta.params.len() {
            return Err(CoreError::invalid(format!(
                "model `{}` expects {} params, got {}",
                self.meta.name,
                self.meta.params.len(),
                params.len()
            )));
        }
        (self.f)(inputs, params, rng)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A source model emitting `n` daily ticks of `base + t·slope + noise`.
    pub fn demand_model() -> Arc<dyn SimModel> {
        use mde_numeric::dist::{Distribution, Normal};
        let meta = ModelMetadata {
            name: "demand".into(),
            description: "daily demand source".into(),
            inputs: vec![],
            output: PortSpec {
                name: "out".into(),
                channels: vec!["demand".into()],
                tick: 1.0,
            },
            params: vec![
                ParamSpec {
                    name: "base".into(),
                    default: 100.0,
                    lo: 50.0,
                    hi: 150.0,
                },
                ParamSpec {
                    name: "noise".into(),
                    default: 5.0,
                    lo: 0.1,
                    hi: 20.0,
                },
            ],
            perf: PerfStats {
                cost: 10.0,
                ..PerfStats::default()
            },
        };
        Arc::new(FnSimModel::new(meta, |_inputs, params, rng| {
            let noise = Normal::new(0.0, params[1].max(1e-6)).map_err(CoreError::from)?;
            let mut values = Vec::with_capacity(28);
            for _ in 0..28 {
                values.push((params[0] + noise.sample(rng)).max(0.0));
            }
            Ok(TimeSeries::univariate(
                "demand",
                (0..28).map(|t| t as f64).collect(),
                values,
            )?)
        }))
    }

    /// A sink model consuming *weekly* aggregate demand and producing
    /// weekly revenue (tick mismatch with the daily source is deliberate:
    /// the composite layer must auto-insert aggregation).
    pub fn revenue_model() -> Arc<dyn SimModel> {
        let meta = ModelMetadata {
            name: "revenue".into(),
            description: "weekly revenue sink".into(),
            inputs: vec![PortSpec {
                name: "in".into(),
                channels: vec!["demand".into()],
                tick: 7.0,
            }],
            output: PortSpec {
                name: "out".into(),
                channels: vec!["revenue".into()],
                tick: 7.0,
            },
            params: vec![ParamSpec {
                name: "price".into(),
                default: 2.0,
                lo: 0.5,
                hi: 5.0,
            }],
            perf: PerfStats {
                cost: 1.0,
                ..PerfStats::default()
            },
        };
        Arc::new(FnSimModel::new(meta, |inputs, params, _rng| {
            let demand = inputs[0].channel("demand")?;
            let revenue: Vec<f64> = demand.iter().map(|d| d * params[0]).collect();
            Ok(TimeSeries::univariate(
                "revenue",
                inputs[0].times().to_vec(),
                revenue,
            )?)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;
    use mde_numeric::rng::rng_from_seed;

    #[test]
    fn register_and_lookup() {
        let mut reg = Registry::new();
        reg.register_model(demand_model());
        reg.register_model(revenue_model());
        assert_eq!(reg.model_names(), vec!["demand", "revenue"]);
        assert!(reg.model("demand").is_ok());
        assert!(matches!(
            reg.model("nope"),
            Err(CoreError::NotRegistered { .. })
        ));
    }

    #[test]
    fn dataset_registration() {
        let mut reg = Registry::new();
        let data = TimeSeries::univariate("temp", vec![0.0, 1.0], vec![20.0, 21.0]).unwrap();
        reg.register_dataset(
            DatasetMetadata {
                name: "weather".into(),
                description: "obs".into(),
                port: PortSpec {
                    name: "out".into(),
                    channels: vec!["temp".into()],
                    tick: 1.0,
                },
                provenance: "sensor net".into(),
            },
            data.clone(),
        );
        let (meta, stored) = reg.dataset("weather").unwrap();
        assert_eq!(meta.provenance, "sensor net");
        assert_eq!(stored, &data);
        assert!(reg.dataset("nope").is_err());
    }

    #[test]
    fn model_runs_with_validation() {
        let m = demand_model();
        let mut rng = rng_from_seed(1);
        let out = m.run(&[], &[100.0, 5.0], &mut rng).unwrap();
        assert_eq!(out.len(), 28);
        // Wrong arities rejected.
        assert!(m.run(&[], &[100.0], &mut rng).is_err());
        let ts = TimeSeries::univariate("x", vec![0.0], vec![1.0]).unwrap();
        assert!(m.run(&[ts], &[100.0, 5.0], &mut rng).is_err());
    }

    #[test]
    fn metadata_round_trips_through_json() {
        let mut reg = Registry::new();
        reg.register_model(demand_model());
        reg.register_model(revenue_model());
        let json = reg.metadata_json().unwrap();
        assert!(json.contains("\"demand\""));
        let (models, datasets) = Registry::parse_manifest(&json).unwrap();
        assert_eq!(models.len(), 2);
        assert!(datasets.is_empty());
        assert_eq!(models[0], *demand_model().metadata());
    }
}
