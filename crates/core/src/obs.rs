//! The observability layer, re-exported as the platform's public API.
//!
//! The substrate — [`Span`]-style structured tracing with pluggable
//! [`TraceSink`]s ([`MemorySink`] for golden-trace tests, [`JsonlSink`]
//! for streaming one JSON object per span), lock-free [`Counter`]s and
//! [`Gauge`]s, the mergeable log-linear [`Histogram`], and the per-run
//! [`RunMetrics`] ledger carried by every
//! [`RunReport`](crate::resilience::RunReport) — lives in
//! [`mde_numeric::obs`], at the bottom of the workspace dependency graph,
//! so every execution layer reports through the same vocabulary:
//!
//! * the vectorized query executor traces per-operator row counts, batch
//!   materializations, and plan/table-cache reuse
//!   ([`PreparedQuery::execute_traced`](mde_mcdb::query::PreparedQuery::execute_traced));
//! * the Monte Carlo runners ledger replicate/attempt counters, a
//!   deterministic sample-value histogram, and out-of-band replicate
//!   latency;
//! * the particle filter ledgers its ESS trajectory and resample count;
//! * the optimizers ledger evaluation counts and best-so-far traces;
//! * the checkpoint codec reports bytes written and fsync/rename latency
//!   ([`SaveStats`](mde_numeric::SaveStats)).
//!
//! # The determinism contract
//!
//! Metric *values* (counts, rows, evaluations, sample/ESS histograms) are
//! bit-identical across thread counts and across checkpoint/resume; they
//! participate in [`RunReport`](crate::resilience::RunReport) equality
//! and persist in checkpoints. Wall-clock durations and I/O volumes are
//! carried out-of-band: excluded from equality, absent from fingerprints,
//! never written to or resumed from checkpoints. [`RunMetrics::merge`] is
//! associative and order-insensitive, so parallel shards aggregate to
//! exactly the sequential ledger.

pub use mde_numeric::obs::{
    span_record_json, Counter, FieldValue, Gauge, Histogram, JsonlSink, MemorySink, RunMetrics,
    Span, SpanRecord, TraceSink, Tracer,
};
