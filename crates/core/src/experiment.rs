//! The experiment manager.
//!
//! §4.2/\[26\]: Splash's "experiment management capabilities … metadata is
//! used to provide an experimenter with a unified view of composite model
//! parameters. Splash also provides a facility for specifying experimental
//! designs as well as runtime support for setting parameter values". This
//! module is that layer: it flattens the parameters of every model in a
//! composite into one factor list (the unified view), materializes DOE
//! designs over their metadata ranges, runs the composite at each design
//! point, and fits metamodels / computes main effects over the results.
//! It also bridges two-model chains into `mde-simopt`'s result-caching
//! optimizer (§2.3).

use crate::composite::{CompositeModel, ParamAssignment};
use crate::registry::Registry;
use crate::CoreError;
use mde_harmonize::series::TimeSeries;
use mde_metamodel::design::Design;
use mde_metamodel::poly::{main_effects, MainEffects};
use mde_simopt::{FnModel, SeriesComposite, Statistics};
use std::sync::Arc;

/// One factor of the unified parameter view: a parameter of one component
/// model.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    /// Component model name.
    pub model: String,
    /// Parameter name.
    pub param: String,
    /// Index within the model's parameter vector.
    pub index: usize,
    /// Experiment range `(lo, hi)` from the metadata.
    pub range: (f64, f64),
    /// Default value.
    pub default: f64,
}

/// The experiment manager over a composite model.
pub struct Experiment<'r> {
    registry: &'r Registry,
    composite: CompositeModel,
    factors: Vec<Factor>,
}

impl<'r> Experiment<'r> {
    /// Build the unified parameter view of a composite.
    pub fn new(registry: &'r Registry, composite: CompositeModel) -> crate::Result<Self> {
        let mut factors = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for name in composite.nodes() {
            if !seen.insert(name.clone()) {
                continue; // same model reused: one set of factors
            }
            let meta = registry.model(name)?.metadata();
            for (i, p) in meta.params.iter().enumerate() {
                factors.push(Factor {
                    model: name.clone(),
                    param: p.name.clone(),
                    index: i,
                    range: (p.lo, p.hi),
                    default: p.default,
                });
            }
        }
        Ok(Experiment {
            registry,
            composite,
            factors,
        })
    }

    /// The unified factor list.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Synthesize a [`ParamAssignment`] from a flat factor-value vector —
    /// the "templating mechanism" that writes each component model's
    /// parameter file.
    pub fn assignment(&self, values: &[f64]) -> crate::Result<ParamAssignment> {
        if values.len() != self.factors.len() {
            return Err(CoreError::invalid(format!(
                "{} factor values for {} factors",
                values.len(),
                self.factors.len()
            )));
        }
        let mut out = ParamAssignment::new();
        // Start every model at its defaults, then overwrite.
        for f in &self.factors {
            let entry = out.entry(f.model.clone()).or_insert_with(|| {
                self.registry
                    .model(&f.model)
                    .expect("validated at construction")
                    .metadata()
                    .params
                    .iter()
                    .map(|p| p.default)
                    .collect()
            });
            let _ = entry;
        }
        for (f, &v) in self.factors.iter().zip(values) {
            out.get_mut(&f.model).expect("inserted above")[f.index] = v;
        }
        Ok(out)
    }

    /// Run the composite at every design point (coded levels scaled onto
    /// the metadata ranges), averaging `reps` Monte Carlo repetitions of
    /// `scalarize` per point. Returns `(factor values, mean response)`
    /// rows.
    pub fn run_design(
        &self,
        design: &Design,
        reps: usize,
        seed: u64,
        scalarize: impl Fn(&TimeSeries) -> f64 + Copy,
    ) -> crate::Result<Vec<(Vec<f64>, f64)>> {
        if design.factors() != self.factors.len() {
            return Err(CoreError::invalid(format!(
                "design has {} factors, experiment has {}",
                design.factors(),
                self.factors.len()
            )));
        }
        let ranges: Vec<(f64, f64)> = self.factors.iter().map(|f| f.range).collect();
        let scaled = design.scale_to(&ranges);
        let plan = self.composite.plan(self.registry)?;
        let mut rows = Vec::with_capacity(scaled.len());
        for (i, point) in scaled.iter().enumerate() {
            let params = self.assignment(point)?;
            let mc = plan.run_monte_carlo(
                &params,
                reps,
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                scalarize,
            )?;
            rows.push((point.clone(), mc.summary.mean()));
        }
        Ok(rows)
    }

    /// Fit a Gaussian-process metamodel over a design's responses — the
    /// "simulation on demand" surface (§4.1) for an entire composite
    /// model: after fitting, approximate composite outputs at new
    /// parameter settings are instant.
    pub fn fit_gp_metamodel(
        &self,
        design: &Design,
        reps: usize,
        seed: u64,
        scalarize: impl Fn(&TimeSeries) -> f64 + Copy,
    ) -> crate::Result<mde_metamodel::gp::GpModel> {
        self.fit_gp_metamodel_with(
            design,
            reps,
            seed,
            scalarize,
            &mde_metamodel::gp::GpConfig::default(),
            None,
        )
    }

    /// [`Experiment::fit_gp_metamodel`] with an explicit GP configuration
    /// (e.g. multi-threaded kernel assembly) and an optional deterministic
    /// metrics ledger receiving the `gp.assembles` / `gp.factorizations`
    /// counters.
    pub fn fit_gp_metamodel_with(
        &self,
        design: &Design,
        reps: usize,
        seed: u64,
        scalarize: impl Fn(&TimeSeries) -> f64 + Copy,
        gp_cfg: &mde_metamodel::gp::GpConfig,
        metrics: Option<&mut mde_numeric::obs::RunMetrics>,
    ) -> crate::Result<mde_metamodel::gp::GpModel> {
        let rows = self.run_design(design, reps, seed, scalarize)?;
        let xs: Vec<Vec<f64>> = rows.iter().map(|(x, _)| x.clone()).collect();
        let ys: Vec<f64> = rows.iter().map(|(_, y)| *y).collect();
        let noise = vec![0.0; ys.len()];
        Ok(mde_metamodel::gp::GpModel::fit_with(
            &xs, &ys, &noise, gp_cfg, metrics,
        )?)
    }

    /// Classical main effects over a ±1 coded design's responses (the
    /// Figure 4 analysis for a composite model).
    pub fn main_effects(
        &self,
        design: &Design,
        reps: usize,
        seed: u64,
        scalarize: impl Fn(&TimeSeries) -> f64 + Copy,
    ) -> crate::Result<MainEffects> {
        let rows = self.run_design(design, reps, seed, scalarize)?;
        let ys: Vec<f64> = rows.iter().map(|(_, y)| *y).collect();
        Ok(main_effects(design, &ys))
    }
}

/// Bridge a two-node chain (source → sink) into `mde-simopt`'s
/// [`SeriesComposite`] so the §2.3 result-caching machinery (pilot
/// estimation, `α*`, budgeted runs) applies to platform models.
///
/// `scalarize` reduces the sink's output series to the scalar `Y₂`; the
/// source's output series is flattened (times then channel values) as the
/// cached `Y₁` payload.
pub fn bridge_chain_to_simopt(
    registry: &Registry,
    source: &str,
    sink: &str,
    params: ParamAssignment,
    scalarize: impl Fn(&TimeSeries) -> f64 + Send + Sync + 'static,
) -> crate::Result<SeriesComposite> {
    let src = Arc::clone(registry.model(source)?);
    let dst = Arc::clone(registry.model(sink)?);
    let src_meta = src.metadata().clone();
    let dst_meta = dst.metadata().clone();
    if !src_meta.inputs.is_empty() {
        return Err(CoreError::invalid(
            "bridge source must have no inputs".to_string(),
        ));
    }
    if dst_meta.inputs.len() != 1 {
        return Err(CoreError::invalid(
            "bridge sink must have exactly one input".to_string(),
        ));
    }
    let src_params: Vec<f64> = params
        .get(&src_meta.name)
        .cloned()
        .unwrap_or_else(|| src_meta.params.iter().map(|p| p.default).collect());
    let dst_params: Vec<f64> = params
        .get(&dst_meta.name)
        .cloned()
        .unwrap_or_else(|| dst_meta.params.iter().map(|p| p.default).collect());

    let src_cost = src_meta.perf.cost.max(1e-9);
    let dst_cost = dst_meta.perf.cost.max(1e-9);
    let n_channels = src_meta.output.channels.len();

    let m1 = FnModel::new(
        src_meta.name.clone(),
        src_cost,
        move |_input: &[f64], rng: &mut mde_numeric::rng::Rng| {
            let ts = src
                .run(&[], &src_params, rng)
                .expect("bridged source model failed");
            // Flatten: [len, times…, row-major data…].
            let mut flat = vec![ts.len() as f64];
            flat.extend_from_slice(ts.times());
            for row in ts.data() {
                flat.extend_from_slice(row);
            }
            flat
        },
    );

    let channels = src_meta.output.channels.clone();
    let m2 = FnModel::new(
        dst_meta.name.clone(),
        dst_cost,
        move |input: &[f64], rng: &mut mde_numeric::rng::Rng| {
            // Unflatten.
            let n = input[0] as usize;
            let times = input[1..1 + n].to_vec();
            let data: Vec<Vec<f64>> = (0..n)
                .map(|i| input[1 + n + i * n_channels..1 + n + (i + 1) * n_channels].to_vec())
                .collect();
            let ts = TimeSeries::new(channels.clone(), times, data)
                .expect("bridged payload round-trips");
            let out = dst
                .run(&[ts], &dst_params, rng)
                .expect("bridged sink model failed");
            vec![scalarize(&out)]
        },
    );

    Ok(SeriesComposite::new(Arc::new(m1), Arc::new(m2)))
}

/// Plan an optimal result-caching run for a bridged chain: pilot-estimate
/// 𝒮, compute `α*`, and return `(𝒮, α*)`.
pub fn rc_plan(
    composite: &SeriesComposite,
    pilot_pairs: usize,
    seed: u64,
    horizon_n: usize,
) -> (Statistics, f64) {
    let stats = mde_simopt::pilot::estimate_statistics(
        composite,
        &mde_simopt::PilotConfig {
            pairs: pilot_pairs,
            seed,
        },
    );
    let alpha = mde_simopt::optimal_alpha(&stats, horizon_n);
    (stats, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::testutil::{demand_model, revenue_model};
    use mde_metamodel::design::full_factorial;

    fn setup() -> (Registry, CompositeModel) {
        let mut reg = Registry::new();
        reg.register_model(demand_model());
        reg.register_model(revenue_model());
        let mut c = CompositeModel::new();
        let d = c.add_model("demand");
        let r = c.add_model("revenue");
        c.connect(d, r, 0);
        (reg, c)
    }

    fn mean_revenue(ts: &TimeSeries) -> f64 {
        let v = ts.channel("revenue").expect("revenue channel");
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn unified_parameter_view() {
        let (reg, c) = setup();
        let exp = Experiment::new(&reg, c).unwrap();
        let names: Vec<String> = exp
            .factors()
            .iter()
            .map(|f| format!("{}.{}", f.model, f.param))
            .collect();
        assert_eq!(names, vec!["demand.base", "demand.noise", "revenue.price"]);
        assert_eq!(exp.factors()[0].range, (50.0, 150.0));
    }

    #[test]
    fn assignment_templating() {
        let (reg, c) = setup();
        let exp = Experiment::new(&reg, c).unwrap();
        let a = exp.assignment(&[120.0, 3.0, 4.5]).unwrap();
        assert_eq!(a["demand"], vec![120.0, 3.0]);
        assert_eq!(a["revenue"], vec![4.5]);
        assert!(exp.assignment(&[1.0]).is_err());
    }

    #[test]
    fn design_run_and_main_effects() {
        let (reg, c) = setup();
        let exp = Experiment::new(&reg, c).unwrap();
        let design = full_factorial(3);
        let me = exp.main_effects(&design, 8, 11, mean_revenue).unwrap();
        // Response ≈ base × price: base effect ≈ Δbase × mean(price) = 100 × 2.75,
        // price effect ≈ Δprice × mean(base) = 4.5 × 100; noise effect ≈ 0.
        assert!(me.effects[0] > 150.0, "base effect {}", me.effects[0]);
        assert!(me.effects[2] > 300.0, "price effect {}", me.effects[2]);
        assert!(
            me.effects[1].abs() < 30.0,
            "noise std should be inert: {}",
            me.effects[1]
        );
    }

    #[test]
    fn gp_metamodel_supports_simulation_on_demand() {
        use mde_metamodel::design::nolh;
        use mde_numeric::rng::rng_from_seed;
        let (reg, c) = setup();
        let exp = Experiment::new(&reg, c).unwrap();
        let mut rng = rng_from_seed(21);
        let design = nolh(3, 17, 50, &mut rng);
        let gp = exp.fit_gp_metamodel(&design, 12, 31, mean_revenue).unwrap();
        // "Simulation on demand": the surrogate predicts mean revenue ≈
        // base × price at an unseen parameter point.
        let pred = gp.predict(&[100.0, 5.0, 2.0]);
        assert!((pred - 200.0).abs() < 25.0, "surrogate predicted {pred}");
        let pred = gp.predict(&[120.0, 5.0, 3.0]);
        assert!((pred - 360.0).abs() < 45.0, "surrogate predicted {pred}");
    }

    #[test]
    fn design_factor_count_validated() {
        let (reg, c) = setup();
        let exp = Experiment::new(&reg, c).unwrap();
        let design = full_factorial(2);
        assert!(exp.run_design(&design, 2, 1, mean_revenue).is_err());
    }

    #[test]
    fn bridge_and_rc_plan() {
        let (reg, _) = setup();
        let comp = bridge_chain_to_simopt(
            &reg,
            "demand",
            "revenue",
            ParamAssignment::new(),
            mean_revenue,
        )
        .unwrap();
        // The bridged composite runs and estimates sensibly.
        let (stats, alpha) = rc_plan(&comp, 300, 5, 10_000);
        assert!(stats.validate().is_ok(), "stats {stats:?}");
        assert_eq!(stats.c1, 10.0);
        assert_eq!(stats.c2, 1.0);
        // Demand noise dominates (price is deterministic): V2 ≈ V1 → α* near 1.
        assert!(alpha > 0.5, "α* = {alpha} with stats {stats:?}");
        // And the budgeted runner produces a sane estimate of 200.
        let est = mde_simopt::budget::run_under_budget(&comp, 2000.0, alpha, 3)
            .unwrap()
            .unwrap();
        assert!((est.theta_hat - 200.0).abs() < 5.0, "θ̂ = {}", est.theta_hat);
    }

    #[test]
    fn bridge_validation() {
        let (reg, _) = setup();
        assert!(bridge_chain_to_simopt(
            &reg,
            "revenue", // has an input: invalid source
            "revenue",
            ParamAssignment::new(),
            mean_revenue
        )
        .is_err());
    }
}
