//! The model-data ecosystem platform — the paper's thesis made executable.
//!
//! IBM's Splash prototype (§2.2, \[26, 28, 53\]) "synthesize\[s\] simulation
//! and data-integration techniques, permitting loose coupling of models via
//! data exchange; that is, models communicate by reading and writing
//! datasets. When model and data contributors initially register their
//! models and datasets …, they provide metadata that enables drag-and-drop
//! composite-model creation, automatic detection of data mismatches
//! between upstream 'source' and downstream 'target' models, and …
//! data transformations, which are then compiled into runtime code. For a
//! stochastic composite model, data transformations must be performed at
//! every Monte Carlo repetition."
//!
//! | module | Splash concept |
//! |---|---|
//! | [`registry`] | model & dataset registration with JSON metadata |
//! | [`composite`] | composite DAG, mismatch detection, auto-harmonization, MC execution |
//! | [`experiment`] | experiment manager: DOE-driven runs, metamodel fitting, RC optimization |
//! | [`whatif`] | the "data is dead without what-if" entry point over `mde-mcdb` |
//! | [`resilience`] | supervised execution: run policies, deterministic retry, failure ledgers |
//! | [`obs`] | observability: structured tracing, metrics ledgers, deterministic telemetry |
//!
//! # Example: attach a stochastic model to data and ask what-if
//!
//! ```
//! use mde_core::whatif::WhatIfSession;
//! use mde_mcdb::prelude::*;
//! use mde_mcdb::query::{AggFunc, AggSpec};
//! use mde_mcdb::vg::NormalVg;
//! use std::sync::Arc;
//!
//! let mut s = WhatIfSession::new();
//! s.add_data(
//!     Table::build("STORES", &[("SID", DataType::Int)])
//!         .rows((0..5).map(|i| vec![Value::from(i)]))
//!         .finish().unwrap(),
//! );
//! s.attach_stochastic(
//!     RandomTableSpec::builder("SALES")
//!         .for_each(Plan::scan("STORES"))
//!         .with_vg(Arc::new(NormalVg))
//!         .vg_params_exprs(&[Expr::lit(50.0), Expr::lit(5.0)])
//!         .select(&[("AMT", Expr::col("VALUE"))])
//!         .build().unwrap(),
//! );
//! let total = Plan::scan("SALES")
//!     .aggregate(&[], vec![AggSpec::new("T", AggFunc::Sum, Expr::col("AMT"))]);
//! let dist = s.what_if(&total, 200, 1).unwrap();
//! assert!((dist.mean() - 250.0).abs() < 5.0);
//! ```

#![warn(missing_docs)]

pub use mde_numeric::cache;

pub mod composite;
pub mod error;
pub mod experiment;
pub mod obs;
pub mod registry;
pub mod resilience;
pub mod sched;
pub mod whatif;

pub use error::CoreError;
pub use resilience::{ErrorClass, RunOptions, RunPolicy, RunReport, Severity};
pub use sched::{CampaignReport, CampaignSpec, CampaignStatus, SchedConfig, SchedRun, Scheduler};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
