//! The resilience runtime, re-exported as the platform's public API.
//!
//! The vocabulary — [`Severity`]/[`ErrorClass`] classification,
//! [`RunPolicy`], deterministic [`retry_seed`] derivation, [`RunReport`]
//! ledgers, and the [`FaultPlan`] injector — lives in
//! [`mde_numeric::resilience`], at the bottom of the workspace dependency
//! graph, so that every execution layer can speak it:
//!
//! * [`mde_mcdb::mc::MonteCarloQuery::run_with_options`] /
//!   [`run_parallel_with_options`](mde_mcdb::mc::MonteCarloQuery::run_parallel_with_options)
//!   — supervised Monte Carlo query estimation;
//! * [`crate::composite::ExecutablePlan::run_monte_carlo_supervised`] —
//!   supervised composite-model campaigns;
//! * the particle filter's supervised step loop in `mde-assim`.
//!
//! This module is the front door: downstream code uses
//! `mde_core::resilience::{RunPolicy, RunOptions, ...}` without caring
//! where the types physically live.
//!
//! # Semantics in brief
//!
//! Every failure is classified [`Severity::Retryable`] (data- or
//! draw-dependent: a fresh stream may succeed) or [`Severity::Fatal`]
//! (structural: every attempt fails identically). Fatal failures abort
//! under every policy. Retryable failures are handled per [`RunPolicy`]:
//! abort (`FailFast`), re-execute on a fresh sub-seed derived purely from
//! `(seed, replicate, attempt)` (`Retry`), or drop and degrade gracefully
//! with a [`RunReport`] ledger (`BestEffort`). Because retry sub-seeds are
//! pure functions, sequential and parallel runs stay bit-identical at any
//! thread count under every policy.
//!
//! # Durable campaigns
//!
//! Long campaigns additionally speak the checkpoint/resume vocabulary:
//! a [`CampaignState`] (seed, spec [`Fingerprint`], completed-boundary
//! ledger, [`RunReport`], progress cursor) written crash-consistently by
//! [`CampaignState::save`], plus [`Deadline`] wall-clock budgets,
//! [`CancelToken`] cooperative cancellation, and the
//! [`FaultKind::Preempt`] chaos fault. A stopped run is *not* an error:
//! every durable surface returns its partial result, the partial report,
//! a [`StopCause`], and a final checkpoint from which resumption is
//! bit-identical to an uninterrupted run.

pub use mde_numeric::checkpoint::{CampaignState, CheckpointError, Fingerprint, SaveStats};
pub use mde_numeric::resilience::backoff::{Backoff, BackoffConfig};
pub use mde_numeric::resilience::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use mde_numeric::resilience::sched::{
    Campaign, CampaignCtl, CampaignError, CampaignOutput, CampaignStep, Overloaded, Priority,
};
pub use mde_numeric::resilience::{
    catch_panic, retry_seed, supervise_replicate, AttemptFailure, CancelReason, CancelToken,
    CheckpointSpec, Deadline, ErrorClass, FailureKind, FailureRecord, Fault, FaultKind, FaultPlan,
    ReplicateOutcome, RunOptions, RunPolicy, RunReport, Severity, StopCause,
};
