//! Property tests for the mergeable log-linear [`Histogram`] — the data
//! structure every deterministic metrics claim rests on. Bucketing must be
//! a pure function of the value, merging a commutative monoid, and
//! quantiles bounded by the advertised relative error.

use mde_core::obs::Histogram;
use proptest::prelude::*;

/// Raw material for mixed-magnitude observations; [`mixed`] folds a
/// deterministic fraction into exact zeros and tiny values so the zero
/// bucket and the sub-unit decades are exercised.
fn values(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len)
}

/// Large, small, negative, and exact-zero finite observations.
fn mixed(raw: &[f64]) -> Vec<f64> {
    raw.iter()
        .enumerate()
        .map(|(i, &v)| match i % 5 {
            0 => 0.0,
            1 => v / 1e9,
            _ => v,
        })
        .collect()
}

fn build(vals: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.observe(v);
    }
    h
}

/// The ceil-rank empirical quantile the histogram approximates.
fn true_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len() as u64;
    let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
    sorted[(target - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sharding a multiset any way and merging the shards in any order
    /// reproduces the whole-stream histogram exactly — the invariant the
    /// parallel campaign merge relies on.
    #[test]
    fn sharded_merge_reproduces_the_whole(raw in values(0..200), shards in 1usize..7) {
        let vals = mixed(&raw);
        let whole = build(&vals);
        let mut parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in vals.iter().enumerate() {
            parts[i % shards].observe(v);
        }
        let mut fwd = Histogram::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Histogram::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        prop_assert_eq!(&fwd, &whole);
        prop_assert_eq!(&rev, &whole);
    }

    /// Merge is associative and commutative on arbitrary histograms.
    #[test]
    fn merge_is_associative_and_commutative(
        a in values(0..60),
        b in values(0..60),
        c in values(0..60),
    ) {
        let (ha, hb, hc) = (build(&mixed(&a)), build(&mixed(&b)), build(&mixed(&c)));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
    }

    /// Occupied buckets come out in strictly increasing value order,
    /// non-overlapping, with positive counts summing to the observation
    /// count.
    #[test]
    fn bucket_ranges_are_monotone_and_disjoint(raw in values(1..150)) {
        let h = build(&mixed(&raw));
        let ranges = h.bucket_ranges();
        let mut total = 0u64;
        for w in ranges.windows(2) {
            let ((_, hi1, _), (lo2, _, _)) = (w[0], w[1]);
            let eps = 1e-9 * (hi1.abs() + lo2.abs() + 1.0);
            prop_assert!(hi1 <= lo2 + eps, "overlap: {hi1} vs {lo2}");
        }
        for &(lo, hi, c) in &ranges {
            prop_assert!(lo <= hi, "inverted bucket [{lo}, {hi}]");
            prop_assert!(c > 0, "empty bucket materialized");
            total += c;
        }
        prop_assert_eq!(total, h.count());
    }

    /// A single observation lands inside the one bucket it creates.
    #[test]
    fn observation_falls_inside_its_bucket(v in -1e12f64..1e12) {
        let h = build(&[v]);
        let ranges = h.bucket_ranges();
        prop_assert_eq!(ranges.len(), 1);
        let (lo, hi, c) = ranges[0];
        prop_assert_eq!(c, 1);
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
    }

    /// Quantiles stay within `[min, max]` and within the advertised
    /// relative error (one sub-bucket, 1/8) of the true ceil-rank
    /// empirical quantile.
    #[test]
    fn quantiles_are_bounded_and_accurate(raw in values(1..150)) {
        let vals = mixed(&raw);
        let h = build(&vals);
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            prop_assert!(h.min().unwrap() <= est && est <= h.max().unwrap());
            let t = true_quantile(&sorted, q);
            let tol = t.abs() / 8.0 + 1e-12;
            prop_assert!(
                (est - t).abs() <= tol,
                "q={q}: histogram {est} vs true {t} (tol {tol})"
            );
        }
    }

    /// Non-finite observations are counted out-of-mass: quantiles and
    /// min/max behave exactly as if the NaNs and infinities were absent.
    #[test]
    fn nonfinite_observations_do_not_perturb_quantiles(
        raw in values(1..80),
        junk in 1usize..6,
    ) {
        let vals = mixed(&raw);
        let clean = build(&vals);
        let mut noisy = Histogram::new();
        for (i, &v) in vals.iter().enumerate() {
            if i % 2 == 0 {
                noisy.observe(f64::NAN);
            }
            noisy.observe(v);
        }
        for i in 0..junk {
            noisy.observe(if i % 2 == 0 { f64::INFINITY } else { f64::NEG_INFINITY });
        }
        prop_assert_eq!(noisy.count(), clean.count());
        prop_assert!(noisy.nonfinite() >= junk as u64);
        prop_assert_eq!(noisy.min(), clean.min());
        prop_assert_eq!(noisy.max(), clean.max());
        for q in [0.0, 0.5, 1.0] {
            prop_assert_eq!(noisy.quantile(q), clean.quantile(q));
        }
    }
}
