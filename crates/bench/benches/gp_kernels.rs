//! Criterion benchmarks for the GP/kriging kernel layer: workspace-cached
//! blocked fits vs the retained rebuild-everything oracle, stochastic
//! kriging, batch prediction, and the kriging-calibration infill loop
//! with and without incremental (rank-1 border) surrogate updates.
//!
//! Run with `cargo bench -p mde-bench --bench gp_kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mde_calibrate::kriging_cal::{kriging_calibrate, KrigingCalConfig};
use mde_calibrate::optim::Bounds;
use mde_metamodel::gp::{GpConfig, GpModel};
use mde_numeric::rng::rng_from_seed;
use rand::Rng as _;

const DIM: usize = 3;
/// Equal likelihood-evaluation budget on both fit paths so the bench
/// compares per-evaluation cost, not search luck.
const FIT_EVALS: usize = 40;

fn design(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = rng_from_seed(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (3.0 * x[0]).sin() * (1.0 + x[1]) + 0.5 * x[2] * x[2])
        .collect();
    (xs, ys)
}

fn fit_cfg(threads: usize) -> GpConfig {
    GpConfig {
        max_evals: FIT_EVALS,
        threads,
        ..GpConfig::default()
    }
}

/// Workspace/blocked fit vs the rebuild-everything scalar oracle.
fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_fit");
    group.sample_size(10);
    for n in [64usize, 256, 512] {
        let (xs, ys) = design(n, 21);
        let noise = vec![0.0; n];
        group.bench_with_input(BenchmarkId::new("workspace_blocked", n), &n, |b, _| {
            b.iter(|| black_box(GpModel::fit(black_box(&xs), &ys, &fit_cfg(1)).unwrap()))
        });
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("unoptimized_oracle", n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        GpModel::fit_unoptimized(black_box(&xs), &ys, &noise, &fit_cfg(1)).unwrap(),
                    )
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("workspace_blocked_t8", n), &n, |b, _| {
            b.iter(|| black_box(GpModel::fit(black_box(&xs), &ys, &fit_cfg(8)).unwrap()))
        });
    }
    group.finish();
}

/// Stochastic kriging (replication-noise diagonal) at the same sizes.
fn bench_fit_stochastic(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_fit_stochastic");
    group.sample_size(10);
    for n in [64usize, 256] {
        let (xs, ys) = design(n, 22);
        let noise = vec![0.05; n];
        group.bench_with_input(BenchmarkId::new("workspace_blocked", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    GpModel::fit_stochastic(black_box(&xs), &ys, &noise, &fit_cfg(1)).unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Batch prediction: sequential vs 8 row-partitioned workers.
fn bench_predict(c: &mut Criterion) {
    let (xs, ys) = design(256, 23);
    let gp = GpModel::fit(&xs, &ys, &fit_cfg(1)).unwrap();
    let queries: Vec<Vec<f64>> = design(2048, 24).0;
    let mut group = c.benchmark_group("gp_predict_batch");
    group.sample_size(10);
    for threads in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("predict_2048", threads),
            &threads,
            |b, &t| b.iter(|| black_box(gp.predict_batch(black_box(&queries), t))),
        );
    }
    group.finish();
}

/// The kriging-calibration infill loop: full refit every round vs rank-1
/// incremental updates between anchor refits.
fn bench_infill(c: &mut Criterion) {
    let bounds = Bounds::new(vec![(0.0, 1.0), (0.0, 1.0)]).unwrap();
    let objective = |x: &[f64], _rep: usize| {
        let a = x[0] - 0.6;
        let b = x[1] - 0.3;
        3.0 * a * a + 2.0 * b * b + 0.5 * a * b
    };
    let mut group = c.benchmark_group("gp_infill");
    group.sample_size(10);
    for (label, refit_every) in [("refit_every_round", 1usize), ("incremental", 3)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut rng = rng_from_seed(11);
                black_box(
                    kriging_calibrate(
                        objective,
                        &bounds,
                        &KrigingCalConfig {
                            design_runs: 33,
                            infill_rounds: 6,
                            refit_every,
                            ..KrigingCalConfig::default()
                        },
                        &mut rng,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fit,
    bench_fit_stochastic,
    bench_predict,
    bench_infill
);
criterion_main!(benches);
