//! Criterion benchmarks for the performance-critical kernels behind each
//! experiment: tuple-bundle execution (E3), DSGD (E5), the gridfield
//! rewrite (E6), k-d range queries (E8), the particle filter (E10),
//! GP fitting (E15), and result-caching runs (E2).
//!
//! Run with `cargo bench -p mde-bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use mde_abs::rangequery::{random_agents, range_query_naive, KdTree};
use mde_assim::pf::{BootstrapProposal, ParticleFilter};
use mde_assim::wildfire::default_scenario;
use mde_harmonize::dsgd::{dsgd_solve, DsgdConfig};
use mde_harmonize::gridfield::{
    regrid_then_restrict, restrict_then_regrid, Grid, GridField, Regrid, RegridAgg,
};
use mde_harmonize::spline::build_spline_system;
use mde_mcdb::bundle::{execute_bundled, BundledCatalog, BundledTable};
use mde_mcdb::prelude::*;
use mde_mcdb::query::{AggFunc, AggSpec};
use mde_mcdb::vg::NormalVg;
use mde_metamodel::design::nolh;
use mde_metamodel::gp::{GpConfig, GpModel};
use mde_numeric::rng::rng_from_seed;
use mde_simopt::rc::{run_rc, RcConfig};
use mde_simopt::{FnModel, SeriesComposite};

fn mcdb_setup(n_items: usize, n_iters: usize) -> (BundledCatalog, BundledTable, Plan) {
    let mut db = Catalog::new();
    db.insert(
        Table::build("ITEMS", &[("IID", DataType::Int)])
            .rows((0..n_items).map(|i| vec![Value::from(i as i64)]))
            .finish()
            .unwrap(),
    );
    db.insert(
        Table::build(
            "PARAMS",
            &[("MEAN", DataType::Float), ("STD", DataType::Float)],
        )
        .row(vec![Value::from(100.0), Value::from(20.0)])
        .finish()
        .unwrap(),
    );
    let spec = RandomTableSpec::builder("SALES")
        .for_each(Plan::scan("ITEMS"))
        .with_vg(Arc::new(NormalVg))
        .vg_params_query(Plan::scan("PARAMS"))
        .select(&[("IID", Expr::col("IID")), ("AMT", Expr::col("VALUE"))])
        .build()
        .unwrap();
    let mut rng = rng_from_seed(1);
    let bundled = BundledTable::from_spec(&spec, &db, n_iters, &mut rng).unwrap();
    let mut bc = BundledCatalog::new(n_iters);
    bc.insert(bundled.clone()).unwrap();
    let plan = Plan::scan("SALES")
        .filter(Expr::col("AMT").gt(Expr::lit(95.0)))
        .aggregate(&[], vec![AggSpec::new("T", AggFunc::Sum, Expr::col("AMT"))]);
    (bc, bundled, plan)
}

fn bench_mcdb_bundles(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_mcdb");
    group.sample_size(20);
    let (bc, bundled, plan) = mcdb_setup(200, 100);
    group.bench_function("bundle_exec_200x100", |b| {
        b.iter(|| execute_bundled(black_box(&plan), black_box(&bc)).unwrap())
    });
    group.bench_function("naive_exec_200x100", |b| {
        b.iter(|| {
            for i in 0..100 {
                let mut cat = Catalog::new();
                cat.insert(bundled.instantiate(i).unwrap());
                black_box(cat.query_unoptimized(&plan).unwrap());
            }
        })
    });
    group.finish();
}

fn bench_dsgd(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_dsgd");
    group.sample_size(10);
    let s: Vec<f64> = (0..=20_000).map(|i| i as f64 * 0.1).collect();
    let d: Vec<f64> = s.iter().map(|&t| (t * 0.9).sin()).collect();
    let sys = build_spline_system(&s, &d).unwrap();
    group.bench_function("thomas_20k", |b| {
        b.iter(|| black_box(sys.a.solve(&sys.b).unwrap()))
    });
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("dsgd_50cycles_20k", threads),
            &threads,
            |b, &threads| {
                let cfg = DsgdConfig {
                    cycles: 50,
                    threads,
                    ..DsgdConfig::default()
                };
                b.iter(|| black_box(dsgd_solve(&sys.a, &sys.b, &cfg, &mut rng_from_seed(1))))
            },
        );
    }
    group.finish();
}

fn bench_gridfield(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_gridfield");
    group.sample_size(20);
    let (fine, fidx) = Grid::structured_2d(128, 128).unwrap();
    let (coarse, cidx) = Grid::structured_2d(32, 32).unwrap();
    let fine = Arc::new(fine);
    let coarse = Arc::new(coarse);
    let faces = fine.cells_of_dim(2);
    let gf = GridField::bind(
        Arc::clone(&fine),
        2,
        faces.iter().map(|&c| c as f64).collect(),
    )
    .unwrap();
    let op = Regrid {
        assignment: faces
            .iter()
            .map(|&cell| {
                let (i, j) = fidx.face_coords(cell);
                Some(cidx.face(i / 4, j / 4))
            })
            .collect(),
        agg: RegridAgg::Sum,
    };
    let keep = |cell: usize| cidx.face_coords(cell).1 < 2;
    group.bench_function("regrid_then_restrict", |b| {
        b.iter(|| black_box(regrid_then_restrict(&gf, &coarse, 2, &op, keep).unwrap()))
    });
    group.bench_function("restrict_then_regrid", |b| {
        b.iter(|| black_box(restrict_then_regrid(&gf, &coarse, 2, &op, keep).unwrap()))
    });
    group.finish();
}

fn bench_rangequery(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_rangequery");
    group.sample_size(20);
    let mut rng = rng_from_seed(7);
    let agents = random_agents(50_000, 100.0, &mut rng);
    let tree = KdTree::build(&agents);
    let pred = |a: &mde_abs::rangequery::AgentState| a.attrs[0] > 25.0;
    group.bench_function("kdtree_query_50k", |b| {
        b.iter(|| black_box(tree.range_query(&agents, (50.0, 50.0), 1.0, pred)))
    });
    group.bench_function("naive_scan_50k", |b| {
        b.iter(|| black_box(range_query_naive(&agents, (50.0, 50.0), 1.0, pred)))
    });
    group.bench_function("kdtree_build_50k", |b| {
        b.iter(|| black_box(KdTree::build(&agents)))
    });
    group.finish();
}

fn bench_pf(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_particle_filter");
    group.sample_size(10);
    let model = default_scenario();
    let mut rng = rng_from_seed(3);
    let (_, obs) = model.simulate_truth(10, &mut rng);
    for n in [50usize, 200] {
        group.bench_with_input(BenchmarkId::new("bootstrap_10steps", n), &n, |b, &n| {
            let pf = ParticleFilter::new(n, 5);
            b.iter(|| black_box(pf.run(&model, &BootstrapProposal, &obs)))
        });
    }
    group.finish();
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("E15_gp");
    group.sample_size(10);
    let mut rng = rng_from_seed(21);
    let design = nolh(2, 33, 50, &mut rng);
    let xs = design.scale_to(&[(-1.0, 1.0), (-1.0, 1.0)]);
    let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin() + x[1]).collect();
    group.bench_function("fit_33pts_2d", |b| {
        b.iter(|| black_box(GpModel::fit(&xs, &ys, &GpConfig::default()).unwrap()))
    });
    let gp = GpModel::fit(&xs, &ys, &GpConfig::default()).unwrap();
    group.bench_function("predict", |b| {
        b.iter(|| black_box(gp.predict(&[0.3, -0.4])))
    });
    group.finish();
}

fn bench_rc(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_result_caching");
    group.sample_size(10);
    // M1 does real work (a long random walk) so caching has something to
    // save; M2 is cheap.
    let m1 = Arc::new(FnModel::new(
        "slow",
        10.0,
        |_: &[f64], rng: &mut mde_numeric::rng::Rng| {
            use rand::Rng as _;
            let mut x = 0.0;
            for _ in 0..20_000 {
                x += rng.gen::<f64>() - 0.5;
            }
            vec![x]
        },
    ));
    let m2 = Arc::new(FnModel::new(
        "fast",
        1.0,
        |x: &[f64], rng: &mut mde_numeric::rng::Rng| {
            use rand::Rng as _;
            vec![x[0] + rng.gen::<f64>()]
        },
    ));
    let comp = SeriesComposite::new(m1, m2);
    for &alpha in &[1.0, 0.1] {
        group.bench_with_input(
            BenchmarkId::new("rc_n200", format!("alpha_{alpha}")),
            &alpha,
            |b, &alpha| {
                b.iter(|| {
                    black_box(run_rc(
                        &comp,
                        &RcConfig {
                            n: 200,
                            alpha,
                            seed: 1,
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mcdb_bundles,
    bench_dsgd,
    bench_gridfield,
    bench_rangequery,
    bench_pf,
    bench_gp,
    bench_rc
);
criterion_main!(benches);
