//! Criterion benchmarks for the logical→physical query pipeline: the
//! vectorized columnar engine vs the legacy row-at-a-time executor on
//! filter / join / group-by at ~10^5 rows, plus the prepare-once /
//! execute-many split that Monte Carlo replication relies on.
//!
//! Run with `cargo bench -p mde-bench --bench query_engine`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use mde_mcdb::mc::MonteCarloQuery;
use mde_mcdb::prelude::*;
use mde_mcdb::query::{AggFunc, AggSpec, PreparedQuery};
use mde_mcdb::vg::NormalVg;

const FACT_ROWS: usize = 100_000;
const DIM_ROWS: usize = 1_000;

/// A deterministic 10^5-row star-schema catalog: FACT(K, G, V, Q) with a
/// 1000-key join column and a 16-way group column, DIM(K, LABEL).
fn star_catalog() -> Catalog {
    let mut db = Catalog::new();
    db.insert(
        Table::build(
            "FACT",
            &[
                ("K", DataType::Int),
                ("G", DataType::Int),
                ("V", DataType::Float),
                ("Q", DataType::Int),
            ],
        )
        .rows((0..FACT_ROWS).map(|i| {
            // Cheap deterministic scramble so values are unordered but
            // reproducible without an RNG dependency in the setup path.
            let h = (i as u64).wrapping_mul(2654435761) % 100_003;
            vec![
                Value::from((h % DIM_ROWS as u64) as i64),
                Value::from((h % 16) as i64),
                Value::from(h as f64 / 100.0 - 450.0),
                Value::from(i as i64),
            ]
        }))
        .finish()
        .unwrap(),
    );
    db.insert(
        Table::build("DIM", &[("K", DataType::Int), ("LABEL", DataType::Str)])
            .rows((0..DIM_ROWS).map(|j| {
                vec![
                    Value::from(j as i64),
                    Value::from(["red", "green", "blue"][j % 3]),
                ]
            }))
            .finish()
            .unwrap(),
    );
    db
}

fn filter_plan() -> Plan {
    Plan::scan("FACT").filter(
        Expr::col("V")
            .gt(Expr::lit(0.0))
            .and(Expr::col("Q").le(Expr::lit((FACT_ROWS / 2) as i64))),
    )
}

fn join_plan() -> Plan {
    Plan::scan("FACT")
        .join(Plan::scan("DIM"), &[("K", "K")])
        .filter(Expr::col("V").gt(Expr::lit(250.0)))
}

fn group_by_plan() -> Plan {
    Plan::scan("FACT").aggregate(
        &["G"],
        vec![
            AggSpec::count_star("N"),
            AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("V")),
            AggSpec::new("PEAK", AggFunc::Max, Expr::col("V")),
        ],
    )
}

/// Vectorized (default) vs legacy executor on the three core operators.
fn bench_operators(c: &mut Criterion) {
    let db = star_catalog();
    let mut group = c.benchmark_group("query_engine");
    group.sample_size(10);
    for (name, plan) in [
        ("filter_100k", filter_plan()),
        ("join_100k_x_1k", join_plan()),
        ("group_by_100k", group_by_plan()),
    ] {
        group.bench_with_input(BenchmarkId::new("vectorized", name), &plan, |b, plan| {
            b.iter(|| black_box(db.query(black_box(plan)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("legacy_rows", name), &plan, |b, plan| {
            b.iter(|| black_box(db.query_unoptimized(black_box(plan)).unwrap()))
        });
    }
    group.finish();
}

/// Planning amortization: preparing a physical plan once and executing it
/// repeatedly vs re-planning on every execution.
fn bench_prepare_once(c: &mut Criterion) {
    let db = star_catalog();
    let plan = join_plan().aggregate(
        &["LABEL"],
        vec![AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("V"))],
    );
    let mut group = c.benchmark_group("query_engine_prepare");
    group.sample_size(10);
    group.bench_function("prepare_once_execute_100", |b| {
        b.iter(|| {
            let prepared = PreparedQuery::prepare(&plan, &db).unwrap();
            for _ in 0..100 {
                black_box(prepared.execute(&db).unwrap());
            }
        })
    });
    group.bench_function("replan_every_execute_100", |b| {
        b.iter(|| {
            for _ in 0..100 {
                black_box(db.query(&plan).unwrap());
            }
        })
    });
    group.finish();
}

/// End-to-end Monte Carlo query at 100 replicates: the runner plans the
/// stochastic specs and the aggregate query once, then only realization
/// and vectorized execution repeat per replicate.
fn bench_mc_replicates(c: &mut Criterion) {
    let mut db = Catalog::new();
    db.insert(
        Table::build("ITEMS", &[("IID", DataType::Int)])
            .rows((0..500).map(|i| vec![Value::from(i as i64)]))
            .finish()
            .unwrap(),
    );
    db.insert(
        Table::build(
            "PARAMS",
            &[("MEAN", DataType::Float), ("STD", DataType::Float)],
        )
        .row(vec![Value::from(100.0), Value::from(20.0)])
        .finish()
        .unwrap(),
    );
    let spec = RandomTableSpec::builder("SALES")
        .for_each(Plan::scan("ITEMS"))
        .with_vg(Arc::new(NormalVg))
        .vg_params_query(Plan::scan("PARAMS"))
        .select(&[("IID", Expr::col("IID")), ("AMT", Expr::col("VALUE"))])
        .build()
        .unwrap();
    let plan = Plan::scan("SALES")
        .filter(Expr::col("AMT").gt(Expr::lit(95.0)))
        .aggregate(&[], vec![AggSpec::new("T", AggFunc::Sum, Expr::col("AMT"))]);
    let q = MonteCarloQuery::new(vec![spec], plan);
    let mut group = c.benchmark_group("query_engine_mc");
    group.sample_size(10);
    group.bench_function("mc_query_500rows_100reps", |b| {
        b.iter(|| black_box(q.run(&db, 100, 42).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_operators,
    bench_prepare_once,
    bench_mc_replicates
);
criterion_main!(benches);
