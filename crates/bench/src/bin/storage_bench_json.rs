//! Emit `BENCH_storage.json`: out-of-core paged-table throughput at
//! working sets below, above, and far above the buffer pool's frame
//! budget (0.5×, 2×, 8×), with the pool's hit rate and eviction churn
//! per lane.
//!
//! Usage: `cargo run --release -p mde-bench --bin storage_bench_json [-- --quick]`
//!
//! Writes `BENCH_storage.json` into the current directory and prints it
//! to stdout. `--quick` shrinks page count and repetitions for a CI
//! smoke run (and skips the file write so CI never dirties the tree).
//! `MDE_CHAOS_SEED` perturbs the value scramble; lanes stay
//! deterministic within one seed.
//!
//! Guardrails enforced before anything is emitted:
//! - every paged result is bit-identical to the in-memory oracle;
//! - frame residency never exceeds the pool budget, even at 8×.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use mde_mcdb::prelude::*;
use mde_mcdb::query::{AggFunc, AggSpec, Plan};
use mde_mcdb::storage::BufferPool;

const DIM_ROWS: usize = 200;

/// Star-schema fact table sized to `fact_rows`, values scrambled by
/// `seed` (same family as the query bench, narrower dim for join reuse).
fn star_catalog(fact_rows: usize, seed: u64) -> Catalog {
    let mut db = Catalog::new();
    db.insert(
        Table::build(
            "FACT",
            &[
                ("K", DataType::Int),
                ("G", DataType::Int),
                ("V", DataType::Float),
                ("Q", DataType::Int),
            ],
        )
        .rows((0..fact_rows).map(|i| {
            let h = (i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 100_003;
            vec![
                Value::from((h % DIM_ROWS as u64) as i64),
                Value::from((h % 16) as i64),
                Value::from(h as f64 / 100.0 - 450.0),
                Value::from(i as i64),
            ]
        }))
        .finish()
        .unwrap(),
    );
    db.insert(
        Table::build("DIM", &[("K", DataType::Int), ("LABEL", DataType::Str)])
            .rows((0..DIM_ROWS).map(|j| {
                vec![
                    Value::from(j as i64),
                    Value::from(["red", "green", "blue"][j % 3]),
                ]
            }))
            .finish()
            .unwrap(),
    );
    db
}

fn op_plans() -> Vec<(&'static str, Plan)> {
    vec![
        ("scan", Plan::scan("FACT")),
        (
            "filter",
            Plan::scan("FACT").filter(Expr::col("V").gt(Expr::lit(0.0))),
        ),
        (
            "join",
            Plan::scan("FACT")
                .join(Plan::scan("DIM"), &[("K", "K")])
                .aggregate(
                    &["LABEL"],
                    vec![
                        AggSpec::count_star("N"),
                        AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("V")),
                    ],
                ),
        ),
    ]
}

/// Median wall time (ms) over `reps` runs of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct LaneResult {
    working_set: &'static str,
    rows: usize,
    pages: usize,
    ops: Vec<(&'static str, f64, f64)>, // (op, ms, mrows/s)
    hit_rate: f64,
    evictions: u64,
    resident: usize,
}

fn run_lane(
    working_set: &'static str,
    ratio: f64,
    budget: usize,
    page_size: usize,
    reps: usize,
    seed: u64,
    dir: &std::path::Path,
) -> LaneResult {
    // ~`values_per_page` values fit one page body; 4 fact columns. Size
    // the row count so the fact file is ~`ratio` × the frame budget.
    let values_per_page = (page_size - 28) / 8;
    let fact_rows = ((ratio * budget as f64 / 4.0) * values_per_page as f64).ceil() as usize;
    let db = star_catalog(fact_rows.max(values_per_page), seed);

    let pool = BufferPool::new(budget);
    let paged = db
        .to_paged(&dir.join(working_set), page_size, Arc::clone(&pool))
        .expect("paged twin");
    let pages = paged.get("FACT").unwrap().paged_store().unwrap().n_pages();

    let mut ops = Vec::new();
    for (name, plan) in op_plans() {
        let oracle = db.query(&plan).expect("oracle execution");
        let got = paged.query(&plan).expect("paged execution");
        assert_eq!(
            oracle.rows(),
            got.rows(),
            "paged `{name}` diverged from the in-memory oracle at {working_set}"
        );
        let ms = time_ms(reps, || {
            black_box(paged.query(black_box(&plan)).unwrap());
        });
        let rows = db.get("FACT").unwrap().len();
        ops.push((name, ms, rows as f64 / 1e6 / (ms / 1e3).max(1e-9)));
    }

    let stats = pool.stats();
    assert!(
        stats.resident <= budget,
        "resident {} frames exceeds budget {budget} at {working_set}",
        stats.resident
    );
    LaneResult {
        working_set,
        rows: db.get("FACT").unwrap().len(),
        pages,
        ops,
        hit_rate: stats.hit_rate(),
        evictions: stats.evictions,
        resident: stats.resident,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed: u64 = std::env::var("MDE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(21);
    let (budget, page_size, reps) = if quick { (32, 1024, 3) } else { (64, 4096, 9) };
    let dir = std::env::temp_dir().join(format!("mde_storage_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");

    let mut lanes = Vec::new();
    for (working_set, ratio) in [("0.5x", 0.5), ("2x", 2.0), ("8x", 8.0)] {
        lanes.push(run_lane(
            working_set,
            ratio,
            budget,
            page_size,
            reps,
            seed,
            &dir,
        ));
    }
    std::fs::remove_dir_all(&dir).ok();

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"paged_storage\",\n  \"seed\": {seed},\n  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"page_size\": {page_size},\n  \"pool_budget_frames\": {budget},\n  \"lanes\": [\n"
    ));
    for (i, l) in lanes.iter().enumerate() {
        let mut op_json = String::new();
        for (name, ms, mrows) in &l.ops {
            op_json.push_str(&format!(
                "\"{name}_ms\": {ms:.3}, \"{name}_mrows_s\": {mrows:.2}, "
            ));
        }
        json.push_str(&format!(
            "    {{\"working_set\": \"{}\", \"rows\": {}, \"pages\": {}, {}\
             \"pool_hit_rate\": {:.4}, \"evictions\": {}, \"resident\": {}}}{}\n",
            l.working_set,
            l.rows,
            l.pages,
            op_json,
            l.hit_rate,
            l.evictions,
            l.resident,
            if i + 1 < lanes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    print!("{json}");
    if !quick {
        std::fs::write("BENCH_storage.json", &json).expect("write BENCH_storage.json");
        eprintln!("wrote BENCH_storage.json");
    }
}
