//! Emit `BENCH_sched.json`: throughput and queue-wait tails for the
//! overload-resilient campaign scheduler under a mixed multi-tenant
//! workload — real Monte Carlo query campaigns alongside synthetic
//! retryable work, with injected slowdowns and a pressure-shedding
//! admission queue.
//!
//! Usage: `cargo run --release -p mde-bench --bin sched_bench_json [-- --quick]`
//!
//! Writes `BENCH_sched.json` into the current directory and prints it to
//! stdout. `--quick` shrinks the workload to a CI smoke run (and skips
//! the file write so CI never dirties the tree). The fault-placement
//! seed is taken from `MDE_CHAOS_SEED` when set, so the CI matrix
//! exercises different overload victims per lane while staying
//! deterministic within one.
//!
//! Reported per worker-thread count: campaigns-per-second throughput,
//! queue-wait p50/p99, end-to-end drain time, and the deterministic
//! admission ledger (admitted/completed/shed/preempted/retries) — the
//! ledger half is asserted identical across thread counts before
//! anything is emitted, so a nondeterminism regression fails the bench
//! instead of publishing garbage.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mde_core::resilience::{
    CampaignCtl, CampaignError, CampaignOutput, CampaignStep, FaultPlan, Priority, RunOptions,
    RunPolicy, RunReport,
};
use mde_core::sched::{CampaignSpec, SchedConfig, SchedRun, Scheduler};
use mde_mcdb::mc::MonteCarloQuery;
use mde_mcdb::prelude::*;
use mde_mcdb::query::{AggFunc, AggSpec, Plan};
use mde_mcdb::sched::McCampaign;
use mde_mcdb::vg::NormalVg;
use mde_numeric::resilience::sched::Campaign;
use mde_numeric::{BackoffConfig, BreakerConfig};

/// Synthetic campaign: fails retryably `failures` times, then completes.
struct Flaky {
    failures: u32,
}

impl Campaign for Flaky {
    fn run(&mut self, ctl: &CampaignCtl) -> Result<CampaignStep, CampaignError> {
        if ctl.cancel.is_cancelled() {
            return Ok(CampaignStep::Boundary { resumable: true });
        }
        if self.failures > 0 {
            self.failures -= 1;
            return Err(CampaignError::retryable("injected transient failure"));
        }
        Ok(CampaignStep::Done(CampaignOutput {
            value: Some(1.0),
            report: RunReport::new(),
        }))
    }
}

fn mc_campaign(n: usize, seed: u64, policy: RunPolicy) -> McCampaign {
    let mut db = Catalog::new();
    db.insert(
        Table::build("ITEMS", &[("IID", DataType::Int)])
            .rows((0..8).map(|i| vec![Value::from(i)]))
            .finish()
            .expect("items table"),
    );
    db.insert(
        Table::build(
            "PARAMS",
            &[("MEAN", DataType::Float), ("STD", DataType::Float)],
        )
        .row(vec![Value::from(10.0), Value::from(2.0)])
        .finish()
        .expect("params table"),
    );
    let spec = RandomTableSpec::builder("SALES")
        .for_each(Plan::scan("ITEMS"))
        .with_vg(Arc::new(NormalVg))
        .vg_params_query(Plan::scan("PARAMS"))
        .select(&[("IID", Expr::col("IID")), ("AMT", Expr::col("VALUE"))])
        .build()
        .expect("random table spec");
    let plan = Plan::scan("SALES").aggregate(
        &[],
        vec![AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("AMT"))],
    );
    McCampaign::new(
        MonteCarloQuery::new(vec![spec], plan),
        db,
        n,
        seed,
        RunOptions::policy(policy),
    )
}

fn workload_cfg(seed: u64) -> SchedConfig {
    // Slow down two seed-selected campaigns so queue waits have a tail.
    let faults = FaultPlan::new()
        .slow_worker(seed % 4, 3)
        .slow_worker(4 + seed % 4, 2);
    SchedConfig {
        // Tight enough that the full workload (32 submissions per tenant)
        // actually exercises admission control: low-priority victims are
        // shed and some submissions take typed QueueFull rejections.
        queue_capacity: 24,
        max_attempts: 4,
        backoff: BackoffConfig {
            base: Duration::from_micros(200),
            cap: Duration::from_millis(2),
            jitter: 0.5,
        },
        breaker: BreakerConfig {
            trip_after: 16,
            cooldown: 4,
        },
        stall_ms: 5,
        faults: Some(faults),
        ..SchedConfig::default()
    }
}

/// Submit `n_campaigns` across three tenants; every third is a real
/// Monte Carlo query, the rest are synthetic with varying retry depth.
fn submit_workload(s: &mut Scheduler, n_campaigns: u64, mc_reps: usize, seed: u64) -> u64 {
    let tenants = ["acme", "globex", "initech"];
    let mut admitted = 0;
    for i in 0..n_campaigns {
        // Priority cycles independently of tenant ((i / 3) vs i) so every
        // tenant's queue mixes priorities and shedding has victims.
        let spec = CampaignSpec::new(tenants[(i % 3) as usize], format!("c{i}"))
            .on_resource(if i % 2 == 0 { "mcdb" } else { "sim" })
            .with_priority(match (i / 3) % 3 {
                0 => Priority::Interactive,
                1 => Priority::Batch,
                _ => Priority::BestEffort,
            });
        let campaign: Box<dyn Campaign> = if i % 3 == 0 {
            Box::new(mc_campaign(
                mc_reps,
                seed ^ i,
                RunPolicy::BestEffort { min_fraction: 0.0 },
            ))
        } else {
            Box::new(Flaky {
                failures: (i % 3) as u32,
            })
        };
        if s.submit(spec, campaign).is_ok() {
            admitted += 1;
        }
    }
    admitted
}

struct Lane {
    threads: usize,
    drain_ms: f64,
    throughput_cps: f64,
    queue_wait_p50_ms: f64,
    queue_wait_p99_ms: f64,
    breaker_trips: u64,
    ledger: Vec<(String, u64)>,
}

fn run_lane(threads: usize, n_campaigns: u64, mc_reps: usize, seed: u64) -> (Lane, SchedRun) {
    let mut s = Scheduler::new(workload_cfg(seed));
    let admitted = submit_workload(&mut s, n_campaigns, mc_reps, seed);
    let t = Instant::now();
    let run = s.run(threads);
    let drain = t.elapsed().as_secs_f64();
    let wait = run.metrics.duration("sched.queue_wait");
    let q = |p: f64| {
        wait.and_then(|h| h.quantile(p))
            .map(|v| v * 1e3)
            .unwrap_or(0.0)
    };
    // `sched.breaker_trips` is deliberately NOT in the deterministic
    // ledger: with failures arriving from several campaigns on one
    // resource, the streak the breaker sees depends on worker
    // interleaving. Trips are flow control — they delay dispatch but
    // never change campaign outcomes — so they are per-lane telemetry.
    let ledger = [
        "sched.admitted",
        "sched.rejected",
        "sched.completed",
        "sched.shed",
        "sched.preempted",
        "sched.retries",
        "sched.failed",
    ]
    .iter()
    .map(|k| (k.to_string(), run.metrics.counter(k)))
    .collect();
    let lane = Lane {
        threads,
        drain_ms: drain * 1e3,
        throughput_cps: admitted as f64 / drain.max(1e-9),
        queue_wait_p50_ms: q(0.5),
        queue_wait_p99_ms: q(0.99),
        breaker_trips: run.metrics.counter("sched.breaker_trips"),
        ledger,
    };
    (lane, run)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed: u64 = std::env::var("MDE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(21);
    let (n_campaigns, mc_reps) = if quick { (24, 16) } else { (96, 64) };

    let mut lanes = Vec::new();
    let mut ledgers = Vec::new();
    for &threads in &[1usize, 2, 8] {
        let (lane, _run) = run_lane(threads, n_campaigns, mc_reps, seed);
        ledgers.push(lane.ledger.clone());
        lanes.push(lane);
    }

    // Guardrail: the deterministic ledger half must not depend on the
    // worker-thread count. Fail loudly rather than publish numbers from a
    // scheduler that lost its determinism contract.
    for l in &ledgers[1..] {
        assert_eq!(
            &ledgers[0], l,
            "deterministic ledger diverged across thread counts"
        );
    }

    // Hand-rolled JSON: stable field order, no serializer dependency.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"sched_overload\",\n  \"seed\": {seed},\n"
    ));
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"campaigns\": {n_campaigns},\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str("  \"ledger\": {");
    for (i, (k, v)) in ledgers[0].iter().enumerate() {
        json.push_str(&format!(
            "{}\"{}\": {}",
            if i == 0 { "" } else { ", " },
            k.strip_prefix("sched.").unwrap_or(k),
            v
        ));
    }
    json.push_str("},\n");
    json.push_str("  \"lanes\": [\n");
    for (i, l) in lanes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"drain_ms\": {:.3}, \"throughput_cps\": {:.1}, \
             \"queue_wait_p50_ms\": {:.3}, \"queue_wait_p99_ms\": {:.3}, \
             \"breaker_trips\": {}}}{}\n",
            l.threads,
            l.drain_ms,
            l.throughput_cps,
            l.queue_wait_p50_ms,
            l.queue_wait_p99_ms,
            l.breaker_trips,
            if i + 1 < lanes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    print!("{json}");
    if !quick {
        std::fs::write("BENCH_sched.json", &json).expect("write BENCH_sched.json");
        eprintln!("wrote BENCH_sched.json");
    }
}
