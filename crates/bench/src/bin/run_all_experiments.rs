//! Run the full experiment battery (the source of EXPERIMENTS.md numbers).
fn main() {
    for (id, title, run) in mde_bench::experiments::all() {
        println!("================================================================");
        println!("{id}: {title}");
        println!("================================================================");
        println!("{}", run());
    }
}
