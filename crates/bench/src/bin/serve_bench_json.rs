//! Emit `BENCH_serve.json`: sustained throughput and latency tails for
//! the `mde-server` service front-end under a mixed workload — OLAP SQL
//! queries (prepared-plan cache hits) interleaved with Monte Carlo
//! estimations — driven by concurrent wire clients against a live
//! server, ending with a graceful drain.
//!
//! Usage: `cargo run --release -p mde-bench --bin serve_bench_json [-- --quick]`
//!
//! Writes `BENCH_serve.json` into the current directory and prints it
//! to stdout. `--quick` shrinks the workload to a CI smoke run (and
//! skips the file write so CI never dirties the tree). `MDE_CHAOS_SEED`
//! seeds the per-client Monte Carlo seeds so lanes vary across the CI
//! matrix while staying deterministic within one.
//!
//! Guardrails before anything is emitted: every request must succeed
//! (zero typed errors under a well-behaved workload), every Monte Carlo
//! answer must be finite, and the drain must return — a wedged accept
//! loop or a lost session fails the bench instead of publishing
//! garbage.

use mde_mcdb::prelude::*;
use mde_server::client::{Client, Reply};
use mde_server::{Server, ServerConfig};
use std::time::{Duration, Instant};

const DDL: &str = "CREATE TABLE SALES(IID, AMT) AS FOR EACH ITEMS \
                   WITH Normal(SELECT MEAN, STD FROM PARAMS) \
                   SELECT IID, VALUE AS AMT";
const MC_SQL: &str = "SELECT SUM(AMT) AS V FROM SALES";

const OLAP: &[&str] = &[
    "SELECT COUNT(*) AS N FROM ITEMS",
    "SELECT SUM(IID) AS S FROM ITEMS",
    "SELECT COUNT(*) AS N FROM ITEMS WHERE IID > 3",
    "SELECT MEAN FROM PARAMS",
];

fn seed_catalog() -> Catalog {
    let mut db = Catalog::new();
    db.insert(
        Table::build("ITEMS", &[("IID", DataType::Int)])
            .rows((0..8).map(|i| vec![Value::from(i)]))
            .finish()
            .expect("items table"),
    );
    db.insert(
        Table::build(
            "PARAMS",
            &[("MEAN", DataType::Float), ("STD", DataType::Float)],
        )
        .row(vec![Value::from(10.0), Value::from(2.0)])
        .finish()
        .expect("params table"),
    );
    db
}

fn quantile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// One client session's work: a request mix of OLAP SQL and MC, each
/// latency sampled client-side. Returns `(sql_ms, mc_ms, errors)`.
fn drive_client(
    addr: std::net::SocketAddr,
    worker: u64,
    rounds: usize,
    mc_reps: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>, u64) {
    let mut client = Client::connect(addr).expect("client connects");
    client
        .set_reply_timeout(Some(Duration::from_secs(120)))
        .expect("reply timeout");
    client
        .hello(&format!("bench{worker}"))
        .expect("hello")
        .expect_ok("HELLO");
    client
        .send(&format!("VG\n{DDL}"))
        .expect("vg")
        .expect_ok("VG");

    let mut sql_ms = Vec::new();
    let mut mc_ms = Vec::new();
    let mut errors = 0u64;
    for round in 0..rounds {
        // 3 OLAP probes per MC estimation — a front-end serving mostly
        // interactive reads with periodic heavy analytics.
        if round % 4 != 3 {
            let q = OLAP[(worker as usize + round) % OLAP.len()];
            let t = Instant::now();
            match client.sql(q, Some(30_000)) {
                Ok(Reply::Table { .. }) => sql_ms.push(t.elapsed().as_secs_f64() * 1e3),
                _ => errors += 1,
            }
        } else {
            let mc_seed = seed ^ (worker << 32) ^ round as u64;
            let t = Instant::now();
            match client.send(&format!("MC n={mc_reps} seed={mc_seed}\n{MC_SQL}")) {
                Ok(Reply::Ok(map)) => {
                    let finite = map
                        .get("mean")
                        .and_then(|m| m.parse::<f64>().ok())
                        .is_some_and(f64::is_finite);
                    if finite {
                        mc_ms.push(t.elapsed().as_secs_f64() * 1e3);
                    } else {
                        errors += 1;
                    }
                }
                _ => errors += 1,
            }
        }
    }
    (sql_ms, mc_ms, errors)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed: u64 = std::env::var("MDE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(21);
    let (clients, rounds, mc_reps) = if quick {
        (4u64, 24usize, 16)
    } else {
        (8, 120, 48)
    };

    let server = Server::start(
        seed_catalog(),
        ServerConfig {
            max_sessions: clients as usize + 4,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|w| std::thread::spawn(move || drive_client(addr, w, rounds, mc_reps, seed)))
        .collect();
    let mut sql_ms = Vec::new();
    let mut mc_ms = Vec::new();
    let mut errors = 0u64;
    for h in handles {
        let (s, m, e) = h.join().expect("client thread");
        sql_ms.extend(s);
        mc_ms.extend(m);
        errors += e;
    }
    let elapsed = t0.elapsed().as_secs_f64();

    // Cache effectiveness, observed through the wire.
    let mut stats_client = Client::connect(addr).expect("stats client");
    let stats = stats_client
        .send("STATS")
        .expect("stats")
        .expect_ok("STATS");
    let cache_hits: u64 = stats["cache_hits"].parse().unwrap_or(0);
    let cache_misses: u64 = stats["cache_misses"].parse().unwrap_or(0);
    drop(stats_client);

    let t_drain = Instant::now();
    let report = server.shutdown();
    let drain_ms = t_drain.elapsed().as_secs_f64() * 1e3;

    // Guardrails: a well-behaved workload must be error-free, and the
    // drain must have reaped every session.
    assert_eq!(errors, 0, "typed errors under a well-behaved workload");
    assert!(
        report.sessions_closed >= clients,
        "drain lost sessions: {} < {clients}",
        report.sessions_closed
    );
    let requests = sql_ms.len() + mc_ms.len();
    assert_eq!(requests, clients as usize * rounds, "lost requests");

    sql_ms.sort_by(|a, b| a.total_cmp(b));
    mc_ms.sort_by(|a, b| a.total_cmp(b));

    // Hand-rolled JSON: stable field order, no serializer dependency.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"serve_front_end\",\n  \"seed\": {seed},\n  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"clients\": {clients},\n  \"requests\": {requests},\n  \"errors\": {errors},\n"
    ));
    json.push_str(&format!(
        "  \"elapsed_ms\": {:.3},\n  \"throughput_qps\": {:.1},\n",
        elapsed * 1e3,
        requests as f64 / elapsed.max(1e-9)
    ));
    json.push_str(&format!(
        "  \"sql\": {{\"count\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}},\n",
        sql_ms.len(),
        quantile(&sql_ms, 0.5),
        quantile(&sql_ms, 0.99)
    ));
    json.push_str(&format!(
        "  \"mc\": {{\"count\": {}, \"replicates\": {mc_reps}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}},\n",
        mc_ms.len(),
        quantile(&mc_ms, 0.5),
        quantile(&mc_ms, 0.99)
    ));
    json.push_str(&format!(
        "  \"cache\": {{\"hits\": {cache_hits}, \"misses\": {cache_misses}}},\n"
    ));
    json.push_str(&format!(
        "  \"drain\": {{\"drain_ms\": {:.3}, \"sessions_closed\": {}, \"panics\": {}}}\n",
        drain_ms, report.sessions_closed, report.panics
    ));
    json.push_str("}\n");

    print!("{json}");
    if !quick {
        std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
        eprintln!("wrote BENCH_serve.json");
    }
}
