//! Emit `BENCH_cache.json`: end-to-end timings for the content-addressed
//! result cache on a revisit-heavy kriging-calibration fleet and a Monte
//! Carlo campaign replay (DESIGN.md §6h).
//!
//! Usage: `cargo run --release -p mde-bench --bin cache_bench_json [-- --quick]`
//!
//! Writes `BENCH_cache.json` into the current directory and prints it to
//! stdout. `--quick` shrinks the workload to a CI smoke run (and skips
//! the file write so CI never dirties the tree). `MDE_CHAOS_SEED` offsets
//! the campaign seeds so the CI matrix exercises different trajectories
//! while staying deterministic within one lane.
//!
//! Before anything is emitted, the cached runs are checked bit-identical
//! against uncached recomputes — a determinism regression fails the bench
//! instead of publishing numbers for a wrong answer.

use std::time::Instant;

use mde_calibrate::kriging_cal::{
    kriging_calibrate_cached, kriging_calibrate_with, KrigingCalConfig,
};
use mde_calibrate::optim::Bounds;
use mde_mcdb::mc::MonteCarloQuery;
use mde_mcdb::prelude::*;
use mde_mcdb::query::AggSpec;
use mde_mcdb::vg::NormalVg;
use mde_mcdb::RunOptions;
use mde_numeric::cache::{CacheHandle, ObjectiveScope, DEFAULT_MAX_BYTES};
use mde_numeric::rng::rng_from_seed;
use std::sync::Arc;

/// A calibration objective whose cost is dominated by an inner
/// deterministic pseudo-Monte-Carlo loop of `work` steps — the shape of a
/// real simulation-backed objective, without depending on wall-clock
/// noise sources.
fn expensive_objective(x: &[f64], rep: usize, work: u64) -> f64 {
    let mut state = x
        .iter()
        .fold(0x243F_6A88_85A3_08D3u64, |h, v| {
            (h ^ v.to_bits()).wrapping_mul(0x100000001B3)
        })
        ^ (rep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut acc = 0.0f64;
    for _ in 0..work {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        acc += (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    let a = x[0] - 0.6;
    let b = x[1] - 0.3;
    3.0 * a * a + 2.0 * b * b + 0.5 * a * b + 0.05 * acc / work as f64
}

fn fleet_cfg() -> KrigingCalConfig {
    KrigingCalConfig {
        design_runs: 17,
        infill_rounds: 3,
        reps_per_point: 2,
        nolh_tries: 50,
        refit_every: 2,
    }
}

/// One calibration campaign of the fleet, cached. Returns the best value's
/// bits and the number of fresh (non-cache) objective evaluations.
fn run_campaign(
    seed: u64,
    work: u64,
    spec_fp: u64,
    cache: &CacheHandle,
) -> (u64, Vec<u64>, u64) {
    let bounds = Bounds::new(vec![(0.0, 1.0), (0.0, 1.0)]).expect("valid bounds");
    let mut scope = ObjectiveScope::new(cache.clone(), "bench.kriging-fleet", spec_fp, 2, seed);
    let mut rng = rng_from_seed(seed);
    let mut fresh = 0u64;
    let res = kriging_calibrate_cached(
        |x, rep| {
            fresh += 1;
            expensive_objective(x, rep, work)
        },
        &bounds,
        &fleet_cfg(),
        &mut rng,
        None,
        &mut scope,
    )
    .expect("calibration");
    let x_bits = res.best.x.iter().map(|v| v.to_bits()).collect();
    (res.best.fx.to_bits(), x_bits, fresh)
}

fn mc_catalog() -> Catalog {
    let mut db = Catalog::new();
    db.insert(
        Table::build("ITEMS", &[("IID", DataType::Int)])
            .rows((0..25).map(|i| vec![Value::from(i)]))
            .finish()
            .unwrap(),
    );
    db.insert(
        Table::build(
            "PARAMS",
            &[("MEAN", DataType::Float), ("STD", DataType::Float)],
        )
        .row(vec![Value::from(10.0), Value::from(2.0)])
        .finish()
        .unwrap(),
    );
    db
}

fn mc_task() -> MonteCarloQuery {
    let spec = RandomTableSpec::builder("SALES")
        .for_each(Plan::scan("ITEMS"))
        .with_vg(Arc::new(NormalVg))
        .vg_params_query(Plan::scan("PARAMS"))
        .select(&[("IID", Expr::col("IID")), ("AMT", Expr::col("VALUE"))])
        .build()
        .unwrap();
    let q = Plan::scan("SALES").aggregate(
        &[],
        vec![AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("AMT"))],
    );
    MonteCarloQuery::new(vec![spec], q)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let chaos: u64 = std::env::var("MDE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(21);
    let (work, campaigns, mc_n) = if quick {
        (20_000u64, 2usize, 80usize)
    } else {
        (2_000_000u64, 4usize, 400usize)
    };
    let seeds: Vec<u64> = (0..campaigns as u64).map(|k| chaos.wrapping_add(k)).collect();
    let spec_fp = 0xCA11_B07A_u64 ^ work; // objective identity: the work knob shapes the values

    let dir = std::env::temp_dir().join(format!("mde_cache_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("fleet.mdecache");

    // ------------------------------------------------------------------
    // Guardrail: the cached path must be bit-identical to the uncached
    // one before any number is published.
    // ------------------------------------------------------------------
    {
        let bounds = Bounds::new(vec![(0.0, 1.0), (0.0, 1.0)]).expect("valid bounds");
        let mut rng = rng_from_seed(seeds[0]);
        let base = kriging_calibrate_with(
            |x, rep| expensive_objective(x, rep, work),
            &bounds,
            &fleet_cfg(),
            &mut rng,
            None,
        )
        .expect("uncached calibration");
        let probe = CacheHandle::in_memory();
        let (fx_bits, x_bits, _) = run_campaign(seeds[0], work, spec_fp, &probe);
        assert_eq!(
            base.best.fx.to_bits(),
            fx_bits,
            "cached calibration diverged from recompute — refusing to publish numbers"
        );
        assert_eq!(
            base.best.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x_bits,
            "cached calibration point diverged — refusing to publish numbers"
        );
    }

    // ------------------------------------------------------------------
    // Cold pass: the fleet populates a durable cache from scratch.
    // ------------------------------------------------------------------
    let (cold_ms, cold_results, cold_stats) = {
        let (cache, dropped) =
            CacheHandle::open_or_recover(&path, DEFAULT_MAX_BYTES).expect("open cache");
        assert_eq!(dropped, 0);
        let t = Instant::now();
        let results: Vec<_> = seeds
            .iter()
            .map(|&s| run_campaign(s, work, spec_fp, &cache))
            .collect();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        cache.persist().expect("persist cache");
        (ms, results, cache.stats())
    };
    let cold_evals: u64 = cold_results.iter().map(|r| r.2).sum();

    // ------------------------------------------------------------------
    // Warm pass: a fresh process-equivalent (new handle, reloaded file)
    // revisits the exact same fleet. Every evaluation must be a hit.
    // ------------------------------------------------------------------
    let (warm_ms, warm_results, warm_stats, dropped) = {
        let (cache, dropped) =
            CacheHandle::open_or_recover(&path, DEFAULT_MAX_BYTES).expect("reopen cache");
        let t = Instant::now();
        let results: Vec<_> = seeds
            .iter()
            .map(|&s| run_campaign(s, work, spec_fp, &cache))
            .collect();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        (ms, results, cache.stats(), dropped)
    };
    assert_eq!(dropped, 0, "persisted cache must reload clean");
    let warm_evals: u64 = warm_results.iter().map(|r| r.2).sum();
    assert_eq!(warm_evals, 0, "warm fleet must be pure cache hits");
    for (c, w) in cold_results.iter().zip(&warm_results) {
        assert_eq!(c.0, w.0, "warm best diverged — refusing to publish numbers");
        assert_eq!(c.1, w.1, "warm point diverged — refusing to publish numbers");
    }
    let speedup = cold_ms / warm_ms.max(1e-9);
    // The warm handle is fresh (counters start at zero), so its stats are
    // the warm pass's alone.
    let warm_lookups = warm_stats.hits + warm_stats.misses;
    let hit_rate = warm_stats.hits as f64 / warm_lookups.max(1) as f64;
    let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    // ------------------------------------------------------------------
    // Monte Carlo campaign replay: run once cold, once warm.
    // ------------------------------------------------------------------
    let db = mc_catalog();
    let task = mc_task();
    let mc_cache = CacheHandle::in_memory();
    let opts = RunOptions::default().with_cache(mc_cache.clone());
    let t = Instant::now();
    let mc_cold = task
        .run_with_options(&db, mc_n, chaos, &opts)
        .expect("mc cold");
    let mc_cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let mc_warm = task
        .run_with_options(&db, mc_n, chaos, &opts)
        .expect("mc warm");
    let mc_warm_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        mc_cold.result, mc_warm.result,
        "MC replay diverged — refusing to publish numbers"
    );
    assert_eq!(mc_cache.stats().hits, 1);
    let mc_speedup = mc_cold_ms / mc_warm_ms.max(1e-9);

    std::fs::remove_dir_all(&dir).ok();

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"result_cache\",\n  \"seed\": {chaos},\n  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"kriging_fleet\": {{\n    \"campaigns\": {campaigns}, \"objective_work\": {work}, \
         \"reps_per_point\": 2,\n    \"cold_ms\": {cold_ms:.1}, \"warm_ms\": {warm_ms:.1}, \
         \"speedup\": {speedup:.2},\n    \"cold_evals\": {cold_evals}, \
         \"cold_hits\": {}, \"warm_fresh_evals\": {warm_evals},\n    \
         \"warm_lookups\": {warm_lookups}, \"warm_hit_rate\": {hit_rate:.3},\n    \
         \"entries\": {}, \"cache_file_bytes\": {file_bytes}, \"evictions\": {},\n    \
         \"bit_identical\": true\n  }},\n",
        cold_stats.hits, warm_stats.entries, warm_stats.evictions
    ));
    json.push_str(&format!(
        "  \"mc_replay\": {{\n    \"replicates\": {mc_n}, \"cold_ms\": {mc_cold_ms:.2}, \
         \"warm_ms\": {mc_warm_ms:.2}, \"speedup\": {mc_speedup:.2},\n    \
         \"bit_identical\": true\n  }}\n}}\n"
    ));

    print!("{json}");
    if !quick {
        std::fs::write("BENCH_cache.json", &json).expect("write BENCH_cache.json");
        eprintln!("wrote BENCH_cache.json");
    }
}
