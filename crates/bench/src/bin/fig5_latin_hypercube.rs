//! Experiment binary: see `mde_bench::experiments` and DESIGN.md §4.
fn main() {
    println!("{}", mde_bench::experiments::fig5_report());
}
