//! Emit `BENCH_gp.json`: wall-clock measurements of the GP kernel layer —
//! workspace/blocked fits vs the rebuild-everything oracle, and the
//! kriging-calibration infill loop vs the retained pre-optimization loop
//! (scalar refit every round).
//!
//! Usage: `cargo run --release -p mde-bench --bin gp_bench_json [-- --quick]`
//!
//! Writes `BENCH_gp.json` into the current directory and prints it to
//! stdout. `--quick` shrinks sizes and repetitions to a CI smoke run (and
//! skips the file write so CI never dirties the tree). The RNG seed is
//! taken from `MDE_CHAOS_SEED` when set (the CI chaos matrix), so the
//! smoke run exercises different designs per lane while staying
//! deterministic within one.
//!
//! Methodology: every speedup is measured as the **median of per-rep
//! ratios with the two paths timed back-to-back inside each rep**, so
//! slow load drift on a shared machine cancels out of the ratio instead
//! of polluting one side.

use std::time::Instant;

use mde_calibrate::kriging_cal::{
    kriging_calibrate_unoptimized, kriging_calibrate_with, KrigingCalConfig,
};
use mde_calibrate::optim::Bounds;
use mde_metamodel::gp::{GpConfig, GpModel};
use mde_numeric::obs::RunMetrics;
use mde_numeric::rng::rng_from_seed;
use rand::Rng as _;

const DIM: usize = 3;
const FIT_EVALS: usize = 40;

fn design(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = rng_from_seed(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (3.0 * x[0]).sin() * (1.0 + x[1]) + 0.5 * x[2] * x[2])
        .collect();
    (xs, ys)
}

fn fit_cfg(threads: usize) -> GpConfig {
    GpConfig {
        max_evals: FIT_EVALS,
        threads,
        ..GpConfig::default()
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn once_ms(f: &mut dyn FnMut()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

/// Median-of-`reps` wall time, in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    median((0..reps).map(|_| once_ms(&mut f)).collect())
}

/// Interleaved measurement of several paths: each rep times every closure
/// back-to-back. Returns per-path median times in closure order.
fn time_interleaved(reps: usize, fs: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); fs.len()];
    for _ in 0..reps {
        for (slot, f) in samples.iter_mut().zip(fs.iter_mut()) {
            slot.push(once_ms(*f));
        }
    }
    samples.into_iter().map(median).collect()
}

/// Median of per-rep `slow/fast` ratios, both timed inside the same rep.
fn speedup(reps: usize, mut fast: impl FnMut(), mut slow: impl FnMut()) -> (f64, f64, f64) {
    let mut tf = Vec::with_capacity(reps);
    let mut ts = Vec::with_capacity(reps);
    let mut ratios = Vec::with_capacity(reps);
    for _ in 0..reps {
        let f = once_ms(&mut fast);
        let s = once_ms(&mut slow);
        tf.push(f);
        ts.push(s);
        ratios.push(s / f);
    }
    (median(tf), median(ts), median(ratios))
}

struct Entry {
    name: String,
    value_ms: f64,
    note: String,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed: u64 = std::env::var("MDE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(21);
    let reps = if quick { 1 } else { 7 };
    let sizes: &[usize] = if quick { &[64] } else { &[64, 256, 512] };
    let mut entries: Vec<Entry> = Vec::new();

    // Fit: workspace/blocked vs the rebuild-everything oracle, timed
    // back-to-back per rep.
    for &n in sizes {
        let (xs, ys) = design(n, seed);
        let noise = vec![0.0; n];
        if n <= 256 {
            let (fast, slow, ratio) = speedup(
                reps,
                || {
                    GpModel::fit(&xs, &ys, &fit_cfg(1)).expect("fit");
                },
                || {
                    GpModel::fit_unoptimized(&xs, &ys, &noise, &fit_cfg(1)).expect("fit");
                },
            );
            entries.push(Entry {
                name: format!("fit_workspace_blocked_n{n}"),
                value_ms: fast,
                note: format!("{FIT_EVALS}-eval NM search, cached workspace + blocked Cholesky"),
            });
            entries.push(Entry {
                name: format!("fit_unoptimized_oracle_n{n}"),
                value_ms: slow,
                note: "same search, per-eval rebuild + scalar Cholesky (pre-PR path)".into(),
            });
            entries.push(Entry {
                name: format!("fit_speedup_n{n}"),
                value_ms: ratio,
                note: "median per-rep oracle/blocked wall-time ratio (x)".into(),
            });
        } else {
            let fast = time_ms(reps, || {
                GpModel::fit(&xs, &ys, &fit_cfg(1)).expect("fit");
            });
            entries.push(Entry {
                name: format!("fit_workspace_blocked_n{n}"),
                value_ms: fast,
                note: format!("{FIT_EVALS}-eval NM search, cached workspace + blocked Cholesky"),
            });
        }
        if n >= 256 {
            let par = time_ms(reps, || {
                GpModel::fit(&xs, &ys, &fit_cfg(8)).expect("fit");
            });
            entries.push(Entry {
                name: format!("fit_workspace_blocked_t8_n{n}"),
                value_ms: par,
                note: "8-thread row-partitioned assembly (bit-identical)".into(),
            });
        }
    }

    // Infill loop: the retained pre-PR loop (scalar refit every round)
    // vs the new path refitting every round vs incremental borders.
    let bounds = Bounds::new(vec![(0.0, 1.0), (0.0, 1.0)]).expect("bounds");
    let objective = |x: &[f64], _rep: usize| {
        let a = x[0] - 0.6;
        let b = x[1] - 0.3;
        3.0 * a * a + 2.0 * b * b + 0.5 * a * b
    };
    let (design_runs, infill_rounds) = if quick { (17, 3) } else { (65, 8) };
    let cal_cfg = |refit_every: usize| KrigingCalConfig {
        design_runs,
        infill_rounds,
        refit_every,
        ..KrigingCalConfig::default()
    };
    let mut m_full = RunMetrics::new();
    let mut m_incr = RunMetrics::new();
    {
        let infill_reps = if quick { 1 } else { 5 };
        let mut ratios = Vec::with_capacity(infill_reps);
        let mut times: [Vec<f64>; 3] = std::array::from_fn(|_| Vec::new());
        for _ in 0..infill_reps {
            let mut pre_pr = || {
                let mut rng = rng_from_seed(seed ^ 0x5eed);
                kriging_calibrate_unoptimized(objective, &bounds, &cal_cfg(1), &mut rng)
                    .expect("calibration");
            };
            let mut full = || {
                let mut rng = rng_from_seed(seed ^ 0x5eed);
                m_full = RunMetrics::new();
                kriging_calibrate_with(
                    objective,
                    &bounds,
                    &cal_cfg(1),
                    &mut rng,
                    Some(&mut m_full),
                )
                .expect("calibration");
            };
            let mut incr = || {
                let mut rng = rng_from_seed(seed ^ 0x5eed);
                m_incr = RunMetrics::new();
                kriging_calibrate_with(
                    objective,
                    &bounds,
                    &cal_cfg(3),
                    &mut rng,
                    Some(&mut m_incr),
                )
                .expect("calibration");
            };
            let t = time_interleaved(1, &mut [&mut pre_pr, &mut full, &mut incr]);
            ratios.push(t[0] / t[2]);
            for (slot, v) in times.iter_mut().zip(&t) {
                slot.push(*v);
            }
        }
        let labels = [
            (
                "infill_pre_pr_ms",
                "retained pre-PR loop: scalar refit every round".to_string(),
            ),
            (
                "infill_refit_every_round_ms",
                format!(
                    "fast fit every round; factorizations={}",
                    m_full.counter("gp.factorizations")
                ),
            ),
            (
                "infill_incremental_ms",
                format!(
                    "anchor refits + rank-1 borders; factorizations={} extends={}",
                    m_incr.counter("gp.factorizations"),
                    m_incr.counter("gp.extends")
                ),
            ),
        ];
        for ((name, note), t) in labels.into_iter().zip(times) {
            entries.push(Entry {
                name: name.to_string(),
                value_ms: median(t),
                note: format!("{design_runs}-run NOLH + {infill_rounds} rounds; {note}"),
            });
        }
        entries.push(Entry {
            name: "infill_speedup".into(),
            value_ms: median(ratios),
            note: "median per-rep pre-PR/incremental wall-time ratio (x)".into(),
        });
    }

    // Batch prediction scaling.
    {
        let n = if quick { 64 } else { 256 };
        let (xs, ys) = design(n, seed);
        let gp = GpModel::fit(&xs, &ys, &fit_cfg(1)).expect("fit");
        let queries = design(2048, seed ^ 0xbeef).0;
        for threads in [1usize, 8] {
            let t = time_ms(reps, || {
                gp.predict_batch(&queries, threads);
            });
            entries.push(Entry {
                name: format!("predict_batch_2048_t{threads}"),
                value_ms: t,
                note: format!("2048 predictions on an n={n} surrogate"),
            });
        }
    }

    // Hand-rolled JSON: stable field order, no serializer dependency.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"gp_kernels\",\n  \"seed\": {seed},\n"
    ));
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {:.3}, \"note\": \"{}\"}}{}\n",
            e.name,
            e.value_ms,
            e.note,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    print!("{json}");
    if !quick {
        std::fs::write("BENCH_gp.json", &json).expect("write BENCH_gp.json");
        eprintln!("wrote BENCH_gp.json");
    }
}
