//! Emit `BENCH_query.json`: vectorized-vs-legacy executor timings on the
//! star-schema operator suite (the same scenarios as the
//! `query_engine` criterion bench, packaged as a schema-stable JSON
//! artifact CI can smoke-run and diff).
//!
//! Usage: `cargo run --release -p mde-bench --bin query_bench_json [-- --quick]`
//!
//! Writes `BENCH_query.json` into the current directory and prints it to
//! stdout. `--quick` shrinks the catalog to a CI smoke run (and skips
//! the file write so CI never dirties the tree). `MDE_CHAOS_SEED`
//! perturbs the value scramble so the CI matrix exercises different data
//! while staying deterministic within one lane.
//!
//! Before anything is emitted, every vectorized result is checked
//! against the legacy row-at-a-time executor — a correctness regression
//! fails the bench instead of publishing numbers for a wrong answer.

use std::hint::black_box;
use std::time::Instant;

use mde_mcdb::prelude::*;
use mde_mcdb::query::{AggFunc, AggSpec, Plan};
use mde_mcdb::value::Value as McdbValue;

const DIM_ROWS: usize = 1_000;

/// The deterministic star-schema catalog from the criterion bench:
/// FACT(K, G, V, Q) with a 1000-key join column and a 16-way group
/// column, DIM(K, LABEL). `seed` offsets the scramble.
fn star_catalog(fact_rows: usize, seed: u64) -> Catalog {
    let mut db = Catalog::new();
    db.insert(
        Table::build(
            "FACT",
            &[
                ("K", DataType::Int),
                ("G", DataType::Int),
                ("V", DataType::Float),
                ("Q", DataType::Int),
            ],
        )
        .rows((0..fact_rows).map(|i| {
            let h = (i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 100_003;
            vec![
                Value::from((h % DIM_ROWS as u64) as i64),
                Value::from((h % 16) as i64),
                Value::from(h as f64 / 100.0 - 450.0),
                Value::from(i as i64),
            ]
        }))
        .finish()
        .unwrap(),
    );
    db.insert(
        Table::build("DIM", &[("K", DataType::Int), ("LABEL", DataType::Str)])
            .rows((0..DIM_ROWS).map(|j| {
                vec![
                    Value::from(j as i64),
                    Value::from(["red", "green", "blue"][j % 3]),
                ]
            }))
            .finish()
            .unwrap(),
    );
    db
}

fn op_plans(fact_rows: usize) -> Vec<(&'static str, Plan)> {
    vec![
        ("scan", Plan::scan("FACT")),
        (
            "filter",
            Plan::scan("FACT").filter(
                Expr::col("V")
                    .gt(Expr::lit(0.0))
                    .and(Expr::col("Q").le(Expr::lit((fact_rows / 2) as i64))),
            ),
        ),
        (
            "join",
            Plan::scan("FACT")
                .join(Plan::scan("DIM"), &[("K", "K")])
                .filter(Expr::col("V").gt(Expr::lit(250.0))),
        ),
        (
            "group_by",
            Plan::scan("FACT").aggregate(
                &["G"],
                vec![
                    AggSpec::count_star("N"),
                    AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("V")),
                    AggSpec::new("PEAK", AggFunc::Max, Expr::col("V")),
                ],
            ),
        ),
    ]
}

/// Median wall time (ms) over `reps` runs of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Bit-exact row rendering: floats by `to_bits`, so the seq-vs-parallel
/// guardrail cannot be fooled by `-0.0 == 0.0` or NaN payloads.
fn rows_bits(t: &Table) -> Vec<Vec<String>> {
    t.rows()
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    McdbValue::Float(f) => format!("F{:016x}", f.to_bits()),
                    other => format!("{other:?}"),
                })
                .collect()
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed: u64 = std::env::var("MDE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(21);
    let (fact_rows, reps) = if quick { (10_000, 3) } else { (100_000, 9) };
    let db = star_catalog(fact_rows, seed);

    let mut ops = Vec::new();
    for (name, plan) in op_plans(fact_rows) {
        let vectorized = db.query(&plan).expect("vectorized execution");
        let legacy = db.query_unoptimized(&plan).expect("legacy execution");
        assert_eq!(
            vectorized.rows(),
            legacy.rows(),
            "executor divergence on `{name}` — refusing to publish numbers"
        );
        let rows_out = vectorized.len();
        let vec_ms = time_ms(reps, || {
            black_box(db.query(black_box(&plan)).unwrap());
        });
        let legacy_ms = time_ms(reps, || {
            black_box(db.query_unoptimized(black_box(&plan)).unwrap());
        });
        ops.push((name, rows_out, vec_ms, legacy_ms));
    }

    // ------------------------------------------------------------------
    // Morsel-parallel sweep: 1/2/4/8 worker threads over the same
    // operator suite, with a bit-exact seq-vs-parallel divergence
    // guardrail. Speedups are meaningful only when `host_cpus` >= the
    // thread count; the numbers are recorded honestly either way.
    // ------------------------------------------------------------------
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let thread_counts = [1usize, 2, 4, 8];
    let morsel_rows = ExecConfig::default().morsel_rows;
    // (threads, [(op, median ms, megarows/s)])
    type ThreadLane = (usize, Vec<(&'static str, f64, f64)>);
    let mut per_thread: Vec<ThreadLane> = Vec::new();
    for &threads in &thread_counts {
        let mut lane = db.clone();
        lane.set_exec_config(ExecConfig::with_threads(threads));
        let mut lane_ops = Vec::new();
        for (name, plan) in op_plans(fact_rows) {
            let got = lane.query(&plan).expect("parallel execution");
            let want = db.query(&plan).expect("sequential execution");
            assert_eq!(
                rows_bits(&want),
                rows_bits(&got),
                "seq-vs-parallel divergence on `{name}` at {threads} threads — \
                 refusing to publish numbers"
            );
            let ms = time_ms(reps, || {
                black_box(lane.query(black_box(&plan)).unwrap());
            });
            let mrows_s = fact_rows as f64 / 1e6 / (ms / 1e3).max(1e-9);
            lane_ops.push((name, ms, mrows_s));
        }
        per_thread.push((threads, lane_ops));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"query_engine\",\n  \"seed\": {seed},\n  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"fact_rows\": {fact_rows},\n  \"dim_rows\": {DIM_ROWS},\n  \"ops\": [\n"
    ));
    for (i, (name, rows_out, vec_ms, legacy_ms)) in ops.iter().enumerate() {
        let mrows_s = fact_rows as f64 / 1e6 / (vec_ms / 1e3).max(1e-9);
        json.push_str(&format!(
            "    {{\"op\": \"{name}\", \"rows_out\": {rows_out}, \
             \"vectorized_ms\": {vec_ms:.3}, \"legacy_ms\": {legacy_ms:.3}, \
             \"speedup\": {:.2}, \"scan_mrows_s\": {mrows_s:.2}}}{}\n",
            legacy_ms / vec_ms.max(1e-9),
            if i + 1 < ops.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"parallel\": {{\n    \"morsel_rows\": {morsel_rows},\n    \
         \"host_cpus\": {host_cpus},\n    \"divergence\": \"none\",\n    \"threads\": [\n"
    ));
    for (i, (threads, lane_ops)) in per_thread.iter().enumerate() {
        json.push_str(&format!("      {{\"threads\": {threads}, \"ops\": ["));
        for (j, (name, ms, mrows_s)) in lane_ops.iter().enumerate() {
            json.push_str(&format!(
                "{{\"op\": \"{name}\", \"ms\": {ms:.3}, \"mrows_s\": {mrows_s:.2}}}{}",
                if j + 1 < lane_ops.len() { ", " } else { "" }
            ));
        }
        json.push_str(&format!(
            "]}}{}\n",
            if i + 1 < per_thread.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n    \"speedup_8t\": {");
    let one_t = &per_thread[0].1;
    let eight_t = &per_thread[per_thread.len() - 1].1;
    for (j, ((name, ms1, _), (_, ms8, _))) in one_t.iter().zip(eight_t).enumerate() {
        json.push_str(&format!(
            "\"{name}\": {:.2}{}",
            ms1 / ms8.max(1e-9),
            if j + 1 < one_t.len() { ", " } else { "" }
        ));
    }
    json.push_str("}\n  }\n}\n");

    print!("{json}");
    if !quick {
        std::fs::write("BENCH_query.json", &json).expect("write BENCH_query.json");
        eprintln!("wrote BENCH_query.json");
    }
}
