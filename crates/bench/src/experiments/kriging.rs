//! E15 — §4.1: Gaussian-process metamodels — kriging, stochastic kriging,
//! and the polynomial baseline.

use mde_metamodel::design::nolh;
use mde_metamodel::gp::{GpConfig, GpModel};
use mde_metamodel::poly::PolyModel;
use mde_numeric::dist::{Distribution, Normal};
use mde_numeric::rng::rng_from_seed;

/// A curved 2-D test response the polynomial (order 2) cannot fully
/// capture.
fn truth(x: &[f64]) -> f64 {
    (3.0 * x[0]).sin() * (1.0 + x[1]) + 0.5 * x[1] * x[1]
}

fn rmse(pred: impl Fn(&[f64]) -> f64) -> f64 {
    let mut acc = 0.0;
    let mut n = 0.0;
    for i in 0..15 {
        for j in 0..15 {
            let x = [i as f64 / 14.0 * 2.0 - 1.0, j as f64 / 14.0 * 2.0 - 1.0];
            acc += (pred(&x) - truth(&x)).powi(2);
            n += 1.0;
        }
    }
    (acc / n).sqrt()
}

/// Regenerate the metamodel accuracy comparison.
pub fn kriging_accuracy_report() -> String {
    let mut rng = rng_from_seed(21);
    let design = nolh(2, 33, 200, &mut rng);
    let xs = design.scale_to(&[(-1.0, 1.0), (-1.0, 1.0)]);

    let mut out = String::new();
    out.push_str("E15 | §4.1: metamodel accuracy on a curved 2-D response\n");
    out.push_str("design: 33-run NOLH on [-1,1]^2; RMSE over a 15x15 grid\n\n");

    // Deterministic responses.
    let ys: Vec<f64> = xs.iter().map(|x| truth(x)).collect();
    let gp = GpModel::fit(&xs, &ys, &GpConfig::default()).expect("gp fit");
    let poly2 = PolyModel::fit(&xs, &ys, 2).expect("poly fit");
    let mut rows = vec![
        vec![
            "kriging (GP)".into(),
            crate::f(rmse(|x| gp.predict(x))),
            "interpolates design points exactly".into(),
        ],
        vec![
            "polynomial order 2".into(),
            crate::f(rmse(|x| poly2.predict(x))),
            "global shape only".into(),
        ],
    ];

    // Interpolation check at design points.
    let max_at_design = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (gp.predict(x) - y).abs())
        .fold(0.0f64, f64::max);
    out.push_str(&format!(
        "deterministic case: max |GP - Y| at design points = {} (eq. (6): exact interpolation)\n\n",
        crate::f(max_at_design)
    ));

    // Noisy responses: kriging vs stochastic kriging.
    let noise = Normal::new(0.0, 0.3).expect("static");
    let reps = 5usize;
    let mut means = Vec::with_capacity(xs.len());
    let mut vars = Vec::with_capacity(xs.len());
    for x in &xs {
        let draws: Vec<f64> = (0..reps)
            .map(|_| truth(x) + noise.sample(&mut rng))
            .collect();
        let m = draws.iter().sum::<f64>() / reps as f64;
        let v = draws.iter().map(|d| (d - m).powi(2)).sum::<f64>() / (reps as f64 - 1.0);
        means.push(m);
        vars.push(v / reps as f64);
    }
    let krig_noisy = GpModel::fit(&xs, &means, &GpConfig::default()).expect("fit");
    let sk = GpModel::fit_stochastic(&xs, &means, &vars, &GpConfig::default()).expect("fit");
    rows.push(vec![
        "kriging on noisy means".into(),
        crate::f(rmse(|x| krig_noisy.predict(x))),
        "chases the noise".into(),
    ]);
    rows.push(vec![
        "stochastic kriging (A-N-S)".into(),
        crate::f(rmse(|x| sk.predict(x))),
        "[Sigma_M + Sigma_eps]^{-1}: smooths it".into(),
    ]);
    out.push_str(&crate::render_table(&["metamodel", "RMSE", "note"], &rows));
    out.push_str(
        "\nExpected shape: GP << polynomial on curved responses; under replication noise,\n\
         stochastic kriging <= interpolating kriging — both §4.1 claims.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_beats_quadratic_polynomial_on_curved_truth() {
        let mut rng = rng_from_seed(21);
        let design = nolh(2, 33, 100, &mut rng);
        let xs = design.scale_to(&[(-1.0, 1.0), (-1.0, 1.0)]);
        let ys: Vec<f64> = xs.iter().map(|x| truth(x)).collect();
        let gp = GpModel::fit(&xs, &ys, &GpConfig::default()).unwrap();
        let poly2 = PolyModel::fit(&xs, &ys, 2).unwrap();
        let e_gp = rmse(|x| gp.predict(x));
        let e_poly = rmse(|x| poly2.predict(x));
        assert!(e_gp < e_poly * 0.5, "GP {e_gp} vs poly {e_poly}");
    }
}
