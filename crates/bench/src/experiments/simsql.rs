//! E4 — §2.1 SimSQL: database-valued Markov chains.
//!
//! An inventory/pricing chain exercising SimSQL's two headline extensions:
//! versioned stochastic tables (query `D[i]` for any `i`) and recursive
//! definitions (`PRICE[i]` generated from `PRICE[i-1]`, `DEMAND[i]` from
//! `PRICE[i]`'s *previous* version under batch semantics).

use mde_mcdb::markov::MarkovChainSpec;
use mde_mcdb::prelude::*;
use mde_mcdb::query::{AggFunc, AggSpec};
use mde_mcdb::vg::{NormalVg, PoissonVg};
use std::sync::Arc;

fn build_chain() -> (Catalog, MarkovChainSpec) {
    let mut base = Catalog::new();
    base.insert(
        Table::build("INIT", &[("P0", DataType::Float)])
            .row(vec![Value::from(10.0)])
            .finish()
            .expect("static"),
    );
    // D[0]: PRICE = N(P0, 0.1).
    let init_price = RandomTableSpec::builder("PRICE")
        .for_each(Plan::scan("INIT"))
        .with_vg(Arc::new(NormalVg))
        .vg_params_exprs(&[Expr::col("P0"), Expr::lit(0.1)])
        .select(&[("P", Expr::col("VALUE"))])
        .build()
        .expect("valid spec");
    // Transition: PRICE[i] = N(PRICE[i-1] * 1.02, 0.2) — a recursive,
    // self-referential stochastic table (2%/step drift).
    let price_step = RandomTableSpec::builder("PRICE")
        .for_each(Plan::scan("PRICE"))
        .with_vg(Arc::new(NormalVg))
        .vg_params_exprs(&[Expr::col("P").mul(Expr::lit(1.02)), Expr::lit(0.2)])
        .select(&[("P", Expr::col("VALUE"))])
        .build()
        .expect("valid spec");
    // DEMAND[i] ~ Poisson(1000 / PRICE[i-1]) — cross-table parametrization.
    let demand_step = RandomTableSpec::builder("DEMAND")
        .for_each(Plan::scan("PRICE"))
        .with_vg(Arc::new(PoissonVg))
        .vg_params_exprs(&[Expr::lit(1000.0).div(Expr::col("P"))])
        .select(&[("UNITS", Expr::col("VALUE"))])
        .build()
        .expect("valid spec");
    (
        base,
        MarkovChainSpec::new(vec![init_price], vec![demand_step, price_step]),
    )
}

/// Regenerate the SimSQL chain report: per-version queries over `D[0..T]`.
pub fn simsql_markov_report() -> String {
    let (base, spec) = build_chain();
    let steps = 12;
    let traj = spec.run(&base, steps, 11).expect("chain run");

    let price_q =
        Plan::scan("PRICE").aggregate(&[], vec![AggSpec::new("P", AggFunc::Avg, Expr::col("P"))]);
    let demand_q = Plan::scan("DEMAND").aggregate(
        &[],
        vec![AggSpec::new("U", AggFunc::Avg, Expr::col("UNITS"))],
    );
    let prices = traj.scalar_series(&price_q).expect("price series");

    let mut out = String::new();
    out.push_str("E4 | §2.1 SimSQL: database-valued Markov chain D[0..12]\n");
    out.push_str("PRICE[i] ~ N(1.02*PRICE[i-1], 0.2); DEMAND[i] ~ Poisson(1000/PRICE[i-1])\n\n");
    let mut rows = Vec::new();
    for (i, &price_i) in prices.iter().enumerate().take(steps + 1) {
        let demand = if i == 0 {
            "-".to_string()
        } else {
            crate::f(
                traj.query_at(i, &demand_q)
                    .expect("versioned query")
                    .scalar()
                    .expect("scalar")
                    .as_f64()
                    .expect("float"),
            )
        };
        rows.push(vec![format!("D[{i}]"), crate::f(price_i), demand]);
    }
    out.push_str(&crate::render_table(&["version", "price", "demand"], &rows));

    let drift = prices.last().expect("non-empty") / prices[0];
    let expected_drift = 1.02f64.powi(steps as i32);
    out.push_str(&format!(
        "\nprice drift over {steps} steps: {:.3} (theory 1.02^{steps} = {:.3})\n",
        drift, expected_drift
    ));
    out.push_str(
        "Versioned access (query_at any i), recursion (PRICE reads its prior version),\n\
         and cross-table parametrization (DEMAND reads PRICE) all exercised.\n",
    );

    // "Well suited to scalable Bayesian machine learning": a two-block
    // Gibbs sampler as a database-valued chain, with the posterior update
    // computed by a SQL aggregate. Stationary marginal of P is
    // Uniform(0,1) — mean 1/2, variance 1/12.
    out.push_str("\nBayesian ML in the database: Beta-Bernoulli Gibbs chain (n = 20 units)\n");
    let (mean, var, steps) = gibbs_marginal_stats(3000, 200, 7);
    out.push_str(&format!(
        "P marginal over {steps} post-burn-in steps: mean {:.3} (theory 0.500), \
         variance {:.4} (theory {:.4})\n",
        mean,
        var,
        1.0 / 12.0
    ));
    out
}

/// Run the Beta-Bernoulli Gibbs chain and return `(mean, var, samples)` of
/// the `P` marginal after burn-in.
fn gibbs_marginal_stats(steps: usize, burn_in: usize, seed: u64) -> (f64, f64, usize) {
    use mde_mcdb::vg::{BernoulliVg, BetaVg};
    let n_units = 20i64;
    let mut base = Catalog::new();
    base.insert(
        Table::build("UNITS", &[("UID", DataType::Int)])
            .rows((0..n_units).map(|i| vec![Value::from(i)]))
            .finish()
            .expect("static"),
    );
    base.insert(
        Table::build("INIT_P", &[("P0", DataType::Float)])
            .row(vec![Value::from(0.5)])
            .finish()
            .expect("static"),
    );
    let init_x = RandomTableSpec::builder("X")
        .for_each(Plan::scan("UNITS"))
        .with_vg(Arc::new(BernoulliVg))
        .vg_params_query(Plan::scan("INIT_P"))
        .select(&[("UID", Expr::col("UID")), ("V", Expr::col("VALUE"))])
        .build()
        .expect("valid spec");
    let init_p = RandomTableSpec::builder("P")
        .for_each(Plan::scan("INIT_P"))
        .with_vg(Arc::new(BetaVg))
        .vg_params_exprs(&[Expr::lit(1.0), Expr::lit(1.0)])
        .select(&[("P", Expr::col("VALUE"))])
        .build()
        .expect("valid spec");
    let posterior_params = Plan::scan("X")
        .aggregate(&[], vec![AggSpec::new("A", AggFunc::Sum, Expr::col("V"))])
        .project(&[
            ("A", Expr::col("A").add(Expr::lit(1)).add(Expr::lit(0.0))),
            (
                "B",
                Expr::lit(n_units + 1)
                    .sub(Expr::col("A"))
                    .add(Expr::lit(0.0)),
            ),
        ]);
    let draw_p = RandomTableSpec::builder("P")
        .for_each(Plan::scan("INIT_P"))
        .with_vg(Arc::new(BetaVg))
        .vg_params_query(posterior_params)
        .select(&[("P", Expr::col("VALUE"))])
        .build()
        .expect("valid spec");
    let draw_x = RandomTableSpec::builder("X")
        .for_each(Plan::scan("UNITS"))
        .with_vg(Arc::new(BernoulliVg))
        .vg_params_query(Plan::scan("P"))
        .select(&[("UID", Expr::col("UID")), ("V", Expr::col("VALUE"))])
        .build()
        .expect("valid spec");
    let chain = MarkovChainSpec::new(vec![init_x, init_p], vec![draw_p, draw_x]);
    let traj = chain.run(&base, steps, seed).expect("chain run");
    let p_query =
        Plan::scan("P").aggregate(&[], vec![AggSpec::new("P", AggFunc::Avg, Expr::col("P"))]);
    let mut ps = Vec::new();
    for t in burn_in..=steps {
        ps.push(
            traj.query_at(t, &p_query)
                .expect("versioned query")
                .scalar()
                .expect("scalar")
                .as_f64()
                .expect("float"),
        );
    }
    let mean = ps.iter().sum::<f64>() / ps.len() as f64;
    let var = ps.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / ps.len() as f64;
    (mean, var, ps.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_drifts_at_the_configured_rate() {
        let (base, spec) = build_chain();
        let traj = spec.run(&base, 12, 3).unwrap();
        let q = Plan::scan("PRICE")
            .aggregate(&[], vec![AggSpec::new("P", AggFunc::Avg, Expr::col("P"))]);
        let prices = traj.scalar_series(&q).unwrap();
        let drift = prices.last().unwrap() / prices[0];
        assert!((drift - 1.02f64.powi(12)).abs() < 0.15, "drift {drift}");
    }

    #[test]
    fn demand_tracks_inverse_price() {
        let (base, spec) = build_chain();
        let traj = spec.run(&base, 8, 4).unwrap();
        // At version i, demand ~ Poisson(1000/price[i-1]) ≈ 100/1.02^i.
        let d = traj
            .query_at(
                5,
                &Plan::scan("DEMAND").aggregate(
                    &[],
                    vec![AggSpec::new("U", AggFunc::Avg, Expr::col("UNITS"))],
                ),
            )
            .unwrap()
            .scalar()
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((60.0..135.0).contains(&d), "demand {d}");
    }
}
