//! E0 — §1: the introduction's agent-based motivating examples.
//!
//! Bonabeau's traffic argument: a data-centric analysis of speeds and
//! delays misses the *mechanism* ("we slow down at certain rates when
//! someone appears in front of us … accelerate to a driver-dependent
//! 'comfortable' speed … may switch lanes"), yet "simple agent-based
//! simulations that incorporate such behavior can accurately imitate
//! traffic jams observed in the real world". Plus Schelling [48], the
//! historical root the paper cites.

use mde_abs::engine::run_model;
use mde_abs::schelling::{SchellingConfig, SchellingModel};
use mde_abs::traffic::{fundamental_diagram, TrafficConfig, TrafficModel};

/// Regenerate the intro demonstrations.
pub fn intro_abs_report() -> String {
    let mut out = String::new();
    out.push_str("E0 | §1: agent-based simulation imitates emergent real-world behavior\n\n");

    // Traffic fundamental diagram: the inverted-V signature of real roads.
    out.push_str("A) Nagel-Schreckenberg traffic: fundamental diagram (flow vs density)\n");
    let densities: Vec<f64> = (1..=16).map(|i| i as f64 * 0.05).collect();
    let rows = fundamental_diagram(&TrafficConfig::default(), &densities, 200, 300, 3);
    let max_flow = rows.iter().map(|r| r.1).fold(0.0f64, f64::max).max(1e-9);
    for &(density, flow, speed) in &rows {
        let bar = "#".repeat((flow / max_flow * 40.0).round() as usize);
        out.push_str(&format!(
            "rho={density:4.2}  flow={flow:5.3}  v={speed:4.2}  |{bar}\n"
        ));
    }
    let peak = rows
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    out.push_str(&format!(
        "\ninverted-V with capacity at rho ≈ {:.2} — the empirical signature of real\n\
         traffic, emerging from three behavioral rules plus noise.\n",
        peak.0
    ));

    // Phantom jams: noise alone creates congestion.
    let measure = |p_slow: f64| {
        let mut m = TrafficModel::new(
            TrafficConfig {
                density: 0.25,
                p_slow,
                ..TrafficConfig::default()
            },
            8,
        );
        let obs = run_model(&mut m, 300, 9);
        obs.iter()
            .skip(100)
            .map(|o| o.stopped_fraction)
            .sum::<f64>()
            / 200.0
    };
    out.push_str(&format!(
        "\nphantom jams: stopped fraction at rho=0.25 is {:.3} without driver noise vs \
         {:.3} with it\n",
        measure(0.0),
        measure(0.3)
    ));

    // Schelling segregation.
    out.push_str("\nB) Schelling segregation [48]: mild preferences, strong segregation\n");
    let mut m = SchellingModel::new(SchellingConfig::default(), 3);
    let obs = run_model(&mut m, 60, 4);
    let mut rows = Vec::new();
    for &t in &[0usize, 5, 20, 60] {
        rows.push(vec![
            t.to_string(),
            format!("{:.3}", obs[t].segregation),
            format!("{:.3}", obs[t].unhappy_fraction),
        ]);
    }
    out.push_str(&crate::render_table(
        &["step", "segregation index", "unhappy fraction"],
        &rows,
    ));
    out.push_str(&format!(
        "\nthreshold 0.3 (agents content with 30% like neighbors) drives the mean\n\
         like-neighbor fraction from ~0.5 to {:.2} — emergence the data alone cannot\n\
         predict, the paper's case for embedding expert mechanisms in models.\n",
        obs.last().expect("non-empty").segregation
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shows_both_phenomena() {
        let r = intro_abs_report();
        assert!(r.contains("inverted-V"));
        assert!(r.contains("segregation"));
    }
}
