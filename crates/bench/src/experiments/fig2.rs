//! E2 — Figure 2 / §2.3: result caching for the two-model composite.
//!
//! Reproduces the section's quantitative content:
//! * the α-sweep of the asymptotic variance constant `g(α)` against the
//!   *empirically measured* `c·Var(U(c))` of budget-constrained runs;
//! * the closed-form `α*` against the empirical best α;
//! * the efficiency-gain table over the `(c₁/c₂, V₂/V₁)` grid, showing the
//!   paper's "arbitrarily large efficiency improvements".

use mde_numeric::cache::CacheHandle;
use mde_numeric::dist::Normal;
use mde_numeric::rng::Rng;
use mde_numeric::stats::Summary;
use mde_numeric::Fingerprint;
use mde_simopt::budget::run_under_budget_cached;
use mde_simopt::{
    asymptotic_efficiency, g_exact, optimal_alpha, FnModel, SeriesComposite, Statistics,
};
use std::sync::Arc;

/// Content-address fingerprint of the Figure 2 composite: the cache cannot
/// hash model closures, so the spec parameters stand in for them.
fn composite_fingerprint(c1: f64, c2: f64, s1: f64, s2: f64) -> u64 {
    Fingerprint::new("fig2.series-composite")
        .push_f64(c1)
        .push_f64(c2)
        .push_f64(s1)
        .push_f64(s2)
        .finish()
}

/// The Figure 2 composite: M1 = demand (slow), M2 = queue (fast).
/// V1 = s1² + s2², V2 = s1².
fn composite(c1: f64, c2: f64, s1: f64, s2: f64) -> SeriesComposite {
    let m1 = Arc::new(FnModel::new(
        "demand",
        c1,
        move |_: &[f64], rng: &mut Rng| vec![5.0 + s1 * Normal::sample_standard(rng)],
    ));
    let m2 = Arc::new(FnModel::new(
        "queue",
        c2,
        move |x: &[f64], rng: &mut Rng| vec![x[0] + s2 * Normal::sample_standard(rng)],
    ));
    SeriesComposite::new(m1, m2)
}

/// `c·Var(U(c))` measured through the production result cache: every `M₁`
/// output is a content-addressed cache entry, so the α-sweep's
/// common-random-numbers discipline (same seed across α) becomes real
/// cross-campaign reuse — later α values hit the `M₁` entries earlier ones
/// stored. Estimates are bit-identical to the uncached runner.
fn empirical_scaled_variance(
    comp: &SeriesComposite,
    budget: f64,
    alpha: f64,
    reps: u64,
    spec_fingerprint: u64,
    cache: &CacheHandle,
) -> f64 {
    let mut acc = Summary::new();
    for seed in 0..reps {
        if let Ok(Some(est)) =
            run_under_budget_cached(comp, budget, alpha, seed, spec_fingerprint, cache)
        {
            acc.push(est.theta_hat);
        }
    }
    budget * acc.sample_variance()
}

/// Regenerate the §2.3 tables.
pub fn fig2_report() -> String {
    let (c1, c2, s1, s2) = (10.0, 1.0, 1.0, 1.0);
    let stats = Statistics {
        c1,
        c2,
        v1: s1 * s1 + s2 * s2,
        v2: s1 * s1,
    };
    let comp = composite(c1, c2, s1, s2);
    let budget = 1500.0;
    let reps = 300;

    let mut out = String::new();
    out.push_str("E2 | Figure 2 / §2.3: result caching for M = M2 ∘ M1\n");
    out.push_str(&format!(
        "setup: c1={c1}, c2={c2}, V1={}, V2={} -> theory alpha* = {:.4}\n\n",
        stats.v1,
        stats.v2,
        optimal_alpha(&stats, usize::MAX),
    ));

    // α sweep: theory vs measurement, with every run's M₁ outputs flowing
    // through the production content-addressed result cache (one handle
    // shared across the whole sweep — common random numbers across α turn
    // into genuine cross-campaign cache hits).
    let spec_fp = composite_fingerprint(c1, c2, s1, s2);
    let cache = CacheHandle::in_memory();
    let alphas = [0.05, 0.1, 0.2, 0.3162, 0.5, 0.75, 1.0];
    let mut rows = Vec::new();
    let mut best_emp = (f64::INFINITY, 0.0);
    for &a in &alphas {
        let theory = g_exact(a, &stats);
        let measured = empirical_scaled_variance(&comp, budget, a, reps, spec_fp, &cache);
        if measured < best_emp.0 {
            best_emp = (measured, a);
        }
        rows.push(vec![
            crate::f(a),
            crate::f(theory),
            crate::f(measured),
            crate::f(measured / theory),
        ]);
    }
    out.push_str(&crate::render_table(
        &["alpha", "g(alpha) theory", "c*Var(U(c)) measured", "ratio"],
        &rows,
    ));
    let a_star = optimal_alpha(&stats, usize::MAX);
    out.push_str(&format!(
        "\nempirical best alpha = {} (theory alpha* = {:.4}) | ratio column near 1 validates the CLT\n",
        best_emp.1, a_star
    ));
    let cs = cache.stats();
    let requested = cs.hits + cs.misses;
    out.push_str(&format!(
        "result cache: {} M1 lookups -> {} hits / {} misses (hit rate {:.1}%), \
         {} entries resident; every hit is an M1 execution the sweep skipped\n",
        requested,
        cs.hits,
        cs.misses,
        100.0 * cs.hits as f64 / requested.max(1) as f64,
        cs.entries,
    ));

    // Ablation: deterministic cycling vs uniform random cache reuse ("the
    // deterministic cycling scheme produces a stratified sample … and helps
    // minimize estimator variance").
    let var_of = |random: bool| {
        use mde_simopt::rc::{run_rc_cached, run_rc_random_reuse, RcConfig};
        let ablation_cache = CacheHandle::in_memory();
        let mut acc = Summary::new();
        for seed in 0..400 {
            let cfg = RcConfig {
                n: 50,
                alpha: 0.2,
                seed,
            };
            let est = if random {
                run_rc_random_reuse(&comp, &cfg)
            } else {
                run_rc_cached(&comp, &cfg, spec_fp, &ablation_cache)
            };
            acc.push(est.theta_hat);
        }
        acc.sample_variance()
    };
    let (v_cycle, v_random) = (var_of(false), var_of(true));
    out.push_str(&format!(
        "\nAblation (alpha = 0.2, n = 50): Var(theta) with deterministic cycling = {} vs \
         random reuse = {} -> cycling cuts variance by {:.0}%\n",
        crate::f(v_cycle),
        crate::f(v_random),
        100.0 * (1.0 - v_cycle / v_random)
    ));

    // Efficiency-gain grid.
    out.push_str("\nEfficiency gain 1/g(alpha*) over 1/g(1) across the (c1/c2, V2/V1) grid:\n");
    let mut grid_rows = Vec::new();
    for &cost_ratio in &[1.0, 10.0, 100.0, 1000.0] {
        let mut row = vec![format!("c1/c2 = {cost_ratio}")];
        for &cov_ratio in &[0.9, 0.5, 0.1, 0.01] {
            let s = Statistics {
                c1: cost_ratio,
                c2: 1.0,
                v1: 1.0,
                v2: cov_ratio,
            };
            let a = optimal_alpha(&s, 1_000_000);
            let gain = asymptotic_efficiency(a, &s) / asymptotic_efficiency(1.0, &s);
            row.push(format!("{gain:.1}x"));
        }
        grid_rows.push(row);
    }
    out.push_str(&crate::render_table(
        &["", "V2/V1=0.9", "V2/V1=0.5", "V2/V1=0.1", "V2/V1=0.01"],
        &grid_rows,
    ));
    out.push_str(
        "\nPaper's claims: (i) U(c) ~ N(theta, g(alpha)/c); (ii) alpha* at the closed form;\n\
         (iii) 'arbitrarily large efficiency improvements are possible' as c1/c2 grows\n\
         and V2/V1 shrinks — visible in the bottom-right of the grid.\n",
    );

    // Beyond the paper's two-model theory: the "general composite model"
    // question, answered empirically for a 3-stage chain with nested
    // caching.
    out.push_str(
        "\nExtension (the paper's open question): 3-stage chain M3∘M2∘M1 with nested\n\
         caching (c = 50/5/1, sigma = 1/0.5/1). cost x Var over (alpha1, alpha2):\n",
    );
    let chain = mde_simopt::chain::ChainComposite {
        m1: Arc::new(FnModel::new("src", 50.0, |_: &[f64], rng: &mut Rng| {
            vec![5.0 + Normal::sample_standard(rng)]
        })),
        m2: Arc::new(FnModel::new("mid", 5.0, |x: &[f64], rng: &mut Rng| {
            vec![x[0] + 0.5 * Normal::sample_standard(rng)]
        })),
        m3: Arc::new(FnModel::new("sink", 1.0, |x: &[f64], rng: &mut Rng| {
            vec![x[0] + Normal::sample_standard(rng)]
        })),
    };
    let grid = [0.1, 0.5, 1.0];
    let rows_cv = chain.sweep_alphas(40, &grid, 300, 21);
    let mut trows = Vec::new();
    for &a1 in &grid {
        let mut row = vec![format!("alpha1 = {a1}")];
        for &a2 in &grid {
            let v = rows_cv
                .iter()
                .find(|(x, y, _)| (*x - a1).abs() < 1e-12 && (*y - a2).abs() < 1e-12)
                .expect("grid point")
                .2;
            row.push(crate::f(v));
        }
        trows.push(row);
    }
    out.push_str(&crate::render_table(
        &["", "alpha2=0.1", "alpha2=0.5", "alpha2=1.0"],
        &trows,
    ));
    let best = rows_cv
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .expect("non-empty");
    out.push_str(&format!(
        "empirical optimum at (alpha1, alpha2) = ({}, {}) — caching pays at every level\n",
        best.0, best.1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_variance_tracks_theory_at_endpoints() {
        let stats = Statistics {
            c1: 10.0,
            c2: 1.0,
            v1: 2.0,
            v2: 1.0,
        };
        let comp = composite(10.0, 1.0, 1.0, 1.0);
        let fp = composite_fingerprint(10.0, 1.0, 1.0, 1.0);
        let cache = CacheHandle::in_memory();
        for &a in &[0.3162, 1.0] {
            let theory = g_exact(a, &stats);
            let measured = empirical_scaled_variance(&comp, 2000.0, a, 400, fp, &cache);
            let ratio = measured / theory;
            assert!(
                (0.7..1.4).contains(&ratio),
                "alpha {a}: measured/theory = {ratio}"
            );
        }
        // The second α shares M₁ randomness with the first: real hits.
        assert!(cache.stats().hits > 0, "CRN sweep must hit the cache");
    }

    #[test]
    fn optimal_alpha_empirically_beats_naive() {
        let comp = composite(10.0, 1.0, 1.0, 1.0);
        let fp = composite_fingerprint(10.0, 1.0, 1.0, 1.0);
        let cache = CacheHandle::in_memory();
        let v_star = empirical_scaled_variance(&comp, 1500.0, 0.3162, 400, fp, &cache);
        let v_one = empirical_scaled_variance(&comp, 1500.0, 1.0, 400, fp, &cache);
        assert!(v_star < v_one, "alpha* {v_star} vs alpha=1 {v_one}");
    }
}
